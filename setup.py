"""Legacy setup shim: lets ``pip install -e .`` work with old setuptools
that cannot build PEP 517 editable wheels.  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()

"""Tests for the exact alias/error analysis."""

import numpy as np
import pytest

from repro.core.error_model import alias_analysis, tone_response
from repro.core.params import SoiParams
from repro.core.soi_single import SoiFFT
from repro.core.window import build_tables


def params(b=48, s=8, n=8 * 448, n_mu=8, d_mu=7):
    return SoiParams(n=n, n_procs=1, segments_per_process=s,
                     n_mu=n_mu, d_mu=d_mu, b=b)


@pytest.fixture(scope="module")
def tables():
    return build_tables(params())


class TestToneResponse:
    def test_integer_bins_match_demod(self, tables):
        m = tables.params.m
        r = tone_response(tables, np.arange(m, dtype=float))
        assert np.allclose(r, tables.demod, rtol=1e-10, atol=1e-14)

    def test_stopband_is_small(self, tables):
        p = tables.params
        nu = np.array([p.m_oversampled + 10.0, -p.m_oversampled + 3.0])
        stop = np.abs(tone_response(tables, nu))
        passband = np.abs(tables.demod).min()
        assert stop.max() < 1e-4 * passband

    def test_matches_executed_off_bin_tone(self, tables):
        """The response formula must agree with actually running the
        pipeline on an out-of-segment tone: feed frequency sM + k + M'
        and observe its leakage into bin k of segment s."""
        p = params(b=16, s=4, n=4 * 448)
        t = build_tables(p)
        f = SoiFFT(p)
        seg, k = 1, 10
        alias_freq = (seg * p.m + k + p.m_oversampled) % p.n
        x = np.exp(2j * np.pi * np.arange(p.n) * alias_freq / p.n)
        z = f.oversample(x)
        beta = f.segment_spectra(z)
        got = beta[seg, k] / p.n
        expected = tone_response(t, np.array([k + float(p.m_oversampled)]))[0]
        assert np.isclose(got, expected, rtol=1e-9, atol=1e-13)


class TestAliasAnalysis:
    def test_bound_dominates_measured_error(self, rng):
        """max_k |err_k| / max|Y| <= worst-case alias bound, for any input."""
        p = params(b=32, s=4, n=4 * 448)
        t = build_tables(p)
        analysis = alias_analysis(t, bins=np.arange(p.m))
        f = SoiFFT(p)
        for seed in range(3):
            r = np.random.default_rng(seed)
            x = r.standard_normal(p.n) + 1j * r.standard_normal(p.n)
            y = np.fft.fft(x)
            err = np.abs(f(x) - y) / np.abs(y).max()
            assert err.max() <= analysis.worst * 1.01

    def test_per_bin_bound_dominates_tone_leakage(self):
        """For a single alias tone the per-bin bound is tight-ish."""
        p = params(b=16, s=4, n=4 * 448)
        t = build_tables(p)
        f = SoiFFT(p)
        k = 7
        analysis = alias_analysis(t, bins=np.array([k]))
        alias_freq = (0 * p.m + k + p.m_oversampled) % p.n
        x = np.exp(2j * np.pi * np.arange(p.n) * alias_freq / p.n)
        y = f(x)
        leak = abs(y[k]) / p.n  # true bin is elsewhere; this is pure alias
        assert leak <= analysis.relative_bound[0] * 1.01

    def test_bigger_b_tightens_bounds(self):
        worst = []
        for b in (16, 32, 48):
            t = build_tables(params(b=b))
            worst.append(alias_analysis(t).worst)
        assert worst == sorted(worst, reverse=True)

    def test_band_edges_are_worst(self, tables):
        a = alias_analysis(tables, bins=np.arange(tables.params.m))
        rb = a.relative_bound
        edge = max(rb[0], rb[-1])
        center = rb[len(rb) // 2]
        assert edge > center

    def test_validation(self, tables):
        with pytest.raises(ValueError):
            alias_analysis(tables, bins=np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            alias_analysis(tables, bins=np.array([tables.params.m]))

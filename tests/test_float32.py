"""Tests for single-precision kernel support."""

import numpy as np
import pytest

from repro.fft.stockham import StockhamPlan
from tests.conftest import random_complex


class TestComplex64:
    @pytest.mark.parametrize("n", [8, 64, 1024, 60, 105])
    def test_accuracy_at_single_precision(self, rng, n):
        x = random_complex(rng, n).astype(np.complex64)
        y = StockhamPlan(n, dtype=np.complex64)(x)
        ref = np.fft.fft(x.astype(np.complex128))
        err = np.linalg.norm(y - ref) / np.linalg.norm(ref)
        assert err < 5e-6  # float32 epsilon territory

    def test_output_dtype_preserved(self, rng):
        y = StockhamPlan(64, dtype=np.complex64)(
            random_complex(rng, 64).astype(np.complex64))
        assert y.dtype == np.complex64

    def test_roundtrip(self, rng):
        x = random_complex(rng, 128).astype(np.complex64)
        f = StockhamPlan(128, dtype=np.complex64)
        b = StockhamPlan(128, sign=+1, dtype=np.complex64)
        assert np.allclose(b(f(x)), x, atol=1e-4)

    def test_double_more_accurate_than_single(self, rng):
        n = 4096
        x = random_complex(rng, n)
        ref = np.fft.fft(x)
        e64 = np.linalg.norm(
            StockhamPlan(n, dtype=np.complex64)(x.astype(np.complex64))
            - ref) / np.linalg.norm(ref)
        e128 = np.linalg.norm(StockhamPlan(n)(x) - ref) / np.linalg.norm(ref)
        assert e128 < 1e-6 * e64

    def test_rejects_other_dtypes(self):
        with pytest.raises(ValueError):
            StockhamPlan(8, dtype=np.float64)

    def test_default_is_double(self, rng):
        y = StockhamPlan(16)(random_complex(rng, 16))
        assert y.dtype == np.complex128


class TestDistributedInverse:
    def test_roundtrip_through_cluster(self, rng):
        from repro.cluster.simcluster import SimCluster
        from repro.core.params import SoiParams
        from repro.core.soi_dist import DistributedSoiFFT

        params = SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        cl = SimCluster(4)
        d = DistributedSoiFFT(cl, params)
        x = random_complex(rng, params.n)
        back = d.assemble(d.inverse(d(d.scatter(x))))
        err = np.linalg.norm(back - x) / np.linalg.norm(x)
        assert err < 20 * d.tables.expected_stopband

    def test_inverse_of_known_spectrum(self, rng):
        from repro.cluster.simcluster import SimCluster
        from repro.core.params import SoiParams
        from repro.core.soi_dist import DistributedSoiFFT

        params = SoiParams(n=8 * 448, n_procs=2, segments_per_process=4,
                           n_mu=8, d_mu=7, b=48)
        cl = SimCluster(2)
        d = DistributedSoiFFT(cl, params)
        x = random_complex(rng, params.n)
        y = np.fft.fft(x)
        chunk = params.elements_per_process
        y_parts = [y[r * chunk:(r + 1) * chunk] for r in range(2)]
        back = d.assemble(d.inverse(y_parts))
        assert np.linalg.norm(back - x) / np.linalg.norm(x) < 1e-4

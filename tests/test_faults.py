"""Unified fault layer: FaultPlan schedules, retry/backoff, rank-failure
recovery, and the seeded chaos suite (``-m chaos``)."""

import numpy as np
import pytest

from repro.baseline.ct_dist import DistributedCooleyTukeyFFT
from repro.cluster.faults import (
    CorruptionDetected,
    FaultPlan,
    RankFailed,
    RetriesExhausted,
    RetryPolicy,
    chaos_cluster,
)
from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from repro.core.soi_spmd import spmd_soi_fft
from tests.conftest import random_complex


def p8_params() -> SoiParams:
    return SoiParams(n=8 * 448, n_procs=8, segments_per_process=1,
                     n_mu=8, d_mu=7, b=48)


def p4_params() -> SoiParams:
    return SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                     n_mu=8, d_mu=7, b=48)


def run_soi(params, x, plan=None, policy=None):
    cl = SimCluster(params.n_procs)
    if plan is not None:
        chaos_cluster(cl, plan, policy or RetryPolicy(max_retries=16))
    soi = DistributedSoiFFT(cl, params)
    y = soi.assemble(soi(soi.scatter(x)))
    return cl, soi, y


def error_bound(soi) -> float:
    return 10 * soi.tables.expected_stopband + 1e-12


def rel_err(y, ref) -> float:
    return float(np.linalg.norm(y - ref) / np.linalg.norm(ref))


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        pol = RetryPolicy(backoff_base=1e-5, backoff_factor=2.0)
        assert pol.backoff(0) == pytest.approx(1e-5)
        assert pol.backoff(3) == pytest.approx(8e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_seconds=-1.0)


class TestFaultPlan:
    def test_indices_are_one_based(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_messages=(0,))
        with pytest.raises(ValueError):
            FaultPlan(rank_failures={0: 0})

    def test_corrupt_and_timeout_disjoint(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_messages=(3,), timeout_messages=(3,))

    def test_is_clean(self):
        assert FaultPlan().is_clean
        assert not FaultPlan(corrupt_messages=(1,)).is_clean
        assert not FaultPlan(rank_failures={0: 1}).is_clean

    def test_apply_counts_and_corrupts(self):
        plan = FaultPlan(corrupt_messages=(2,), timeout_messages=(3,))
        a = np.ones(4, dtype=np.complex128)
        out, fault = plan.apply(a)
        assert fault is None and out is a
        out, fault = plan.apply(a)
        assert fault == "corrupt" and not np.array_equal(out, a)
        assert np.array_equal(a, np.ones(4))  # original untouched
        out, fault = plan.apply(a)
        assert fault == "timeout"
        assert plan.messages_seen == 3
        assert plan.corruptions_injected == 1
        assert plan.timeouts_injected == 1

    def test_empty_payload_cannot_corrupt(self):
        plan = FaultPlan(corrupt_messages=(1,))
        out, fault = plan.apply(np.zeros(0, dtype=np.complex128))
        assert fault is None and plan.corruptions_injected == 0

    def test_reset_replays(self):
        plan = FaultPlan(corrupt_messages=(1,))
        plan.apply(np.ones(2))
        assert plan.corruptions_injected == 1
        plan.reset()
        assert plan.messages_seen == 0 and plan.corruptions_injected == 0
        _, fault = plan.apply(np.ones(2))
        assert fault == "corrupt"

    def test_random_is_deterministic(self):
        a = FaultPlan.random(5, 8, corrupt_rate=0.01, timeout_rate=0.01,
                             n_rank_failures=2)
        b = FaultPlan.random(5, 8, corrupt_rate=0.01, timeout_rate=0.01,
                             n_rank_failures=2)
        assert a.corrupt_messages == b.corrupt_messages
        assert a.timeout_messages == b.timeout_messages
        assert a.rank_failures == b.rank_failures

    def test_random_respects_min_survivors(self):
        plan = FaultPlan.random(0, 4, n_rank_failures=10, min_survivors=2)
        assert len(plan.rank_failures) <= 2

    def test_describe_mentions_the_schedule(self):
        text = FaultPlan(corrupt_messages=(1,), rank_failures={2: 4},
                         seed=9).describe()
        assert "seed=9" in text and "corrupt=1" in text and "2: 4" in text


class TestRetryHealsTransients:
    def test_corruption_healed_by_retry(self, rng):
        cl = SimCluster(3)
        cl.comm.install_faults(FaultPlan(corrupt_messages=(3,)),
                               RetryPolicy(max_retries=2))
        send = [[random_complex(rng, 4) for _ in range(3)] for _ in range(3)]
        recv = cl.comm.alltoall(send)
        for dst in range(3):
            for src in range(3):
                assert np.array_equal(recv[dst][src], send[src][dst])
        assert cl.comm.retry_count == 1
        retry = [e for e in cl.trace.events if e.category == "retry"]
        assert retry  # the re-flown attempt (+ backoff) is visible

    def test_timeout_healed_by_retry(self, rng):
        cl = SimCluster(3)
        cl.comm.install_faults(FaultPlan(timeout_messages=(1,)),
                               RetryPolicy(max_retries=2,
                                           timeout_seconds=1e-3))
        send = [[random_complex(rng, 4) for _ in range(3)] for _ in range(3)]
        t0 = cl.elapsed
        cl.comm.alltoall(send)
        assert cl.elapsed > t0 + 1e-3  # detection stall was charged
        assert cl.comm.retry_count == 1

    def test_detect_only_mode_raises_immediately(self, rng):
        cl = SimCluster(3)
        cl.comm.install_faults(FaultPlan(corrupt_messages=(1,)),
                               RetryPolicy(max_retries=0))
        send = [[random_complex(rng, 4) for _ in range(3)] for _ in range(3)]
        with pytest.raises(CorruptionDetected, match="failed its checksum"):
            cl.comm.alltoall(send)

    def test_persistent_timeouts_exhaust_budget(self, rng):
        cl = SimCluster(2)
        cl.comm.install_faults(FaultPlan(timeout_messages=range(1, 100)),
                               RetryPolicy(max_retries=3))
        send = [[random_complex(rng, 2) for _ in range(2)] for _ in range(2)]
        with pytest.raises(RetriesExhausted):
            cl.comm.alltoall(send)
        assert cl.comm.retry_count == 3


class TestVerifiedBcastBarrier:
    """barrier()/bcast() go through the same verified path (regression:
    they used to bypass the checksum layer entirely)."""

    def test_bcast_corruption_detected_and_healed(self, rng):
        cl = SimCluster(4)
        cl.comm.install_faults(FaultPlan(corrupt_messages=(2,)),
                               RetryPolicy(max_retries=2))
        buf = random_complex(rng, 8)
        out = cl.comm.bcast(buf, root=0)
        for copy in out:
            assert np.array_equal(copy, buf)
        assert cl.comm.retry_count == 1

    def test_bcast_detect_only_raises(self, rng):
        cl = SimCluster(4)
        cl.comm.install_faults(FaultPlan(corrupt_messages=(1,)),
                               RetryPolicy(max_retries=0))
        with pytest.raises(CorruptionDetected, match="bcast"):
            cl.comm.bcast(random_complex(rng, 8), root=0)

    def test_barrier_declares_dead_rank(self):
        cl = SimCluster(4)
        cl.comm.install_faults(FaultPlan(rank_failures={2: 1}),
                               RetryPolicy(max_retries=1))
        with pytest.raises(RankFailed) as exc:
            cl.comm.barrier()
        assert exc.value.rank == 2
        assert cl.alive == [True, True, False, True]

    def test_barrier_over_survivors_succeeds(self):
        cl = SimCluster(4)
        cl.comm.install_faults(FaultPlan(rank_failures={2: 1}),
                               RetryPolicy(max_retries=1))
        with pytest.raises(RankFailed):
            cl.comm.barrier()
        cl.comm.barrier(ranks=[0, 1, 3])  # shrunken communicator works


class TestShrinkAndRedistribute:
    def test_rank_dies_at_the_alltoall(self, rng):
        params = p8_params()
        x = random_complex(rng, params.n)
        # transfer 2 is the all-to-all (ghost ring exchange is transfer 1)
        cl, soi, y = run_soi(params, x,
                             FaultPlan(rank_failures={3: 2}),
                             RetryPolicy())
        assert rel_err(y, np.fft.fft(x)) < error_bound(soi)
        rec = soi.last_recovery
        assert rec is not None and list(rec.dead_ranks) == [3]
        assert rec.n_live == 7
        assert cl.alive[3] is False
        # the adopters' recomputed convolution rows are visible in the trace
        assert any(e.label == "recovery recompute" for e in cl.trace.events)

    def test_rank_dies_in_the_ghost_exchange(self, rng):
        """Failure before any z checkpoint exists: survivors recompute
        every row of the dead rank from the stage-0 input checkpoint."""
        params = p8_params()
        x = random_complex(rng, params.n)
        cl, soi, y = run_soi(params, x, FaultPlan(rank_failures={0: 1}),
                             RetryPolicy())
        assert rel_err(y, np.fft.fft(x)) < error_bound(soi)
        assert soi.last_recovery.recomputed_rows >= params.rows_per_process

    def test_two_ranks_die(self, rng):
        params = p8_params()
        x = random_complex(rng, params.n)
        cl, soi, y = run_soi(params, x,
                             FaultPlan(rank_failures={1: 2, 5: 3}),
                             RetryPolicy())
        assert rel_err(y, np.fft.fft(x)) < error_bound(soi)
        assert soi.last_recovery.n_live <= 7

    def test_segment_slots_reassigned(self, rng):
        params = p4_params()  # 2 segments per process
        x = random_complex(rng, params.n)
        cl, soi, y = run_soi(params, x, FaultPlan(rank_failures={2: 2}),
                             RetryPolicy())
        assert rel_err(y, np.fft.fft(x)) < error_bound(soi)
        owners = soi.last_recovery.slot_owners
        assert 2 not in owners.values()
        assert set(owners) == set(range(params.n_segments))

    def test_recovery_cost_charged_as_retry(self, rng):
        params = p8_params()
        x = random_complex(rng, params.n)
        cl, soi, y = run_soi(params, x, FaultPlan(rank_failures={3: 2}),
                             RetryPolicy())
        retry = [e for e in cl.trace.events if e.category == "retry"]
        assert retry and sum(e.duration for e in retry) > 0

    def test_inverse_through_recovery(self, rng):
        params = p8_params()
        x = random_complex(rng, params.n)
        cl = SimCluster(8)
        chaos_cluster(cl, FaultPlan(rank_failures={4: 2}), RetryPolicy())
        soi = DistributedSoiFFT(cl, params)
        y = soi.assemble(soi.inverse(soi.scatter(x)))
        assert rel_err(y, np.fft.ifft(x)) < error_bound(soi)

    def test_ct_baseline_has_no_recovery_path(self, rng):
        params = p8_params()
        x = random_complex(rng, params.n)
        cl = SimCluster(8)
        chaos_cluster(cl, FaultPlan(rank_failures={3: 2}), RetryPolicy())
        ct = DistributedCooleyTukeyFFT(cl, params.n)
        with pytest.raises(RankFailed):
            ct(ct.scatter(x))


# ---------------------------------------------------------------------------
# seeded chaos suite
# ---------------------------------------------------------------------------

CHAOS_SEEDS = (0, 1, 2, 3, 4, 5)


@pytest.mark.chaos
class TestChaos:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_random_transients_still_correct(self, rng, seed):
        params = p8_params()
        x = random_complex(rng, params.n)
        plan = FaultPlan.random(seed, 8, corrupt_rate=0.003,
                                timeout_rate=0.003)
        cl, soi, y = run_soi(params, x, plan)
        assert rel_err(y, np.fft.fft(x)) < error_bound(soi)
        if plan.corruptions_injected or plan.timeouts_injected:
            assert [e for e in cl.trace.events if e.category == "retry"]

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_rank_failures_with_survivors_still_correct(self, rng, seed):
        """Any schedule leaving >= 1 survivor completes within the
        error-model bound."""
        params = p8_params()
        x = random_complex(rng, params.n)
        plan = FaultPlan.random(seed, 8, corrupt_rate=0.002,
                                n_rank_failures=1 + seed % 3,
                                horizon_transfers=4, min_survivors=1)
        cl, soi, y = run_soi(params, x, plan)
        assert rel_err(y, np.fft.fft(x)) < error_bound(soi)
        if plan.failed_ranks_declared:
            assert soi.last_recovery is not None
            assert cl.n_live == 8 - len(set(plan.failed_ranks_declared))

    def test_mass_failure_single_survivor(self, rng):
        params = p8_params()
        x = random_complex(rng, params.n)
        plan = FaultPlan.random(99, 8, n_rank_failures=7,
                                horizon_transfers=3, min_survivors=1)
        assert len(plan.rank_failures) == 7
        cl, soi, y = run_soi(params, x, plan)
        assert rel_err(y, np.fft.fft(x)) < error_bound(soi)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:3])
    def test_identical_seeds_identical_traces(self, seed):
        """Determinism: same seed, fresh cluster + plan => bitwise-equal
        outputs and trace event streams."""
        params = p8_params()
        x = random_complex(np.random.default_rng(seed), params.n)

        def one_run():
            plan = FaultPlan.random(seed, 8, corrupt_rate=0.004,
                                    timeout_rate=0.002, n_rank_failures=1,
                                    horizon_transfers=4, jitter=0.02)
            cl, soi, y = run_soi(params, x, plan)
            events = [(e.rank, e.label, e.category, e.t_start, e.t_end,
                       e.nbytes) for e in cl.trace.events]
            return y, events

        y1, ev1 = one_run()
        y2, ev2 = one_run()
        assert np.array_equal(y1, y2)
        assert ev1 == ev2

    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:3])
    def test_spmd_runtime_recovers_too(self, seed):
        params = p8_params()
        x = random_complex(np.random.default_rng(seed + 17), params.n)
        cl = SimCluster(8)
        chaos_cluster(cl, FaultPlan.random(seed, 8, corrupt_rate=0.002,
                                           n_rank_failures=1,
                                           horizon_transfers=3),
                      RetryPolicy(max_retries=16))
        y = spmd_soi_fft(cl, params, x)
        soi = DistributedSoiFFT(SimCluster(8), params)
        assert rel_err(y, np.fft.fft(x)) < error_bound(soi)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:3])
    def test_ct_survives_transients(self, rng, seed):
        """The baseline heals transients through the same retry layer —
        only whole-rank loss is fatal to it."""
        params = p8_params()
        x = random_complex(rng, params.n)
        cl = SimCluster(8)
        chaos_cluster(cl, FaultPlan.random(seed, 8, corrupt_rate=0.003,
                                           timeout_rate=0.003),
                      RetryPolicy(max_retries=16))
        ct = DistributedCooleyTukeyFFT(cl, params.n)
        y = ct.assemble(ct(ct.scatter(x)))
        assert rel_err(y, np.fft.fft(x)) < 1e-8


class TestCorrelatedFaultSchedules:
    """Domain kills, degraded/flapping links, and partition events."""

    def test_fail_domain_kills_every_member_at_once(self):
        from repro.cluster.topology import FatTree

        dom = FatTree(radix=4).domains(8)  # four leaves of two ranks
        plan = FaultPlan.fail_domain(dom, 1, at_transfer=3)
        assert plan.rank_failures == {2: 3, 3: 3}
        assert not plan.is_clean

    def test_fail_domain_presents_as_rank_failures(self, rng):
        from repro.cluster.topology import FatTree

        cl = SimCluster(8, topology=FatTree(radix=4))
        plan = FaultPlan.fail_domain(cl.domains, 2, at_transfer=1)
        cl.comm.install_faults(plan, RetryPolicy(max_retries=1))
        send = [[random_complex(rng, 2) for _ in range(8)]
                for _ in range(8)]
        with pytest.raises(RankFailed) as exc:
            cl.comm.alltoall(send)
        assert exc.value.rank in (4, 5)

    def test_degrade_links_builds_uniform_schedule(self):
        plan = FaultPlan.degrade_links([(0, 1), (1, 0)],
                                       bandwidth_factor=0.5, loss_rate=0.1)
        assert set(plan.degraded_links) == {(0, 1), (1, 0)}
        assert plan.has_link_faults and not plan.is_clean
        assert plan.link_slowdown({(0, 1)}) == pytest.approx(2.0)
        assert plan.link_slowdown({(2, 3)}) == pytest.approx(1.0)

    def test_link_degradation_validation(self):
        from repro.cluster.faults import LinkDegradation

        with pytest.raises(ValueError):
            LinkDegradation(bandwidth_factor=0.0)
        with pytest.raises(ValueError):
            LinkDegradation(bandwidth_factor=1.5)
        with pytest.raises(ValueError):
            LinkDegradation(loss_rate=-0.1)
        with pytest.raises(ValueError):
            LinkDegradation(loss_rate=1.1)

    def test_flapping_link_validation_and_cycle(self):
        from repro.cluster.faults import FlappingLink

        with pytest.raises(ValueError):
            FlappingLink(period=1)
        with pytest.raises(ValueError):
            FlappingLink(period=4, duty=0.0)
        with pytest.raises(ValueError):
            FlappingLink(period=4, duty=1.0)
        flap = FlappingLink(period=4, duty=0.5, phase=0)
        ups = [flap.up_at(t) for t in range(1, 9)]
        assert ups[:4] == ups[4:]  # periodic
        assert any(ups) and not all(ups)  # actually flaps

    def test_partition_event_validation(self):
        from repro.cluster.faults import PartitionEvent

        with pytest.raises(ValueError, match="two components"):
            PartitionEvent(at_transfer=1, components=((0, 1),))
        with pytest.raises(ValueError, match="disjoint"):
            PartitionEvent(at_transfer=1, components=((0, 1), (1, 2)))
        with pytest.raises(ValueError, match="empty"):
            PartitionEvent(at_transfer=1, components=((0,), ()))
        with pytest.raises(ValueError, match="heal_at"):
            PartitionEvent(at_transfer=5, components=((0,), (1,)),
                           heal_at=5)

    def test_partition_census_includes_isolated_singletons(self):
        from repro.cluster.faults import PartitionEvent

        plan = FaultPlan(partition=PartitionEvent(
            at_transfer=1, components=((0, 1), (2,))))
        # rank 5 is named in no component: isolated, a singleton island
        assert plan.partition_components([0, 1, 2, 5]) == \
            ((0, 1), (2,), (5,))

    def test_random_rejects_bad_rates(self):
        with pytest.raises(ValueError, match="probabilities"):
            FaultPlan.random(0, 4, corrupt_rate=1.5)
        with pytest.raises(ValueError, match="probabilities"):
            FaultPlan.random(0, 4, timeout_rate=-0.1)
        with pytest.raises(ValueError, match="probabilities"):
            FaultPlan.random(0, 4, sdc_rate=2.0)

    def test_random_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan.random(0, 4, n_rank_failures=-1)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan.random(0, 4, n_stragglers=-2)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan.random(0, 4, min_survivors=-1)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan.random(0, 4, horizon_messages=-5)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan.random(0, 4, straggler_slowdown=-0.5)

    def test_describe_mentions_link_faults(self):
        from repro.cluster.faults import LinkDegradation, PartitionEvent

        text = FaultPlan(
            degraded_links={(0, 1): LinkDegradation(bandwidth_factor=0.5)},
            partition=PartitionEvent(at_transfer=2,
                                     components=((0,), (1,)))).describe()
        assert "degraded" in text and "partition" in text

"""Every shipped example must run clean end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    out = subprocess.run([sys.executable, str(script)],
                         capture_output=True, text=True, timeout=600)
    assert out.returncode == 0, out.stderr[-2000:]
    assert out.stdout.strip(), "examples must produce output"


def test_expected_example_set():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "distributed_weak_scaling.py",
            "spectral_analysis.py", "mode_planning.py",
            "hybrid_cluster.py"} <= names

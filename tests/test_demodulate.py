"""Tests for projection + demodulation."""

import numpy as np
import pytest

from repro.core.demodulate import demod_ledger, demodulate, fused_demod_diagonal
from repro.core.params import SoiParams
from repro.core.window import build_tables
from tests.conftest import random_complex


@pytest.fixture(scope="module")
def tables():
    p = SoiParams(n=4 * 448, n_procs=1, segments_per_process=4,
                  n_mu=8, d_mu=7, b=16)
    return build_tables(p)


class TestDemodulate:
    def test_projects_to_m(self, rng, tables):
        p = tables.params
        beta = random_complex(rng, p.m_oversampled)
        out = demodulate(beta, tables)
        assert out.shape == (p.m,)
        assert np.allclose(out, beta[: p.m] / tables.demod)

    def test_batched(self, rng, tables):
        p = tables.params
        beta = random_complex(rng, 3, p.m_oversampled)
        out = demodulate(beta, tables)
        assert out.shape == (3, p.m)
        assert np.allclose(out[1], demodulate(beta[1], tables))

    def test_rejects_wrong_length(self, rng, tables):
        with pytest.raises(ValueError):
            demodulate(random_complex(rng, 10), tables)


class TestFusedDiagonal:
    def test_structure(self, tables):
        p = tables.params
        d = fused_demod_diagonal(tables)
        assert d.shape == (p.m_oversampled,)
        assert np.allclose(d[: p.m] * tables.demod, 1.0)
        assert np.all(d[p.m:] == 0.0)

    def test_equivalent_to_demodulate(self, rng, tables):
        p = tables.params
        beta = random_complex(rng, p.m_oversampled)
        fused = (beta * fused_demod_diagonal(tables))[: p.m]
        assert np.allclose(fused, demodulate(beta, tables))


class TestLedger:
    def test_fused_saves_two_sweeps(self, tables):
        p = tables.params
        separate = demod_ledger(tables, fused=False)
        fused = demod_ledger(tables, fused=True)
        # §5.2.4: "As a separate stage, this requires 3 memory sweeps ...
        # We save two of the sweeps by fusing"
        assert separate.sweep_count(p.m) > fused.sweep_count(p.m)
        assert len(separate.records) == 3
        assert len(fused.records) == 1

"""Tests for the energy model."""

import pytest

from repro.machine.energy import EnergyModel, EnergyReport
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10
from repro.perfmodel.model import PAPER_SECTION4_EXAMPLE as MODEL


class TestEnergyReport:
    def test_total(self):
        r = EnergyReport(1.0, 2.0, 3.0, 4.0)
        assert r.total_j == 10.0

    def test_movement_fraction(self):
        r = EnergyReport(compute_j=2.0, memory_j=1.0, network_j=1.0,
                         static_j=100.0)
        assert r.movement_fraction == pytest.approx(0.5)

    def test_empty(self):
        assert EnergyReport(0, 0, 0, 0).movement_fraction == 0.0


class TestEnergyModel:
    def test_soi_saves_energy_vs_ct(self):
        em = EnergyModel()
        ratio = em.soi_vs_ct_energy_ratio(MODEL, XEON_PHI_SE10)
        assert ratio > 1.3  # SOI: fewer network bytes AND less static time

    def test_network_bytes_priced_by_mu_vs_3(self):
        em = EnergyModel(static_watts_per_node=0.0, pj_per_flop=0.0,
                         pj_per_dram_byte=0.0)
        soi = em.soi_report(MODEL, XEON_PHI_SE10)
        ct = em.ct_report(MODEL, XEON_PHI_SE10)
        assert ct.network_j / soi.network_j == pytest.approx(3 / MODEL.mu,
                                                             rel=1e-6)

    def test_data_movement_dominates_compute(self):
        # the paper's framing: moving data costs more than computing
        em = EnergyModel()
        r = em.soi_report(MODEL, XEON_PHI_SE10)
        assert r.movement_fraction > 0.4

    def test_static_power_scales_with_time(self):
        em = EnergyModel()
        phi = em.soi_report(MODEL, XEON_PHI_SE10)
        xeon = em.soi_report(MODEL, XEON_E5_2680)
        assert xeon.static_j > phi.static_j  # slower run leaks longer

    def test_free_network_collapses_advantage(self):
        em = EnergyModel(pj_per_network_byte=0.0, static_watts_per_node=0.0)
        ratio = em.soi_vs_ct_energy_ratio(MODEL, XEON_PHI_SE10)
        # with free wires, SOI pays extra compute/dram: CT can even win
        assert ratio < 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(pj_per_flop=-1.0)

"""Tests for the distributed 2-D FFT contrast case."""

import numpy as np
import pytest

from repro.baseline.ct_dist import DistributedCooleyTukeyFFT
from repro.baseline.fft2d_dist import Distributed2dFFT
from repro.cluster.simcluster import SimCluster
from tests.conftest import random_complex


class TestCorrectness:
    @pytest.mark.parametrize("r,c,p", [
        (16, 16, 4), (32, 64, 8), (8, 12, 4), (64, 64, 1), (12, 20, 2),
    ])
    def test_matches_numpy_fft2(self, rng, r, c, p):
        cl = SimCluster(p)
        f2 = Distributed2dFFT(cl, r, c)
        a = random_complex(rng, r, c)
        y = f2.assemble(f2(f2.scatter(a)))
        assert np.allclose(y, np.fft.fft2(a))

    def test_output_is_column_distributed(self, rng):
        cl = SimCluster(4)
        f2 = Distributed2dFFT(cl, 16, 16)
        a = random_complex(rng, 16, 16)
        parts = f2(f2.scatter(a))
        ref = np.fft.fft2(a)
        for r, part in enumerate(parts):
            assert part.shape == (4, 16)
            assert np.allclose(part, ref[:, r * 4:(r + 1) * 4].T)


class TestCommunication:
    def test_single_alltoall(self, rng):
        cl = SimCluster(4)
        f2 = Distributed2dFFT(cl, 16, 16)
        f2(f2.scatter(random_complex(rng, 16, 16)))
        mpi = [e for e in cl.trace.events if e.category == "mpi"]
        assert {e.label for e in mpi} == {"transpose all-to-all"}

    def test_wire_bytes_exact(self, rng):
        cl = SimCluster(8)
        f2 = Distributed2dFFT(cl, 32, 64)
        f2(f2.scatter(random_complex(rng, 32, 64)))
        assert cl.comm.bytes_moved == f2.alltoall_bytes_total

    def test_2d_moves_third_of_1d_ct(self, rng):
        """The paper's §1 point, quantified: same N, the 2-D transform
        needs 1/3 the wire volume of the in-order 1-D transform."""
        n, p = 1024, 4
        cl1 = SimCluster(p)
        ct = DistributedCooleyTukeyFFT(cl1, n)
        ct(ct.scatter(random_complex(rng, n)))
        cl2 = SimCluster(p)
        f2 = Distributed2dFFT(cl2, 32, 32)
        f2(f2.scatter(random_complex(rng, 32, 32)))
        assert cl2.comm.bytes_moved * 3 == cl1.comm.bytes_moved


class TestValidation:
    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            Distributed2dFFT(SimCluster(3), 16, 16)

    def test_rejects_wrong_parts(self, rng):
        f2 = Distributed2dFFT(SimCluster(4), 16, 16)
        with pytest.raises(ValueError):
            f2([random_complex(rng, 4, 16)] * 3)
        with pytest.raises(ValueError):
            f2([random_complex(rng, 2, 16)] * 4)

    def test_scatter_validates(self, rng):
        f2 = Distributed2dFFT(SimCluster(4), 16, 16)
        with pytest.raises(ValueError):
            f2.scatter(random_complex(rng, 8, 8))

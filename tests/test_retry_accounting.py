"""Accounting invariants of the retry layer.

Every ``"retry"`` trace event must correspond to a failed first attempt,
wire bytes and simulated time must be conserved between the communicator
counters and the trace, and a zero-fault plan must charge nothing under
the retry category.
"""

import numpy as np
import pytest

from repro.cluster.faults import FaultPlan, RetryPolicy, chaos_cluster
from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from tests.conftest import random_complex

PARAMS = SoiParams(n=8 * 448, n_procs=8, segments_per_process=1,
                   n_mu=8, d_mu=7, b=48)


def soi_run(plan=None, policy=None, seed=3):
    cl = SimCluster(PARAMS.n_procs)
    if plan is not None:
        chaos_cluster(cl, plan, policy or RetryPolicy(max_retries=16))
    soi = DistributedSoiFFT(cl, PARAMS)
    x = random_complex(np.random.default_rng(seed), PARAMS.n)
    soi(soi.scatter(x))
    return cl


class TestZeroFaultPlans:
    def test_no_retry_events_under_clean_plan(self):
        cl = soi_run(FaultPlan())
        assert not [e for e in cl.trace.events if e.category == "retry"]
        assert cl.comm.retry_count == 0

    def test_clean_plan_matches_no_plan_accounting(self):
        armed = soi_run(FaultPlan())
        bare = soi_run(None)
        assert armed.comm.bytes_moved == bare.comm.bytes_moved
        assert armed.comm.message_count == bare.comm.message_count
        assert armed.elapsed == pytest.approx(bare.elapsed)

    def test_retry_total_is_zero(self):
        cl = soi_run(FaultPlan())
        assert cl.trace.total(category="retry") == 0.0


class TestRetryEventsMatchFailedAttempts:
    def plan(self):
        # two transient corruptions: one in the ghost exchange, one in
        # the all-to-all (P=8: ring = messages 1-16, alltoall 17-72)
        return FaultPlan(corrupt_messages=(5, 20), timeout_messages=(40,))

    def test_every_retry_has_an_earlier_first_attempt(self):
        cl = soi_run(self.plan())
        events = cl.trace.events
        retries = [e for e in events if e.category == "retry"]
        assert retries
        for ev in retries:
            base = ev.label.removesuffix(" (backoff)")
            first = [e for e in events
                     if e.rank == ev.rank and e.label == base
                     and e.category in ("mpi", "other")
                     and e.t_start <= ev.t_start]
            assert first, f"retry event {ev} has no failed first attempt"

    def test_retry_count_matches_reflown_collectives(self):
        cl = soi_run(self.plan())
        # each re-flown collective charges one retry event per rank
        reflown = [e for e in cl.trace.events if e.category == "retry"
                   and not e.label.endswith("(backoff)")]
        assert len(reflown) == cl.comm.retry_count * PARAMS.n_procs

    def test_backoff_waits_are_traced(self):
        cl = soi_run(self.plan())
        backoffs = [e for e in cl.trace.events
                    if e.label.endswith("(backoff)")]
        assert backoffs
        assert all(e.category == "retry" for e in backoffs)
        assert all(e.nbytes == 0 for e in backoffs)

    def test_timeout_stall_charged_on_failed_attempt(self):
        stall = 2e-3
        slow = soi_run(FaultPlan(timeout_messages=(5,)),
                       RetryPolicy(max_retries=2, timeout_seconds=stall,
                                   backoff_base=0.0))
        clean = soi_run(None)
        # one stalled first attempt + one clean re-flight of the ghost
        # exchange: the makespan grows by the stall plus the re-flight
        assert slow.elapsed > clean.elapsed + stall


class TestByteConservation:
    def test_bytes_moved_equals_traced_wire_bytes(self):
        """With corruption-only faults (no bcast in the run), the sum of
        per-event wire bytes over mpi + retry events equals the
        communicator's bytes_moved counter — retransmissions included."""
        cl = soi_run(FaultPlan(corrupt_messages=(5, 20, 60)))
        traced = sum(e.nbytes for e in cl.trace.events
                     if e.category in ("mpi", "retry"))
        assert traced == cl.comm.bytes_moved

    def test_retries_add_wire_traffic(self):
        faulty = soi_run(FaultPlan(corrupt_messages=(20,)))
        clean = soi_run(None)
        assert faulty.comm.retry_count == 1
        assert faulty.comm.bytes_moved > clean.comm.bytes_moved
        assert faulty.comm.message_count > clean.comm.message_count

    def test_retry_time_equals_category_total(self):
        cl = soi_run(FaultPlan(corrupt_messages=(5, 20)))
        per_event = sum(e.duration for e in cl.trace.events
                        if e.category == "retry") / PARAMS.n_procs
        # total() sums per-rank durations; collectives charge all 8 ranks
        assert cl.trace.total(category="retry") == \
            pytest.approx(per_event * PARAMS.n_procs)
        assert per_event > 0

"""Tests for the naive DFT oracle."""

import numpy as np
import pytest

from repro.fft.dft import dft, dft_matrix, idft
from tests.conftest import random_complex


class TestDftMatrix:
    def test_unitary_up_to_scale(self):
        f = dft_matrix(16)
        prod = f @ f.conj().T
        assert np.allclose(prod, 16 * np.eye(16))

    def test_forward_matches_numpy(self):
        f = dft_matrix(8)
        x = np.arange(8, dtype=np.complex128)
        assert np.allclose(f @ x, np.fft.fft(x))

    def test_inverse_sign(self):
        assert np.allclose(dft_matrix(8, sign=+1), dft_matrix(8, sign=-1).conj())

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_bad_n(self, bad):
        with pytest.raises(ValueError):
            dft_matrix(bad)

    def test_rejects_bad_sign(self):
        with pytest.raises(ValueError):
            dft_matrix(4, sign=2)


class TestDft:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 17, 32])
    def test_matches_numpy(self, rng, n):
        x = random_complex(rng, n)
        assert np.allclose(dft(x), np.fft.fft(x))

    def test_roundtrip(self, rng):
        x = random_complex(rng, 24)
        assert np.allclose(idft(dft(x)), x)

    def test_axis_argument(self, rng):
        x = random_complex(rng, 4, 6)
        assert np.allclose(dft(x, axis=0), np.fft.fft(x, axis=0))
        assert np.allclose(dft(x, axis=1), np.fft.fft(x, axis=1))

    def test_idft_matches_numpy(self, rng):
        x = random_complex(rng, 12)
        assert np.allclose(idft(x), np.fft.ifft(x))

"""Serving soak: ~100 deadline-bound requests through ClusterSoiService
under a seeded chaotic fault plan.

Every request must land in exactly one of the four contract outcomes —
``ok``, ``degraded``, ``Overloaded`` (shed), or ``DeadlineExceeded`` —
there is no fifth state and no unbounded-latency request.  The trace
accounting must stay consistent with the simulated wall clock, and every
returned spectrum must meet the accuracy floor it was admitted under.
"""

import numpy as np
import pytest

from repro.cluster.faults import FaultPlan, RetryPolicy
from repro.cluster.simcluster import SimCluster
from repro.resilience import (
    ClusterSoiService,
    DeadlineExceeded,
    DegradationLadder,
    Overloaded,
)
from repro.util.validate import spectral_snr
from tests.conftest import random_complex

N = 8 * 448
N_RANKS = 4
N_REQUESTS = 100
MIN_SNR_DB = 70.0


@pytest.mark.soak
def test_serving_soak_four_outcome_contract():
    rng = np.random.default_rng(2013)
    cl = SimCluster(N_RANKS)
    plan = FaultPlan.random(7, N_RANKS, corrupt_rate=0.01, timeout_rate=0.01,
                            horizon_messages=1 << 15, jitter=0.05,
                            n_stragglers=1, straggler_slowdown=1.3,
                            n_rank_failures=1, min_survivors=3)
    cl.comm.install_faults(plan, RetryPolicy(max_retries=3))
    ladder = DegradationLadder.standard(N, n_procs=N_RANKS,
                                        segments_per_process=2)
    svc = ClusterSoiService(cl, ladder)

    # deadline mix in absolute simulated time: a clean request runs in
    # microseconds, but each timeout the fault plan injects costs the
    # retry policy's 1 ms, so the tiers straddle the 0-3 timeout range —
    # generous, tolerates-a-couple, tolerates-one, tight, and hopeless
    deadline_choices = np.array([20e-3, 6e-3, 2.5e-3, 1.2e-3, 1e-7])
    outcomes = {"ok": 0, "degraded": 0, "overloaded": 0, "deadline": 0}
    references = 0
    arrival = cl.elapsed

    for k in range(N_REQUESTS):
        arrival += float(rng.uniform(0.0, 2e-3))
        deadline_seconds = float(rng.choice(deadline_choices))
        x = random_complex(rng, N)
        try:
            res = svc.submit(x, deadline_seconds=deadline_seconds,
                             min_snr_db=MIN_SNR_DB, arrival=arrival)
        except Overloaded:
            outcomes["overloaded"] += 1
            continue
        except DeadlineExceeded:
            outcomes["deadline"] += 1
            continue
        outcomes[res.outcome] += 1

        # no unbounded-latency requests: completion passed the deadline
        # check, so the observed latency is bounded by the deadline
        assert 0.0 < res.latency_seconds <= deadline_seconds * (1 + 1e-12)
        assert res.deadline_seconds == deadline_seconds
        # the budget never accounts more than the request's wall time
        assert res.report is not None
        # accuracy floor holds for everything that was returned at all
        if k % 10 == 0:  # spot-check SNR (reference FFTs dominate runtime)
            assert spectral_snr(res.y, np.fft.fft(x)) >= MIN_SNR_DB
            references += 1

    assert sum(outcomes.values()) == N_REQUESTS
    # the seeded chaos exercises every arm of the contract, and the
    # service is never starved outright
    assert all(outcomes[key] >= 1 for key in outcomes), outcomes
    assert references >= 5
    # the planned rank death actually happened and serving continued
    assert cl.n_live == N_RANKS - 1
    assert svc.breakers.fast_failures > 0  # breakers short-circuited retries
    # shed bookkeeping matches the observed outcome counts
    assert svc.admission.shed_count == outcomes["overloaded"]
    assert svc.admission.served_count == outcomes["ok"] + outcomes["degraded"]

    # trace accounting: no event may extend past the simulated wall
    # clock, and the clock only ever moved forward
    elapsed = cl.elapsed
    assert elapsed > 0.0
    max_end = max(e.t_end for e in cl.trace.events)
    assert max_end <= elapsed + 1e-9
    # per-rank serial categories (compute + mpi + retry + deadline waits)
    # cannot exceed that rank's clock
    for r in cl.live_ranks:
        busy = sum(e.duration for e in cl.trace.events if e.rank == r)
        assert busy <= cl.clocks[r] + 1e-9

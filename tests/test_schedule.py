"""Tests for the dependency/resource scheduler."""

import pytest

from repro.cluster.schedule import Schedule


class TestBasicScheduling:
    def test_single_task(self):
        s = Schedule()
        s.add("a", ("cpu", 0), 2.0)
        assert s.makespan == pytest.approx(2.0)

    def test_dependency_ordering(self):
        s = Schedule()
        s.add("a", ("cpu", 0), 1.0)
        s.add("b", ("net", 0), 2.0, deps=["a"])
        r = s.run()
        assert r["b"].start == pytest.approx(1.0)
        assert s.makespan == pytest.approx(3.0)

    def test_resource_serialization(self):
        s = Schedule()
        s.add("a", ("cpu", 0), 1.0)
        s.add("b", ("cpu", 0), 1.0)  # same resource, no dep: still serial
        assert s.makespan == pytest.approx(2.0)

    def test_independent_resources_parallel(self):
        s = Schedule()
        s.add("a", ("cpu", 0), 1.0)
        s.add("b", ("net", 0), 1.0)
        assert s.makespan == pytest.approx(1.0)

    def test_diamond_dependency(self):
        s = Schedule()
        s.add("src", ("cpu", 0), 1.0)
        s.add("l", ("cpu", 1), 2.0, deps=["src"])
        s.add("r", ("cpu", 2), 3.0, deps=["src"])
        s.add("sink", ("cpu", 0), 1.0, deps=["l", "r"])
        r = s.run()
        assert r["sink"].start == pytest.approx(4.0)
        assert s.makespan == pytest.approx(5.0)

    def test_zero_duration_tasks(self):
        s = Schedule()
        s.add("a", ("cpu", 0), 0.0)
        s.add("b", ("cpu", 0), 0.0, deps=["a"])
        assert s.makespan == 0.0

    def test_run_is_idempotent(self):
        s = Schedule()
        s.add("a", ("cpu", 0), 1.0)
        assert s.run() is s.run()


class TestOverlapPipeline:
    def _pipeline(self, n_seg, t_net, t_cpu):
        s = Schedule()
        prev_fft = None
        for i in range(n_seg):
            deps = [f"net{i-1}"] if i else []
            s.add(f"net{i}", ("net", 0), t_net, deps=deps)
            fdeps = [f"net{i}"] + ([f"cpu{i-1}"] if i else [])
            s.add(f"cpu{i}", ("cpu", 0), t_cpu, deps=fdeps)
        return s

    def test_balanced_pipeline_overlaps(self):
        s = self._pipeline(4, 1.0, 1.0)
        # fill 1 + 4 cpu stages = 5 (perfect overlap)
        assert s.makespan == pytest.approx(5.0)

    def test_exposed_time_balanced(self):
        s = self._pipeline(4, 1.0, 1.0)
        # only the first net stage is uncovered by cpu work
        assert s.exposed_time(("net", 0), ("cpu", 0)) == pytest.approx(1.0)

    def test_net_dominated_exposes_difference(self):
        s = self._pipeline(4, 2.0, 1.0)
        exposed = s.exposed_time(("net", 0), ("cpu", 0))
        assert exposed == pytest.approx(8.0 - 3.0)  # 8 net, 3 covered

    def test_busy_time(self):
        s = self._pipeline(3, 2.0, 1.0)
        assert s.busy_time(("net", 0)) == pytest.approx(6.0)
        assert s.busy_time(("cpu", 0)) == pytest.approx(3.0)

    def test_category_total(self):
        s = Schedule()
        s.add("a", ("cpu", 0), 1.5, category="compute")
        s.add("b", ("net", 0), 2.5, category="mpi")
        assert s.category_total("mpi") == pytest.approx(2.5)
        assert s.category_total("compute") == pytest.approx(1.5)


class TestValidation:
    def test_duplicate_id_rejected(self):
        s = Schedule()
        s.add("a", ("cpu", 0), 1.0)
        with pytest.raises(ValueError):
            s.add("a", ("cpu", 0), 1.0)

    def test_unknown_dep_rejected(self):
        s = Schedule()
        with pytest.raises(ValueError):
            s.add("b", ("cpu", 0), 1.0, deps=["nope"])

    def test_negative_duration_rejected(self):
        s = Schedule()
        with pytest.raises(ValueError):
            s.add("a", ("cpu", 0), -1.0)

    def test_empty_schedule(self):
        assert Schedule().makespan == 0.0

"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG per test."""
    return np.random.default_rng(0xC0FFEE)


def random_complex(rng: np.random.Generator, *shape: int) -> np.ndarray:
    """Complex standard normal array helper used across test modules."""
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)

"""Tests for the ABFT layer: self-verifying stages, segment-level
localization and repair, detection coverage against seeded SDC, and
straggler hedging."""

import numpy as np
import pytest

from repro.bench.faultsweep import (
    detection_coverage,
    sdc_ground_truth,
    verify_params,
)
from repro.cluster.faults import FaultPlan, chaos_cluster
from repro.cluster.simcluster import SimCluster
from repro.core.error_model import verification_thresholds
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from repro.core.soi_single import SoiFFT
from repro.core.soi_spmd import spmd_soi_fft
from repro.core.window import build_tables
from repro.util.validate import relative_l2_error
from repro.verify import (
    ConvChecksum,
    DistVerifier,
    HedgePolicy,
    VerificationError,
    VerifyPolicy,
    batch_checksum,
    checksum_weights,
    energy_cols,
    energy_rows,
    parseval_check,
)
from tests.conftest import random_complex

pytestmark = pytest.mark.abft

PARAMS = SoiParams(n=8 * 448, n_procs=1, segments_per_process=8,
                   n_mu=8, d_mu=7, b=48)
STAGES = ["conv", "lane", "permute", "segment-fft", "demod"]


def one_shot_injector(stage: str, seg: int, amplitude: float = 3.0):
    """Perturb one element of *stage*'s buffer by amplitude*rms, once."""
    fired = []

    def inject(st, arr):
        if st != stage or fired:
            return
        fired.append(1)
        rms = np.sqrt((np.abs(arr) ** 2).mean())
        if st in ("conv", "lane"):  # (batch, rows, S): columns are lanes
            arr[0, 100, seg] += amplitude * rms
        else:  # (batch, S, M'): rows are segments
            arr[0, seg, 37] += amplitude * rms

    return inject


class TestChecksumPrimitives:
    def test_weights_unit_modulus_and_distinct(self):
        w = checksum_weights(64)
        assert np.allclose(np.abs(w), 1.0)
        assert len(np.unique(np.round(w, 9))) == 64

    def test_batch_checksum_commutes_with_fft(self, rng):
        rows = random_complex(rng, 16, 32)
        w = checksum_weights(16)
        lhs = np.fft.fft(batch_checksum(rows, w))
        rhs = batch_checksum(np.fft.fft(rows, axis=-1), w)
        assert np.allclose(lhs, rhs)

    def test_conv_checksum_predicts_staged_output(self, rng):
        f = SoiFFT(PARAMS, verify=True)
        x = random_complex(rng, PARAMS.n)
        f(x)
        bufs = f._bufpool[1]
        chk = f.verifier._conv_checksum()
        assert isinstance(chk, ConvChecksum)
        pred = chk.predict(bufs["x_ext"])
        obs = batch_checksum(bufs["u"], f.verifier._w_rows)
        assert np.allclose(pred, obs)

    def test_conv_checksum_rejects_bad_weights(self):
        tables = build_tables(PARAMS)
        with pytest.raises(ValueError, match="one weight per"):
            ConvChecksum(tables, 0, PARAMS.m_oversampled, 0,
                         checksum_weights(7))


class TestEnergyInvariants:
    def test_energy_matches_reference(self, rng):
        a = random_complex(rng, 3, 16, 5)
        assert np.allclose(energy_rows(a), np.sum(np.abs(a) ** 2, axis=-1))
        assert np.allclose(energy_cols(a), np.sum(np.abs(a) ** 2, axis=-2))

    def test_contiguous_and_strided_paths_agree(self, rng):
        a = random_complex(rng, 4, 8, 6)
        strided = np.ascontiguousarray(a.transpose(0, 2, 1)).transpose(
            0, 2, 1)
        assert not strided.flags.c_contiguous
        assert np.allclose(energy_rows(a), energy_rows(strided))
        assert np.allclose(energy_cols(a), energy_cols(strided))

    def test_parseval_check_on_fft(self, rng):
        x = random_complex(rng, 6, 256)
        y = np.fft.fft(x, axis=-1)
        e_in, e_out = energy_rows(x), energy_rows(y)
        assert not parseval_check(e_in, e_out, 256, 1e-12).any()
        y[3, 17] *= 1.5
        bad = parseval_check(e_in, energy_rows(y), 256, 1e-12)
        assert bad.tolist() == [False, False, False, True, False, False]


class TestThresholds:
    def test_calibration_sane(self):
        th = verification_thresholds(build_tables(PARAMS))
        assert 0.0 < th.checksum_rtol < 1e-10
        assert 0.0 < th.energy_rtol < 1e-10
        assert th.output_rtol >= 10.0 * build_tables(PARAMS).expected_stopband
        assert 0.0 < th.min_detectable_amplitude < 1e-3


class TestSingleNodeVerification:
    @pytest.mark.parametrize("seed", range(5))
    def test_clean_runs_have_zero_false_positives(self, seed):
        rng = np.random.default_rng(seed)
        f = SoiFFT(PARAMS, verify=True)
        y = f(random_complex(rng, PARAMS.n))
        rep = f.verifier.report
        assert rep.checks > 0
        assert rep.detections == 0
        assert y is not None

    @pytest.mark.parametrize("stage", STAGES)
    def test_injected_corruption_is_detected_localized_repaired(
            self, rng, stage):
        x = random_complex(rng, PARAMS.n)
        clean = SoiFFT(PARAMS)(x)
        base = relative_l2_error(clean, np.fft.fft(x))

        seg = 5
        policy = VerifyPolicy(inject=one_shot_injector(stage, seg))
        f = SoiFFT(PARAMS, verify=policy)
        y = f(x)
        rep = f.verifier.report
        assert stage in rep.detected_stages
        assert seg in rep.detected_segments
        assert rep.repairs >= 1
        # repair restores numpy.fft agreement to the clean-run level
        assert relative_l2_error(y, np.fft.fft(x)) <= base * 1.0001

    def test_small_amplitude_still_detected(self, rng):
        x = random_complex(rng, PARAMS.n)
        policy = VerifyPolicy(
            inject=one_shot_injector("segment-fft", 4, amplitude=1e-8))
        f = SoiFFT(PARAMS, verify=policy)
        f(x)
        assert f.verifier.report.detections == 1

    def test_batch_verification(self, rng):
        xs = random_complex(rng, 3, PARAMS.n)
        f = SoiFFT(PARAMS, verify=True)
        ys = f.batch(xs)
        assert f.verifier.report.detections == 0
        for i in range(3):
            err = relative_l2_error(ys[i], np.fft.fft(xs[i]))
            assert err < f.verifier.thresholds.output_rtol

    def test_persistent_corruption_escalates_then_raises(self, rng):
        """With repair disabled the strike ladder must end in an error,
        never in silently corrupt output."""
        def always_inject(st, arr):
            if st == "segment-fft":
                arr[0, 2, 37] += 10.0 * np.sqrt((np.abs(arr) ** 2).mean())

        f = SoiFFT(PARAMS, verify=VerifyPolicy(inject=always_inject))
        f.verifier._repair = lambda *a, **k: None
        with pytest.raises(VerificationError, match="segment-fft"):
            f(random_complex(rng, PARAMS.n))
        assert f.verifier.report.escalations >= 1

    def test_verify_requires_direct_local_fft(self):
        with pytest.raises(ValueError, match="verify"):
            SoiFFT(PARAMS, local_fft="sixstep", verify=True)


class TestDistributedVerification:
    @pytest.mark.parametrize("seed", range(4))
    def test_clean_runs_have_zero_false_positives(self, seed):
        params = verify_params(4)
        rng = np.random.default_rng(seed)
        cl = SimCluster(4)
        soi = DistributedSoiFFT(cl, params, verify=True)
        x = random_complex(rng, params.n)
        soi.assemble(soi(soi.scatter(x)))
        assert soi.last_verification.detections == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_sdc_detected_localized_repaired(self, rng, seed):
        params = verify_params(4)
        cl = SimCluster(4)
        plan = FaultPlan.random(seed, 4, sdc_rate=0.5, sdc_amplitude=5.0,
                                horizon_sdc=2 * 4)
        chaos_cluster(cl, plan)
        soi = DistributedSoiFFT(cl, params, verify=True)
        x = random_complex(rng, params.n)
        y = soi.assemble(soi(soi.scatter(x)))

        cov = detection_coverage(soi.last_verification, plan, params)
        assert cov["detected"] == cov["injected"]
        assert cov["localized"] == cov["injected"]
        err = relative_l2_error(y, np.fft.fft(x))
        assert err < soi.verifier.thresholds.output_rtol
        if cov["injected"]:
            assert cov["repairs"] >= 1
            # the price of resilience lands in the retry trace category
            assert any(e.label == "abft repair" and e.category == "retry"
                       for e in cl.trace.events)

    def test_ground_truth_mapping(self, rng):
        params = verify_params(4)
        cl = SimCluster(4)
        plan = FaultPlan.random(3, 4, sdc_rate=0.5, sdc_amplitude=5.0,
                                horizon_sdc=8)
        chaos_cluster(cl, plan)
        soi = DistributedSoiFFT(cl, params, verify=True)
        soi(soi.scatter(random_complex(rng, params.n)))
        truth = sdc_ground_truth(plan, params)
        assert len(truth) == len(plan.sdc_log) > 0
        for stage, rank, seg in truth:
            assert stage in ("conv", "segment-fft")
            assert 0 <= rank < 4
            assert 0 <= seg < params.n_segments

    def test_verification_time_is_charged(self, rng):
        params = verify_params(4)
        cl = SimCluster(4)
        soi = DistributedSoiFFT(cl, params, verify=True)
        soi(soi.scatter(random_complex(rng, params.n)))
        verify_evs = [e for e in cl.trace.events if e.label == "abft verify"]
        assert verify_evs and all(e.category == "compute"
                                  for e in verify_evs)


class TestSpmdVerification:
    def test_sdc_detected_and_output_correct(self, rng):
        params = verify_params(4)
        cl = SimCluster(4)
        plan = FaultPlan.random(3, 4, sdc_rate=0.5, sdc_amplitude=5.0,
                                horizon_sdc=8)
        chaos_cluster(cl, plan)
        ver = DistVerifier(build_tables(params))
        x = random_complex(rng, params.n)
        y = spmd_soi_fft(cl, params, x, verify=ver)
        assert len(plan.sdc_log) > 0
        cov = detection_coverage(ver.report, plan, params)
        assert cov["detected"] == cov["injected"]
        err = relative_l2_error(y, np.fft.fft(x))
        assert err < ver.thresholds.output_rtol

    def test_clean_spmd_zero_detections(self, rng):
        params = verify_params(4)
        cl = SimCluster(4)
        ver = DistVerifier(build_tables(params))
        spmd_soi_fft(cl, params, random_complex(rng, params.n), verify=ver)
        assert ver.report.detections == 0


class TestHedging:
    PARAMS8 = SoiParams(n=8 * 2 * 448, n_procs=8, segments_per_process=2,
                        n_mu=8, d_mu=7, b=48)

    def _run(self, hedge):
        rng = np.random.default_rng(42)
        x = random_complex(rng, self.PARAMS8.n)
        plan = FaultPlan.random(5, 8, n_stragglers=2,
                                straggler_slowdown=2.0, jitter=0.02)
        cl = SimCluster(8)
        chaos_cluster(cl, plan)
        y = spmd_soi_fft(cl, self.PARAMS8, x, hedge=hedge)
        return cl, x, y

    def test_hedging_reduces_makespan_with_stragglers(self):
        cl_base, x, y0 = self._run(None)
        hp = HedgePolicy()
        cl_hedge, _, y1 = self._run(hp)
        assert hp.launched > 0
        assert hp.won > 0
        assert cl_hedge.elapsed < cl_base.elapsed
        assert np.allclose(y0, y1)
        assert relative_l2_error(y1, np.fft.fft(x)) < 1e-4

    def test_hedge_events_land_in_hedge_category(self):
        hp = HedgePolicy()
        cl, _, _ = self._run(hp)
        hedge_evs = [e for e in cl.trace.events if e.category == "hedge"]
        assert len(hedge_evs) == hp.launched
        assert all(e.label.startswith("hedge ") for e in hedge_evs)
        assert hp.time_saved > 0.0

    def test_quiet_without_stragglers(self, rng):
        params = verify_params(4)
        cl = SimCluster(4)
        hp = HedgePolicy()
        spmd_soi_fft(cl, params, random_complex(rng, params.n), hedge=hp)
        assert hp.launched == 0

    def test_min_ranks_guards_the_median(self):
        hp = HedgePolicy(min_ranks=3)
        cl = SimCluster(2)
        hp.review(cl, [(0, "x", 0.0, 1.0), (1, "x", 0.0, 100.0)])
        assert hp.launched == 0

    def test_summary_mentions_wins(self):
        hp = HedgePolicy()
        assert "hedges=0" in hp.summary()

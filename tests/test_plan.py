"""Tests for the top-level fft/ifft dispatcher."""

import numpy as np
import pytest

from repro.fft.bluestein import BluesteinPlan
from repro.fft.plan import fft, get_plan, ifft
from repro.fft.stockham import StockhamPlan
from tests.conftest import random_complex


class TestDispatch:
    def test_pow2_uses_stockham(self):
        assert isinstance(get_plan(256), StockhamPlan)

    def test_smooth_uses_stockham(self):
        assert isinstance(get_plan(360), StockhamPlan)

    def test_prime_uses_bluestein(self):
        assert isinstance(get_plan(101), BluesteinPlan)

    def test_plan_cache_returns_same_object(self):
        assert get_plan(512) is get_plan(512)
        assert get_plan(512, -1) is not get_plan(512, +1)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            get_plan(0)


class TestFftIfft:
    @pytest.mark.parametrize("n", [8, 30, 37, 448])
    def test_fft_matches_numpy(self, rng, n):
        x = random_complex(rng, n)
        assert np.allclose(fft(x), np.fft.fft(x))

    @pytest.mark.parametrize("n", [8, 37])
    def test_ifft_matches_numpy(self, rng, n):
        x = random_complex(rng, n)
        assert np.allclose(ifft(x), np.fft.ifft(x))

    def test_axis_handling(self, rng):
        x = random_complex(rng, 6, 8, 10)
        for axis in (0, 1, 2, -1, -2):
            assert np.allclose(fft(x, axis=axis), np.fft.fft(x, axis=axis))

    def test_roundtrip_along_axis(self, rng):
        x = random_complex(rng, 7, 16)
        assert np.allclose(ifft(fft(x, axis=0), axis=0), x)

    def test_rejects_scalar(self):
        with pytest.raises(ValueError):
            fft(np.complex128(1.0))

"""Tests for the tornado sensitivity analysis."""

import pytest

from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10
from repro.perfmodel.model import PAPER_SECTION4_EXAMPLE
from repro.perfmodel.sensitivity import tornado


class TestTornado:
    @pytest.fixture(scope="class")
    def rows(self):
        return tornado(PAPER_SECTION4_EXAMPLE, XEON_PHI_SE10)

    def test_sorted_by_swing(self, rows):
        swings = [r.swing for r in rows]
        assert swings == sorted(swings, reverse=True)

    def test_network_bandwidth_dominates_on_phi(self, rows):
        """The §4 narrative: on Phi, SOI is communication-limited, so the
        network term swings the total hardest."""
        assert rows[0].parameter == "network bandwidth"

    def test_all_parameters_present(self, rows):
        names = {r.parameter for r in rows}
        assert names == {"network bandwidth", "peak flops", "FFT efficiency",
                         "convolution efficiency", "convolution width B"}

    def test_base_within_swing(self, rows):
        # 'low'/'high' are scaled-down/up, whose direction of harm depends
        # on the parameter (bigger B costs more; bigger bandwidth less) —
        # the base case always lies between the two perturbations
        for r in rows:
            assert min(r.low_total, r.high_total) <= r.base_total + 1e-12
            assert max(r.low_total, r.high_total) >= r.base_total - 1e-12
            assert r.swing > 0

    def test_xeon_weights_compute_more(self):
        phi = tornado(PAPER_SECTION4_EXAMPLE, XEON_PHI_SE10)
        xeon = tornado(PAPER_SECTION4_EXAMPLE, XEON_E5_2680)
        get = lambda rows, name: next(r for r in rows if r.parameter == name)
        # compute terms matter relatively more on the slower Xeon
        phi_ratio = get(phi, "peak flops").swing / get(phi, "network bandwidth").swing
        xeon_ratio = get(xeon, "peak flops").swing / get(xeon, "network bandwidth").swing
        assert xeon_ratio > phi_ratio

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            tornado(PAPER_SECTION4_EXAMPLE, XEON_PHI_SE10, factor=1.0)

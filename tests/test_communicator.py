"""Tests for the Communicator collectives on SimCluster."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.simcluster import SimCluster
from tests.conftest import random_complex


@pytest.fixture
def cluster():
    return SimCluster(4)


class TestAlltoall:
    def test_transposes_payloads(self, cluster, rng):
        p = 4
        send = [[random_complex(rng, 3) for _ in range(p)] for _ in range(p)]
        recv = cluster.comm.alltoall(send)
        for src in range(p):
            for dst in range(p):
                assert np.array_equal(recv[dst][src], send[src][dst])

    def test_returns_copies(self, cluster, rng):
        send = [[random_complex(rng, 2) for _ in range(4)] for _ in range(4)]
        recv = cluster.comm.alltoall(send)
        send[0][1][:] = 0
        assert not np.array_equal(recv[1][0], send[0][1])

    def test_byte_accounting_excludes_self(self, cluster):
        p = 4
        send = [[np.ones(8, dtype=np.complex128) for _ in range(p)]
                for _ in range(p)]
        cluster.comm.alltoall(send)
        assert cluster.comm.bytes_moved == p * (p - 1) * 8 * 16
        assert cluster.comm.message_count == p * (p - 1)

    def test_clocks_advance_uniformly(self, cluster):
        send = [[np.ones(1024, dtype=np.complex128) for _ in range(4)]
                for _ in range(4)]
        cluster.comm.alltoall(send)
        assert len(set(cluster.clocks)) == 1
        assert cluster.clocks[0] > 0

    def test_synchronizes_to_slowest(self, cluster):
        cluster.charge_seconds(2, "work", 5.0)
        send = [[np.zeros(0, dtype=np.complex128)] * 4 for _ in range(4)]
        cluster.comm.alltoall(send)
        assert all(c == pytest.approx(5.0) for c in cluster.clocks)

    def test_trace_event_recorded(self, cluster):
        send = [[np.ones(4, dtype=np.complex128)] * 4 for _ in range(4)]
        cluster.comm.alltoall(send, label="xyz")
        labels = {e.label for e in cluster.trace.events}
        assert "xyz" in labels

    def test_rejects_wrong_shape(self, cluster):
        with pytest.raises(ValueError):
            cluster.comm.alltoall([[np.zeros(1)] * 3 for _ in range(4)])

    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=15, deadline=None)
    def test_property_recv_is_send_transposed(self, p, m):
        cl = SimCluster(p)
        send = [[np.full(m, src * 10 + dst, dtype=np.complex128)
                 for dst in range(p)] for src in range(p)]
        recv = cl.comm.alltoall(send)
        for dst in range(p):
            for src in range(p):
                assert np.all(recv[dst][src] == src * 10 + dst)


class TestRingExchange:
    def test_neighbor_semantics(self, rng):
        cl = SimCluster(4)
        to_left = [np.full(2, 100 + r, dtype=np.complex128) for r in range(4)]
        to_right = [np.full(3, 200 + r, dtype=np.complex128) for r in range(4)]
        from_left, from_right = cl.comm.ring_exchange(to_left, to_right)
        for r in range(4):
            # from_left[r] = what rank r-1 sent right
            assert np.all(from_left[r] == 200 + (r - 1) % 4)
            # from_right[r] = what rank r+1 sent left
            assert np.all(from_right[r] == 100 + (r + 1) % 4)

    def test_single_rank_wraps_to_self(self):
        cl = SimCluster(1)
        fl, fr = cl.comm.ring_exchange([np.array([1.0 + 0j])],
                                       [np.array([2.0 + 0j])])
        assert fl[0][0] == 2.0  # own right send wraps to own left ghost
        assert fr[0][0] == 1.0
        assert cl.comm.bytes_moved == 0

    def test_ghost_bytes_counted(self):
        cl = SimCluster(2)
        a = [np.ones(4, dtype=np.complex128)] * 2
        cl.comm.ring_exchange(a, a)
        assert cl.comm.bytes_moved == 2 * 2 * 64

    def test_rejects_wrong_count(self, cluster):
        with pytest.raises(ValueError):
            cluster.comm.ring_exchange([np.zeros(1)] * 3, [np.zeros(1)] * 4)


class TestAllgatherBcast:
    def test_allgather_everyone_gets_everything(self, cluster):
        send = [np.full(2, r, dtype=np.complex128) for r in range(4)]
        out = cluster.comm.allgather(send)
        for dst in range(4):
            for src in range(4):
                assert np.all(out[dst][src] == src)

    def test_bcast_values(self, cluster):
        buf = np.arange(5, dtype=np.complex128)
        out = cluster.comm.bcast(buf, root=2)
        assert len(out) == 4
        for o in out:
            assert np.array_equal(o, buf)

    def test_bcast_rejects_bad_root(self, cluster):
        with pytest.raises(ValueError):
            cluster.comm.bcast(np.zeros(1), root=7)

    def test_barrier_synchronizes(self, cluster):
        cluster.charge_seconds(1, "w", 3.0)
        cluster.comm.barrier()
        assert all(c == pytest.approx(3.0) for c in cluster.clocks)


class TestTwoLevelAlltoall:
    """The hierarchical (intra-group, then inter-group) all-to-all."""

    def _send(self, rng, ranks, width=3):
        return [[random_complex(rng, width) for _ in ranks] for _ in ranks]

    def test_matches_flat_bitwise(self, rng):
        send = self._send(rng, range(8))
        flat = SimCluster(8).comm.alltoall(send)
        hier = SimCluster(8).comm.alltoall(
            send, groups=[[0, 1], [2, 3], [4, 5], [6, 7]])
        for dst in range(8):
            for src in range(8):
                assert np.array_equal(hier[dst][src], flat[dst][src])

    def test_subset_ranks_with_groups(self, rng):
        cl = SimCluster(12)
        live = [0, 1, 2, 4, 5, 6, 8, 9, 10]
        send = self._send(rng, live)
        recv = cl.comm.alltoall(send, ranks=live,
                                groups=[[0, 1, 2], [4, 5, 6], [8, 9, 10]])
        for i, dst in enumerate(live):
            for j, src in enumerate(live):
                assert np.array_equal(recv[i][j], send[j][i])

    def test_preserves_payload_shape(self, rng):
        send = [[random_complex(rng, 2).reshape(2, 1) for _ in range(4)]
                for _ in range(4)]
        recv = SimCluster(4).comm.alltoall(send, groups=[[0, 1], [2, 3]])
        assert recv[3][0].shape == (2, 1)

    def test_ragged_groups_raise(self, rng):
        cl = SimCluster(6)
        send = self._send(rng, range(6))
        with pytest.raises(ValueError, match="equal-size"):
            cl.comm.alltoall(send, groups=[[0, 1], [2, 3, 4, 5]])

    def test_groups_must_partition_participants(self, rng):
        cl = SimCluster(4)
        send = self._send(rng, range(4))
        with pytest.raises(ValueError, match="partition"):
            cl.comm.alltoall(send, groups=[[0, 1], [1, 2]])
        with pytest.raises(ValueError, match="partition"):
            cl.comm.alltoall(send, groups=[[0, 1], [2]])

    def test_degenerate_groups_fall_back_to_flat(self, rng):
        """One group, or singleton groups: the flat path runs instead."""
        send = self._send(rng, range(4))
        cl = SimCluster(4)
        recv = cl.comm.alltoall(send, groups=[[0, 1, 2, 3]])
        for dst in range(4):
            for src in range(4):
                assert np.array_equal(recv[dst][src], send[src][dst])
        assert not any("[intra]" in e.label for e in cl.trace.events)

    def test_mixed_dtypes_fall_back_to_flat(self, rng):
        """Concatenating mixed-dtype blocks would promote them to the
        common dtype; the flat path preserves each block's dtype, so
        mixed sendbufs must take it."""
        send = [[(np.arange(3, dtype=np.float32) if src == 2 else
                  np.arange(3, dtype=np.float64)) + 10 * src + dst
                 for dst in range(4)] for src in range(4)]
        cl = SimCluster(4)
        recv = cl.comm.alltoall(send, groups=[[0, 1], [2, 3]])
        for dst in range(4):
            for src in range(4):
                assert recv[dst][src].dtype == send[src][dst].dtype
                assert np.array_equal(recv[dst][src], send[src][dst])
        assert not any("[intra]" in e.label for e in cl.trace.events)

    def test_fewer_wire_messages_than_flat(self, rng):
        q, m = 16, 4
        send = self._send(rng, range(q), width=1)
        cl_flat, cl_hier = SimCluster(q), SimCluster(q)
        cl_flat.comm.alltoall(send)
        groups = [list(range(lo, lo + m)) for lo in range(0, q, m)]
        cl_hier.comm.alltoall(send, groups=groups)
        # q*(q-1) = 240 vs q*((m-1) + (q/m-1)) = 96
        assert cl_flat.comm.message_count == q * (q - 1)
        assert cl_hier.comm.message_count == q * (m - 1 + q // m - 1)

    def test_intra_and_inter_phases_traced(self, rng):
        cl = SimCluster(4)
        cl.comm.alltoall(self._send(rng, range(4)), groups=[[0, 1], [2, 3]],
                         label="x")
        labels = {e.label for e in cl.trace.events}
        assert "x [intra]" in labels and "x [inter]" in labels


class TestCorrelatedLinkFaults:
    """Degraded, flapping, and partitioned links on the verified path."""

    def test_degraded_bandwidth_inflates_duration(self, rng):
        from repro.cluster.faults import (FaultPlan, LinkDegradation,
                                          RetryPolicy)

        send = [[random_complex(rng, 64) for _ in range(4)]
                for _ in range(4)]
        clean = SimCluster(4)
        clean.comm.alltoall(send)

        slow = SimCluster(4)
        slow.comm.install_faults(
            FaultPlan(degraded_links={
                (0, 1): LinkDegradation(bandwidth_factor=0.25)}),
            RetryPolicy(max_retries=0))
        recv = slow.comm.alltoall(send)
        # a synchronized collective runs at its slowest link's pace
        assert slow.elapsed == pytest.approx(4 * clean.elapsed)
        assert np.array_equal(recv[1][0], send[0][1])

    def test_lossy_link_heals_through_retries(self, rng):
        from repro.cluster.faults import (FaultPlan, LinkDegradation,
                                          RetryPolicy)

        send = [[random_complex(rng, 4) for _ in range(3)]
                for _ in range(3)]
        cl = SimCluster(3)
        plan = FaultPlan(degraded_links={
            (0, 1): LinkDegradation(loss_rate=0.9)}, seed=3)
        cl.comm.install_faults(plan, RetryPolicy(max_retries=32))
        recv = cl.comm.alltoall(send)
        assert np.array_equal(recv[1][0], send[0][1])
        assert plan.losses_injected >= 1
        assert cl.comm.retry_count == plan.losses_injected

    def test_loss_draws_are_seeded(self, rng):
        from repro.cluster.faults import (FaultPlan, LinkDegradation,
                                          RetryPolicy)

        def run():
            cl = SimCluster(3)
            plan = FaultPlan(degraded_links={
                (0, 1): LinkDegradation(loss_rate=0.5),
                (1, 2): LinkDegradation(loss_rate=0.5)}, seed=11)
            cl.comm.install_faults(plan, RetryPolicy(max_retries=64))
            cl.comm.alltoall([[random_complex(rng, 2) for _ in range(3)]
                              for _ in range(3)])
            return plan.losses_injected, cl.elapsed

        a = run()
        assert a == run() or a[0] == 0  # same seed, same drop sequence

    def test_flapping_link_heals_when_it_comes_back(self, rng):
        from repro.cluster.faults import (FaultPlan, FlappingLink,
                                          RetryPolicy)

        send = [[random_complex(rng, 4) for _ in range(2)]
                for _ in range(2)]
        cl = SimCluster(2)
        # down on odd transfers, up on even: attempt 1 times out, the
        # retry (transfer 2) goes through
        plan = FaultPlan(flapping_links={
            (0, 1): FlappingLink(period=2, duty=0.5, phase=0)})
        cl.comm.install_faults(plan, RetryPolicy(max_retries=2))
        recv = cl.comm.alltoall(send)
        assert np.array_equal(recv[1][0], send[0][1])
        assert plan.flap_timeouts_injected == 1
        assert cl.comm.retry_count == 1

    def test_partition_raises_with_census(self, rng):
        from repro.cluster.faults import (FaultPlan, PartitionDetected,
                                          PartitionEvent, RetryPolicy)

        send = [[random_complex(rng, 2) for _ in range(4)]
                for _ in range(4)]
        cl = SimCluster(4)
        plan = FaultPlan(partition=PartitionEvent(
            at_transfer=1, components=((0, 1, 2), (3,))))
        cl.comm.install_faults(plan, RetryPolicy(max_retries=1))
        with pytest.raises(PartitionDetected) as exc:
            cl.comm.alltoall(send)
        assert exc.value.components == ((0, 1, 2), (3,))
        assert exc.value.census == {0: 0, 1: 0, 2: 0, 3: 1}
        # the stall time was charged to the partition trace category
        assert any(e.category == "partition" for e in cl.trace.events)

    def test_transient_partition_rides_out(self, rng):
        from repro.cluster.faults import (FaultPlan, PartitionEvent,
                                          RetryPolicy)

        send = [[random_complex(rng, 2) for _ in range(4)]
                for _ in range(4)]
        cl = SimCluster(4)
        plan = FaultPlan(partition=PartitionEvent(
            at_transfer=1, components=((0, 1), (2, 3)), heal_at=3))
        cl.comm.install_faults(plan, RetryPolicy(max_retries=4))
        recv = cl.comm.alltoall(send)
        assert np.array_equal(recv[3][0], send[0][3])
        assert plan.partition_blocks > 0

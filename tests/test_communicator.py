"""Tests for the Communicator collectives on SimCluster."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.simcluster import SimCluster
from tests.conftest import random_complex


@pytest.fixture
def cluster():
    return SimCluster(4)


class TestAlltoall:
    def test_transposes_payloads(self, cluster, rng):
        p = 4
        send = [[random_complex(rng, 3) for _ in range(p)] for _ in range(p)]
        recv = cluster.comm.alltoall(send)
        for src in range(p):
            for dst in range(p):
                assert np.array_equal(recv[dst][src], send[src][dst])

    def test_returns_copies(self, cluster, rng):
        send = [[random_complex(rng, 2) for _ in range(4)] for _ in range(4)]
        recv = cluster.comm.alltoall(send)
        send[0][1][:] = 0
        assert not np.array_equal(recv[1][0], send[0][1])

    def test_byte_accounting_excludes_self(self, cluster):
        p = 4
        send = [[np.ones(8, dtype=np.complex128) for _ in range(p)]
                for _ in range(p)]
        cluster.comm.alltoall(send)
        assert cluster.comm.bytes_moved == p * (p - 1) * 8 * 16
        assert cluster.comm.message_count == p * (p - 1)

    def test_clocks_advance_uniformly(self, cluster):
        send = [[np.ones(1024, dtype=np.complex128) for _ in range(4)]
                for _ in range(4)]
        cluster.comm.alltoall(send)
        assert len(set(cluster.clocks)) == 1
        assert cluster.clocks[0] > 0

    def test_synchronizes_to_slowest(self, cluster):
        cluster.charge_seconds(2, "work", 5.0)
        send = [[np.zeros(0, dtype=np.complex128)] * 4 for _ in range(4)]
        cluster.comm.alltoall(send)
        assert all(c == pytest.approx(5.0) for c in cluster.clocks)

    def test_trace_event_recorded(self, cluster):
        send = [[np.ones(4, dtype=np.complex128)] * 4 for _ in range(4)]
        cluster.comm.alltoall(send, label="xyz")
        labels = {e.label for e in cluster.trace.events}
        assert "xyz" in labels

    def test_rejects_wrong_shape(self, cluster):
        with pytest.raises(ValueError):
            cluster.comm.alltoall([[np.zeros(1)] * 3 for _ in range(4)])

    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=15, deadline=None)
    def test_property_recv_is_send_transposed(self, p, m):
        cl = SimCluster(p)
        send = [[np.full(m, src * 10 + dst, dtype=np.complex128)
                 for dst in range(p)] for src in range(p)]
        recv = cl.comm.alltoall(send)
        for dst in range(p):
            for src in range(p):
                assert np.all(recv[dst][src] == src * 10 + dst)


class TestRingExchange:
    def test_neighbor_semantics(self, rng):
        cl = SimCluster(4)
        to_left = [np.full(2, 100 + r, dtype=np.complex128) for r in range(4)]
        to_right = [np.full(3, 200 + r, dtype=np.complex128) for r in range(4)]
        from_left, from_right = cl.comm.ring_exchange(to_left, to_right)
        for r in range(4):
            # from_left[r] = what rank r-1 sent right
            assert np.all(from_left[r] == 200 + (r - 1) % 4)
            # from_right[r] = what rank r+1 sent left
            assert np.all(from_right[r] == 100 + (r + 1) % 4)

    def test_single_rank_wraps_to_self(self):
        cl = SimCluster(1)
        fl, fr = cl.comm.ring_exchange([np.array([1.0 + 0j])],
                                       [np.array([2.0 + 0j])])
        assert fl[0][0] == 2.0  # own right send wraps to own left ghost
        assert fr[0][0] == 1.0
        assert cl.comm.bytes_moved == 0

    def test_ghost_bytes_counted(self):
        cl = SimCluster(2)
        a = [np.ones(4, dtype=np.complex128)] * 2
        cl.comm.ring_exchange(a, a)
        assert cl.comm.bytes_moved == 2 * 2 * 64

    def test_rejects_wrong_count(self, cluster):
        with pytest.raises(ValueError):
            cluster.comm.ring_exchange([np.zeros(1)] * 3, [np.zeros(1)] * 4)


class TestAllgatherBcast:
    def test_allgather_everyone_gets_everything(self, cluster):
        send = [np.full(2, r, dtype=np.complex128) for r in range(4)]
        out = cluster.comm.allgather(send)
        for dst in range(4):
            for src in range(4):
                assert np.all(out[dst][src] == src)

    def test_bcast_values(self, cluster):
        buf = np.arange(5, dtype=np.complex128)
        out = cluster.comm.bcast(buf, root=2)
        assert len(out) == 4
        for o in out:
            assert np.array_equal(o, buf)

    def test_bcast_rejects_bad_root(self, cluster):
        with pytest.raises(ValueError):
            cluster.comm.bcast(np.zeros(1), root=7)

    def test_barrier_synchronizes(self, cluster):
        cluster.charge_seconds(1, "w", 3.0)
        cluster.comm.barrier()
        assert all(c == pytest.approx(3.0) for c in cluster.clocks)

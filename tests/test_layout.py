"""Tests for AoS/SoA layout handling."""

import numpy as np
import pytest

from repro.fft.layout import SoAView, from_aos, packet_lengths, to_aos
from repro.cluster.network import STAMPEDE_EFFECTIVE
from tests.conftest import random_complex


class TestConversion:
    def test_roundtrip(self, rng):
        x = random_complex(rng, 100)
        assert np.array_equal(to_aos(from_aos(x)), x)

    def test_planes(self, rng):
        x = random_complex(rng, 16)
        v = from_aos(x)
        assert np.array_equal(v.real, x.real)
        assert np.array_equal(v.imag, x.imag)
        assert v.real.flags["C_CONTIGUOUS"]

    def test_nbytes_equal_to_complex(self, rng):
        x = random_complex(rng, 64)
        assert from_aos(x).nbytes == x.nbytes

    def test_view_validation(self):
        with pytest.raises(ValueError):
            SoAView(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            SoAView(np.zeros(3, dtype=np.float32), np.zeros(3, dtype=np.float32))


class TestPacketLengths:
    def test_aos_single_full_packet(self):
        assert packet_lengths(1000, "aos") == [16000]

    def test_soa_two_half_packets(self):
        assert packet_lengths(1000, "soa") == [8000, 8000]

    def test_same_total_volume(self):
        assert sum(packet_lengths(77, "aos")) == sum(packet_lengths(77, "soa"))

    def test_aos_sustains_more_bandwidth(self):
        """§5.2.4: 'longer packet length is advantageous in sustaining the
        mpi bandwidth' — same bytes, fewer/longer packets, less time."""
        n = 4096  # elements; packets land on the bandwidth ramp
        t_aos = sum(STAMPEDE_EFFECTIVE.message_time(p)
                    for p in packet_lengths(n, "aos"))
        t_soa = sum(STAMPEDE_EFFECTIVE.message_time(p)
                    for p in packet_lengths(n, "soa"))
        assert t_aos < t_soa

    def test_validation(self):
        with pytest.raises(ValueError):
            packet_lengths(-1, "aos")
        with pytest.raises(ValueError):
            packet_lengths(10, "interleaved")

"""Tests for the k-step decomposition (paper §5.2.3 trade-off)."""

import numpy as np
import pytest

from repro.fft.multistep import multistep_fft, multistep_sweeps
from repro.fft.sixstep import sixstep_fft
from tests.conftest import random_complex


class TestCorrectness:
    @pytest.mark.parametrize("n,factors", [
        (64, (8, 8)), (512, (8, 8, 8)), (4096, (16, 16, 16)),
        (1024, (4, 4, 8, 8)), (60, (3, 4, 5)), (256, (256,)),
        (64, (2, 32)),
    ])
    def test_matches_numpy(self, rng, n, factors):
        x = random_complex(rng, n)
        res = multistep_fft(x, factors)
        assert np.allclose(res.output, np.fft.fft(x))

    def test_inverse(self, rng):
        x = random_complex(rng, 512)
        y = multistep_fft(x, (8, 8, 8))
        back = multistep_fft(y.output, (8, 8, 8), sign=+1)
        assert np.allclose(back.output, x)

    def test_two_factor_matches_sixstep(self, rng):
        x = random_complex(rng, 256)
        a = multistep_fft(x, (16, 16)).output
        b = sixstep_fft(x, 16, 16, variant="optimized").output
        assert np.allclose(a, b, rtol=1e-13, atol=1e-12)

    def test_fused_diagonal(self, rng):
        x = random_complex(rng, 512)
        d = random_complex(rng, 512)
        res = multistep_fft(x, (8, 8, 8), diagonal=d)
        assert np.allclose(res.output, np.fft.fft(x) * d)


class TestSweepAccounting:
    def test_sweep_formula(self):
        assert multistep_sweeps(1) == 2.0
        assert multistep_sweeps(2) == 4.0
        assert multistep_sweeps(3) == 6.0

    def test_3d_costs_2_extra_sweeps(self, rng):
        """§5.2.3: '3D decomposition requires 2 extra memory sweeps.'"""
        x = random_complex(rng, 4096)
        two = multistep_fft(x, (64, 64)).ledger.sweep_count(4096)
        three = multistep_fft(x, (16, 16, 16)).ledger.sweep_count(4096)
        assert three - two == pytest.approx(2.0, abs=0.15)

    def test_deeper_decomposition_shrinks_largest_subfft(self):
        # the benefit side of the trade-off: (16,16,16) has max sub-FFT 16
        # vs (64,64)'s 64 — smaller working set per transform
        assert max((16, 16, 16)) < max((64, 64))

    def test_measured_sweeps_match_formula(self, rng):
        x = random_complex(rng, 1024)
        for factors in ((32, 32), (4, 16, 16), (4, 4, 8, 8)):
            got = multistep_fft(x, factors).ledger.sweep_count(1024)
            assert got == pytest.approx(multistep_sweeps(len(factors)),
                                        abs=0.25)


class TestValidation:
    def test_rejects_bad_factors(self, rng):
        with pytest.raises(ValueError):
            multistep_fft(random_complex(rng, 16), (4, 5))
        with pytest.raises(ValueError):
            multistep_fft(random_complex(rng, 16), ())

    def test_rejects_bad_sign(self, rng):
        with pytest.raises(ValueError):
            multistep_fft(random_complex(rng, 16), (4, 4), sign=0)

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            multistep_fft(random_complex(rng, 4, 4), (4, 4))

    def test_rejects_wrong_diagonal(self, rng):
        with pytest.raises(ValueError):
            multistep_fft(random_complex(rng, 16), (4, 4), diagonal=np.ones(4))

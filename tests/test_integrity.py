"""Tests for checksums and fault injection.

The legacy :mod:`repro.cluster.integrity` API is now a deprecation shim
over the unified fault layer (:mod:`repro.cluster.faults`); the original
assertions below double as regression coverage for the shims.
"""

import numpy as np
import pytest

from repro.cluster.faults import FaultPlan, RetryPolicy
from repro.cluster.integrity import (
    CorruptionDetected,
    FaultInjector,
    checksum,
    checksummed_cluster,
)
from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from tests.conftest import random_complex


class TestChecksum:
    def test_deterministic(self, rng):
        a = random_complex(rng, 32)
        assert checksum(a) == checksum(a.copy())

    def test_sensitive_to_any_change(self, rng):
        a = random_complex(rng, 32)
        b = a.copy()
        b[17] += 1e-12
        assert checksum(a) != checksum(b)

    def test_order_sensitive(self, rng):
        a = random_complex(rng, 8)
        assert checksum(a) != checksum(a[::-1])


class TestCleanRuns:
    def test_checksummed_run_is_transparent(self, rng):
        params = SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        x = random_complex(rng, params.n)
        cl = checksummed_cluster(SimCluster(4))
        soi = DistributedSoiFFT(cl, params)
        y = soi.assemble(soi(soi.scatter(x)))
        ref = np.fft.fft(x)
        assert np.linalg.norm(y - ref) / np.linalg.norm(ref) < 1e-4

    def test_injector_counts_messages(self, rng):
        inj = FaultInjector(corrupt_nth=None)
        cl = checksummed_cluster(SimCluster(3), inj)
        send = [[random_complex(rng, 2) for _ in range(3)] for _ in range(3)]
        cl.comm.alltoall(send)
        assert inj.seen == 6  # 3*2 non-self payloads
        assert inj.injected == 0


class TestFaultDetection:
    def test_corruption_is_detected(self, rng):
        inj = FaultInjector(corrupt_nth=3)
        cl = checksummed_cluster(SimCluster(3), inj)
        send = [[random_complex(rng, 4) for _ in range(3)] for _ in range(3)]
        with pytest.raises(CorruptionDetected, match="failed its checksum"):
            cl.comm.alltoall(send)
        assert inj.injected == 1

    def test_corruption_in_soi_run_detected(self, rng):
        params = SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        inj = FaultInjector(corrupt_nth=5)
        cl = checksummed_cluster(SimCluster(4), inj)
        soi = DistributedSoiFFT(cl, params)
        with pytest.raises(CorruptionDetected):
            soi(soi.scatter(random_complex(rng, params.n)))

    def test_zero_size_payloads_survive(self):
        inj = FaultInjector(corrupt_nth=1)
        cl = checksummed_cluster(SimCluster(2), inj)
        send = [[np.zeros(0, dtype=np.complex128)] * 2 for _ in range(2)]
        cl.comm.alltoall(send)  # nothing to corrupt, nothing to detect


class TestDeprecationWarnings:
    """The shims announce themselves: a real DeprecationWarning pointing
    callers at the unified fault layer, aimed at the caller's frame."""

    def test_fault_injector_warns(self):
        with pytest.warns(DeprecationWarning,
                          match="FaultInjector is deprecated"):
            FaultInjector()

    def test_checksummed_cluster_warns(self):
        with pytest.warns(DeprecationWarning,
                          match="checksummed_cluster is deprecated"):
            checksummed_cluster(SimCluster(2))

    def test_warning_names_the_replacement(self):
        with pytest.warns(DeprecationWarning,
                          match="chaos_cluster") as rec:
            FaultInjector(corrupt_nth=2)
        # stacklevel=2: the warning must point at this test file, not at
        # the shim module itself
        assert rec[0].filename == __file__


class TestShimsOverFaultPlan:
    """The deprecated API is a thin wrapper over the unified layer."""

    def test_injector_builds_a_plan(self):
        inj = FaultInjector(corrupt_nth=7)
        assert isinstance(inj.plan, FaultPlan)
        assert inj.plan.corrupt_messages == frozenset({7})
        assert FaultInjector().plan.is_clean

    def test_checksummed_cluster_installs_detect_only_policy(self):
        cl = checksummed_cluster(SimCluster(2))
        assert cl.comm.fault_plan is not None
        assert cl.comm.fault_plan.is_clean
        assert cl.comm.retry_policy.max_retries == 0

    def test_same_fault_heals_under_a_retrying_policy(self, rng):
        """What the old layer could only detect, the new layer rides out."""
        send = [[random_complex(rng, 4) for _ in range(3)] for _ in range(3)]

        cl = checksummed_cluster(SimCluster(3), FaultInjector(corrupt_nth=3))
        with pytest.raises(CorruptionDetected):
            cl.comm.alltoall(send)

        cl = SimCluster(3)
        cl.comm.install_faults(FaultPlan(corrupt_messages=(3,)),
                               RetryPolicy(max_retries=2))
        recv = cl.comm.alltoall(send)
        assert np.array_equal(recv[2][0], send[0][2])
        assert cl.comm.retry_count == 1

    def test_bcast_now_verified_too(self, rng):
        """Regression for the old gap: bcast/barrier bypassed the
        checksum layer; now every collective runs the verified path."""
        cl = checksummed_cluster(SimCluster(3), FaultInjector(corrupt_nth=1))
        with pytest.raises(CorruptionDetected, match="bcast"):
            cl.comm.bcast(random_complex(rng, 4), root=0)

    def test_clear_faults_disarms(self, rng):
        inj = FaultInjector(corrupt_nth=1)
        cl = checksummed_cluster(SimCluster(2), inj)
        cl.comm.clear_faults()
        send = [[random_complex(rng, 2) for _ in range(2)] for _ in range(2)]
        cl.comm.alltoall(send)  # no verification, no injection
        assert inj.seen == 0


class TestBatchApi:
    def test_batch_matches_per_vector(self, rng):
        from repro.core.soi_single import SoiFFT

        params = SoiParams(n=4 * 448, n_procs=1, segments_per_process=4,
                           n_mu=8, d_mu=7, b=32)
        f = SoiFFT(params)
        xs = random_complex(rng, 3, params.n)
        ys = f.batch(xs)
        for i in range(3):
            assert np.array_equal(ys[i], f(xs[i]))

    def test_batch_validates_shape(self, rng):
        from repro.core.soi_single import SoiFFT

        params = SoiParams(n=4 * 448, n_procs=1, segments_per_process=4,
                           n_mu=8, d_mu=7, b=32)
        f = SoiFFT(params)
        with pytest.raises(ValueError):
            f.batch(random_complex(rng, 3, 10))
        with pytest.raises(ValueError):
            f.batch(random_complex(rng, params.n))

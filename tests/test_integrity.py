"""Tests for checksums and detect-only wire verification.

The deprecated :mod:`repro.cluster.integrity` shims (``FaultInjector``,
``checksummed_cluster``) are gone; the unified fault layer covers the
same ground directly: a :class:`~repro.cluster.faults.FaultPlan` plus a
``RetryPolicy(max_retries=0)`` is the old detect-only mode.
"""

import numpy as np
import pytest

from repro.cluster.faults import (
    CorruptionDetected,
    FaultPlan,
    RetryPolicy,
    checksum,
)
from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from tests.conftest import random_complex


def detect_only_cluster(cl: SimCluster, plan: FaultPlan | None = None
                        ) -> SimCluster:
    """Arm the verified path in detect-only mode (no retries)."""
    cl.comm.install_faults(plan if plan is not None else FaultPlan(),
                           RetryPolicy(max_retries=0))
    return cl


class TestChecksum:
    def test_deterministic(self, rng):
        a = random_complex(rng, 32)
        assert checksum(a) == checksum(a.copy())

    def test_sensitive_to_any_change(self, rng):
        a = random_complex(rng, 32)
        b = a.copy()
        b[17] += 1e-12
        assert checksum(a) != checksum(b)

    def test_order_sensitive(self, rng):
        a = random_complex(rng, 8)
        assert checksum(a) != checksum(a[::-1])


class TestCleanRuns:
    def test_checksummed_run_is_transparent(self, rng):
        params = SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        x = random_complex(rng, params.n)
        cl = detect_only_cluster(SimCluster(4))
        soi = DistributedSoiFFT(cl, params)
        y = soi.assemble(soi(soi.scatter(x)))
        ref = np.fft.fft(x)
        assert np.linalg.norm(y - ref) / np.linalg.norm(ref) < 1e-4

    def test_plan_counts_messages(self, rng):
        plan = FaultPlan()
        cl = detect_only_cluster(SimCluster(3), plan)
        send = [[random_complex(rng, 2) for _ in range(3)] for _ in range(3)]
        cl.comm.alltoall(send)
        assert plan.messages_seen == 6  # 3*2 non-self payloads
        assert plan.corruptions_injected == 0


class TestFaultDetection:
    def test_corruption_is_detected(self, rng):
        plan = FaultPlan(corrupt_messages=(3,))
        cl = detect_only_cluster(SimCluster(3), plan)
        send = [[random_complex(rng, 4) for _ in range(3)] for _ in range(3)]
        with pytest.raises(CorruptionDetected, match="failed its checksum"):
            cl.comm.alltoall(send)
        assert plan.corruptions_injected == 1

    def test_corruption_in_soi_run_detected(self, rng):
        params = SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        cl = detect_only_cluster(SimCluster(4),
                                 FaultPlan(corrupt_messages=(5,)))
        soi = DistributedSoiFFT(cl, params)
        with pytest.raises(CorruptionDetected):
            soi(soi.scatter(random_complex(rng, params.n)))

    def test_zero_size_payloads_survive(self):
        cl = detect_only_cluster(SimCluster(2),
                                 FaultPlan(corrupt_messages=(1,)))
        send = [[np.zeros(0, dtype=np.complex128)] * 2 for _ in range(2)]
        cl.comm.alltoall(send)  # nothing to corrupt, nothing to detect

    def test_same_fault_heals_under_a_retrying_policy(self, rng):
        """What detect-only mode can only report, retries ride out."""
        send = [[random_complex(rng, 4) for _ in range(3)] for _ in range(3)]

        cl = detect_only_cluster(SimCluster(3),
                                 FaultPlan(corrupt_messages=(3,)))
        with pytest.raises(CorruptionDetected):
            cl.comm.alltoall(send)

        cl = SimCluster(3)
        cl.comm.install_faults(FaultPlan(corrupt_messages=(3,)),
                               RetryPolicy(max_retries=2))
        recv = cl.comm.alltoall(send)
        assert np.array_equal(recv[2][0], send[0][2])
        assert cl.comm.retry_count == 1

    def test_bcast_verified_too(self, rng):
        """Every collective runs the verified path, not just alltoall."""
        cl = detect_only_cluster(SimCluster(3),
                                 FaultPlan(corrupt_messages=(1,)))
        with pytest.raises(CorruptionDetected, match="bcast"):
            cl.comm.bcast(random_complex(rng, 4), root=0)

    def test_clear_faults_disarms(self, rng):
        plan = FaultPlan(corrupt_messages=(1,))
        cl = detect_only_cluster(SimCluster(2), plan)
        cl.comm.clear_faults()
        send = [[random_complex(rng, 2) for _ in range(2)] for _ in range(2)]
        cl.comm.alltoall(send)  # no verification, no injection
        assert plan.messages_seen == 0


class TestShimsAreGone:
    def test_integrity_module_removed(self):
        with pytest.raises(ImportError):
            import repro.cluster.integrity  # noqa: F401

    def test_package_no_longer_exports_shims(self):
        import repro.cluster as pkg

        assert not hasattr(pkg, "FaultInjector")
        assert not hasattr(pkg, "checksummed_cluster")
        assert "FaultInjector" not in pkg.__all__


class TestBatchApi:
    def test_batch_matches_per_vector(self, rng):
        from repro.core.soi_single import SoiFFT

        params = SoiParams(n=4 * 448, n_procs=1, segments_per_process=4,
                           n_mu=8, d_mu=7, b=32)
        f = SoiFFT(params)
        xs = random_complex(rng, 3, params.n)
        ys = f.batch(xs)
        for i in range(3):
            assert np.array_equal(ys[i], f(xs[i]))

    def test_batch_validates_shape(self, rng):
        from repro.core.soi_single import SoiFFT

        params = SoiParams(n=4 * 448, n_procs=1, segments_per_process=4,
                           n_mu=8, d_mu=7, b=32)
        f = SoiFFT(params)
        with pytest.raises(ValueError):
            f.batch(random_complex(rng, 3, 10))
        with pytest.raises(ValueError):
            f.batch(random_complex(rng, params.n))

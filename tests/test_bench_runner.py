"""Tests asserting the benchmark drivers reproduce the paper's claims."""

import pytest

from repro.bench.runner import (
    PAPER_NODES,
    accuracy_rows,
    fig3_rows,
    fig8_series,
    fig9_rows,
    fig10_rows,
    fig11_rows,
    fig12_rows,
    headline_numbers,
    segments_for_nodes,
    table2_rows,
)


class TestTable2:
    def test_two_machines(self):
        rows = table2_rows()
        assert len(rows) == 2
        assert rows[0][0].startswith("Xeon E5")
        assert rows[1][0].startswith("Xeon Phi")

    def test_bops_column(self):
        rows = table2_rows()
        assert rows[0][-1] == pytest.approx(0.23, abs=0.005)
        assert rows[1][-1] == pytest.approx(0.14, abs=0.005)


class TestFig3:
    def test_reference_is_one(self):
        rows = fig3_rows()
        assert rows[0][0].startswith("Cooley-Tukey / Xeon")
        assert rows[0][-1] == pytest.approx(1.0)

    def test_soi_phi_is_fastest(self):
        rows = fig3_rows()
        totals = {r[0]: r[-1] for r in rows}
        assert min(totals, key=totals.get) == "SOI / Xeon Phi"
        assert totals["SOI / Xeon Phi"] == pytest.approx(0.5, abs=0.06)

    def test_ct_gains_little_from_phi(self):
        totals = {r[0]: r[-1] for r in fig3_rows()}
        ct_gain = totals["Cooley-Tukey / Xeon"] / totals["Cooley-Tukey / Xeon Phi"]
        soi_gain = totals["SOI / Xeon"] / totals["SOI / Xeon Phi"]
        assert ct_gain < 1.2
        assert soi_gain > 1.5


class TestFig8:
    @pytest.fixture(scope="class")
    def series(self):
        return fig8_series()

    def test_headline_6_7_tflops_at_512(self, series):
        tf = series["SOI Xeon Phi"][series["nodes"].index(512)]
        assert tf == pytest.approx(6.7, rel=0.15)

    def test_teraflop_mark_around_64_nodes(self, series):
        tf64 = series["SOI Xeon Phi"][series["nodes"].index(64)]
        assert tf64 == pytest.approx(1.0, rel=0.25)

    def test_soi_phi_always_fastest_config(self, series):
        for i in range(len(series["nodes"])):
            others = [series[k][i] for k in
                      ("CT Xeon", "CT Xeon Phi (projected)", "SOI Xeon")]
            assert series["SOI Xeon Phi"][i] > max(others)

    def test_speedup_bands(self, series):
        # paper: SOI speedup 1.5-2.0x, CT ~1.1x
        assert all(1.25 < s < 2.2 for s in series["SOI speedup"])
        assert all(1.0 < s < 1.25 for s in series["CT speedup"])
        assert all(s > c for s, c in zip(series["SOI speedup"],
                                         series["CT speedup"]))

    def test_weak_scaling_grows(self, series):
        tf = series["SOI Xeon Phi"]
        assert all(a < b for a, b in zip(tf, tf[1:]))

    def test_headline_numbers(self):
        h = headline_numbers()
        assert h["tflops_512_phi"] == pytest.approx(6.7, rel=0.15)
        assert h["per_node_vs_k_computer"] == pytest.approx(5.0, rel=0.25)
        assert h["ct_phi_over_xeon_512"] < 1.2 < h["soi_phi_over_xeon_512"] + 0.2


class TestFig9:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig9_rows()

    def test_both_machines_all_nodes(self, rows):
        assert len(rows) == 2 * len(PAPER_NODES)

    def test_mpi_time_slowly_increases(self, rows):
        phi = [r for r in rows if r[0] == "Xeon Phi"]
        exposed = [r[4] for r in phi]
        assert exposed[-1] > exposed[0]

    def test_phi_total_lower_than_xeon(self, rows):
        for nodes in PAPER_NODES:
            xeon = next(r for r in rows if r[0] == "Xeon" and r[1] == nodes)
            phi = next(r for r in rows if r[0] == "Xeon Phi" and r[1] == nodes)
            assert phi[-1] < xeon[-1]

    def test_xeon_has_etc_from_unfused_demod(self, rows):
        xeon = next(r for r in rows if r[0] == "Xeon")
        phi = next(r for r in rows if r[0] == "Xeon Phi")
        assert xeon[5] > phi[5]

    def test_convolution_time_flat_in_nodes(self, rows):
        phi = [r for r in rows if r[0] == "Xeon Phi"]
        convs = [r[3] for r in phi]
        assert max(convs) / min(convs) < 1.05


class TestFig10:
    def test_monotone_bars(self):
        rows = fig10_rows()
        vals = [v for _, v in rows]
        assert vals == sorted(vals)

    def test_final_120(self):
        assert fig10_rows()[-1][1] == pytest.approx(120.0, rel=0.1)


class TestFig11:
    def test_buffering_flat_baseline_grows(self):
        rows = fig11_rows()
        baseline = [r[1] for r in rows]
        buffered = [r[3] for r in rows]
        assert baseline[-1] > 2 * baseline[0]
        assert max(buffered) / min(buffered) < 1.05

    def test_ordering_at_scale(self):
        last = fig11_rows()[-1]
        assert last[3] < last[2] < last[1]


class TestFig12:
    def test_offload_slowdown(self):
        d = fig12_rows()
        assert d["offload_slowdown"] == pytest.approx(1.25, abs=0.08)
        assert d["offload_total"] > d["symmetric_total"]

    def test_hybrid_below_10_percent(self):
        assert 1.0 < fig12_rows()["hybrid_speedup"] < 1.10

    def test_diagram_lanes(self):
        d = fig12_rows()
        assert len(d["symmetric"]) == 4
        assert len(d["offload"]) == 4


class TestAccuracyAndSegments:
    def test_accuracy_rows_within_bounds(self):
        for row in accuracy_rows():
            n, s, mu, b, err, bound = row
            assert err < 10 * bound + 1e-12

    def test_segment_rule(self):
        assert segments_for_nodes(4) == 8
        assert segments_for_nodes(128) == 8
        assert segments_for_nodes(512) == 2

"""Tests for SoiParams (paper Table 1 notation and validity rules)."""

import pytest

from repro.core.params import DEFAULT_B, SoiParams


def make(n=8 * 448, p=4, spp=2, n_mu=8, d_mu=7, b=48):
    return SoiParams(n=n, n_procs=p, segments_per_process=spp,
                     n_mu=n_mu, d_mu=d_mu, b=b)


class TestDerivedQuantities:
    def test_table1_notation(self):
        p = make()
        assert p.n_segments == 8  # S = P * spp
        assert p.m == 448  # M = N / S
        assert p.mu == pytest.approx(8 / 7)
        assert p.m_oversampled == 512  # M' = mu M
        assert p.n_oversampled == 4096  # N' = mu N

    def test_default_b_is_72(self):
        assert DEFAULT_B == 72
        assert SoiParams(n=64 * 448, n_procs=1, segments_per_process=8).b == 72

    def test_rows_per_process(self):
        p = make()
        assert p.rows_per_process * p.n_procs == p.m_oversampled
        assert p.rows_per_process % p.n_mu == 0

    def test_elements_per_process(self):
        assert make().elements_per_process == 8 * 448 // 4

    def test_mu_five_quarters(self):
        p = make(n=2 ** 12, n_mu=5, d_mu=4)
        assert p.m_oversampled == 640
        assert p.mu == 1.25


class TestGhosts:
    def test_ghost_blocks(self):
        p = make(b=48)
        assert p.ghost_blocks == (23, 24)

    def test_ghost_bytes_positive(self):
        assert make().ghost_bytes > 0

    def test_ghost_is_latency_scale(self):
        # §5.1: ghost messages are small (tens/hundreds of KB), all-to-all
        # messages are the big ones
        p = SoiParams(n=64 * 448, n_procs=8, segments_per_process=1, b=72)
        assert p.ghost_bytes < 16 * p.elements_per_process


class TestOperationCounts:
    def test_conv_flops_formula(self):
        p = make()
        # §4/§5.3: 8 * B * mu * N
        assert p.conv_flops == pytest.approx(8 * 48 * (8 / 7) * p.n)

    def test_conv_is_several_times_local_fft_at_paper_scale(self):
        # §5.3: "about 5x floating point operations compared to the local
        # fft" with N = 2^27 * 32, B = 72, mu = 8/7
        p = SoiParams(n=(7 * 2 ** 24) * 32, n_procs=32,
                      segments_per_process=1, b=72)
        ratio = p.conv_flops / p.local_fft_flops
        assert 4.0 < ratio < 6.0

    def test_lane_fft_flops_zero_for_single_segment(self):
        p = SoiParams(n=448, n_procs=1, segments_per_process=1, b=8)
        assert p.lane_fft_flops == 0.0

    def test_alltoall_bytes_per_pair(self):
        p = make()
        total_wire = p.alltoall_bytes_per_pair * p.n_procs * p.n_procs
        assert total_wire == 16 * p.n_oversampled


class TestValidation:
    def test_rejects_non_dividing_segments(self):
        with pytest.raises(ValueError, match="divide"):
            make(n=1000, p=3, spp=1)

    def test_rejects_m_not_divisible_by_d_mu(self):
        # the paper's power-of-two-only N is incompatible with mu = 8/7
        with pytest.raises(ValueError, match="d_mu"):
            make(n=2 ** 12)

    def test_rejects_mu_not_lowest_terms(self):
        with pytest.raises(ValueError, match="lowest terms"):
            make(n_mu=10, d_mu=8)

    def test_rejects_mu_leq_one(self):
        with pytest.raises(ValueError):
            make(n_mu=7, d_mu=7)
        with pytest.raises(ValueError):
            make(n_mu=6, d_mu=7)

    def test_rejects_odd_b(self):
        with pytest.raises(ValueError, match="even"):
            make(b=47)

    def test_rejects_tiny_b(self):
        with pytest.raises(ValueError):
            make(b=2)

    def test_rejects_window_larger_than_signal(self):
        with pytest.raises(ValueError, match="support"):
            SoiParams(n=448, n_procs=1, segments_per_process=8, b=72)

    def test_rejects_rows_not_multiple_of_chunks(self):
        # S = 16, M = 56, M' = 64, P = 16 -> 4 rows/process, but a chunk is
        # n_mu = 8 rows: processes would split chunks.
        with pytest.raises(ValueError, match="n_mu"):
            SoiParams(n=16 * 56, n_procs=16, segments_per_process=1,
                      n_mu=8, d_mu=7, b=4)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SoiParams(n=0)
        with pytest.raises(ValueError):
            SoiParams(n=448, n_procs=0)
        with pytest.raises(ValueError):
            SoiParams(n=448, segments_per_process=0)

    def test_describe(self):
        assert "mu=8/7" in make().describe()

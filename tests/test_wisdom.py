"""Tests for plan tuning and wisdom persistence."""

import json

import numpy as np
import pytest

from repro.fft.wisdom import Wisdom, candidate_radix_plans, tune
from tests.conftest import random_complex


class TestCandidates:
    def test_pow2_candidates(self):
        plans = candidate_radix_plans(64)
        assert [4, 4, 4] in plans
        assert [8, 8] in plans
        assert [2] * 6 in plans
        for p in plans:
            assert int(np.prod(p)) == 64

    def test_smooth_candidates(self):
        plans = candidate_radix_plans(360)
        for p in plans:
            assert int(np.prod(p)) == 360
        assert len(plans) >= 1

    def test_palindromic_factorization_not_duplicated(self):
        plans = candidate_radix_plans(9)  # factors [3, 3]
        assert plans == [[3, 3]]

    def test_rejects_non_smooth(self):
        with pytest.raises(ValueError):
            candidate_radix_plans(11)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            candidate_radix_plans(1)


class TestTune:
    def test_returns_valid_plan_and_timings(self):
        best, timings = tune(64, reps=1, batch=1)
        assert int(np.prod(best)) == 64
        assert len(timings) == len(candidate_radix_plans(64))
        assert all(t > 0 for t in timings.values())

    def test_best_is_minimum(self):
        best, timings = tune(128, reps=1, batch=1)
        key = ",".join(map(str, best))
        assert timings[key] == min(timings.values())


class TestWisdom:
    def test_learn_and_plan(self, rng):
        w = Wisdom()
        radices = w.learn(64, reps=1, batch=1)
        assert (64, -1) in w
        x = random_complex(rng, 64)
        assert np.allclose(w.plan(64)(x), np.fft.fft(x))

    def test_learn_is_cached(self):
        w = Wisdom()
        a = w.learn(64, reps=1, batch=1)
        b = w.learn(64)  # no tuning kwargs needed: cached
        assert a == b and len(w) == 1

    def test_json_roundtrip(self):
        w = Wisdom()
        w.learn(64, reps=1, batch=1)
        w.learn(60, reps=1, batch=1)
        restored = Wisdom.from_json(w.to_json())
        assert len(restored) == 2
        assert restored.learn(64) == w.learn(64)

    def test_corrupt_json_rejected(self):
        bad = json.dumps([{"n": 64, "sign": -1, "radices": [4, 4]}])
        with pytest.raises(ValueError, match="corrupt"):
            Wisdom.from_json(bad)

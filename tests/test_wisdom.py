"""Tests for plan tuning and wisdom persistence."""

import json

import numpy as np
import pytest

from repro.fft.wisdom import (WISDOM_VERSION, Wisdom,
                              candidate_radix_plans,
                              machine_fingerprint, tune)
from tests.conftest import random_complex


class TestCandidates:
    def test_pow2_candidates(self):
        plans = candidate_radix_plans(64)
        assert [4, 4, 4] in plans
        assert [8, 8] in plans
        assert [2] * 6 in plans
        for p in plans:
            assert int(np.prod(p)) == 64

    def test_smooth_candidates(self):
        plans = candidate_radix_plans(360)
        for p in plans:
            assert int(np.prod(p)) == 360
        assert len(plans) >= 1

    def test_palindromic_factorization_not_duplicated(self):
        plans = candidate_radix_plans(9)  # factors [3, 3]
        assert plans == [[3, 3]]

    def test_rejects_non_smooth(self):
        with pytest.raises(ValueError):
            candidate_radix_plans(11)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            candidate_radix_plans(1)


class TestTune:
    def test_returns_valid_plan_and_timings(self):
        best, timings = tune(64, reps=1, batch=1)
        assert int(np.prod(best)) == 64
        assert len(timings) == len(candidate_radix_plans(64))
        assert all(t > 0 for t in timings.values())

    def test_best_is_minimum(self):
        best, timings = tune(128, reps=1, batch=1)
        key = ",".join(map(str, best))
        assert timings[key] == min(timings.values())


class TestWisdom:
    def test_learn_and_plan(self, rng):
        w = Wisdom()
        radices = w.learn(64, reps=1, batch=1)
        assert (64, -1) in w
        x = random_complex(rng, 64)
        assert np.allclose(w.plan(64)(x), np.fft.fft(x))

    def test_learn_is_cached(self):
        w = Wisdom()
        a = w.learn(64, reps=1, batch=1)
        b = w.learn(64)  # no tuning kwargs needed: cached
        assert a == b and len(w) == 1

    def test_json_roundtrip(self):
        w = Wisdom()
        w.learn(64, reps=1, batch=1)
        w.learn(60, reps=1, batch=1)
        restored = Wisdom.from_json(w.to_json())
        assert len(restored) == 2
        assert restored.learn(64) == w.learn(64)

    def test_corrupt_json_rejected(self):
        bad = json.dumps([{"n": 64, "sign": -1, "radices": [4, 4]}])
        with pytest.raises(ValueError, match="corrupt"):
            Wisdom.from_json(bad)


class TestMachineFingerprint:
    def test_stable_and_short(self):
        a = machine_fingerprint()
        assert a == machine_fingerprint()
        assert len(a) == 12
        int(a, 16)  # hex


class TestKernelEntries:
    def test_record_and_lookup_exact_machine(self):
        w = Wisdom()
        w.record_kernel(64, -1, "complex128", "machineaaaa1", "stockham",
                        [8, 8], tuned_s=1e-4, default_s=2e-4)
        e = w.lookup_kernel(64, -1, "complex128", machine="machineaaaa1")
        assert e["radices"] == [8, 8] and e["strategy"] == "stockham"
        assert w.hits == 1 and w.misses == 0

    def test_foreign_machine_entry_is_fallback(self):
        w = Wisdom()
        w.record_kernel(64, -1, "complex128", "otherm000001", "stockham",
                        [4, 4, 4])
        e = w.lookup_kernel(64, -1, "complex128", machine="thismachine1")
        assert e is not None and e["machine"] == "otherm000001"

    def test_exact_machine_wins_over_foreign(self):
        w = Wisdom()
        w.record_kernel(64, -1, "complex128", "foreign00001", "stockham",
                        [2] * 6)
        w.record_kernel(64, -1, "complex128", "local0000001", "stockham",
                        [8, 8])
        e = w.lookup_kernel(64, -1, "complex128", machine="local0000001")
        assert e["radices"] == [8, 8]

    def test_miss_counts(self):
        w = Wisdom()
        assert w.lookup_kernel(2 ** 20, -1, "complex128") is None
        assert w.misses == 1 and w.hits == 0

    def test_bad_radices_rejected_at_record(self):
        w = Wisdom()
        with pytest.raises(ValueError, match="corrupt"):
            w.record_kernel(64, -1, "complex128", "m", "stockham", [4, 4])

    def test_bad_strategy_rejected(self):
        w = Wisdom()
        with pytest.raises(ValueError, match="strategy"):
            w.record_kernel(64, -1, "complex128", "m", "sixstep", [8, 8])

    def test_soi_record_and_lookup(self):
        w = Wisdom()
        w.record_soi(3584, "complex128", "m000000000001", segments=8,
                     n_mu=8, d_mu=7, b=72, conv_inner="einsum")
        e = w.lookup_soi(3584, "complex128")
        assert e["segments"] == 8 and e["conv_inner"] == "einsum"

    def test_lookup_publishes_wisdom_metrics(self):
        from repro.telemetry.metrics import MetricsRegistry, set_registry

        reg = MetricsRegistry()
        prev = set_registry(reg)
        try:
            w = Wisdom()
            w.record_kernel(64, -1, "complex128", "m", "stockham", [8, 8])
            w.lookup_kernel(64, -1, "complex128")
            w.lookup_kernel(128, -1, "complex128")
        finally:
            set_registry(prev)
        assert reg.get("repro_fft_wisdom_hits_total").value == 1
        assert reg.get("repro_fft_wisdom_misses_total").value == 1


class TestRoundTrip:
    def test_save_load_identical_plan_choice(self, tmp_path):
        w = Wisdom()
        w.record_kernel(256, -1, "complex128", "m000000000001", "stockham",
                        [2] * 8, tuned_s=1e-4, default_s=2e-4)
        w.record_soi(3584, "complex128", "m000000000001", segments=16,
                     n_mu=5, d_mu=4, b=48, conv_inner="matmul")
        path = tmp_path / "wisdom.json"
        w.save(path)
        restored = Wisdom.load(path, strict=True)
        assert len(restored) == len(w)
        assert restored.lookup_kernel(256, -1, "complex128") \
            == w.lookup_kernel(256, -1, "complex128")
        assert restored.lookup_soi(3584, "complex128") \
            == w.lookup_soi(3584, "complex128")

    def test_v2_envelope_written(self, tmp_path):
        w = Wisdom()
        w.record_kernel(64, -1, "complex128", "m", "stockham", [8, 8])
        path = tmp_path / "w.json"
        w.save(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == WISDOM_VERSION
        assert payload["entries"][0]["kind"] == "kernel"

    def test_v1_bare_list_still_readable(self):
        v1 = json.dumps([{"n": 64, "sign": -1, "radices": [8, 8]}])
        w = Wisdom.from_json(v1)
        assert (64, -1) in w

    def test_save_merges_with_existing_store(self, tmp_path):
        path = tmp_path / "w.json"
        a = Wisdom()
        a.record_kernel(64, -1, "complex128", "m", "stockham", [8, 8])
        a.save(path)
        b = Wisdom()
        b.record_kernel(128, -1, "complex128", "m", "stockham", [8, 4, 4])
        b.save(path)
        merged = Wisdom.load(path, strict=True)
        assert merged.lookup_kernel(64, -1, "complex128") is not None
        assert merged.lookup_kernel(128, -1, "complex128") is not None

    def test_own_entries_win_merge_conflicts(self, tmp_path):
        path = tmp_path / "w.json"
        a = Wisdom()
        a.record_kernel(64, -1, "complex128", "m", "stockham", [4, 4, 4])
        a.save(path)
        b = Wisdom()
        b.record_kernel(64, -1, "complex128", "m", "stockham", [8, 8])
        b.save(path)
        assert Wisdom.load(path).lookup_kernel(
            64, -1, "complex128")["radices"] == [8, 8]


class TestCorruptionFallback:
    def test_missing_file_is_silent_empty(self, tmp_path):
        w = Wisdom.load(tmp_path / "absent.json")
        assert len(w) == 0

    def test_truncated_file_warns_and_falls_back(self, tmp_path):
        path = tmp_path / "w.json"
        good = Wisdom()
        good.record_kernel(64, -1, "complex128", "m", "stockham", [8, 8])
        path.write_text(good.to_json()[:25])  # torn mid-write
        with pytest.warns(UserWarning, match="falling back to default"):
            w = Wisdom.load(path)
        assert len(w) == 0

    def test_garbled_file_warns_and_falls_back(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_bytes(b"\x00\xff not json at all \x80")
        with pytest.warns(UserWarning):
            assert len(Wisdom.load(path)) == 0

    def test_version_bumped_file_warns_and_falls_back(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text(json.dumps({"version": WISDOM_VERSION + 1,
                                    "entries": []}))
        with pytest.warns(UserWarning, match="version"):
            assert len(Wisdom.load(path)) == 0

    def test_corrupt_entry_warns_and_falls_back(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text(json.dumps({"version": WISDOM_VERSION, "entries": [
            {"kind": "kernel", "n": 64, "sign": -1, "dtype": "complex128",
             "machine": "m", "strategy": "stockham", "radices": [4, 4]}]}))
        with pytest.warns(UserWarning):
            assert len(Wisdom.load(path)) == 0

    def test_strict_load_raises(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text("{broken")
        with pytest.raises(ValueError):
            Wisdom.load(path, strict=True)

    def test_save_overwrites_corrupt_on_disk_store(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text("{utterly broken")
        w = Wisdom()
        w.record_kernel(64, -1, "complex128", "m", "stockham", [8, 8])
        w.save(path)
        assert Wisdom.load(path, strict=True).lookup_kernel(
            64, -1, "complex128") is not None

    def test_from_json_rejects_non_container(self):
        with pytest.raises(ValueError, match="list or object"):
            Wisdom.from_json('"just a string"')


def _concurrent_writer(path_str: str, idx: int) -> None:
    """Child-process body for the concurrent-writer tests (module level
    so it pickles under the spawn start method)."""
    from repro.fft.wisdom import Wisdom

    n = 2 ** (6 + idx)
    w = Wisdom()
    w.record_kernel(n, -1, "complex128", f"machine{idx:06d}", "stockham",
                    [2] * (6 + idx))
    w.save(path_str)


class TestConcurrentWriters:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_parallel_writers_do_not_corrupt_store(self, tmp_path, method):
        import multiprocessing as mp

        ctx = mp.get_context(method)
        path = tmp_path / "wisdom.json"
        n_writers = 4
        procs = [ctx.Process(target=_concurrent_writer,
                             args=(str(path), i)) for i in range(n_writers)]
        for pr in procs:
            pr.start()
        for pr in procs:
            pr.join(timeout=60)
            assert pr.exitcode == 0
        merged = Wisdom.load(path, strict=True)  # parseable == untorn
        for i in range(n_writers):
            assert merged.lookup_kernel(2 ** (6 + i), -1,
                                        "complex128") is not None
        assert not path.with_suffix(".json.lock").exists()

    def test_wisdom_pickles_without_lock(self):
        import pickle

        w = Wisdom()
        w.record_kernel(64, -1, "complex128", "m", "stockham", [8, 8])
        w2 = pickle.loads(pickle.dumps(w))
        assert w2.lookup_kernel(64, -1, "complex128") is not None
        w2.record_kernel(128, -1, "complex128", "m", "stockham",
                         [8, 4, 4])  # lock was recreated: mutation works

    def test_stale_lock_is_broken(self, tmp_path):
        import os
        import time as _time

        from repro.fft.wisdom import _acquire_lockfile, _release_lockfile

        lock = tmp_path / "w.json.lock"
        lock.write_text("12345")
        old = _time.time() - 3600
        os.utime(lock, (old, old))
        fd = _acquire_lockfile(lock, timeout=1.0, stale_after=30.0)
        assert fd is not None  # stale lock from a dead writer was broken
        _release_lockfile(lock, fd)
        assert not lock.exists()

    def test_live_lock_times_out_to_none(self, tmp_path):
        from repro.fft.wisdom import _acquire_lockfile, _release_lockfile

        lock = tmp_path / "w.json.lock"
        fd1 = _acquire_lockfile(lock)
        assert fd1 is not None
        fd2 = _acquire_lockfile(lock, timeout=0.05, stale_after=3600.0)
        assert fd2 is None  # held and fresh: second writer backs off
        _release_lockfile(lock, fd1)

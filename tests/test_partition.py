"""Partition tolerance of the distributed SOI transform.

A :class:`~repro.cluster.faults.PartitionEvent` splits the fabric into
islands mid-collective; the verified path raises
:class:`~repro.cluster.faults.PartitionDetected` with the component
census, and :class:`~repro.core.soi_dist.DistributedSoiFFT` adjudicates
it with quorum semantics: the component holding a strict majority of
the live ranks shrinks onto itself and completes; every other island
aborts deterministically with the same census.
"""

import numpy as np
import pytest

from repro.cluster.faults import (
    FaultPlan,
    PartitionDetected,
    PartitionEvent,
    RetryPolicy,
)
from repro.cluster.simcluster import SimCluster
from repro.cluster.topology import FatTree
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from tests.conftest import random_complex

P = 8
MAJORITY = (0, 1, 2, 3, 4)
MINORITY = (5, 6, 7)


def p8_params() -> SoiParams:
    return SoiParams(n=2 ** 13, n_procs=P, n_mu=2, d_mu=1, b=4)


def make_soi(plan=None, policy=None):
    cl = SimCluster(P, topology=FatTree(radix=4))
    if plan is not None:
        cl.comm.install_faults(plan, policy or RetryPolicy(max_retries=1))
    return cl, DistributedSoiFFT(cl, p8_params())


def run(soi, x):
    return soi.assemble(soi(soi.scatter(x)))


def split_plan(heal_at=None, components=(MAJORITY, MINORITY)):
    # at_transfer=2: the ghost exchange (transfer 1) completes, the
    # all-to-all hits the cut
    return FaultPlan(partition=PartitionEvent(
        at_transfer=2, components=components, heal_at=heal_at))


class TestMajorityCompletes:
    def test_quorum_side_matches_the_fault_free_spectrum(self, rng):
        """Shrink-and-redistribute recomputes the lost rows exactly, so
        the majority's spectrum is bitwise the fault-free one."""
        x = random_complex(rng, p8_params().n)
        cl, soi = make_soi(split_plan())
        y = run(soi, x)
        _, soi_clean = make_soi()
        assert np.array_equal(y, run(soi_clean, x))

    def test_bit_identical_to_equivalent_domain_failure(self, rng):
        """The partition's majority path is exactly the shrink path: the
        same ranks dying as rank failures at the same transfer yields a
        bitwise-identical spectrum."""
        x = random_complex(rng, p8_params().n)
        _, soi_a = make_soi(split_plan())
        y_split = run(soi_a, x)
        _, soi_b = make_soi(
            FaultPlan(rank_failures={r: 2 for r in MINORITY}))
        y_dead = run(soi_b, x)
        assert np.array_equal(y_split, y_dead)

    def test_partition_report_carries_the_verdict(self, rng):
        x = random_complex(rng, p8_params().n)
        cl, soi = make_soi(split_plan())
        run(soi, x)
        rep = soi.last_partition
        assert rep is not None and rep.quorum
        assert rep.majority == MAJORITY
        assert rep.aborted == MINORITY
        assert isinstance(rep.minority_error, PartitionDetected)
        assert rep.minority_error.component == MINORITY
        assert rep.minority_error.components == rep.components

    def test_minority_ranks_are_cut_and_traced(self, rng):
        x = random_complex(rng, p8_params().n)
        cl, soi = make_soi(split_plan())
        run(soi, x)
        assert cl.live_ranks == list(MAJORITY)
        cut = [e for e in cl.trace.events if e.label == "partition cut"]
        assert sorted(e.rank for e in cut) == list(MINORITY)
        assert all(e.category == "partition" for e in cut)

    def test_recovery_reports_the_affected_domains(self, rng):
        x = random_complex(rng, p8_params().n)
        cl, soi = make_soi(split_plan())
        run(soi, x)
        rec = soi.last_recovery
        assert rec is not None
        assert rec.domain_kind == "fat-tree leaf"
        # minority {5,6,7} spans leaves {4,5} and {6,7}: domains 2 and 3
        assert sorted(rec.mttr_by_domain) == [2, 3]
        assert all(t > 0 for t in rec.mttr_by_domain.values())


class TestMinorityAborts:
    def test_even_split_has_no_quorum(self, rng):
        x = random_complex(rng, p8_params().n)
        cl, soi = make_soi(split_plan(
            components=((0, 1, 2, 3), (4, 5, 6, 7))))
        with pytest.raises(PartitionDetected):
            run(soi, x)
        rep = soi.last_partition
        assert rep is not None and not rep.quorum
        assert rep.majority == ()
        assert rep.aborted == tuple(range(P))
        assert rep.minority_error is None

    def test_no_quorum_leaves_ranks_alive(self, rng):
        """Abort is not failure: an adjudicated no-quorum run kills no
        ranks (on a real fabric every island waits for the operator)."""
        x = random_complex(rng, p8_params().n)
        cl, soi = make_soi(split_plan(
            components=((0, 1, 2, 3), (4, 5, 6, 7))))
        with pytest.raises(PartitionDetected):
            run(soi, x)
        assert cl.live_ranks == list(range(P))

    def test_every_island_reaches_the_same_verdict(self, rng):
        """Determinism across islands: the minority's error carries the
        full census, so both sides adjudicate identically."""
        x = random_complex(rng, p8_params().n)
        _, soi = make_soi(split_plan())
        run(soi, x)
        err = soi.last_partition.minority_error
        # re-adjudicating from the minority's own error reproduces the
        # same majority: same components, same sizes, same tie-breaks
        ranked = sorted(err.components, key=lambda c: (-len(c), c))
        assert tuple(ranked[0]) == MAJORITY


class TestHierarchicalPartition:
    """Quorum adjudication when the hierarchical all-to-all is engaged.

    At >= 64 ranks the inter-group phase runs one rank per leaf, so the
    collective that trips on the cut sees only sqrt(P) participants and
    its census covers a handful of ranks (7+1 here).  Adjudication must
    reconstruct the full-fabric census from the installed partition
    event — judging quorum from the partial census would abort a 56/64
    majority.
    """

    P64 = 64
    MAJ64 = tuple(range(56))  # leaves 0-6 of FatTree(radix=16)
    MIN64 = tuple(range(56, 64))  # leaf 7

    def make_soi64(self, plan=None):
        cl = SimCluster(self.P64, topology=FatTree(radix=16))
        if plan is not None:
            cl.comm.install_faults(plan, RetryPolicy(max_retries=1))
        params = SoiParams(n=2 ** 14, n_procs=self.P64,
                           n_mu=2, d_mu=1, b=4)
        return cl, DistributedSoiFFT(cl, params)

    def plan64(self):
        return FaultPlan(partition=PartitionEvent(
            at_transfer=2, components=(self.MAJ64, self.MIN64)))

    def test_majority_survives_partial_collective_census(self, rng):
        x = random_complex(rng, 2 ** 14)
        cl, soi = self.make_soi64(self.plan64())
        y = run(soi, x)
        # the hierarchical path actually ran (the regression needs it)
        assert any("[inter]" in e.label for e in cl.trace.events)
        rep = soi.last_partition
        assert rep is not None and rep.quorum
        assert rep.majority == self.MAJ64
        assert rep.aborted == self.MIN64
        # the report carries the reconstructed full-fabric census, not
        # the failing sub-collective's slice
        assert tuple(len(c) for c in rep.components) == (56, 8)
        assert cl.live_ranks == list(self.MAJ64)
        _, soi_clean = self.make_soi64()
        assert np.array_equal(y, run(soi_clean, x))

    def test_domain_boundary_even_split_still_aborts(self, rng):
        x = random_complex(rng, 2 ** 14)
        cl, soi = self.make_soi64(FaultPlan(partition=PartitionEvent(
            at_transfer=2, components=(tuple(range(32)),
                                       tuple(range(32, 64))))))
        with pytest.raises(PartitionDetected):
            run(soi, x)
        rep = soi.last_partition
        assert rep is not None and not rep.quorum
        assert tuple(len(c) for c in rep.components) == (32, 32)
        assert cl.live_ranks == list(range(self.P64))


class TestLiveMajority:
    def test_mostly_dead_component_does_not_outvote_live_one(self, rng):
        """Components are ranked by live membership: a 5-rank component
        with one survivor must not beat a fully-live 3-rank component
        (census sizes 5+3, but live census 1+3)."""
        x = random_complex(rng, p8_params().n)
        cl, soi = make_soi()
        x_parts = soi.scatter(x)
        for r in (0, 1, 2, 3):
            cl.fail_rank(r)
        exc = PartitionDetected(
            "cut", components=((0, 1, 2, 3, 4), (5, 6, 7)))
        y_parts = soi._handle_partition(exc, x_parts, None)
        rep = soi.last_partition
        assert rep is not None and rep.quorum
        assert rep.majority == (5, 6, 7)
        assert rep.aborted == (4,)
        _, soi_clean = make_soi()
        assert np.array_equal(soi.assemble(y_parts), run(soi_clean, x))


class TestTransientPartition:
    def test_short_split_heals_through_retries(self, rng):
        x = random_complex(rng, p8_params().n)
        cl, soi = make_soi(split_plan(heal_at=3),
                           RetryPolicy(max_retries=4))
        y = run(soi, x)
        assert soi.last_partition is None  # never escalated
        assert soi.last_recovery is None  # nobody died
        assert cl.live_ranks == list(range(P))
        _, soi_clean = make_soi()
        assert np.array_equal(y, run(soi_clean, x))

    def test_transient_stall_charged_to_partition_category(self, rng):
        x = random_complex(rng, p8_params().n)
        cl, soi = make_soi(split_plan(heal_at=3),
                           RetryPolicy(max_retries=4))
        run(soi, x)
        assert any(e.category == "partition" for e in cl.trace.events)


class TestDeterminism:
    def test_same_seed_same_verdict_and_spectrum(self):
        x = random_complex(np.random.default_rng(7), p8_params().n)

        def one_run():
            _, soi = make_soi(split_plan())
            y = run(soi, x)
            rep = soi.last_partition
            return y, rep.components, rep.majority, rep.aborted

        y1, c1, m1, a1 = one_run()
        y2, c2, m2, a2 = one_run()
        assert np.array_equal(y1, y2)
        assert (c1, m1, a1) == (c2, m2, a2)

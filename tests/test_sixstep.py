"""Tests for the Bailey 6-step large local FFT."""

import numpy as np
import pytest

from repro.fft.sixstep import SIXSTEP_VARIANTS, sixstep_fft
from tests.conftest import random_complex


class TestCorrectness:
    @pytest.mark.parametrize("n,n1,n2", [
        (16, 4, 4), (64, 8, 8), (256, 16, 16), (4096, None, None),
        (48, 6, 8), (48, 8, 6), (2 ** 12, 2 ** 4, 2 ** 8),
    ])
    @pytest.mark.parametrize("variant", SIXSTEP_VARIANTS)
    def test_matches_numpy(self, rng, n, n1, n2, variant):
        x = random_complex(rng, n)
        res = sixstep_fft(x, n1, n2, variant=variant)
        assert np.allclose(res.output, np.fft.fft(x))

    def test_variants_agree_exactly_in_structure(self, rng):
        x = random_complex(rng, 256)
        a = sixstep_fft(x, variant="naive").output
        b = sixstep_fft(x, variant="optimized").output
        assert np.allclose(a, b, rtol=1e-13, atol=1e-13)

    @pytest.mark.parametrize("variant", SIXSTEP_VARIANTS)
    def test_inverse(self, rng, variant):
        x = random_complex(rng, 64)
        y = sixstep_fft(x, variant=variant)
        back = sixstep_fft(y.output, variant=variant, sign=+1)
        assert np.allclose(back.output, x)

    @pytest.mark.parametrize("panel", [1, 3, 8, 64])
    def test_any_panel_width(self, rng, panel):
        x = random_complex(rng, 256)
        res = sixstep_fft(x, variant="optimized", panel=panel)
        assert np.allclose(res.output, np.fft.fft(x))

    def test_degenerate_factors(self, rng):
        x = random_complex(rng, 16)
        assert np.allclose(sixstep_fft(x, 1, 16).output, np.fft.fft(x))
        assert np.allclose(sixstep_fft(x, 16, 1).output, np.fft.fft(x))


class TestFusedDiagonal:
    @pytest.mark.parametrize("variant", SIXSTEP_VARIANTS)
    def test_diagonal_applied_to_output(self, rng, variant):
        x = random_complex(rng, 64)
        d = random_complex(rng, 64)
        res = sixstep_fft(x, variant=variant, diagonal=d)
        assert np.allclose(res.output, np.fft.fft(x) * d)

    def test_fused_saves_sweeps(self, rng):
        x = random_complex(rng, 64)
        d = random_complex(rng, 64)
        fused = sixstep_fft(x, variant="optimized", diagonal=d)
        separate = sixstep_fft(x, variant="naive", diagonal=d)
        # fused pays only the constants load (1 sweep); separate pays 3
        assert separate.ledger.sweep_count(64) - \
            sixstep_fft(x, variant="naive").ledger.sweep_count(64) == pytest.approx(3.0)
        assert fused.ledger.sweep_count(64) - \
            sixstep_fft(x, variant="optimized").ledger.sweep_count(64) == pytest.approx(1.0)


class TestSweepAccounting:
    def test_naive_has_13_sweeps(self, rng):
        res = sixstep_fft(random_complex(rng, 1024), variant="naive")
        assert res.ledger.sweep_count(1024) == pytest.approx(13.0)

    def test_optimized_has_about_4_sweeps(self, rng):
        n = 4096
        res = sixstep_fft(random_complex(rng, n), variant="optimized")
        sweeps = res.ledger.sweep_count(n)
        assert 4.0 <= sweeps < 4.1  # + split twiddle tables (O(sqrt N))

    def test_optimized_moves_fewer_bytes(self, rng):
        x = random_complex(rng, 4096)
        naive = sixstep_fft(x, variant="naive")
        opt = sixstep_fft(x, variant="optimized")
        assert opt.ledger.total_bytes < 0.4 * naive.ledger.total_bytes

    def test_flops_property(self, rng):
        res = sixstep_fft(random_complex(rng, 1024))
        assert res.flops == pytest.approx(5 * 1024 * 10)


class TestValidation:
    def test_rejects_mismatched_factors(self, rng):
        with pytest.raises(ValueError):
            sixstep_fft(random_complex(rng, 16), 4, 3)

    def test_rejects_2d_input(self, rng):
        with pytest.raises(ValueError):
            sixstep_fft(random_complex(rng, 4, 4))

    def test_rejects_unknown_variant(self, rng):
        with pytest.raises(ValueError):
            sixstep_fft(random_complex(rng, 16), variant="magic")

    def test_rejects_bad_panel(self, rng):
        with pytest.raises(ValueError):
            sixstep_fft(random_complex(rng, 16), panel=0)

    def test_rejects_wrong_diagonal_length(self, rng):
        with pytest.raises(ValueError):
            sixstep_fft(random_complex(rng, 16), diagonal=np.ones(8))

"""Tests for all-to-all algorithms (pairwise / Bruck)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.collectives import (
    alltoall_bruck,
    alltoall_pairwise,
    bruck_time,
    pairwise_time,
    recommend_algorithm,
)
from repro.cluster.network import STAMPEDE_EFFECTIVE as NET
from tests.conftest import random_complex


def blocks_for(rng, p, m=3):
    return [[random_complex(rng, m) for _ in range(p)] for _ in range(p)]


def assert_is_exchange(recv, blocks, p):
    for src in range(p):
        for dst in range(p):
            assert np.array_equal(recv[dst][src], blocks[src][dst])


class TestPairwise:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_exchange_semantics(self, rng, p):
        blocks = blocks_for(rng, p)
        recv, rounds = alltoall_pairwise(blocks)
        assert_is_exchange(recv, blocks, p)
        assert rounds == max(0, p - 1)

    def test_rejects_ragged(self, rng):
        with pytest.raises(ValueError):
            alltoall_pairwise([[np.zeros(1)] * 2, [np.zeros(1)]])


class TestBruck:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8, 13, 16])
    def test_exchange_semantics(self, rng, p):
        blocks = blocks_for(rng, p)
        recv, rounds = alltoall_bruck(blocks)
        assert_is_exchange(recv, blocks, p)

    @pytest.mark.parametrize("p,expected", [(2, 1), (4, 2), (8, 3), (16, 4),
                                            (5, 3), (9, 4)])
    def test_logarithmic_rounds(self, rng, p, expected):
        _, rounds = alltoall_bruck(blocks_for(rng, p, m=1))
        assert rounds == expected

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_pairwise(self, p, m):
        rng = np.random.default_rng(p * 100 + m)
        blocks = [[rng.standard_normal(m) + 0j for _ in range(p)]
                  for _ in range(p)]
        ra, _ = alltoall_pairwise(blocks)
        rb, _ = alltoall_bruck(blocks)
        for d in range(p):
            for s in range(p):
                assert np.array_equal(ra[d][s], rb[d][s])


class TestCostModels:
    def test_bruck_wins_short_messages(self):
        # latency-bound: log2(P) rounds beat P-1 rounds
        assert bruck_time(NET, 512, 64) < pairwise_time(NET, 512, 64)

    def test_pairwise_wins_long_messages(self):
        # bandwidth-bound: Bruck forwards each byte log2(P)/2 times
        big = 16 * 1024 * 1024
        assert pairwise_time(NET, 64, big) < bruck_time(NET, 64, big)

    def test_recommendation_crossover(self):
        assert recommend_algorithm(NET, 512, 64) == "bruck"
        assert recommend_algorithm(NET, 512, 16 * 1024 * 1024) == "pairwise"
        assert recommend_algorithm(NET, 1, 100) == "pairwise"

    def test_crossover_moves_with_segments(self):
        """The §6.1 connection: more segments/process -> shorter packets ->
        deeper into Bruck territory."""
        nodes = 512
        n_per_node = 7 * 2 ** 24
        base_pair = 16 * n_per_node * nodes // (nodes * nodes)
        algos = [recommend_algorithm(NET, nodes, base_pair // spp)
                 for spp in (1, 2, 8, 64, 512, 4096)]
        # once packets get short enough the recommendation flips to bruck
        assert algos[0] == "pairwise"
        assert algos[-1] == "bruck"

    def test_degenerate_cases_free(self):
        assert pairwise_time(NET, 1, 100) == 0.0
        assert bruck_time(NET, 4, 0) == 0.0

"""Tests for the (mu, B) design assistant."""

import numpy as np
import pytest

from repro.core.design import CANDIDATE_MUS, SoiDesign, design_parameters, required_b
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10


class TestRequiredB:
    def test_paper_configuration_is_recovered(self):
        """B = 72 at mu = 8/7 should correspond to ~1e-8 accuracy — and it
        does: the inverse design asks for 76 (the next even B above 72's
        1.6e-8 stopband)."""
        assert required_b(1e-8, 8 / 7) == 76
        assert required_b(2e-8, 8 / 7) == 72  # the paper's exact B

    def test_larger_mu_needs_smaller_b(self):
        assert required_b(1e-8, 5 / 4) < required_b(1e-8, 8 / 7)

    def test_tighter_target_needs_bigger_b(self):
        assert required_b(1e-12, 8 / 7) > required_b(1e-6, 8 / 7)

    def test_b_is_even_and_floored(self):
        b = required_b(1e-2, 2.0)
        assert b % 2 == 0 and b >= 4

    def test_unreachable_returns_none(self):
        assert required_b(1e-16, 5 / 4) is None  # beyond double precision
        assert required_b(1e-10, 1.001, b_max=64) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            required_b(0.0, 8 / 7)
        with pytest.raises(ValueError):
            required_b(1e-8, 1.0)


class TestDesignParameters:
    def test_meets_target(self):
        d = design_parameters((7 * 2 ** 24) * 64, 64, 1e-8)
        assert d.predicted_stopband <= 1e-8
        assert (d.n_mu, d.d_mu) in CANDIDATE_MUS

    def test_design_is_cheapest_feasible(self):
        """Every other feasible candidate must cost at least as much."""
        from repro.perfmodel.model import FftModel

        target = 1e-8
        n_total, nodes = (7 * 2 ** 24) * 64, 64
        d = design_parameters(n_total, nodes, target)
        for n_mu, d_mu in CANDIDATE_MUS:
            b = required_b(target, n_mu / d_mu)
            if b is None:
                continue
            t = FftModel(n_total=n_total, nodes=nodes, b=b, n_mu=n_mu,
                         d_mu=d_mu).soi_breakdown(XEON_PHI_SE10).total
            assert d.modeled_seconds <= t + 1e-12

    def test_machine_changes_the_optimum_cost(self):
        d_phi = design_parameters((7 * 2 ** 24) * 64, 64, 1e-8,
                                  machine=XEON_PHI_SE10)
        d_xeon = design_parameters((7 * 2 ** 24) * 64, 64, 1e-8,
                                   machine=XEON_E5_2680)
        assert d_xeon.modeled_seconds > d_phi.modeled_seconds

    def test_impossible_target_raises(self):
        with pytest.raises(ValueError, match="double precision"):
            design_parameters(2 ** 30, 16, 1e-16)

    def test_designed_parameters_actually_deliver(self, rng):
        """Close the loop: build an SOI plan from the designed (mu, B) and
        verify the measured error meets the target."""
        from repro.core.params import SoiParams
        from repro.core.soi_single import SoiFFT

        target = 1e-6
        d = design_parameters(2 ** 20, 1, target)
        s = 8
        m = s * d.d_mu * 64  # segment-divisible size
        n = m * 1
        params = SoiParams(n=s * d.d_mu * 64, n_procs=1,
                           segments_per_process=s, n_mu=d.n_mu,
                           d_mu=d.d_mu, b=d.b)
        f = SoiFFT(params)
        x = rng.standard_normal(params.n) + 1j * rng.standard_normal(params.n)
        err = np.linalg.norm(f(x) - np.fft.fft(x)) / \
            np.linalg.norm(np.fft.fft(x))
        assert err < 10 * target

    def test_describe(self):
        d = SoiDesign(8, 7, 72, 1.6e-8, 1.0)
        assert "8/7" in d.describe()
        assert d.mu == pytest.approx(8 / 7)

"""Tests for heterogeneous segment balancing."""

import pytest

from repro.core.segments import balance_segments, segments_for_machines
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10


class TestBalanceSegments:
    def test_uniform(self):
        assert balance_segments([1.0, 1.0, 1.0], 9) == [3, 3, 3]

    def test_proportional(self):
        assert balance_segments([1.0, 3.0], 8) == [2, 6]

    def test_total_always_exact(self):
        for total in range(4, 40):
            counts = balance_segments([1.0, 2.5, 3.3, 0.7], total)
            assert sum(counts) == total
            assert all(c >= 1 for c in counts)

    def test_floor_of_one(self):
        counts = balance_segments([0.01, 100.0], 2)
        assert counts == [1, 1]

    def test_rejects_too_few_segments(self):
        with pytest.raises(ValueError):
            balance_segments([1.0, 1.0, 1.0], 2)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            balance_segments([1.0, 0.0], 4)
        with pytest.raises(ValueError):
            balance_segments([], 4)


class TestMachineAssignment:
    def test_paper_1_to_6_ratio(self):
        """§6.1: '1 segment per a socket of Xeon E5-2680 and 6 segments per
        Xeon Phi (recall that a Xeon Phi has ~6x compute capability)'.
        A dual-socket Xeon node (2 sockets) vs a Phi: ratio ~ 2:6."""
        counts = segments_for_machines([XEON_E5_2680, XEON_PHI_SE10], 8)
        assert counts == [2, 6]

    def test_phi_heavy_cluster(self):
        machines = [XEON_E5_2680] + [XEON_PHI_SE10] * 3
        counts = segments_for_machines(machines, 16)
        assert sum(counts) == 16
        assert counts[0] < min(counts[1:])
        assert len(set(counts[1:])) == 1  # identical Phis get equal shares

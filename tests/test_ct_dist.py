"""Tests for the distributed Cooley-Tukey baseline."""

import numpy as np
import pytest

from repro.cluster.simcluster import SimCluster
from repro.baseline.ct_dist import DistributedCooleyTukeyFFT
from repro.util.validate import relative_l2_error
from tests.conftest import random_complex


class TestCorrectness:
    @pytest.mark.parametrize("n,p", [
        (64, 4), (256, 4), (1024, 8), (4096, 16), (3584, 4), (2 ** 12, 2),
        (900, 3),
    ])
    def test_matches_numpy(self, rng, n, p):
        cluster = SimCluster(p)
        ct = DistributedCooleyTukeyFFT(cluster, n)
        x = random_complex(rng, n)
        y = ct.assemble(ct(ct.scatter(x)))
        assert relative_l2_error(y, np.fft.fft(x)) < 1e-12

    def test_single_rank(self, rng):
        cluster = SimCluster(1)
        ct = DistributedCooleyTukeyFFT(cluster, 256)
        x = random_complex(rng, 256)
        assert np.allclose(ct([x])[0], np.fft.fft(x))

    def test_output_block_distribution(self, rng):
        cluster = SimCluster(4)
        ct = DistributedCooleyTukeyFFT(cluster, 1024)
        x = random_complex(rng, 1024)
        parts = ct(ct.scatter(x))
        ref = np.fft.fft(x)
        for r, part in enumerate(parts):
            assert np.allclose(part, ref[r * 256:(r + 1) * 256])


class TestCommunicationStructure:
    def test_three_alltoalls(self, rng):
        cluster = SimCluster(4)
        ct = DistributedCooleyTukeyFFT(cluster, 1024)
        ct(ct.scatter(random_complex(rng, 1024)))
        labels = {e.label for e in cluster.trace.events if e.category == "mpi"}
        assert labels == {"all-to-all #1", "all-to-all #2", "all-to-all #3"}

    def test_wire_volume_is_3x(self, rng):
        n, p = 1024, 4
        cluster = SimCluster(p)
        ct = DistributedCooleyTukeyFFT(cluster, n)
        ct(ct.scatter(random_complex(rng, n)))
        expected = 3 * 16 * n * (p - 1) // p
        assert cluster.comm.bytes_moved == expected

    def test_ct_moves_more_than_soi(self, rng):
        """The headline communication claim: 3 exchanges vs mu x one."""
        from repro.core.params import SoiParams
        from repro.core.soi_dist import DistributedSoiFFT

        n, p = 8 * 448, 4
        cl_ct = SimCluster(p)
        ct = DistributedCooleyTukeyFFT(cl_ct, n)
        ct(ct.scatter(random_complex(rng, n)))

        cl_soi = SimCluster(p)
        soi = DistributedSoiFFT(cl_soi, SoiParams(
            n=n, n_procs=p, segments_per_process=2, n_mu=8, d_mu=7, b=48))
        soi(soi.scatter(random_complex(rng, n)))

        # mu/3 ~= 0.38 of CT's all-to-all volume, plus the small ghost halos
        assert cl_soi.comm.bytes_moved < 0.6 * cl_ct.comm.bytes_moved


class TestValidation:
    def test_rejects_p_not_dividing(self):
        with pytest.raises(ValueError):
            DistributedCooleyTukeyFFT(SimCluster(3), 1024)

    def test_rejects_p_squared_not_dividing(self):
        with pytest.raises(ValueError):
            DistributedCooleyTukeyFFT(SimCluster(8), 8 * 12)

    def test_rejects_wrong_parts(self, rng):
        ct = DistributedCooleyTukeyFFT(SimCluster(4), 1024)
        with pytest.raises(ValueError):
            ct([random_complex(rng, 256)] * 3)
        with pytest.raises(ValueError):
            ct([random_complex(rng, 100)] * 4)

    def test_scatter_validates(self, rng):
        ct = DistributedCooleyTukeyFFT(SimCluster(4), 1024)
        with pytest.raises(ValueError):
            ct.scatter(random_complex(rng, 999))

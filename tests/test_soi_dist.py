"""Tests for the distributed SOI FFT on the simulated cluster."""

import numpy as np
import pytest

from repro.cluster.network import STAMPEDE_EFFECTIVE
from repro.cluster.pcie import PCIE_GEN2_X16
from repro.cluster.proxy import ReverseProxy
from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from repro.core.soi_single import SoiFFT
from repro.machine.spec import XEON_E5_2680
from repro.util.validate import relative_l2_error
from tests.conftest import random_complex


def make(n=8 * 448, p=4, spp=2, n_mu=8, d_mu=7, b=48):
    params = SoiParams(n=n, n_procs=p, segments_per_process=spp,
                       n_mu=n_mu, d_mu=d_mu, b=b)
    cluster = SimCluster(p)
    return cluster, DistributedSoiFFT(cluster, params)


class TestNumericalEquivalence:
    @pytest.mark.parametrize("p,spp", [(1, 8), (2, 4), (4, 2), (8, 1)])
    def test_matches_numpy_all_layouts(self, rng, p, spp):
        cluster, dist = make(p=p, spp=spp)
        x = random_complex(rng, 8 * 448)
        y = dist.assemble(dist(dist.scatter(x)))
        assert relative_l2_error(y, np.fft.fft(x)) < \
            10 * dist.tables.expected_stopband + 1e-12

    def test_identical_to_single_process_pipeline(self, rng):
        n = 8 * 448
        x = random_complex(rng, n)
        cluster, dist = make(p=4, spp=2)
        y_dist = dist.assemble(dist(dist.scatter(x)))
        params1 = SoiParams(n=n, n_procs=1, segments_per_process=8,
                            n_mu=8, d_mu=7, b=48)
        y_single = SoiFFT(params1)(x)
        # same segment decomposition => identical floating-point pipeline
        # up to reduction order in the batched FFTs
        assert np.allclose(y_dist, y_single, rtol=1e-12, atol=1e-10)

    def test_output_distribution_is_natural_order_blocks(self, rng):
        cluster, dist = make(p=4, spp=2)
        x = random_complex(rng, 8 * 448)
        parts = dist(dist.scatter(x))
        ref = np.fft.fft(x)
        chunk = len(x) // 4
        for r, part in enumerate(parts):
            assert part.shape == (chunk,)
            assert relative_l2_error(part, ref[r * chunk:(r + 1) * chunk]) < 1e-4

    def test_mu_5_4(self, rng):
        cluster, dist = make(n=2 ** 13, p=4, spp=2, n_mu=5, d_mu=4, b=64)
        x = random_complex(rng, 2 ** 13)
        y = dist.assemble(dist(dist.scatter(x)))
        assert relative_l2_error(y, np.fft.fft(x)) < 1e-9

    def test_xeon_machine_and_unfused_demod(self, rng):
        params = SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        cluster = SimCluster(4, machine=XEON_E5_2680)
        dist = DistributedSoiFFT(cluster, params, fuse_demodulation=False)
        x = random_complex(rng, 8 * 448)
        y = dist.assemble(dist(dist.scatter(x)))
        assert relative_l2_error(y, np.fft.fft(x)) < 1e-4

    def test_proxy_transport(self, rng):
        params = SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        cluster = SimCluster(4, transport=ReverseProxy(PCIE_GEN2_X16,
                                                       STAMPEDE_EFFECTIVE))
        dist = DistributedSoiFFT(cluster, params)
        x = random_complex(rng, 8 * 448)
        y = dist.assemble(dist(dist.scatter(x)))
        assert relative_l2_error(y, np.fft.fft(x)) < 1e-4


class TestCommunicationStructure:
    def test_exactly_one_alltoall(self, rng):
        cluster, dist = make(p=4)
        dist(dist.scatter(random_complex(rng, 8 * 448)))
        a2a_events = [e for e in cluster.trace.events if e.label == "all-to-all"]
        # one synchronized collective = one event per rank
        assert len(a2a_events) == 4

    def test_ghost_exchange_happens_before_alltoall(self, rng):
        cluster, dist = make(p=4)
        dist(dist.scatter(random_complex(rng, 8 * 448)))
        labels = [e.label for e in cluster.trace.events if e.rank == 0]
        assert labels.index("ghost exchange") < labels.index("all-to-all")

    def test_wire_volume_is_mu_scaled(self, rng):
        """SOI's all-to-all moves ~mu * 16N * (P-1)/P bytes + small ghosts."""
        n, p = 8 * 448, 4
        cluster, dist = make(n=n, p=p)
        dist(dist.scatter(random_complex(rng, n)))
        params = dist.params
        a2a = 16 * params.n_oversampled * (p - 1) // p
        ghosts = sum(params.ghost_blocks) * params.n_segments * 16 * p
        assert cluster.comm.bytes_moved == a2a + ghosts

    def test_breakdown_has_all_components(self, rng):
        cluster, dist = make(p=4)
        dist(dist.scatter(random_complex(rng, 8 * 448)))
        b = cluster.breakdown()
        for key in ("convolution", "all-to-all", "local FFT", "demodulation",
                    "ghost exchange"):
            assert key in b

    def test_simulated_time_positive_and_finite(self, rng):
        cluster, dist = make(p=4)
        dist(dist.scatter(random_complex(rng, 8 * 448)))
        assert 0 < cluster.elapsed < 10.0


class TestSegmentedExchanges:
    def test_identical_result_and_bytes(self, rng):
        params = SoiParams(n=16 * 448, n_procs=4, segments_per_process=4,
                           n_mu=8, d_mu=7, b=48)
        x = random_complex(rng, params.n)
        cl1 = SimCluster(4)
        d1 = DistributedSoiFFT(cl1, params)
        y1 = d1.assemble(d1(d1.scatter(x)))
        cl2 = SimCluster(4)
        d2 = DistributedSoiFFT(cl2, params, segment_exchanges=True)
        y2 = d2.assemble(d2(d2.scatter(x)))
        assert np.allclose(y1, y2, rtol=1e-12, atol=1e-10)
        assert cl1.comm.bytes_moved == cl2.comm.bytes_moved

    def test_one_round_per_segment_slot(self, rng):
        params = SoiParams(n=16 * 448, n_procs=4, segments_per_process=4,
                           n_mu=8, d_mu=7, b=48)
        cl = SimCluster(4)
        d = DistributedSoiFFT(cl, params, segment_exchanges=True)
        d(d.scatter(random_complex(rng, params.n)))
        rounds = [e for e in cl.trace.events
                  if e.label == "all-to-all" and e.rank == 0]
        assert len(rounds) == 4

    def test_interleaved_fft_charges(self, rng):
        """FFT compute lands between exchange rounds — the structure the
        paper's overlap exploits (and replay_with_overlap prices)."""
        params = SoiParams(n=16 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        cl = SimCluster(4)
        d = DistributedSoiFFT(cl, params, segment_exchanges=True)
        d(d.scatter(random_complex(rng, params.n)))
        labels = [e.label for e in cl.trace.events if e.rank == 0]
        first_a2a = labels.index("all-to-all")
        assert "local FFT" in labels[first_a2a:]
        # an FFT charge appears before the LAST all-to-all round
        last_a2a = len(labels) - 1 - labels[::-1].index("all-to-all")
        assert "local FFT" in labels[first_a2a:last_a2a]


class TestValidation:
    def test_rank_count_mismatch(self):
        params = SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        with pytest.raises(ValueError, match="ranks"):
            DistributedSoiFFT(SimCluster(8), params)

    def test_ghost_larger_than_chunk_rejected(self):
        # B/2 blocks of ghost must fit in a neighbor's chunk
        params = SoiParams(n=8 * 448, n_procs=8, segments_per_process=1,
                           n_mu=8, d_mu=7, b=72)
        # blocks per rank = 448/8 = 56 >= 36 -> OK; shrink instead:
        params_bad = SoiParams(n=8 * 112, n_procs=8, segments_per_process=1,
                               n_mu=8, d_mu=7, b=48)
        # blocks per rank = 112/8 = 14 < 24 ghost
        with pytest.raises(ValueError, match="ghost"):
            DistributedSoiFFT(SimCluster(8), params_bad)
        DistributedSoiFFT(SimCluster(8), params)  # the good one builds

    def test_wrong_part_count(self, rng):
        cluster, dist = make(p=4)
        with pytest.raises(ValueError):
            dist([random_complex(rng, 896)] * 3)

    def test_wrong_part_size(self, rng):
        cluster, dist = make(p=4)
        with pytest.raises(ValueError):
            dist([random_complex(rng, 100)] * 4)

    def test_scatter_validates_shape(self, rng):
        cluster, dist = make(p=4)
        with pytest.raises(ValueError):
            dist.scatter(random_complex(rng, 100))

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSelftest:
    def test_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "OK" in out


class TestTransform:
    def test_default(self, capsys):
        assert main(["transform", "--n", "3584", "--b", "48"]) == 0
        out = capsys.readouterr().out
        assert "rel l2 error" in out

    def test_mu_flags(self, capsys):
        assert main(["transform", "--n", "4096", "--n-mu", "5",
                     "--d-mu", "4", "--b", "48"]) == 0

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            main(["transform", "--n", "4096", "--b", "48"])  # 7 !| 512


class TestFigures:
    @pytest.mark.parametrize("which", ["table2", "fig3", "fig10", "fig11",
                                       "fig12"])
    def test_individual_figures(self, capsys, which):
        assert main(["figures", which]) == 0
        assert capsys.readouterr().out.strip()

    def test_fig8_prints_series(self, capsys):
        assert main(["figures", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "TFLOPS" in out
        assert "512" in out

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])


class TestVerify:
    def test_sdc_run_detects_and_passes(self, capsys):
        assert main(["verify", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "verify: PASS" in out
        assert "detected=" in out
        assert "thresholds:" in out

    def test_clean_run_has_zero_detections(self, capsys):
        assert main(["verify", "--sdc-rate", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "injected=0 detected=0" in out
        assert "verify: PASS" in out

    def test_amplitude_flag(self, capsys):
        assert main(["verify", "--seed", "1", "--amplitude", "0.01"]) == 0
        assert "verify: PASS" in capsys.readouterr().out


class TestInfo:
    def test_prints_presets(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Xeon Phi" in out
        assert "bops" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


@pytest.mark.autotune
class TestAutotune:
    def test_smoke_run_passes_and_persists_wisdom(self, tmp_path, capsys):
        import json

        wisdom_path = tmp_path / "wisdom.json"
        table_path = tmp_path / "speedup.txt"
        assert main(["autotune", "--smoke", "--budget", "10",
                     "--wisdom", str(wisdom_path),
                     "--output", str(table_path)]) == 0
        out = capsys.readouterr().out
        assert "autotune: PASS" in out
        assert "speedup" in out

        store = json.loads(wisdom_path.read_text())
        assert store["version"] == 2
        assert store["entries"]

        from repro.fft.wisdom import Wisdom
        wisdom = Wisdom.load(wisdom_path, strict=True)
        assert wisdom.lookup_kernel(256, -1, "complex128") is not None

        assert "tuned" in table_path.read_text()

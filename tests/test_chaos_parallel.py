"""Process-level chaos soak: seeded kills/stalls of real workers.

The tentpole guarantee under test: whatever a seeded
:class:`~repro.cluster.faults.ProcessFaultPlan` does to the worker
processes mid-collective — SIGKILL, SIGSTOP with or without a resume,
starved job deliveries — the parallel SOI transform either finishes
transparently or completes via shrink-and-redistribute recovery, and
the output is *bit-for-bit* identical to the fault-free run.  Every
scenario also asserts shared-memory hygiene: after ``close()`` not one
``/dev/shm`` segment of the backend's namespace survives.
"""

import numpy as np
import pytest

from repro.cluster.backends import ProcessBackend
from repro.cluster.faults import ProcessFault, ProcessFaultPlan
from repro.cluster.shm import list_segments
from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_spmd import spmd_soi_fft

pytestmark = [pytest.mark.parallel, pytest.mark.chaos_parallel]


def soi_params(n, n_procs):
    return SoiParams(n=n, n_procs=n_procs, segments_per_process=2,
                     n_mu=5, d_mu=4, b=48)


def signal(n, seed=2013):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


_REFERENCE: dict = {}  # (n, P) -> fault-free spectrum, computed once


def reference(params, x, n_procs):
    key = (params.n, n_procs)
    if key not in _REFERENCE:
        _REFERENCE[key] = spmd_soi_fft(SimCluster(n_procs), params, x)
    return _REFERENCE[key]


def run_chaos(n_procs, plan, hang_timeout=1.2):
    """One chaotic transform; returns (fault-free ref, chaotic out, backend
    state tuple) and asserts shm hygiene on the way out."""
    params = soi_params(2 ** 12, n_procs)
    x = signal(params.n)
    want = reference(params, x, n_procs)
    be = ProcessBackend(n_procs, hang_timeout=hang_timeout)
    token = be._token
    try:
        be.inject(plan)
        got = spmd_soi_fft(SimCluster(n_procs), params, x, backend=be)
        state = (be.last_failure, be.last_recovery, be.last_mttr_s)
    finally:
        be.close()
    assert list_segments(token) == [], "leaked /dev/shm segments"
    return want, got, state


class TestSeededSoak:
    """seed x worker-count matrix of randomized kill/stall schedules."""

    @pytest.mark.parametrize("n_procs", [2, 4])
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_random_kills_recover_bitwise(self, seed, n_procs):
        # collectives 0 (halo ring) and 1 (the all-to-all) always run;
        # higher indices would leave the kill unfired on small programs
        plan = ProcessFaultPlan.random(seed, n_procs, n_kills=1,
                                       max_collective=1, min_survivors=1)
        want, got, (failure, recovery, mttr) = run_chaos(n_procs, plan)
        assert np.array_equal(want, got)
        assert plan.injected.get("kill", 0) == 1
        assert failure is not None and len(failure.dead) == 1
        assert recovery is not None
        assert recovery.dead_ranks == failure.dead
        assert recovery.n_live == n_procs - 1
        assert mttr is not None and mttr >= 0.0

    @pytest.mark.parametrize("seed", [3, 19])
    def test_random_stall_with_resume_is_transparent(self, seed):
        plan = ProcessFaultPlan.random(seed, 4, n_stalls=1,
                                       max_collective=1,
                                       stall_resume_s=0.3)
        want, got, (_failure, recovery, _mttr) = run_chaos(4, plan)
        assert np.array_equal(want, got)
        assert plan.injected.get("stall", 0) == 1
        assert recovery is None  # resumed in time: no recovery ran

    @pytest.mark.parametrize("seed", [5, 29])
    def test_random_stall_without_resume_recovers(self, seed):
        plan = ProcessFaultPlan.random(seed, 4, n_stalls=1,
                                       max_collective=1,
                                       stall_resume_s=None)
        want, got, (failure, recovery, _mttr) = run_chaos(4, plan)
        assert np.array_equal(want, got)
        assert failure is not None and failure.hung == failure.dead
        assert recovery is not None

    def test_kill_and_delay_together(self):
        plan = ProcessFaultPlan.random(11, 4, n_kills=1, n_delays=1,
                                       max_collective=1, delay_s=0.2,
                                       min_survivors=2)
        want, got, (_failure, recovery, _mttr) = run_chaos(4, plan)
        assert np.array_equal(want, got)
        assert recovery is not None

    def test_double_kill_same_collective(self):
        plan = ProcessFaultPlan([
            ProcessFault("kill", rank=0, collective=1),
            ProcessFault("kill", rank=3, collective=1)])
        want, got, (failure, recovery, _mttr) = run_chaos(4, plan)
        assert np.array_equal(want, got)
        assert set(recovery.dead_ranks) == {0, 3}
        assert recovery.n_live == 2

    def test_repeated_chaos_on_one_backend(self):
        """Elasticity proper: one backend survives a whole campaign of
        failures, recovering each time, and stays bit-identical."""
        n_procs = 4
        params = soi_params(2 ** 12, n_procs)
        x = signal(params.n)
        want = reference(params, x, n_procs)
        be = ProcessBackend(n_procs, hang_timeout=1.2)
        token = be._token
        try:
            for round_, rank in enumerate((2, 0, 3)):
                be.inject(ProcessFaultPlan([
                    ProcessFault("kill", rank=rank,
                                 collective=round_ % 2)]))
                got = spmd_soi_fft(SimCluster(n_procs), params, x,
                                   backend=be)
                assert np.array_equal(want, got), f"round {round_}"
                assert be.last_recovery.dead_ranks == (rank,)
            be.inject(None)
            got = spmd_soi_fft(SimCluster(n_procs), params, x, backend=be)
            assert np.array_equal(want, got)
            assert be.live_workers() == list(range(n_procs))
        finally:
            be.close()
        assert list_segments(token) == []

"""Tests for the memory-sweep ledger and TLB bandwidth model."""

import pytest

from repro.machine.memory import PAGE_BYTES, SweepLedger, SweepRecord, tlb_bw_efficiency
from repro.machine.spec import XEON_PHI_SE10


class TestSweepRecord:
    def test_load_bytes(self):
        r = SweepRecord("x", 100, "load")
        assert r.nbytes == 1600

    def test_store_write_allocate_doubles(self):
        assert SweepRecord("x", 100, "store").nbytes == 3200

    def test_non_temporal_store_single_transfer(self):
        assert SweepRecord("x", 100, "store_nt").nbytes == 1600

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            SweepRecord("x", 1, "flush")

    def test_rejects_negative_elements(self):
        with pytest.raises(ValueError):
            SweepRecord("x", -1, "load")


class TestLedger:
    def test_sweep_count(self):
        led = SweepLedger()
        led.load("a", 1000)
        led.store("b", 1000)
        led.load("c", 500)
        assert led.sweep_count(1000) == pytest.approx(2.5)

    def test_total_bytes(self):
        led = SweepLedger()
        led.load("a", 10)
        led.store("b", 10)
        led.store("c", 10, non_temporal=True)
        assert led.total_bytes == 160 + 320 + 160

    def test_by_label_aggregates(self):
        led = SweepLedger()
        led.load("fft", 10)
        led.load("fft", 10)
        led.store("out", 5, non_temporal=True)
        assert led.by_label() == {"fft": 320, "out": 80}

    def test_merge(self):
        a, b = SweepLedger(), SweepLedger()
        a.load("x", 1)
        b.load("y", 2)
        a.merge(b)
        assert len(a.records) == 2

    def test_time_on_machine(self):
        led = SweepLedger()
        led.load("a", int(150e9) // 16)  # 150 GB -> 1 s on Phi
        assert led.time_on(XEON_PHI_SE10) == pytest.approx(1.0, rel=1e-6)

    def test_time_with_tlb_penalty(self):
        led = SweepLedger()
        led.load("strided", 1000, stride_bytes=PAGE_BYTES)
        led2 = SweepLedger()
        led2.load("unit", 1000)
        assert led.time_on(XEON_PHI_SE10) > led2.time_on(XEON_PHI_SE10)
        assert led.time_on(XEON_PHI_SE10, tlb_model=False) == \
            pytest.approx(led2.time_on(XEON_PHI_SE10))

    def test_sweep_count_rejects_bad_base(self):
        with pytest.raises(ValueError):
            SweepLedger().sweep_count(0)


class TestTlbEfficiency:
    def test_unit_stride_is_full_speed(self):
        assert tlb_bw_efficiency(16) == 1.0
        assert tlb_bw_efficiency(64) == 1.0

    def test_page_stride_hits_floor(self):
        # §6.2: strided steps see bandwidth efficiency "as low as 50%"
        assert tlb_bw_efficiency(PAGE_BYTES) == pytest.approx(0.5)
        assert tlb_bw_efficiency(10 * PAGE_BYTES) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        strides = [16, 128, 512, 1024, 2048, 4096, 8192]
        effs = [tlb_bw_efficiency(s) for s in strides]
        assert all(a >= b for a, b in zip(effs, effs[1:]))

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            tlb_bw_efficiency(0)

"""Tests for the unrolled-leaf codelet generator."""

import numpy as np
import pytest

from repro.fft.codelet import CODELET_SIZES, generate_codelet_source, get_codelet
from repro.fft.dft import dft
from tests.conftest import random_complex


class TestGeneratedSource:
    def test_is_valid_python(self):
        for n in CODELET_SIZES:
            compile(generate_codelet_source(n), "<test>", "exec")

    def test_straight_line_no_loops(self):
        src = generate_codelet_source(8)
        assert "for " not in src
        assert "while " not in src

    def test_strength_reduction_folds_units(self):
        # a size-4 DFT needs no general complex multiplies at all
        src = generate_codelet_source(4)
        assert "complex(" not in src

    def test_size_8_uses_few_general_multiplies(self):
        src = generate_codelet_source(8)
        # only the odd eighth-roots need real multiplies: 4 distinct lines
        assert 0 < src.count("complex(") <= 8 * 4

    def test_rejects_unsupported(self):
        with pytest.raises(ValueError):
            generate_codelet_source(6)
        with pytest.raises(ValueError):
            generate_codelet_source(8, sign=0)


class TestCodeletCorrectness:
    @pytest.mark.parametrize("n", CODELET_SIZES)
    @pytest.mark.parametrize("sign", [-1, +1])
    def test_matches_naive_dft(self, rng, n, sign):
        c = get_codelet(n, sign)
        x = random_complex(rng, n)
        out = np.empty(n, dtype=np.complex128)
        c(x, out)
        ref = dft(x) if sign == -1 else np.conj(dft(np.conj(x)))
        assert np.allclose(out, ref)

    def test_cached(self):
        assert get_codelet(8) is get_codelet(8)
        assert get_codelet(8, -1) is not get_codelet(8, +1)

    def test_works_on_plain_lists(self):
        c = get_codelet(2)
        out = np.empty(2, dtype=np.complex128)
        c([1.0, 2.0], out)
        assert np.allclose(out, [3.0, -1.0])

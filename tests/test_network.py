"""Tests for the interconnect cost model."""

import pytest

from repro.cluster.network import FDR_INFINIBAND, STAMPEDE_EFFECTIVE, NetworkSpec


class TestEffectiveBandwidth:
    def test_ramps_with_message_size(self):
        n = STAMPEDE_EFFECTIVE
        sizes = [1024, 16 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024]
        bws = [n.effective_bandwidth(s) for s in sizes]
        assert all(a < b for a, b in zip(bws, bws[1:]))
        assert bws[-1] <= n.bandwidth_gbps

    def test_half_bandwidth_point(self):
        n = STAMPEDE_EFFECTIVE
        assert n.effective_bandwidth(n.half_bandwidth_msg_bytes) == \
            pytest.approx(n.bandwidth_gbps / 2)

    def test_large_message_approaches_peak(self):
        n = STAMPEDE_EFFECTIVE
        assert n.effective_bandwidth(1 << 30) == \
            pytest.approx(n.bandwidth_gbps, rel=1e-3)

    def test_contention_applies(self):
        n = NetworkSpec("c", 3.0, contention=lambda p: 0.5)
        base = NetworkSpec("b", 3.0)
        big = 1 << 30
        assert n.effective_bandwidth(big, nodes=8) == \
            pytest.approx(base.effective_bandwidth(big, nodes=8) / 2, rel=1e-6)

    def test_invalid_contention_rejected(self):
        n = NetworkSpec("bad", 3.0, contention=lambda p: 1.5)
        with pytest.raises(ValueError):
            n.effective_bandwidth(1024, nodes=4)


class TestMessageTime:
    def test_latency_floor(self):
        n = STAMPEDE_EFFECTIVE
        assert n.message_time(0) == pytest.approx(2e-6)

    def test_large_message_bandwidth_dominated(self):
        n = STAMPEDE_EFFECTIVE
        t = n.message_time(3e9)  # ~1 s at 3 GB/s
        assert t == pytest.approx(1.0, rel=0.01)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            STAMPEDE_EFFECTIVE.message_time(-1)


class TestAlltoall:
    def test_single_node_is_free(self):
        assert STAMPEDE_EFFECTIVE.alltoall_time(1, 1 << 20) == 0.0

    def test_zero_bytes_is_free(self):
        assert STAMPEDE_EFFECTIVE.alltoall_time(16, 0) == 0.0

    def test_matches_paper_formula_for_long_messages(self):
        # §4: T_mpi(N) = 16N / bw_mpi with bw_mpi = P * 3 GB/s.
        # With long messages the ramp disappears and per-node injection is
        # (P-1)/P of the full 16N/P volume.
        p, n_elems = 32, (2 ** 27) * 32
        bytes_per_pair = 16 * n_elems / (p * p)
        t = STAMPEDE_EFFECTIVE.alltoall_time(p, bytes_per_pair)
        flat = 16 * n_elems / (p * 3e9)
        assert t == pytest.approx(flat * (p - 1) / p, rel=0.02)

    def test_short_packets_are_slower_per_byte(self):
        p = 64
        vol = 1 << 26
        t_few_big = STAMPEDE_EFFECTIVE.alltoall_time(p, vol / p)
        t_many_small = sum(
            STAMPEDE_EFFECTIVE.alltoall_time(p, vol / p / 8) for _ in range(8))
        assert t_many_small > t_few_big

    def test_aggregate_bandwidth(self):
        p = 8
        bw = STAMPEDE_EFFECTIVE.aggregate_alltoall_bandwidth(p, 1 << 24)
        assert 0 < bw <= p * 3.0

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            STAMPEDE_EFFECTIVE.alltoall_time(0, 100)


class TestValidation:
    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkSpec("bad", 0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            NetworkSpec("bad", 1.0, latency_us=-1)

    def test_presets(self):
        assert STAMPEDE_EFFECTIVE.bandwidth_gbps == 3.0
        assert FDR_INFINIBAND.bandwidth_gbps == 6.0

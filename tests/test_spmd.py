"""Tests for the generator-based SPMD runtime."""

import numpy as np
import pytest

from repro.cluster.simcluster import SimCluster
from repro.cluster.spmd import (
    AllToAll,
    Barrier,
    Bcast,
    Compute,
    SendRecvRing,
    SpmdError,
    run_spmd,
)


class TestBasics:
    def test_no_communication_program(self):
        def prog(ctx):
            return ctx.rank * 10
            yield  # pragma: no cover - makes it a generator

        assert run_spmd(SimCluster(3), prog) == [0, 10, 20]

    def test_compute_charges_rank_clock(self):
        def prog(ctx):
            yield Compute(1.0 + ctx.rank, label="work")
            return ctx.rank

        cl = SimCluster(2)
        run_spmd(cl, prog)
        assert cl.clocks == [1.0, 2.0]

    def test_extra_args_forwarded(self):
        def prog(ctx, base):
            return base + ctx.rank
            yield  # pragma: no cover

        assert run_spmd(SimCluster(2), prog, 100) == [100, 101]

    def test_rejects_non_generator(self):
        with pytest.raises(TypeError):
            run_spmd(SimCluster(1), lambda ctx: 42)


class TestCollectives:
    def test_alltoall_semantics(self):
        def prog(ctx):
            send = [np.array([ctx.rank * 10 + d], dtype=np.complex128)
                    for d in range(ctx.size)]
            recv = yield AllToAll(send)
            return [int(r[0].real) for r in recv]

        out = run_spmd(SimCluster(3), prog)
        # rank d receives src*10 + d from every src
        for d in range(3):
            assert out[d] == [0 * 10 + d, 1 * 10 + d, 2 * 10 + d]

    def test_ring_semantics(self):
        def prog(ctx):
            halo = yield SendRecvRing(
                to_left=np.array([100.0 + ctx.rank]),
                to_right=np.array([200.0 + ctx.rank]))
            from_left, from_right = halo
            return (float(from_left[0].real), float(from_right[0].real))

        out = run_spmd(SimCluster(4), prog)
        for r in range(4):
            assert out[r][0] == 200.0 + (r - 1) % 4
            assert out[r][1] == 100.0 + (r + 1) % 4

    def test_bcast(self):
        def prog(ctx):
            buf = np.arange(3, dtype=np.complex128) if ctx.rank == 1 else None
            got = yield Bcast(buf, root=1)
            return got.sum().real

        assert run_spmd(SimCluster(3), prog) == [3.0, 3.0, 3.0]

    def test_barrier_synchronizes(self):
        def prog(ctx):
            yield Compute(float(ctx.rank), label="skew")
            yield Barrier()
            return None

        cl = SimCluster(3)
        run_spmd(cl, prog)
        assert len(set(cl.clocks)) == 1

    def test_multiple_collectives_in_sequence(self):
        def prog(ctx):
            a = yield Bcast(np.array([1.0 + 0j]) if ctx.rank == 0 else None)
            yield Barrier()
            b = yield Bcast(np.array([2.0 + 0j]) if ctx.rank == 0 else None)
            return (a[0] + b[0]).real

        assert run_spmd(SimCluster(2), prog) == [3.0, 3.0]

    def test_byte_accounting_matches_communicator(self):
        def prog(ctx):
            send = [np.ones(4, dtype=np.complex128) for _ in range(ctx.size)]
            yield AllToAll(send)
            return None

        cl = SimCluster(4)
        run_spmd(cl, prog)
        assert cl.comm.bytes_moved == 4 * 3 * 64


class TestDiscipline:
    def test_mismatched_collectives_raise(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield Barrier()
            else:
                yield Bcast(np.zeros(1), root=1)
            return None

        with pytest.raises(SpmdError, match="disagree"):
            run_spmd(SimCluster(2), prog)

    def test_unbalanced_counts_raise(self):
        def prog(ctx):
            yield Barrier()
            if ctx.rank == 0:
                yield Barrier()
            return None

        with pytest.raises(SpmdError, match="unbalanced"):
            run_spmd(SimCluster(2), prog)

    def test_mismatched_labels_raise(self):
        def prog(ctx):
            yield Barrier(label=f"b{ctx.rank}")
            return None

        with pytest.raises(SpmdError, match="label"):
            run_spmd(SimCluster(2), prog)

    def test_bcast_root_disagreement(self):
        def prog(ctx):
            yield Bcast(np.zeros(1), root=ctx.rank)
            return None

        with pytest.raises(SpmdError, match="root"):
            run_spmd(SimCluster(2), prog)

    def test_alltoall_wrong_buffer_count(self):
        def prog(ctx):
            yield AllToAll([np.zeros(1)])
            return None

        with pytest.raises(SpmdError, match="buffer per rank"):
            run_spmd(SimCluster(2), prog)


class TestSpmdSoi:
    def test_matches_phase_structured(self, rng):
        from repro.core.params import SoiParams
        from repro.core.soi_dist import DistributedSoiFFT
        from repro.core.soi_spmd import spmd_soi_fft

        n, p = 8 * 448, 4
        params = SoiParams(n=n, n_procs=p, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        cl1 = SimCluster(p)
        y_spmd = spmd_soi_fft(cl1, params, x)
        cl2 = SimCluster(p)
        d = DistributedSoiFFT(cl2, params)
        y_phase = d.assemble(d(d.scatter(x)))
        assert np.allclose(y_spmd, y_phase, rtol=1e-13, atol=1e-11)
        assert cl1.comm.bytes_moved == cl2.comm.bytes_moved

    def test_matches_numpy(self, rng):
        from repro.core.params import SoiParams
        from repro.core.soi_spmd import spmd_soi_fft

        n, p = 8 * 448, 2
        params = SoiParams(n=n, n_procs=p, segments_per_process=4,
                           n_mu=8, d_mu=7, b=48)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        y = spmd_soi_fft(SimCluster(p), params, x)
        ref = np.fft.fft(x)
        assert np.linalg.norm(y - ref) / np.linalg.norm(ref) < 1e-4

    def test_validates_shapes(self, rng):
        from repro.core.params import SoiParams
        from repro.core.soi_spmd import spmd_soi_fft

        params = SoiParams(n=8 * 448, n_procs=2, segments_per_process=4,
                           n_mu=8, d_mu=7, b=48)
        with pytest.raises(ValueError):
            spmd_soi_fft(SimCluster(2), params, rng.standard_normal(10))
        with pytest.raises(ValueError):
            spmd_soi_fft(SimCluster(4), params,
                         rng.standard_normal(8 * 448) + 0j)

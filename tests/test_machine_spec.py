"""Tests for machine specs (paper Table 2)."""

import pytest

from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10, MachineSpec, scaled_machine


class TestTable2Values:
    def test_xeon_row(self):
        m = XEON_E5_2680
        assert (m.sockets, m.cores_per_socket, m.smt, m.simd_lanes) == (2, 8, 2, 4)
        assert m.clock_ghz == 2.7
        assert (m.l1_kb, m.l2_kb, m.l3_kb) == (32, 256, 20480)
        assert m.peak_gflops == 346.0
        assert m.stream_gbps == 79.0

    def test_phi_row(self):
        m = XEON_PHI_SE10
        assert (m.sockets, m.cores_per_socket, m.smt, m.simd_lanes) == (1, 61, 4, 8)
        assert m.clock_ghz == 1.1
        assert m.l3_kb is None
        assert m.peak_gflops == 1074.0
        assert m.stream_gbps == 150.0

    def test_bops_match_table2(self):
        assert XEON_E5_2680.bops == pytest.approx(0.23, abs=0.005)
        assert XEON_PHI_SE10.bops == pytest.approx(0.14, abs=0.005)

    def test_peak_consistent_with_core_counts(self):
        # peak ~= cores * clock * lanes * 2 (mul+add / FMA)
        for m in (XEON_E5_2680, XEON_PHI_SE10):
            derived = m.cores * m.clock_ghz * m.simd_lanes * 2
            assert derived == pytest.approx(m.peak_gflops, rel=0.01)

    def test_phi_roughly_3x_xeon_peak(self):
        assert XEON_PHI_SE10.peak_gflops / XEON_E5_2680.peak_gflops == \
            pytest.approx(3.1, abs=0.1)


class TestDerived:
    def test_cores_threads(self):
        assert XEON_E5_2680.cores == 16
        assert XEON_E5_2680.threads == 32
        assert XEON_PHI_SE10.cores == 61
        assert XEON_PHI_SE10.threads == 244

    def test_llc_private_flag(self):
        assert XEON_PHI_SE10.llc_private
        assert not XEON_E5_2680.llc_private

    def test_llc_capacity(self):
        assert XEON_PHI_SE10.llc_bytes_per_core == 512 * 1024
        assert XEON_E5_2680.llc_bytes_total == 20480 * 1024
        assert XEON_PHI_SE10.llc_bytes_total == 61 * 512 * 1024

    def test_flop_time(self):
        # 346 GFLOPS at 100% for 346e9 flops = 1 second
        assert XEON_E5_2680.flop_time(346e9) == pytest.approx(1.0)
        assert XEON_E5_2680.flop_time(346e9, efficiency=0.5) == pytest.approx(2.0)

    def test_mem_time(self):
        assert XEON_PHI_SE10.mem_time(150e9) == pytest.approx(1.0)

    def test_time_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            XEON_E5_2680.flop_time(1.0, efficiency=0)
        with pytest.raises(ValueError):
            XEON_E5_2680.mem_time(1.0, bw_efficiency=-1)


class TestScaledMachine:
    def test_scaling(self):
        m = scaled_machine(XEON_PHI_SE10, "2x phi", flops_scale=2.0, bw_scale=0.5)
        assert m.peak_gflops == pytest.approx(2148.0)
        assert m.stream_gbps == pytest.approx(75.0)
        assert m.name == "2x phi"

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec("bad", 1, 1, 1, 1, 1.0, 32, 256, None, 0.0, 1.0)
        with pytest.raises(ValueError):
            MachineSpec("bad", 0, 1, 1, 1, 1.0, 32, 256, None, 1.0, 1.0)

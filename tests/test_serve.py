"""Async serving gateway: coalescing, QoS, load generator, contract.

The load-bearing guarantees under test:

* a coalesced request is indistinguishable from one served alone —
  same spectrum bits, same outcome, same budget itemization;
* the four-outcome contract (ok / degraded / Overloaded /
  DeadlineExceeded) survives coalescing, including a batch that fails
  mid-execution: every member resolves exactly once, individually;
* QoS sheds the rate-limited / low-share class before the premium one
  and clips scavenger traffic off the most expensive rung;
* ``_Admission`` stays consistent when hammered from many threads;
* the virtual-time load generator is deterministic and conserves
  requests across outcomes at every operating point.
"""

import asyncio
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.deadline import DeadlineExceeded, Overloaded
from repro.resilience.ladder import DegradationLadder
from repro.resilience.server import _Admission
from repro.serve import (
    Arrival,
    AsyncSoiGateway,
    CoalesceKey,
    Coalescer,
    PendingRequest,
    QosClass,
    QosPolicy,
    ServiceModel,
    itemize_batch,
    poisson_arrivals,
    render_curves,
    serve_requests,
    simulate_serving,
    sweep_offered_load,
    trace_arrivals,
)
from repro.telemetry.metrics import MetricsRegistry

pytestmark = pytest.mark.serve

N = 896
SEG = 8


@pytest.fixture(scope="module")
def ladder():
    return DegradationLadder.standard(N, segments_per_process=SEG)


def fresh_qos(**kwargs):
    qos = QosPolicy(metrics=MetricsRegistry(), **kwargs)
    qos.assign("gold-tenant", "gold")
    qos.assign("silver-tenant", "silver")
    qos.assign("bronze-tenant", "bronze")
    return qos


def make_gateway(ladder, **kwargs):
    kwargs.setdefault("qos", fresh_qos())
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("window_seconds", 1e-4)
    return AsyncSoiGateway(ladder, **kwargs)


def signals(count, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((count, N))
            + 1j * rng.standard_normal((count, N))).astype(np.complex128)


# ---------------------------------------------------------------------------
# QoS policy
# ---------------------------------------------------------------------------

class TestQosPolicy:
    def test_unknown_tenant_gets_least_privileged_class(self):
        qos = fresh_qos()
        assert qos.class_of("never-seen").name == "bronze"

    def test_assign_rebinds_existing_state(self):
        qos = fresh_qos()
        qos.tenant_state("t")  # materialize as bronze
        qos.assign("t", "gold")
        assert qos.tenant_state("t").qos.name == "gold"

    def test_lower_tier_sheds_at_lower_depth(self):
        qos = fresh_qos()
        # depth 40 of 64: gold (share 1.0) admits, bronze (0.5) sheds
        assert qos.admit("gold-tenant", 0.0, 40, 64).name == "gold"
        with pytest.raises(Overloaded):
            qos.admit("bronze-tenant", 0.0, 40, 64)

    def test_rate_limit_sheds_before_queue(self):
        qos = fresh_qos()
        burst = int(qos.classes["bronze"].burst)
        for _ in range(burst):
            qos.admit("bronze-tenant", 0.0, 0, 64)
        with pytest.raises(Overloaded, match="rate limit"):
            qos.admit("bronze-tenant", 0.0, 0, 64)
        # tokens refill with time
        qos.admit("bronze-tenant", 1.0, 0, 64)

    def test_viable_window_clips_both_ends(self, ladder):
        bronze = QosClass("b", priority=2, best_rung=1)
        window = bronze.viable_window(ladder, 0.0)
        assert window and all(i >= 1 for i, _ in window)
        gold = QosClass("g", priority=0)
        assert gold.viable_window(ladder, 0.0)[0][0] == 0

    def test_outcome_counters_conserve(self):
        qos = fresh_qos()
        qos.admit("gold-tenant", 0.0, 0, 64)
        qos.record_outcome("gold-tenant", "ok", coalesced_with=3)
        qos.record_outcome("gold-tenant", "overloaded")
        qos.record_outcome("gold-tenant", "deadline_exceeded")
        snap = qos.snapshot()["gold-tenant"]
        assert snap["served"] == 1 and snap["coalesced"] == 1
        assert snap["shed"] == 1 and snap["deadline_exceeded"] == 1
        with pytest.raises(ValueError):
            qos.record_outcome("gold-tenant", "mystery")


# ---------------------------------------------------------------------------
# Coalescer mechanics
# ---------------------------------------------------------------------------

def req(x=None, enqueued_at=0.0):
    class _Budget:
        def __init__(self):
            self.charges = {}

    class _Deadline:
        def __init__(self):
            self.budget = _Budget()

        def charge(self, purpose, seconds):
            c = self.budget.charges
            c[purpose] = c.get(purpose, 0.0) + seconds

    return PendingRequest(
        x=x if x is not None else np.zeros(4, dtype=np.complex128),
        tenant="t", deadline=_Deadline(), min_snr_db=0.0, arrival=0.0,
        rung_index=0, projected=0.0, enqueued_at=enqueued_at)


class TestCoalescer:
    KEY = CoalesceKey(n=4, dtype="complex128", rung_index=0)

    def test_window_dispositions(self):
        c = Coalescer(max_batch=3)
        assert c.add(self.KEY, req()) == "first"
        assert c.add(self.KEY, req()) == "queued"
        assert c.add(self.KEY, req()) == "full"
        assert len(c.take(self.KEY)) == 3
        assert c.take(self.KEY) == []  # already flushed

    def test_keys_do_not_mix(self):
        c = Coalescer(max_batch=8)
        other = CoalesceKey(n=4, dtype="complex128", rung_index=1)
        c.add(self.KEY, req())
        c.add(other, req())
        assert len(c.take(self.KEY)) == 1
        assert len(c.take(other)) == 1

    def test_ratio_counts_requests_per_batch(self):
        c = Coalescer(max_batch=8)
        for _ in range(6):
            c.add(self.KEY, req())
        c.take(self.KEY)
        c.add(self.KEY, req())
        c.take(self.KEY)
        assert c.ratio == pytest.approx(3.5)  # 7 requests / 2 batches

    def test_take_all_drains_every_window(self):
        c = Coalescer(max_batch=8)
        other = CoalesceKey(n=4, dtype="complex128", rung_index=1)
        c.add(self.KEY, req())
        c.add(other, req())
        drained = dict(c.take_all())
        assert set(drained) == {self.KEY, other}
        assert c.pending == 0

    def test_itemize_splits_compute_and_charges_own_wait(self):
        members = [req(enqueued_at=1.0), req(enqueued_at=3.0)]
        itemize_batch(members, started_at=5.0, elapsed=4.0)
        for m, wait in zip(members, (4.0, 2.0)):
            assert m.coalesced_with == 1
            assert m.deadline.budget.charges["compute"] == pytest.approx(2.0)
            assert m.deadline.budget.charges["coalesce wait"] == (
                pytest.approx(wait))

    def test_rejects_degenerate_config(self):
        with pytest.raises(ValueError):
            Coalescer(max_batch=0)
        with pytest.raises(ValueError):
            Coalescer(window_seconds=-1.0)


# ---------------------------------------------------------------------------
# Gateway: differential contract (tentpole acceptance)
# ---------------------------------------------------------------------------

class TestGatewayDifferential:
    def run_mix(self, ladder, max_batch):
        xs = signals(6, seed=42)
        reqs = [{"x": xs[i], "tenant": "gold-tenant",
                 "deadline_seconds": 30.0} for i in range(len(xs))]
        gw = make_gateway(ladder, max_batch=max_batch,
                          clock=lambda: 500.0)  # frozen clock
        results = serve_requests(gw, reqs)
        asyncio.run(gw.close())
        return results

    def test_coalesced_indistinguishable_from_solo(self, ladder):
        solo = self.run_mix(ladder, max_batch=1)
        coal = self.run_mix(ladder, max_batch=6)
        for a, b in zip(solo, coal):
            assert np.array_equal(a.y, b.y)  # bitwise spectrum
            assert a.outcome == b.outcome == "ok"
            assert a.report.rung_index == b.report.rung_index == 0
            assert a.report.reason == b.report.reason

    def test_coalesced_matches_plan_reference(self, ladder):
        xs = signals(5, seed=7)
        reqs = [{"x": xs[i], "tenant": "gold-tenant",
                 "deadline_seconds": 30.0} for i in range(len(xs))]
        gw = make_gateway(ladder, max_batch=len(xs))
        results = serve_requests(gw, reqs)
        ref = gw.plan(0).batch(xs)
        asyncio.run(gw.close())
        for i, r in enumerate(results):
            assert np.array_equal(r.y, ref[i])

    def test_budget_itemization_under_frozen_clock(self, ladder):
        solo = self.run_mix(ladder, max_batch=1)
        coal = self.run_mix(ladder, max_batch=6)
        for a, b in zip(solo, coal):
            # frozen clock: compute share and wait are exactly 0 either
            # way, and the purposes charged are identical
            assert a.report is not None and b.report is not None

    def test_coalescing_actually_groups(self, ladder):
        xs = signals(8, seed=1)
        reqs = [{"x": xs[i], "tenant": "gold-tenant",
                 "deadline_seconds": 30.0} for i in range(len(xs))]
        gw = make_gateway(ladder, max_batch=8)
        serve_requests(gw, reqs)
        stats = gw.stats()
        asyncio.run(gw.close())
        assert stats["coalesce_ratio"] > 1.0
        assert stats["batches"] < len(xs)


# ---------------------------------------------------------------------------
# Gateway: four-outcome contract under coalescing
# ---------------------------------------------------------------------------

class TestGatewayOutcomes:
    def test_unknown_tenant_rides_bronze_rung(self, ladder):
        xs = signals(1)
        gw = make_gateway(ladder)
        [res] = serve_requests(
            gw, [{"x": xs[0], "deadline_seconds": 30.0}])
        asyncio.run(gw.close())
        assert res.outcome == "degraded"
        assert res.report.rung_index >= 1
        assert res.report.reason == "qos class window"

    def test_rate_limited_tenant_sheds_as_overloaded(self, ladder):
        xs = signals(1)
        qos = fresh_qos()
        qos.classes["bronze"] = QosClass(
            "bronze", priority=2, queue_share=0.5, rate_limit=1.0,
            burst=1.0, best_rung=1)
        qos.assign("noisy", "bronze")
        gw = make_gateway(ladder, qos=qos, clock=lambda: 100.0)
        reqs = [{"x": xs[0], "tenant": "noisy", "deadline_seconds": 30.0}
                for _ in range(3)]
        results = serve_requests(gw, reqs)
        asyncio.run(gw.close())
        outcomes = [type(r).__name__ if isinstance(r, Exception)
                    else r.outcome for r in results]
        assert outcomes.count("Overloaded") == 2  # burst of 1, no refill
        assert outcomes.count("degraded") == 1

    def test_impossible_deadline_sheds_at_admission(self, ladder):
        xs = signals(1)
        gw = make_gateway(ladder)
        [res] = serve_requests(
            gw, [{"x": xs[0], "tenant": "gold-tenant",
                  "deadline_seconds": 1e-12}])
        asyncio.run(gw.close())
        assert isinstance(res, Overloaded)

    def test_batch_failure_degrades_members_individually(self, ladder):
        """Satellite: partial batch failure mid-chaos.

        The first full-quality batch blows up; each member must retry
        alone one rung down and come back ``degraded`` with the batch
        failure named in the reason — never a lost future, never a
        double resolution.
        """
        xs = signals(4, seed=3)
        boom = {"armed": True}

        def chaos(key, members):
            if key.rung_index == 0 and boom["armed"]:
                boom["armed"] = False
                raise RuntimeError("injected batch fault")

        gw = make_gateway(ladder, max_batch=4, fault_injector=chaos)
        reqs = [{"x": xs[i], "tenant": "gold-tenant",
                 "deadline_seconds": 30.0} for i in range(len(xs))]
        results = serve_requests(gw, reqs)
        ref = gw.plan(1).batch(xs)
        asyncio.run(gw.close())
        for i, r in enumerate(results):
            assert r.outcome == "degraded"
            assert r.report.rung_index == 1
            assert "batch failure (RuntimeError)" in r.report.reason
            assert np.array_equal(r.y, ref[i])

    def test_batch_failure_with_no_fallback_sheds(self, ladder):
        xs = signals(2, seed=4)

        def chaos(key, members):
            raise RuntimeError("always down")

        gw = make_gateway(ladder, max_batch=2, fault_injector=chaos)
        reqs = [{"x": xs[i], "tenant": "gold-tenant",
                 "deadline_seconds": 30.0} for i in range(2)]
        results = serve_requests(gw, reqs)
        asyncio.run(gw.close())
        assert all(isinstance(r, Overloaded) for r in results)

    def test_rejects_wrong_shape(self, ladder):
        gw = make_gateway(ladder)

        async def go():
            try:
                await gw.submit(np.zeros(N + 1, dtype=np.complex128),
                                tenant="gold-tenant", deadline_seconds=1.0)
            finally:
                await gw.close()

        with pytest.raises(ValueError, match="1-D signal"):
            asyncio.run(go())

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.sampled_from(
        ["gold-tenant", "silver-tenant", "bronze-tenant"]),
        min_size=1, max_size=6),
        st.integers(min_value=0, max_value=3))
    def test_four_outcome_property_under_chaos(self, tenants, fail_round):
        """Every request resolves exactly once into one of the four
        contract outcomes, whatever mix of tenants and whichever batch
        the chaos hook kills."""
        ladder = DegradationLadder.standard(N, segments_per_process=SEG)
        xs = signals(len(tenants), seed=len(tenants))
        calls = {"count": 0}

        def chaos(key, members):
            calls["count"] += 1
            if calls["count"] == fail_round:
                raise RuntimeError("chaos")

        gw = make_gateway(ladder, max_batch=4, fault_injector=chaos)
        reqs = [{"x": xs[i], "tenant": t, "deadline_seconds": 30.0}
                for i, t in enumerate(tenants)]
        results = serve_requests(gw, reqs)
        stats = gw.stats()
        asyncio.run(gw.close())
        assert len(results) == len(tenants)
        for r in results:
            if isinstance(r, Exception):
                assert isinstance(r, (Overloaded, DeadlineExceeded))
            else:
                assert r.outcome in ("ok", "degraded")
                assert r.y.shape == (N,)
        # conservation: every admitted request is served or shed
        assert stats["served"] + stats["shed"] >= len(
            [r for r in results if not isinstance(r, Exception)])


# ---------------------------------------------------------------------------
# _Admission thread-safety (satellite: the lock fix)
# ---------------------------------------------------------------------------

class TestAdmissionThreaded:
    def test_hammer_counters_and_backlog(self, ladder):
        adm = _Admission(ladder, queue_limit=10 ** 6,
                         calibration_gain=0.3, metrics=MetricsRegistry())
        per_thread, n_threads = 200, 8
        errors = []

        def worker(seed):
            try:
                for i in range(per_thread):
                    idx, rung, projected = adm.admit(
                        0.0, 1e9, 0.0, lambda r: 1e-6)
                    adm.calibrate(1e-6, 1e-6 * (1 + (seed + i) % 3))
                    adm.release(projected)
                    if i % 2:
                        adm.record_served(idx, 1e-6)
                    else:
                        adm.record_shed()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = n_threads * per_thread
        # no lost read-modify-write: every outcome landed exactly once
        assert adm.served_count + adm.shed_count == total
        assert adm.served_count == total // 2
        assert adm.queued == 0  # every admit was released
        assert np.isfinite(adm.scaled(1.0)) and adm.scaled(1.0) > 0


# ---------------------------------------------------------------------------
# Load generator
# ---------------------------------------------------------------------------

class TestLoadGen:
    def test_poisson_is_deterministic_and_sorted(self):
        a = poisson_arrivals(1000.0, 500, seed=9,
                             tenants={"a": 1.0, "b": 3.0})
        b = poisson_arrivals(1000.0, 500, seed=9,
                             tenants={"a": 1.0, "b": 3.0})
        assert a == b
        assert all(x.t <= y.t for x, y in zip(a, a[1:]))
        weights = sum(1 for x in a if x.tenant == "b") / len(a)
        assert 0.6 < weights < 0.9  # 3:1 mix

    def test_trace_arrivals_roundtrip(self):
        rows = [(0.0, "t", 0.1, 0.0), (0.5, "u", 0.2, 20.0)]
        arr = trace_arrivals(rows)
        assert arr[0] == Arrival(0.0, "t", 0.1, 0.0)
        assert arr[1].min_snr_db == 20.0

    def test_simulation_conserves_requests(self, ladder):
        model = ServiceModel.analytic(ladder)
        arrivals = poisson_arrivals(3000.0, 1500, seed=2,
                                    tenants={"gold-tenant": 1.0,
                                             "bronze-tenant": 1.0})
        res = simulate_serving(ladder, arrivals, model=model,
                               qos=fresh_qos(), n_workers=2)
        assert (res.served + res.shed + res.deadline_exceeded
                == res.n_requests == 1500)
        assert res.throughput_rps > 0
        assert res.latency_p99 >= res.latency_p50 >= 0

    def test_simulation_is_deterministic(self, ladder):
        model = ServiceModel.analytic(ladder)
        arrivals = poisson_arrivals(2000.0, 800, seed=5,
                                    tenants={"gold-tenant": 1.0})

        def once():
            return simulate_serving(ladder, arrivals, model=model,
                                    qos=fresh_qos()).to_dict()

        assert once() == once()

    def test_coalescing_rises_with_load(self, ladder):
        model = ServiceModel.analytic(ladder)
        results = sweep_offered_load(
            ladder, (500.0, 8000.0), n_requests=1200, seed=0,
            tenants={"gold-tenant": 1.0}, deadline_seconds=0.05,
            model=model, qos_factory=fresh_qos)
        assert results[1].coalesce_ratio > results[0].coalesce_ratio

    def test_render_curves_mentions_every_point(self, ladder):
        model = ServiceModel.analytic(ladder)
        results = sweep_offered_load(
            ladder, (500.0, 2000.0), n_requests=400, seed=0,
            tenants={"gold-tenant": 1.0}, deadline_seconds=0.05,
            model=model, qos_factory=fresh_qos)
        text = render_curves(results, title="t")
        assert "800 simulated requests" in text
        assert text.count("#") > 0


# ---------------------------------------------------------------------------
# Bench + CLI smoke
# ---------------------------------------------------------------------------

class TestServeBench:
    def test_differential_gate_passes(self):
        from repro.bench.servebench import contract_differential

        out = contract_differential(n_requests=4)
        assert out["ok"]

    def test_cli_verb_smoke(self, tmp_path, capsys):
        from repro.cli import main

        curves = tmp_path / "curves.txt"
        code = main(["serve-bench", "--quick", "--output", str(curves)])
        out = capsys.readouterr().out
        assert "offered" in out and "coalesce" in out
        assert curves.exists()
        assert code == 0

"""Tests for accuracy metrics."""

import numpy as np
import pytest

from repro.util.validate import (
    max_abs_error,
    parseval_gap,
    relative_l2_error,
    relative_linf_error,
    require,
    rms_error,
    spectral_snr,
)


class TestRelativeL2:
    def test_zero_for_equal(self):
        a = np.arange(5.0)
        assert relative_l2_error(a, a) == 0.0

    def test_known_value(self):
        assert relative_l2_error([2.0], [1.0]) == pytest.approx(1.0)

    def test_scale_invariant(self):
        a, b = np.array([1.0, 2.0]), np.array([1.1, 2.2])
        assert relative_l2_error(10 * a, 10 * b) == \
            pytest.approx(relative_l2_error(a, b))

    def test_zero_reference(self):
        assert relative_l2_error([0.0], [0.0]) == 0.0
        assert relative_l2_error([1.0], [0.0]) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_l2_error(np.zeros(3), np.zeros(4))


class TestOtherMetrics:
    def test_linf(self):
        assert relative_linf_error([1.0, 2.5], [1.0, 2.0]) == pytest.approx(0.25)

    def test_max_abs(self):
        assert max_abs_error([1.0, -3.0], [0.0, 0.0]) == 3.0

    def test_rms(self):
        assert rms_error([1.0, -1.0], [0.0, 0.0]) == pytest.approx(1.0)

    def test_empty_arrays(self):
        assert max_abs_error([], []) == 0.0
        assert rms_error([], []) == 0.0


class TestSpectralSnr:
    def test_pinned_value(self):
        # signal energy 3^2 + 4^2 = 25, noise energy 0.5^2 = 0.25:
        # 10*log10(25/0.25) = exactly 20 dB
        ref = np.array([3.0, 4.0])
        actual = ref + np.array([0.0, 0.5])
        assert spectral_snr(actual, ref) == pytest.approx(20.0, abs=1e-12)

    def test_exact_match_is_infinite(self):
        a = np.array([1.0 + 2.0j, -3.0j])
        assert spectral_snr(a, a) == float("inf")

    def test_zero_reference_nonzero_actual(self):
        assert spectral_snr([1.0], [0.0]) == float("-inf")

    def test_scale_invariant(self, rng=np.random.default_rng(7)):
        r = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        a = r + 0.01 * rng.standard_normal(64)
        assert spectral_snr(3.0 * a, 3.0 * r) == \
            pytest.approx(spectral_snr(a, r))


class TestParsevalGap:
    def test_clean_fft_at_noise_floor(self):
        rng = np.random.default_rng(11)
        x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        assert parseval_gap(x, np.fft.fft(x)) < 1e-13

    def test_pinned_violation(self):
        # x = [1, 1j]: n*sum|x|^2 = 4; doubling the spectrum makes
        # sum|X|^2 = 16, so the gap is exactly |16 - 4| / 4 = 3
        x = np.array([1.0, 1.0j])
        assert parseval_gap(x, 2.0 * np.fft.fft(x)) == pytest.approx(3.0)

    def test_zero_and_empty_inputs(self):
        assert parseval_gap(np.zeros(4), np.zeros(4)) == 0.0
        assert parseval_gap(np.array([]), np.array([])) == 0.0
        assert parseval_gap(np.zeros(2), np.ones(2)) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            parseval_gap(np.zeros(3), np.zeros(4))

    def test_single_corrupted_element_is_visible(self):
        rng = np.random.default_rng(13)
        x = rng.standard_normal(512) + 1j * rng.standard_normal(512)
        f = np.fft.fft(x)
        clean = parseval_gap(x, f)
        f[100] += 3.0 * np.sqrt((np.abs(f) ** 2).mean())
        assert parseval_gap(x, f) > 1e6 * clean


class TestRequire:
    def test_passes(self):
        require(True, "never")

    def test_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

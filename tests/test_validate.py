"""Tests for accuracy metrics."""

import numpy as np
import pytest

from repro.util.validate import (
    max_abs_error,
    relative_l2_error,
    relative_linf_error,
    require,
    rms_error,
)


class TestRelativeL2:
    def test_zero_for_equal(self):
        a = np.arange(5.0)
        assert relative_l2_error(a, a) == 0.0

    def test_known_value(self):
        assert relative_l2_error([2.0], [1.0]) == pytest.approx(1.0)

    def test_scale_invariant(self):
        a, b = np.array([1.0, 2.0]), np.array([1.1, 2.2])
        assert relative_l2_error(10 * a, 10 * b) == \
            pytest.approx(relative_l2_error(a, b))

    def test_zero_reference(self):
        assert relative_l2_error([0.0], [0.0]) == 0.0
        assert relative_l2_error([1.0], [0.0]) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_l2_error(np.zeros(3), np.zeros(4))


class TestOtherMetrics:
    def test_linf(self):
        assert relative_linf_error([1.0, 2.5], [1.0, 2.0]) == pytest.approx(0.25)

    def test_max_abs(self):
        assert max_abs_error([1.0, -3.0], [0.0, 0.0]) == 3.0

    def test_rms(self):
        assert rms_error([1.0, -1.0], [0.0, 0.0]) == pytest.approx(1.0)

    def test_empty_arrays(self):
        assert max_abs_error([], []) == 0.0
        assert rms_error([], []) == 0.0


class TestRequire:
    def test_passes(self):
        require(True, "never")

    def test_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

"""Tests for the Bluestein chirp-z FFT."""

import numpy as np
import pytest

from repro.fft.bluestein import BluesteinPlan, bluestein_fft
from tests.conftest import random_complex


class TestBluestein:
    @pytest.mark.parametrize("n", [1, 2, 3, 11, 13, 17, 97, 101, 257, 1009])
    def test_primes_match_numpy(self, rng, n):
        x = random_complex(rng, n)
        assert np.allclose(bluestein_fft(x), np.fft.fft(x))

    @pytest.mark.parametrize("n", [22, 26, 33, 121])
    def test_composite_non_smooth(self, rng, n):
        x = random_complex(rng, n)
        assert np.allclose(bluestein_fft(x), np.fft.fft(x))

    def test_also_correct_for_smooth_sizes(self, rng):
        x = random_complex(rng, 64)
        assert np.allclose(bluestein_fft(x), np.fft.fft(x))

    @pytest.mark.parametrize("n", [13, 53])
    def test_roundtrip(self, rng, n):
        x = random_complex(rng, n)
        assert np.allclose(bluestein_fft(bluestein_fft(x), sign=+1), x)

    def test_batched(self, rng):
        x = random_complex(rng, 4, 19)
        assert np.allclose(bluestein_fft(x), np.fft.fft(x, axis=-1))

    def test_large_n_numerics(self, rng):
        # the (k*k) % (2n) chirp-table trick keeps large-n accuracy
        n = 10007
        x = random_complex(rng, n)
        ref = np.fft.fft(x)
        err = np.linalg.norm(bluestein_fft(x) - ref) / np.linalg.norm(ref)
        assert err < 1e-12

    def test_pad_size_is_sufficient_power_of_two(self):
        plan = BluesteinPlan(100)
        assert plan.m >= 199
        assert plan.m & (plan.m - 1) == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            BluesteinPlan(0)
        with pytest.raises(ValueError):
            BluesteinPlan(5, sign=3)
        with pytest.raises(ValueError):
            BluesteinPlan(5)(np.zeros(6, dtype=np.complex128))

"""Tests for the consolidated report generator."""

from pathlib import Path

import pytest

from repro.bench.report import build_report, write_report


@pytest.fixture(scope="module")
def report() -> str:
    return build_report()


class TestBuildReport:
    def test_contains_every_exhibit(self, report):
        for heading in ("Headline numbers", "Table 2", "Fig 3", "Fig 8",
                        "Fig 9", "Fig 10", "Fig 11", "Fig 12", "Accuracy"):
            assert heading in report

    def test_headline_values_present(self, report):
        assert "TFLOPS (paper: 6.7)" in report
        assert "K computer" in report

    def test_markdown_blocks_balanced(self, report):
        assert report.count("```") % 2 == 0

    def test_write_report(self, report, tmp_path):
        path = write_report(tmp_path / "R.md")
        assert Path(path).exists()
        assert Path(path).read_text() == report


class TestCliReport:
    def test_cli_command(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "CLI_REPORT.md"
        assert main(["report", "--output", str(out_file)]) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out

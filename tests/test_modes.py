"""Tests for the §7 coprocessor-usage-mode models."""

import pytest

from repro.cluster.pcie import PcieSpec
from repro.perfmodel.model import PAPER_SECTION4_EXAMPLE
from repro.perfmodel.modes import MODES, ModeModel


@pytest.fixture
def mm():
    return ModeModel(PAPER_SECTION4_EXAMPLE)


class TestOffload:
    def test_offload_about_25_percent_slower(self, mm):
        # §7: "Xeon Phis in offload mode are expected to be ~25% slower"
        assert mm.offload_slowdown() == pytest.approx(1.25, abs=0.07)

    def test_offload_breakdown_is_pci_plus_mpi(self, mm):
        b = mm.breakdown("offload")
        assert b.local_fft == 0.0 and b.convolution == 0.0
        assert b.other == pytest.approx(2 * mm.t_pci())
        assert b.mpi > 0

    def test_t_pci_formula(self, mm):
        n = mm.base.n_total
        expected = 16.0 * n / (mm.base.nodes * 6e9)
        assert mm.t_pci() == pytest.approx(expected)

    def test_faster_pcie_shrinks_gap(self):
        fast = ModeModel(PAPER_SECTION4_EXAMPLE, pcie=PcieSpec(16.0))
        slow = ModeModel(PAPER_SECTION4_EXAMPLE, pcie=PcieSpec(3.0))
        assert fast.offload_slowdown() < slow.offload_slowdown()


class TestHybrid:
    def test_hybrid_speedup_below_10_percent(self, mm):
        # §7: "only less than 10% speedups are expected"
        assert 1.0 < mm.hybrid_speedup() < 1.10

    def test_hybrid_does_not_touch_mpi(self, mm):
        sym = mm.breakdown("symmetric")
        hyb = mm.breakdown("hybrid")
        assert hyb.mpi == pytest.approx(sym.mpi)
        assert hyb.local_fft < sym.local_fft


class TestSymmetric:
    def test_symmetric_equals_base_soi_on_phi(self, mm):
        from repro.machine.spec import XEON_PHI_SE10

        assert mm.breakdown("symmetric").total == \
            pytest.approx(mm.base.soi_breakdown(XEON_PHI_SE10).total)


class TestDiagrams:
    def test_symmetric_diagram_hides_pcie(self, mm):
        lanes = dict(mm.timing_diagram("symmetric"))
        assert lanes["PCIe: hidden under MPI"] == 0.0

    def test_offload_diagram_has_two_pci_lanes(self, mm):
        rows = mm.timing_diagram("offload")
        pci = [t for label, t in rows if label.startswith("PCIe")]
        assert len(pci) == 2 and all(t > 0 for t in pci)

    def test_diagram_rejects_hybrid(self, mm):
        with pytest.raises(ValueError):
            mm.timing_diagram("hybrid")


class TestValidation:
    def test_modes_tuple(self):
        assert MODES == ("symmetric", "offload", "hybrid")

    def test_rejects_unknown_mode(self, mm):
        with pytest.raises(ValueError):
            mm.breakdown("turbo")

"""Tests for the Good-Thomas PFA and Rader algorithms."""

import numpy as np
import pytest

from repro.fft.bluestein import bluestein_fft
from repro.fft.prime_factor import PrimeFactorPlan, crt_maps, pfa_fft
from repro.fft.rader import RaderPlan, primitive_root, rader_fft
from tests.conftest import random_complex


class TestCrtMaps:
    def test_maps_are_permutations(self):
        for n1, n2 in ((4, 9), (5, 16), (7, 8)):
            im, om = crt_maps(n1, n2)
            n = n1 * n2
            assert sorted(im.tolist()) == list(range(n))
            assert sorted(om.tolist()) == list(range(n))

    def test_crt_property_of_output_map(self):
        n1, n2 = 4, 9
        _, om = crt_maps(n1, n2)
        for k1 in range(n1):
            for k2 in range(n2):
                k = om[k1 * n2 + k2]
                assert k % n1 == k1
                assert k % n2 == k2

    def test_rejects_non_coprime(self):
        with pytest.raises(ValueError, match="coprime"):
            crt_maps(4, 6)


class TestPfa:
    @pytest.mark.parametrize("n1,n2", [(4, 9), (8, 9), (5, 16), (7, 8),
                                       (3, 4), (1, 7), (9, 25)])
    def test_matches_numpy(self, rng, n1, n2):
        x = random_complex(rng, n1 * n2)
        assert np.allclose(pfa_fft(x, n1, n2), np.fft.fft(x))

    def test_inverse(self, rng):
        x = random_complex(rng, 36)
        assert np.allclose(pfa_fft(pfa_fft(x, 4, 9), 4, 9, sign=+1), x)

    def test_batched(self, rng):
        x = random_complex(rng, 3, 63)
        assert np.allclose(PrimeFactorPlan(7, 9)(x), np.fft.fft(x, axis=-1))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PrimeFactorPlan(4, 6)
        with pytest.raises(ValueError):
            PrimeFactorPlan(4, 9)(random_complex(rng, 35))


class TestPrimitiveRoot:
    @pytest.mark.parametrize("p,g", [(3, 2), (5, 2), (7, 3), (11, 2),
                                     (13, 2), (23, 5)])
    def test_known_roots(self, p, g):
        assert primitive_root(p) == g

    def test_root_generates_group(self):
        p = 17
        g = primitive_root(p)
        powers = {pow(g, q, p) for q in range(p - 1)}
        assert powers == set(range(1, p))

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            primitive_root(9)


class TestRader:
    @pytest.mark.parametrize("p", [3, 5, 7, 11, 13, 17, 31, 97, 101, 257])
    def test_matches_numpy(self, rng, p):
        x = random_complex(rng, p)
        assert np.allclose(rader_fft(x), np.fft.fft(x))

    def test_inverse(self, rng):
        x = random_complex(rng, 31)
        assert np.allclose(rader_fft(rader_fft(x), sign=+1), x)

    def test_agrees_with_bluestein(self, rng):
        """The two prime-length routes must coincide."""
        x = random_complex(rng, 103)
        assert np.allclose(rader_fft(x), bluestein_fft(x), atol=1e-10)

    def test_dc_bin_is_plain_sum(self, rng):
        x = random_complex(rng, 13)
        assert np.isclose(rader_fft(x)[0], x.sum())

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RaderPlan(9)
        with pytest.raises(ValueError):
            RaderPlan(2)
        with pytest.raises(ValueError):
            RaderPlan(7)(random_complex(rng, 8))
        with pytest.raises(ValueError):
            RaderPlan(7, sign=2)

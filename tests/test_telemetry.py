"""Tests for the telemetry subsystem: spans, metrics, exporters, profile."""

import json

import numpy as np
import pytest

from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from repro.core.soi_single import SoiFFT
from repro.machine.spec import XEON_E5_2680
from repro.telemetry import (
    NULL_RECORDER,
    NULL_REGISTRY,
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    SpanRecorder,
    Telemetry,
    chrome_category_totals,
    chrome_trace_events,
    chrome_trace_json,
    prometheus_text,
    render_stage_profile,
    stage_profile,
    telemetry_snapshot,
)
from repro.telemetry.metrics import get_registry, set_registry
from tests.conftest import random_complex


def run_distributed(rng, p=4, seed_n=8 * 448):
    params = SoiParams(n=seed_n, n_procs=p, segments_per_process=2,
                       n_mu=8, d_mu=7, b=48)
    cluster = SimCluster(p, metrics=MetricsRegistry())
    dist = DistributedSoiFFT(cluster, params)
    x = random_complex(rng, seed_n)
    dist(dist.scatter(x))
    return cluster, dist


class TestSpanRecorder:
    def test_charge_span_basics(self):
        rec = SpanRecorder("t1")
        s = rec.record(2, "fft", "compute", 1.0, 3.0, nbytes=64)
        assert s.trace_id == "t1"
        assert s.kind == "charge" and s.closed
        assert s.duration == pytest.approx(2.0)
        assert s.rank == 2 and s.nbytes == 64
        assert rec.charges == [s] and rec.spans == [s]

    def test_ids_are_deterministic_counters(self):
        rec = SpanRecorder()
        ids = [rec.record(0, "x", "compute", 0.0, 1.0).span_id
               for _ in range(3)]
        assert ids == [1, 2, 3]

    def test_charges_nest_under_open_scope(self):
        rec = SpanRecorder()
        scope = rec.begin(0, "request", t_start=0.0)
        charge = rec.record(0, "fft", "compute", 0.0, 1.0)
        rec.end(scope, 1.0)
        assert charge.parent_id == scope.span_id
        assert rec.children(scope) == [charge]
        assert rec.roots() == [scope]

    def test_scopes_are_per_rank(self):
        rec = SpanRecorder()
        scope = rec.begin(0, "request", t_start=0.0)
        other = rec.record(1, "fft", "compute", 0.0, 1.0)
        assert other.parent_id is None
        rec.end(scope, 1.0)

    def test_nested_scopes_lifo(self):
        rec = SpanRecorder()
        outer = rec.begin(0, "outer", t_start=0.0)
        inner = rec.begin(0, "inner", t_start=0.5)
        assert inner.parent_id == outer.span_id
        rec.end(inner, 1.0)
        assert rec.open_spans(0) == [outer]
        rec.end(outer, 2.0)
        assert rec.open_spans() == []

    def test_closing_outer_pops_inner(self):
        rec = SpanRecorder()
        outer = rec.begin(0, "outer", t_start=0.0)
        inner = rec.begin(0, "inner", t_start=0.5)
        rec.end(outer, 2.0)
        assert inner.closed and inner.t_end == pytest.approx(2.0)
        assert rec.open_spans() == []

    def test_end_rejects_charge_double_close_and_backwards(self):
        rec = SpanRecorder()
        charge = rec.record(0, "x", "compute", 0.0, 1.0)
        with pytest.raises(ValueError):
            rec.end(charge, 2.0)
        scope = rec.begin(0, "s", t_start=1.0)
        with pytest.raises(ValueError):
            rec.end(scope, 0.5)
        rec.end(scope, 2.0)
        with pytest.raises(ValueError):
            rec.end(scope, 3.0)

    def test_span_contextmanager_needs_clock(self):
        rec = SpanRecorder()
        with pytest.raises(ValueError):
            with rec.span(0, "x"):
                pass

    def test_span_contextmanager_uses_clock(self):
        rec = SpanRecorder()
        ticks = iter([1.0, 4.0])
        with rec.span(0, "step", clock=lambda: next(ticks)) as s:
            rec.record(0, "fft", "compute", 2.0, 3.0)
        assert s.t_start == 1.0 and s.t_end == 4.0
        assert rec.charges[0].parent_id == s.span_id

    def test_category_totals_count_charges_only(self):
        rec = SpanRecorder()
        scope = rec.begin(0, "request", category="compute", t_start=0.0)
        rec.record(0, "fft", "compute", 0.0, 2.0)
        rec.record(0, "a2a", "mpi", 2.0, 3.0)
        rec.end(scope, 3.0)
        assert rec.category_totals() == {
            "compute": pytest.approx(2.0), "mpi": pytest.approx(1.0)}

    def test_subtree_total(self):
        rec = SpanRecorder()
        outer = rec.begin(0, "outer", t_start=0.0)
        rec.record(0, "a", "compute", 0.0, 1.0)
        inner = rec.begin(0, "inner", t_start=1.0)
        rec.record(0, "b", "compute", 1.0, 3.0)
        rec.end(outer, 3.0)
        rec.record(0, "c", "compute", 3.0, 4.0)  # outside both scopes
        assert rec.subtree_total(inner) == pytest.approx(2.0)
        assert rec.subtree_total(outer) == pytest.approx(3.0)
        assert rec.subtree_total(outer, category="mpi") == 0.0

    def test_null_recorder_is_inert(self):
        assert NULL_RECORDER.record(0, "x", "compute", 0.0, 1.0) is None
        assert NULL_RECORDER.begin(0, "s") is None
        with NULL_RECORDER.span(0, "s") as s:
            assert s is None
        assert len(NULL_RECORDER) == 0
        assert NULL_RECORDER.category_totals() == {}


class TestSpanTreeInvariants:
    """Invariants over a real distributed run's span tree."""

    def test_children_within_parent_bounds(self, rng):
        cluster, _ = run_distributed(rng)
        rec = cluster.trace.recorder
        by_id = {s.span_id: s for s in rec.spans}
        assert rec.open_spans() == []
        for s in rec.spans:
            if s.parent_id is None:
                continue
            parent = by_id[s.parent_id]
            assert parent.t_start <= s.t_start + 1e-12
            assert s.t_end <= parent.t_end + 1e-12

    def test_child_rank_matches_parent_rank(self, rng):
        cluster, _ = run_distributed(rng)
        rec = cluster.trace.recorder
        by_id = {s.span_id: s for s in rec.spans}
        for s in rec.spans:
            if s.parent_id is not None:
                assert s.rank == by_id[s.parent_id].rank

    def test_flat_projection_matches_span_tree(self, rng):
        cluster, _ = run_distributed(rng)
        trace = cluster.trace
        tree = trace.recorder.category_totals()
        for cat, total in tree.items():
            assert trace.total(cat) == pytest.approx(total)
        # and nothing in the flat view is missing from the tree
        assert sum(tree.values()) == pytest.approx(trace.total())

    def test_request_scope_contains_all_rank_charges(self, rng):
        cluster, _ = run_distributed(rng)
        rec = cluster.trace.recorder
        roots = rec.roots()
        assert {s.name for s in roots} == {"soi request"}
        assert len(roots) == 4
        for root in roots:
            assert rec.subtree_total(root) == pytest.approx(
                cluster.trace.total(rank=root.rank))


class TestChromeExport:
    def _recorder(self):
        rec = SpanRecorder()
        scope = rec.begin(0, "request", t_start=0.0)
        rec.record(0, "fft", "compute", 0.0, 1.5, nbytes=128)
        rec.record(0, "a2a", "mpi", 1.5, 2.0)
        rec.end(scope, 2.0)
        rec.record(1, "fft", "compute", 0.0, 1.0)
        return rec

    def test_round_trips_through_json(self):
        doc = json.loads(chrome_trace_json(self._recorder()))
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_metadata_rows_name_process_and_ranks(self):
        events = chrome_trace_events(self._recorder(), process_name="p")
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"p", "rank 0", "rank 1"}

    def test_ts_monotone_per_tid(self):
        events = chrome_trace_events(self._recorder())
        last = {}
        for e in events:
            if e["ph"] != "X":
                continue
            assert e["ts"] >= last.get(e["tid"], float("-inf"))
            last[e["tid"]] = e["ts"]

    def test_category_totals_match_flat_projection(self):
        rec = self._recorder()
        totals = chrome_category_totals(chrome_trace_events(rec))
        assert totals == {
            "compute": pytest.approx(2.5), "mpi": pytest.approx(0.5)}
        assert totals == {k: pytest.approx(v)
                          for k, v in rec.category_totals().items()}

    def test_microsecond_units_and_identity_args(self):
        events = chrome_trace_events(self._recorder())
        fft = next(e for e in events
                   if e["ph"] == "X" and e["name"] == "fft"
                   and e["tid"] == 0)
        assert fft["ts"] == pytest.approx(0.0)
        assert fft["dur"] == pytest.approx(1.5e6)
        assert fft["args"]["nbytes"] == 128
        assert fft["args"]["parent_id"] is not None

    def test_open_scope_exports_zero_duration(self):
        rec = SpanRecorder()
        rec.begin(0, "hung", t_start=5.0)
        events = chrome_trace_events(rec)
        hung = next(e for e in events if e.get("name") == "hung")
        assert hung["dur"] == 0.0

    def test_accepts_trace_via_recorder_attribute(self, rng):
        cluster, _ = run_distributed(rng)
        events = chrome_trace_events(cluster.trace)
        totals = chrome_category_totals(events)
        for cat, total in totals.items():
            assert cluster.trace.total(cat) == pytest.approx(total)

    def test_rejects_sources_without_recorder(self):
        with pytest.raises(TypeError):
            chrome_trace_events(object())


class TestMetrics:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_events_total")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("repro_test_queue_depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == pytest.approx(3.0)

    def test_histogram_quantiles_bounded_by_observations(self):
        h = MetricsRegistry().histogram("repro_test_latency_seconds")
        for v in (0.001, 0.002, 0.004, 0.1):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(sum((0.001, 0.002, 0.004, 0.1)) / 4)
        assert 0.001 <= h.p50 <= 0.1
        assert h.p50 <= h.p95 <= h.p99 <= 0.1

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_test_bad_seconds",
                                        bounds=(2.0, 1.0))

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_test_hits_total")
        b = reg.counter("repro_test_hits_total")
        assert a is b

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_hits_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_test_hits_total")

    @pytest.mark.parametrize("bad", [
        "hits_total",              # missing repro_ prefix
        "repro_hits",              # only one segment after the prefix
        "repro_Test_hits_total",   # uppercase
        "repro test total",        # spaces
    ])
    def test_name_convention_enforced(self, bad):
        with pytest.raises(ValueError):
            MetricsRegistry().counter(bad)

    def test_null_registry_hands_out_inert_instruments(self):
        c = NULL_REGISTRY.counter("not even a valid name")
        c.inc(10)
        assert c.value == 0.0
        h = NULL_REGISTRY.histogram("repro_test_latency_seconds")
        h.observe(1.0)
        assert h.count == 0 and h.quantile(0.5) == 0.0

    def test_collect_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("repro_z_last_total")
        reg.counter("repro_a_first_total")
        assert [i.name for i in reg.collect()] == [
            "repro_a_first_total", "repro_z_last_total"]

    def test_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_hits_total", help="hits").inc(2)
        snap = reg.snapshot()
        assert snap["repro_test_hits_total"] == {
            "kind": "counter", "help": "hits", "value": 2.0}
        reg.reset()
        assert reg.snapshot() == {}

    def test_default_registry_is_swappable(self):
        mine = MetricsRegistry()
        prev = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(prev)


class TestExporters:
    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_hits_total", help="hit count").inc(3)
        reg.gauge("repro_test_queue_depth").set(2)
        h = reg.histogram("repro_test_latency_seconds", bounds=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.05)
        text = prometheus_text(reg)
        assert "# HELP repro_test_hits_total hit count" in text
        assert "# TYPE repro_test_hits_total counter" in text
        assert "repro_test_hits_total 3" in text
        assert "repro_test_queue_depth 2" in text
        # cumulative buckets
        assert 'repro_test_latency_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_test_latency_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_test_latency_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_test_latency_seconds_count 2" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_snapshot_is_versioned_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_hits_total").inc()
        rec = SpanRecorder()
        rec.record(0, "fft", "compute", 0.0, 1.0)
        doc = telemetry_snapshot(reg, rec, meta={"run": "x"})
        assert doc["schema"] == SNAPSHOT_SCHEMA
        assert doc["meta"] == {"run": "x"}
        assert doc["spans"]["count"] == 1
        assert doc["spans"]["category_totals"] == {
            "compute": pytest.approx(1.0)}
        json.dumps(doc)  # must serialize as-is


class TestTelemetryBundle:
    def test_stage_records_span_and_histogram(self):
        telem = Telemetry(recorder=SpanRecorder(),
                          metrics=MetricsRegistry())
        telem.stage("segment-fft", 1.0, 3.0, nbytes=1000)
        s = telem.recorder.charges[0]
        assert s.name == "soi segment-fft" and s.category == "compute"
        h = telem.metrics.get("repro_core_stage_segment_fft_seconds")
        assert h.count == 1 and h.sum == pytest.approx(2.0)

    def test_machine_enables_roofline_gauges(self):
        telem = Telemetry(recorder=SpanRecorder(),
                          metrics=MetricsRegistry(),
                          machine=XEON_E5_2680)
        telem.stage("conv", 0.0, 1.0, nbytes=2 * 10 ** 9)
        assert telem.metrics.get(
            "repro_core_stage_conv_gbps").value == pytest.approx(2.0)
        assert telem.metrics.get(
            "repro_core_roofline_ceiling_gbps").value == pytest.approx(
                XEON_E5_2680.stream_gbps)

    def test_transform_done_counts(self):
        telem = Telemetry(recorder=SpanRecorder(),
                          metrics=MetricsRegistry())
        telem.transform_done(4, 1e6)
        telem.transform_done(1, 2e5)
        assert telem.metrics.get(
            "repro_core_transforms_total").value == 5
        assert telem.metrics.get(
            "repro_core_flops_total").value == pytest.approx(1.2e6)

    def test_instrumented_soi_matches_plain(self, rng):
        params = SoiParams(n=8 * 448, n_procs=1, segments_per_process=8,
                           n_mu=8, d_mu=7, b=48)
        x = random_complex(rng, 8 * 448)
        plain = SoiFFT(params)(x)
        telem = Telemetry(recorder=SpanRecorder(),
                          metrics=MetricsRegistry())
        instrumented = SoiFFT(params, telemetry=telem)(x)
        assert np.array_equal(plain, instrumented)
        stages = {s.name for s in telem.recorder.charges}
        assert {"soi conv", "soi permute", "soi segment-fft",
                "soi demod"} <= stages
        assert telem.metrics.get("repro_core_transforms_total").value == 1


class TestStageProfile:
    def test_profile_of_distributed_run(self, rng):
        cluster, dist = run_distributed(rng)
        profiles = stage_profile(dist)
        names = [pr.stage for pr in profiles]
        assert names[:6] == ["ghost exchange", "convolution", "checkpoint",
                             "all-to-all", "local FFT", "demodulation"]
        by_name = {pr.stage: pr for pr in profiles}
        for stage in ("convolution", "local FFT", "demodulation"):
            assert by_name[stage].predicted_s > 0.0
            assert by_name[stage].measured_s > 0.0
            assert by_name[stage].retry_s == 0.0

    def test_measured_matches_trace_total(self, rng):
        cluster, dist = run_distributed(rng)
        by_name = {pr.stage: pr for pr in stage_profile(dist)}
        assert by_name["local FFT"].measured_s * 4 == pytest.approx(
            cluster.trace.total(label="local FFT"))

    def test_render_contains_every_stage_and_total(self, rng):
        _, dist = run_distributed(rng)
        text = render_stage_profile(stage_profile(dist))
        for stage in ("convolution", "all-to-all", "total"):
            assert stage in text

"""Tests for fat-tree and torus topology models."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import FatTree, Torus, alltoall_contention


class TestFatTree:
    def test_full_bisection_has_no_contention(self):
        ft = FatTree(radix=36, oversubscription=1.0)
        for nodes in (4, 64, 512):
            assert ft.contention(nodes) == 1.0

    def test_oversubscription_halves(self):
        ft = FatTree(radix=36, oversubscription=2.0)
        assert ft.contention(512) == pytest.approx(0.5)

    def test_small_cluster_under_one_leaf_is_free(self):
        ft = FatTree(radix=36, oversubscription=4.0)
        assert ft.contention(8) == 1.0

    def test_graph_is_connected(self):
        g = FatTree(radix=8).graph(16)
        assert nx.is_connected(g)
        assert all(n in g for n in range(16))

    def test_graph_two_hops_within_leaf(self):
        g = FatTree(radix=8).graph(8)
        assert nx.shortest_path_length(g, 0, 1) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FatTree(radix=1)
        with pytest.raises(ValueError):
            FatTree(oversubscription=0.5)


class TestTorus:
    def test_nodes(self):
        assert Torus((4, 4, 4)).nodes == 64

    def test_graph_degree(self):
        t = Torus((4, 4))
        g = t.graph()
        assert all(d == 4 for _, d in g.degree())

    def test_bisection_links(self):
        # 4x4 torus: cut along a dim of 4 -> 4 nodes/slice * 2 wrap = 8 links
        assert Torus((4, 4)).bisection_links() == 8

    def test_contention_shrinks_with_scale(self):
        small = Torus((4, 4, 4)).contention()
        big = Torus((16, 16, 16)).contention()
        assert big < small <= 1.0

    def test_contention_capped_at_one(self):
        assert Torus((2,)).contention() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Torus(())
        with pytest.raises(ValueError):
            Torus((0, 4))


class TestHelper:
    def test_alltoall_contention_dispatch(self):
        assert alltoall_contention(FatTree(), 16) == 1.0
        assert 0 < alltoall_contention(Torus((8, 8)), 64) <= 1.0


class TestFaultDomains:
    def test_fat_tree_domains_are_leaf_blocks(self):
        dom = FatTree(radix=8).domains(16)
        assert dom.kind == "fat-tree leaf"
        assert dom.groups == ((0, 1, 2, 3), (4, 5, 6, 7),
                              (8, 9, 10, 11), (12, 13, 14, 15))
        assert dom.members(1) == (4, 5, 6, 7)
        assert dom.domain_of(9) == 2
        assert dom.domain_of(99) == -1

    def test_torus_domains_are_axis_slabs(self):
        t = Torus((2, 4, 2))
        dom = t.domains()
        assert dom.kind == "torus axis-1 slab"
        assert dom.n_domains == 4
        # C-order rank numbering: slab c holds ranks with middle coord c
        for c in range(4):
            assert dom.members(c) == (2 * c, 2 * c + 1,
                                      8 + 2 * c, 8 + 2 * c + 1)

    def test_domains_reject_overlap_and_empties(self):
        from repro.cluster.topology import FaultDomains

        with pytest.raises(ValueError):
            FaultDomains(kind="x", groups=((0, 1), (1, 2)))
        with pytest.raises(ValueError):
            FaultDomains(kind="x", groups=((0,), ()))

    def test_spread_order_round_robins_across_domains(self):
        dom = FatTree(radix=4).domains(8)  # {0,1} {2,3} {4,5} {6,7}
        assert dom.spread_order([0, 1, 2, 3, 4, 5, 6, 7]) == \
            [0, 2, 4, 6, 1, 3, 5, 7]
        # a dead domain just drops out of the rotation
        assert dom.spread_order([0, 1, 4, 5, 6, 7]) == [0, 4, 6, 1, 5, 7]

    def test_equal_groups_balanced_and_ragged(self):
        dom = FatTree(radix=4).domains(8)
        assert dom.equal_groups(list(range(8))) == \
            [[0, 1], [2, 3], [4, 5], [6, 7]]
        assert dom.equal_groups([0, 1, 4, 5]) == [[0, 1], [4, 5]]
        assert dom.equal_groups([0, 1, 2, 4, 5]) is None  # ragged
        assert dom.equal_groups([0, 1]) is None  # a single group


class TestTopologyProperties:
    """Hypothesis: contention monotonicity, bisection vs graph cuts,
    and the domain-partition algebra."""

    @given(st.integers(2, 64), st.sampled_from([1.0, 1.5, 2.0, 4.0]),
           st.integers(1, 2048), st.integers(0, 2048))
    @settings(max_examples=50, deadline=None)
    def test_fat_tree_contention_is_monotone(self, radix, over, n1, dn):
        ft = FatTree(radix=radix, oversubscription=over)
        assert ft.contention(n1) >= ft.contention(n1 + dn)

    @given(st.lists(st.integers(1, 5), min_size=1, max_size=3),
           st.integers(1, 512), st.integers(0, 512))
    @settings(max_examples=50, deadline=None)
    def test_torus_contention_is_monotone(self, dims, n1, dn):
        t = Torus(tuple(dims))
        assert t.contention(n1) >= t.contention(n1 + dn)

    @given(st.sampled_from([4, 6, 8]),
           st.lists(st.integers(1, 3), min_size=0, max_size=2))
    @settings(max_examples=30, deadline=None)
    def test_torus_bisection_matches_graph_cut(self, longest, others):
        """bisection_links == edges crossing the balanced cut along the
        longest axis, counted on the explicit networkx torus graph."""
        dims = tuple([longest] + others)  # unique strict maximum
        t = Torus(dims)
        g = t.graph()
        # 1-D grids use bare ints as nodes; normalize to tuples
        coord = {n: n if isinstance(n, tuple) else (n,) for n in g.nodes}
        width = len(next(iter(coord.values())))
        pos = next(i for i in range(width)
                   if max(c[i] for c in coord.values()) + 1 == longest)
        half = {n for n in g.nodes if coord[n][pos] < longest // 2}
        rest = set(g.nodes) - half
        assert nx.cut_size(g, half, rest) == t.bisection_links()

    def test_extent_two_wrap_edges_collapse(self):
        """At extent 2 the wraparound is the same physical link, so the
        bisection counts it once — matching the simple graph's cut."""
        t = Torus((2, 2))
        g = t.graph()
        half = {n for n in g.nodes if n[0] == 0}
        assert nx.cut_size(g, half, set(g.nodes) - half) == \
            t.bisection_links() == 2

    @given(st.integers(2, 32), st.integers(1, 300))
    @settings(max_examples=50, deadline=None)
    def test_fat_tree_domains_partition_the_ranks(self, radix, nodes):
        dom = FatTree(radix=radix).domains(nodes)
        flat = [r for g in dom.groups for r in g]
        assert sorted(flat) == list(range(nodes))
        assert len(flat) == len(set(flat))
        down = max(1, radix // 2)
        assert all(len(g) <= down for g in dom.groups)
        for i, g in enumerate(dom.groups):
            for r in g:
                assert dom.domain_of(r) == i

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_torus_domains_partition_the_ranks(self, dims):
        t = Torus(tuple(dims))
        dom = t.domains()
        flat = sorted(r for g in dom.groups for r in g)
        assert flat == list(range(t.nodes))
        assert dom.n_domains == max(dims)

    @given(st.integers(2, 16), st.integers(2, 100), st.data())
    @settings(max_examples=50, deadline=None)
    def test_spread_order_is_a_permutation(self, radix, nodes, data):
        dom = FatTree(radix=radix).domains(nodes)
        subset = data.draw(st.lists(st.integers(0, nodes - 1),
                                    unique=True, min_size=1))
        out = dom.spread_order(subset)
        assert sorted(out) == sorted(subset)
        # the head of the order touches every represented domain once
        doms_present = {dom.domain_of(r) for r in subset}
        head = out[:len(doms_present)]
        assert len({dom.domain_of(r) for r in head}) == len(head)

    @given(st.integers(2, 16), st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_equal_groups_either_balanced_or_none(self, radix, leaves):
        down = max(1, radix // 2)
        nodes = down * leaves
        dom = FatTree(radix=radix).domains(nodes)
        groups = dom.equal_groups(list(range(nodes)))
        if groups is not None:
            assert len({len(g) for g in groups}) == 1
            assert sorted(r for g in groups for r in g) == \
                list(range(nodes))
        else:
            # only degenerate shapes decline: one group or width-1 leaves
            assert leaves < 2 or down < 2

"""Tests for fat-tree and torus topology models."""

import networkx as nx
import pytest

from repro.cluster.topology import FatTree, Torus, alltoall_contention


class TestFatTree:
    def test_full_bisection_has_no_contention(self):
        ft = FatTree(radix=36, oversubscription=1.0)
        for nodes in (4, 64, 512):
            assert ft.contention(nodes) == 1.0

    def test_oversubscription_halves(self):
        ft = FatTree(radix=36, oversubscription=2.0)
        assert ft.contention(512) == pytest.approx(0.5)

    def test_small_cluster_under_one_leaf_is_free(self):
        ft = FatTree(radix=36, oversubscription=4.0)
        assert ft.contention(8) == 1.0

    def test_graph_is_connected(self):
        g = FatTree(radix=8).graph(16)
        assert nx.is_connected(g)
        assert all(n in g for n in range(16))

    def test_graph_two_hops_within_leaf(self):
        g = FatTree(radix=8).graph(8)
        assert nx.shortest_path_length(g, 0, 1) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FatTree(radix=1)
        with pytest.raises(ValueError):
            FatTree(oversubscription=0.5)


class TestTorus:
    def test_nodes(self):
        assert Torus((4, 4, 4)).nodes == 64

    def test_graph_degree(self):
        t = Torus((4, 4))
        g = t.graph()
        assert all(d == 4 for _, d in g.degree())

    def test_bisection_links(self):
        # 4x4 torus: cut along a dim of 4 -> 4 nodes/slice * 2 wrap = 8 links
        assert Torus((4, 4)).bisection_links() == 8

    def test_contention_shrinks_with_scale(self):
        small = Torus((4, 4, 4)).contention()
        big = Torus((16, 16, 16)).contention()
        assert big < small <= 1.0

    def test_contention_capped_at_one(self):
        assert Torus((2,)).contention() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Torus(())
        with pytest.raises(ValueError):
            Torus((0, 4))


class TestHelper:
    def test_alltoall_contention_dispatch(self):
        assert alltoall_contention(FatTree(), 16) == 1.0
        assert 0 < alltoall_contention(Torus((8, 8)), 64) <= 1.0

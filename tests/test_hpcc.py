"""Tests for HPCC G-FFT validation."""

import numpy as np
import pytest

from repro.core.params import SoiParams
from repro.core.soi_single import SoiFFT
from repro.fft.plan import fft, ifft
from repro.util.hpcc import HPCC_RESIDUAL_THRESHOLD, gfft_residual, validate_gfft
from tests.conftest import random_complex


class TestResidual:
    def test_zero_for_identical(self, rng):
        x = random_complex(rng, 64)
        assert gfft_residual(x, x) == 0.0

    def test_scale_invariant(self, rng):
        x = random_complex(rng, 64)
        y = x + 1e-14
        # scaling introduces its own rounding at the eps level, so the
        # invariance is only up to a few percent at tiny residuals
        assert gfft_residual(10 * x, 10 * y) == \
            pytest.approx(gfft_residual(x, y), rel=0.05)

    def test_zero_signal(self):
        z = np.zeros(16, dtype=np.complex128)
        assert gfft_residual(z, z) == 0.0
        assert gfft_residual(z, z + 1.0) == float("inf")

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            gfft_residual(random_complex(rng, 4), random_complex(rng, 5))
        with pytest.raises(ValueError):
            gfft_residual(np.zeros(1, dtype=complex),
                          np.zeros(1, dtype=complex))


class TestExactKernelsPass:
    @pytest.mark.parametrize("n", [256, 4096, 448])
    def test_library_fft_passes_hpcc(self, rng, n):
        x = random_complex(rng, n)
        passed, residual = validate_gfft(x, ifft(fft(x)))
        assert passed
        assert residual < HPCC_RESIDUAL_THRESHOLD


class TestSoiAccuracyConcession:
    def test_soi_mu87_fails_strict_threshold(self, rng):
        """mu = 8/7's ~1e-8 stopband sits orders above eps: the documented
        accuracy concession."""
        p = SoiParams(n=8 * 448, n_procs=1, segments_per_process=8,
                      n_mu=8, d_mu=7, b=72)
        f = SoiFFT(p)
        x = random_complex(rng, p.n)
        passed, residual = validate_gfft(x, f.inverse(f(x)))
        assert not passed
        assert residual > 1e4

    def test_soi_mu54_is_much_closer(self, rng):
        p = SoiParams(n=2 ** 13, n_procs=1, segments_per_process=8,
                      n_mu=5, d_mu=4, b=72)
        f = SoiFFT(p)
        x = random_complex(rng, p.n)
        _, residual = validate_gfft(x, f.inverse(f(x)))
        assert residual < 5e3  # within ~2 orders of the strict bar

    def test_soi_passes_stopband_scaled_threshold(self, rng):
        """With the documented SOI-appropriate threshold, runs validate."""
        p = SoiParams(n=8 * 448, n_procs=1, segments_per_process=8,
                      n_mu=8, d_mu=7, b=72)
        f = SoiFFT(p)
        x = random_complex(rng, p.n)
        eps = np.finfo(np.float64).eps
        threshold = 100 * f.expected_stopband / eps
        passed, _ = validate_gfft(x, f.inverse(f(x)), threshold=threshold)
        assert passed

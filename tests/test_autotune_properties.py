"""Property-based differential tests for the plan autotuner.

The contract under test: the autotuner may only change *speed*, never
*answers*.  Every candidate the search may pick — any radix ladder, any
strategy, any SOI configuration that survives the accuracy guard — must
produce output equivalent to the default plan's, across a randomized
(n, dtype, candidate) matrix that includes r2c and Bluestein sizes.
Equivalence is bitwise when tuned and default configurations coincide,
and within floating-point schedule tolerance otherwise (different radix
orders legitimately round differently).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.autotune import (TuneBudget, autotune, default_radices,
                                default_soi_config, kernel_candidates,
                                soi_candidates, tune_kernel, tune_soi)
from repro.fft.bluestein import BluesteinPlan
from repro.fft.plan import (cache_clear, get_active_wisdom, get_plan,
                            set_active_wisdom)
from repro.fft.real import rfft
from repro.fft.stockham import StockhamPlan
from repro.fft.wisdom import Wisdom, machine_fingerprint
from tests.conftest import random_complex

pytestmark = pytest.mark.autotune

# double-precision schedule tolerance: different radix orders round
# differently but agree to ~n*eps; 1e-9 relative is orders above that
TOL = 1e-9

SMOOTH_SIZES = [16, 48, 64, 120, 256, 360, 504, 1008, 1024]
BLUESTEIN_SIZES = [11, 97, 1009]  # primes: no smooth factorization


@pytest.fixture(autouse=True)
def _no_leaked_wisdom():
    """Every test starts and ends with no wisdom installed."""
    prev = set_active_wisdom(None)
    yield
    set_active_wisdom(prev)
    cache_clear()


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    scale = float(np.max(np.abs(b))) or 1.0
    return float(np.max(np.abs(a - b))) / scale


class TestKernelCandidateEquivalence:
    """Any candidate the search may pick must match the default plan."""

    @given(st.sampled_from(SMOOTH_SIZES), st.integers(0, 7),
           st.integers(0, 2 ** 31 - 1), st.sampled_from([-1, +1]))
    @settings(max_examples=25, deadline=None)
    def test_every_candidate_matches_default(self, n, cand_idx, seed, sign):
        cands = kernel_candidates(n)
        cand = cands[cand_idx % len(cands)]
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        base = StockhamPlan(n, sign)(x[None, :])[0]
        tuned = StockhamPlan(n, sign, radices=cand["radices"])(x[None, :])[0]
        assert _rel_err(tuned, base) < TOL

    @given(st.sampled_from(SMOOTH_SIZES), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_complex64_candidates_match_default(self, n, seed):
        rng = np.random.default_rng(seed)
        x = (rng.standard_normal(n)
             + 1j * rng.standard_normal(n)).astype(np.complex64)
        base = StockhamPlan(n, dtype=np.complex64)(x[None, :])[0]
        for cand in kernel_candidates(n, np.complex64):
            tuned = StockhamPlan(n, radices=cand["radices"],
                                 dtype=np.complex64)(x[None, :])[0]
            assert _rel_err(tuned, base) < 1e-4  # single precision

    @pytest.mark.parametrize("n", BLUESTEIN_SIZES)
    def test_bluestein_sizes_have_one_candidate(self, n, rng):
        cands = kernel_candidates(n)
        assert cands == [{"strategy": "bluestein", "radices": []}]
        # the only candidate IS the default: tuned output is bitwise
        # identical because it is the same plan construction
        x = random_complex(rng, n)
        a = BluesteinPlan(n)(x[None, :])[0]
        b = BluesteinPlan(n)(x[None, :])[0]
        assert np.array_equal(a, b)

    def test_default_candidate_is_first(self):
        for n in SMOOTH_SIZES:
            assert kernel_candidates(n)[0]["radices"] == default_radices(n)


class TestTunedPlanEquivalence:
    """End-to-end: tune -> install wisdom -> get_plan answers match."""

    @given(st.sampled_from([64, 360, 1008]), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_tuned_get_plan_matches_untuned(self, n, seed):
        res = tune_kernel(n, reps=1, batch=1,
                          budget=TuneBudget(seconds=5.0))
        w = Wisdom()
        w.record_kernel(n, res.sign, res.dtype, machine_fingerprint(),
                        res.winner["strategy"], res.winner["radices"])
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        set_active_wisdom(None)
        base = get_plan(n)(x[None, :])[0]
        set_active_wisdom(w)
        tuned = get_plan(n)(x[None, :])[0]
        set_active_wisdom(None)
        assert _rel_err(tuned, base) < TOL

    def test_tuned_plan_uses_winning_radices(self):
        res = tune_kernel(256, reps=1, batch=1)
        w = Wisdom()
        w.record_kernel(256, -1, "complex128", machine_fingerprint(),
                        res.winner["strategy"], res.winner["radices"])
        set_active_wisdom(w)
        plan = get_plan(256)
        set_active_wisdom(None)
        assert list(plan.radices) == list(res.winner["radices"])

    def test_set_active_wisdom_returns_previous_and_clears_cache(self):
        w1, w2 = Wisdom(), Wisdom()
        assert set_active_wisdom(w1) is None
        get_plan(64)
        assert set_active_wisdom(w2) is w1
        assert get_active_wisdom() is w2
        assert set_active_wisdom(None) is w2

    def test_r2c_path_consumes_wisdom_and_matches(self, rng):
        # rfft plans the half-length complex transform through get_plan,
        # so installed wisdom must flow through without changing answers
        n = 1008  # half = 504, smooth
        res = tune_kernel(n // 2, reps=1, batch=1)
        w = Wisdom()
        w.record_kernel(n // 2, -1, "complex128", machine_fingerprint(),
                        res.winner["strategy"], res.winner["radices"])
        x = rng.standard_normal(n)
        set_active_wisdom(None)
        base = rfft(x)
        cache_clear()
        set_active_wisdom(w)
        tuned = rfft(x)
        set_active_wisdom(None)
        assert _rel_err(tuned, base) < TOL
        assert _rel_err(tuned, np.fft.rfft(x)) < TOL

    def test_wisdom_for_other_machine_still_correct(self, rng):
        # foreign-machine entries are fallbacks (AccFFT portability):
        # possibly not optimal here, but must still be a correct plan
        res = tune_kernel(360, reps=1, batch=1)
        w = Wisdom()
        w.record_kernel(360, -1, "complex128", "feedfacecafe",
                        res.winner["strategy"], res.winner["radices"])
        x = random_complex(rng, 360)
        set_active_wisdom(w)
        tuned = get_plan(360)(x[None, :])[0]
        set_active_wisdom(None)
        assert _rel_err(tuned, np.fft.fft(x)) < TOL

    def test_complex64_wisdom_ignored_for_nonsmooth(self, rng):
        # a (corrupt or foreign) stockham entry for a non-smooth length
        # must not be applied to complex64 (Bluestein is c128-only), and
        # plan building must still dispatch correctly for c128
        w = Wisdom()
        w.record_kernel(1009, -1, "complex128", machine_fingerprint(),
                        "bluestein", [])
        x = random_complex(rng, 1009)
        set_active_wisdom(w)
        y = get_plan(1009)(x[None, :])[0]
        set_active_wisdom(None)
        assert _rel_err(y, np.fft.fft(x)) < 1e-8


class TestSoiCandidateEquivalence:
    """Every SOI configuration the search may pick stays within the
    default's accuracy envelope and computes the same DFT."""

    @given(st.sampled_from([2048, 3584, 8192]), st.integers(0, 5),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_soi_candidates_match_numpy(self, n, cand_idx, seed):
        from repro.core.soi_single import SoiFFT
        from repro.core.params import SoiParams

        cands = soi_candidates(n)
        cand = cands[cand_idx % len(cands)]
        params = SoiParams(n=n, n_procs=1,
                           segments_per_process=cand["segments"],
                           n_mu=cand["n_mu"], d_mu=cand["d_mu"],
                           b=cand["b"])
        f = SoiFFT(params, conv_inner=cand["conv_inner"])
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ref = np.fft.fft(x)
        err = np.linalg.norm(f(x) - ref) / np.linalg.norm(ref)
        # every candidate passed the accuracy guard, so the default's
        # design envelope bounds them all (10x slack as in core tests)
        assert err < 10 * f.expected_stopband + 1e-12

    def test_candidates_never_looser_than_default(self):
        from repro.core.window import kaiser_attenuation_db

        for n in (2048, 3584):
            default = default_soi_config(n)
            floor = kaiser_attenuation_db(default["b"],
                                          default["n_mu"] / default["d_mu"])
            for cand in soi_candidates(n):
                att = kaiser_attenuation_db(cand["b"],
                                            cand["n_mu"] / cand["d_mu"])
                assert att >= floor - 1e-9

    def test_tuned_soi_matches_default_soi(self, rng):
        n = 2048
        res = tune_soi(n, reps=1, batch=1,
                       budget=TuneBudget(seconds=10.0))
        from repro.core.soi_single import SoiFFT

        f_def = SoiFFT(_soi_params_for(n, default_soi_config(n)),
                       conv_inner=default_soi_config(n)["conv_inner"])
        f_tuned = SoiFFT(_soi_params_for(n, res.winner),
                         conv_inner=res.winner["conv_inner"])
        x = random_complex(rng, n)
        ref = np.fft.fft(x)
        err_def = np.linalg.norm(f_def(x) - ref) / np.linalg.norm(ref)
        err_tuned = np.linalg.norm(f_tuned(x) - ref) / np.linalg.norm(ref)
        assert err_tuned < 10 * f_tuned.expected_stopband + 1e-12
        # tuned accuracy stays within one design envelope of the default
        assert err_tuned < max(10 * f_def.expected_stopband, err_def * 10) \
            + 1e-12


def _soi_params_for(n, cand):
    from repro.core.params import SoiParams
    return SoiParams(n=n, n_procs=1,
                     segments_per_process=cand["segments"],
                     n_mu=cand["n_mu"], d_mu=cand["d_mu"], b=cand["b"])


class TestSearchDriver:
    def test_default_measured_even_when_budget_exhausted(self):
        budget = TuneBudget(seconds=0.0)  # exhausted before it starts
        res = tune_kernel(256, reps=1, batch=1, budget=budget)
        assert res.trials == 1  # the default, unconditionally
        assert res.tuned_is_default
        assert res.speedup == 1.0

    def test_trial_cap_respected(self):
        budget = TuneBudget(seconds=60.0, max_trials=2)
        res = tune_kernel(1024, reps=1, batch=1, budget=budget)
        assert res.trials <= 2
        assert budget.trials <= 2

    def test_winner_is_measured_minimum(self):
        res = tune_kernel(512, reps=1, batch=1)
        assert res.tuned_s == min(res.timings.values())
        assert res.tuned_s <= res.default_s

    def test_soi_winner_is_measured_minimum(self):
        res = tune_soi(2048, reps=1, batch=1,
                       budget=TuneBudget(seconds=10.0))
        assert res.tuned_s == min(res.timings.values())
        assert res.tuned_s <= res.default_s

    def test_autotune_records_into_wisdom(self):
        w = Wisdom()
        report = autotune(sizes=[64, 97], soi_sizes=[2048],
                          budget=TuneBudget(seconds=10.0), reps=1,
                          batch=1, wisdom=w, machine="testmachine01")
        assert len(report.kernel_results) == 2
        assert len(report.soi_results) == 1
        assert w.lookup_kernel(64, -1, "complex128",
                               machine="testmachine01") is not None
        assert w.lookup_kernel(97, -1, "complex128",
                               machine="testmachine01") is not None
        assert w.lookup_soi(2048, "complex128",
                            machine="testmachine01") is not None

    def test_report_rows_and_render(self):
        from repro.fft.autotune import render_speedup_table

        report = autotune(sizes=[64], budget=TuneBudget(seconds=5.0),
                          reps=1, batch=1)
        rows = report.rows()
        assert rows and rows[0]["workload"] == "kernel"
        text = render_speedup_table(report)
        assert "speedup" in text and "64" in text

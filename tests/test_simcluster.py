"""Tests for SimCluster clock/charging mechanics."""

import pytest

from repro.cluster.network import STAMPEDE_EFFECTIVE
from repro.cluster.simcluster import SimCluster
from repro.machine.roofline import KernelCost
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10


class TestConstruction:
    def test_defaults(self):
        cl = SimCluster(8)
        assert cl.n_ranks == 8
        assert cl.machine is XEON_PHI_SE10
        assert cl.transport is STAMPEDE_EFFECTIVE
        assert cl.elapsed == 0.0

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            SimCluster(0)


class TestCharging:
    def test_charge_seconds(self):
        cl = SimCluster(2)
        cl.charge_seconds(0, "w", 1.5)
        assert cl.clocks == [1.5, 0.0]
        assert cl.elapsed == 1.5

    def test_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            SimCluster(1).charge_seconds(0, "w", -1.0)

    def test_charge_kernel_roofline(self):
        cl = SimCluster(1, machine=XEON_PHI_SE10)
        t = cl.charge_kernel(0, "fft", KernelCost(flops=1074e9, nbytes=0.0),
                             compute_efficiency=0.5)
        assert t == pytest.approx(2.0)
        assert cl.clocks[0] == pytest.approx(2.0)

    def test_charge_all(self):
        cl = SimCluster(3)
        cl.charge_all("step", 2.0)
        assert cl.clocks == [2.0, 2.0, 2.0]

    def test_charge_kernel_all(self):
        cl = SimCluster(2, machine=XEON_E5_2680)
        cl.charge_kernel_all("conv", KernelCost(flops=346e9, nbytes=0.0))
        assert all(c == pytest.approx(1.0) for c in cl.clocks)


class TestAggregation:
    def test_breakdown_uses_slowest_rank(self):
        cl = SimCluster(2)
        cl.charge_seconds(0, "fft", 1.0)
        cl.charge_seconds(1, "fft", 3.0)
        cl.charge_seconds(1, "conv", 1.0)
        b = cl.breakdown()
        assert b == {"fft": pytest.approx(3.0), "conv": pytest.approx(1.0)}

    def test_reset(self):
        cl = SimCluster(2)
        cl.charge_seconds(0, "x", 1.0)
        cl.reset()
        assert cl.elapsed == 0.0
        assert not cl.trace.events

    def test_trace_records_compute_events(self):
        cl = SimCluster(1)
        cl.charge_seconds(0, "fft", 1.0)
        ev = cl.trace.events[0]
        assert (ev.rank, ev.label, ev.category) == (0, "fft", "compute")


class TestHeterogeneous:
    def test_per_rank_machines(self):
        cl = SimCluster(2, machines=[XEON_E5_2680, XEON_PHI_SE10])
        assert cl.machine_of(0) is XEON_E5_2680
        assert cl.machine_of(1) is XEON_PHI_SE10

    def test_default_is_uniform(self):
        cl = SimCluster(3, machine=XEON_E5_2680)
        assert all(cl.machine_of(r) is XEON_E5_2680 for r in range(3))

    def test_kernel_charge_uses_rank_machine(self):
        cl = SimCluster(2, machines=[XEON_E5_2680, XEON_PHI_SE10])
        cost = KernelCost(flops=346e9, nbytes=0.0)
        t_xeon = cl.charge_kernel(0, "k", cost)
        t_phi = cl.charge_kernel(1, "k", cost)
        assert t_xeon == pytest.approx(1.0)
        assert t_phi == pytest.approx(346 / 1074, rel=1e-6)

    def test_rejects_wrong_machine_count(self):
        with pytest.raises(ValueError):
            SimCluster(3, machines=[XEON_E5_2680])


class TestPcieCharging:
    def test_charge_pcie(self):
        cl = SimCluster(1)
        t = cl.charge_pcie(0, "dma", 6e9)  # 1 s at 6 GB/s (+latency)
        assert t == pytest.approx(1.0, rel=0.01)
        assert cl.clocks[0] == pytest.approx(t)
        ev = cl.trace.events[0]
        assert ev.category == "pcie"
        assert ev.nbytes == int(6e9)

"""Tests for benchmark workload generators."""

import numpy as np
import pytest

from repro.bench.workloads import chirp, constant, impulse, multi_tone, random_complex


class TestRandomComplex:
    def test_deterministic(self):
        assert np.array_equal(random_complex(64, seed=7), random_complex(64, seed=7))

    def test_different_seeds_differ(self):
        assert not np.array_equal(random_complex(64, 0), random_complex(64, 1))

    def test_dtype_and_shape(self):
        x = random_complex(10)
        assert x.dtype == np.complex128 and x.shape == (10,)

    def test_scale(self):
        assert np.allclose(random_complex(16, 0, scale=2.0),
                           2.0 * random_complex(16, 0))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            random_complex(-1)


class TestMultiTone:
    def test_dft_is_sparse(self):
        n = 64
        x = multi_tone(n, [3, 10], amps=[1.0, 2.0])
        y = np.fft.fft(x)
        assert np.isclose(y[3], n)
        assert np.isclose(y[10], 2 * n)
        mask = np.ones(n, dtype=bool)
        mask[[3, 10]] = False
        assert np.allclose(y[mask], 0.0, atol=1e-9)

    def test_phase(self):
        x = multi_tone(16, [1], phases=[np.pi / 2])
        assert np.isclose(x[0], 1j)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            multi_tone(16, [1, 2], amps=[1.0])


class TestImpulse:
    def test_dft_is_exponential(self):
        x = impulse(32, position=5)
        y = np.fft.fft(x)
        assert np.allclose(np.abs(y), 1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            impulse(8, position=8)


class TestChirpConstant:
    def test_chirp_unit_magnitude(self):
        x = chirp(128)
        assert np.allclose(np.abs(x), 1.0)

    def test_chirp_spreads_spectrum(self):
        y = np.abs(np.fft.fft(chirp(256)))
        # energy is spread: no single bin dominates
        assert y.max() < 0.5 * np.linalg.norm(y)

    def test_constant_concentrates_at_dc(self):
        y = np.fft.fft(constant(32, 2.0))
        assert np.isclose(y[0], 64.0)
        assert np.allclose(y[1:], 0.0, atol=1e-12)

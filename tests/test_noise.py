"""Tests for noise/straggler injection.

Compute-side noise is now also schedulable through the unified
:class:`~repro.cluster.faults.FaultPlan` (see ``TestChaosClusterNoise``);
the direct :class:`NoiseModel` assertions below stay as regression
coverage for the underlying mechanism.
"""

import numpy as np
import pytest

from repro.cluster.faults import FaultPlan, chaos_cluster
from repro.cluster.noise import NoiseModel, expected_bsp_slowdown, noisy_cluster
from repro.cluster.simcluster import SimCluster


class TestNoiseModel:
    def test_factor_at_least_one(self):
        n = NoiseModel(jitter=0.1, seed=3)
        assert all(n.factor(0) >= 1.0 for _ in range(100))

    def test_zero_jitter_is_identity_without_stragglers(self):
        n = NoiseModel(jitter=0.0)
        assert n.factor(0) == pytest.approx(1.0)

    def test_straggler_adds_constant(self):
        n = NoiseModel(jitter=0.0, stragglers={2: 0.5})
        assert n.factor(2) == pytest.approx(1.5)
        assert n.factor(1) == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a = [NoiseModel(jitter=0.2, seed=7).factor(0) for _ in range(1)]
        b = [NoiseModel(jitter=0.2, seed=7).factor(0) for _ in range(1)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(jitter=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(stragglers={0: -1.0})


class TestNoisyCluster:
    def test_compute_charges_inflated(self):
        cl = noisy_cluster(SimCluster(2), NoiseModel(jitter=0.0,
                                                     stragglers={1: 1.0}))
        cl.charge_seconds(0, "w", 1.0)
        cl.charge_seconds(1, "w", 1.0)
        assert cl.clocks[0] == pytest.approx(1.0)
        assert cl.clocks[1] == pytest.approx(2.0)

    def test_communication_untouched(self):
        cl = noisy_cluster(SimCluster(2), NoiseModel(jitter=0.0,
                                                     stragglers={0: 9.0}))
        cl.charge_seconds(0, "mpi", 1.0, category="mpi")
        assert cl.clocks[0] == pytest.approx(1.0)

    def test_straggler_gates_collectives(self, rng):
        """One slow rank drags every rank's finish time (BSP effect)."""
        from repro.core.params import SoiParams
        from repro.core.soi_dist import DistributedSoiFFT

        params = SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        x = rng.standard_normal(params.n) + 0j

        cl_clean = SimCluster(4)
        soi = DistributedSoiFFT(cl_clean, params)
        soi(soi.scatter(x))

        cl_noisy = noisy_cluster(SimCluster(4),
                                 NoiseModel(jitter=0.0, stragglers={2: 2.0}))
        soi_n = DistributedSoiFFT(cl_noisy, params)
        soi_n(soi_n.scatter(x))
        assert cl_noisy.elapsed > cl_clean.elapsed
        # all ranks end together: the straggler gates the collective
        assert max(cl_noisy.clocks) - min(cl_noisy.clocks) < \
            0.5 * cl_noisy.elapsed


class TestChaosClusterNoise:
    """FaultPlan stragglers/jitter arm the same NoiseModel mechanism."""

    def test_plan_straggler_inflates_compute(self):
        cl = chaos_cluster(SimCluster(2),
                           FaultPlan(stragglers={1: 1.0}))
        cl.charge_seconds(0, "w", 1.0)
        cl.charge_seconds(1, "w", 1.0)
        assert cl.clocks[0] == pytest.approx(1.0)
        assert cl.clocks[1] == pytest.approx(2.0)

    def test_plan_noise_matches_direct_noise_model(self):
        plan = FaultPlan(jitter=0.1, stragglers={0: 0.5}, seed=11)
        cl_plan = chaos_cluster(SimCluster(2), plan)
        cl_direct = noisy_cluster(
            SimCluster(2), NoiseModel(jitter=0.1, stragglers={0: 0.5},
                                      seed=11))
        for cl in (cl_plan, cl_direct):
            cl.charge_seconds(0, "w", 1.0)
            cl.charge_seconds(1, "w", 1.0)
        assert cl_plan.clocks == cl_direct.clocks

    def test_noise_free_plan_leaves_compute_alone(self):
        cl = chaos_cluster(SimCluster(2), FaultPlan(corrupt_messages=(9,)))
        cl.charge_seconds(0, "w", 1.0)
        assert cl.clocks[0] == pytest.approx(1.0)


class TestBspSlowdown:
    def test_more_ranks_more_inflation(self):
        small = expected_bsp_slowdown(4, 0.1, 1)
        big = expected_bsp_slowdown(512, 0.1, 1)
        assert big > small > 1.0

    def test_ct_suffers_more_barriers_than_soi(self):
        """Per-superstep max compounds: 3 barriers (CT) inflate the summed
        makespan more than 1 barrier (SOI) of 3x the length would."""
        soi_like = expected_bsp_slowdown(512, 0.1, 1)
        ct_like = expected_bsp_slowdown(512, 0.1, 3)
        # same expected inflation per barrier; what differs is variance --
        # but with per-barrier resample, means match; assert both > 1 and
        # report shape via monotonicity in jitter instead
        assert ct_like == pytest.approx(soi_like, rel=0.05)
        low = expected_bsp_slowdown(512, 0.01, 3)
        high = expected_bsp_slowdown(512, 0.2, 3)
        assert high > low

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_bsp_slowdown(0, 0.1, 1)

"""10^3-rank fabric suite (``-m scale``).

Exercises the tentpole contracts at 1024 ranks on the exhibit fabric
(fat tree, 32 ranks per leaf): the hierarchical all-to-all must not
lose to the flat exchange in simulated time (bit-identically), one
switch failure mid-exchange must shrink to a bit-identical exchange at
the surviving rank count, a domain-aligned partition must adjudicate by
quorum, and every scenario must replay exactly from its seed.

Everything is simulated, so the suite is machine-independent; it is
kept out of the default run only because 1024-rank exchanges take tens
of wall-clock seconds each.
"""

import numpy as np
import pytest

from repro.bench.scalechaos import (
    exchange_rows,
    fabric_for,
    partition_rows,
    switch_failure_rows,
)

pytestmark = pytest.mark.scale

P = 1024


class TestScale1024:
    def test_fabric_shape(self):
        top = fabric_for(P)
        assert top.radix == 64
        dom = top.domains(P)
        assert dom.n_domains == 32
        assert all(len(g) == 32 for g in dom.groups)

    def test_hierarchical_exchange_beats_flat(self):
        row = exchange_rows((P,))[0]
        assert row["bitwise_equal"]
        # the acceptance floor is 0.5 (no regression); measured ~16x
        assert row["speedup"] >= 0.5
        assert row["hier_msgs"] < row["flat_msgs"]
        # 2*(sqrt(P)-1) messages per rank vs P-1
        assert row["hier_msgs"] == P * 2 * (32 - 1)
        assert row["flat_msgs"] == P * (P - 1)

    def test_switch_failure_shrinks_bit_identically(self):
        row = switch_failure_rows((P,))[0]
        assert row["dead"] == 32 and row["survivors"] == P - 32
        assert row["first_detected"] in range(16 * 32, 17 * 32)
        assert row["bitwise_equal"]
        assert 0 < row["mttr_sim_s"] < 1.0

    def test_partition_adjudicates_by_quorum(self):
        row = partition_rows((P,))[0]
        assert row["census"] == "768+256"
        assert row["quorum"] and row["majority"] == 768
        assert row["aborted"] == 256
        assert row["bitwise_equal"]

    def test_degraded_uplink_completes(self):
        from repro.bench.scalechaos import degraded_uplink_rows

        row = degraded_uplink_rows((P,))[0]
        assert row["complete"]
        assert row["slowdown"] > 1.0
        # one retry can ride out several same-attempt losses
        assert row["losses"] > 0 and row["retries"] > 0


class TestSeededReproducibility:
    """Same seed, fresh fabric: identical simulated times, censuses,
    and verdicts — run at 256 ranks to keep the replay cheap."""

    def test_switch_failure_replays_exactly(self):
        a = switch_failure_rows((256,), seed=7)
        b = switch_failure_rows((256,), seed=7)
        assert a == b

    def test_partition_replays_exactly(self):
        a = partition_rows((256,), seed=7)
        b = partition_rows((256,), seed=7)
        assert a == b

    def test_degraded_uplink_replays_exactly(self):
        from repro.bench.scalechaos import degraded_uplink_rows

        a = degraded_uplink_rows((256,), seed=7)
        b = degraded_uplink_rows((256,), seed=7)
        assert a == b

    def test_different_seeds_differ_somewhere(self):
        from repro.bench.scalechaos import degraded_uplink_rows

        a = degraded_uplink_rows((256,), seed=7)[0]
        b = degraded_uplink_rows((256,), seed=8)[0]
        # the loss draws are seeded; distinct seeds give distinct drops
        assert (a["losses"], a["degraded_sim_s"]) != \
            (b["losses"], b["degraded_sim_s"])


class TestSoiAtScale:
    def test_partition_quorum_at_256_ranks(self):
        """End-to-end SOI across a domain-aligned cut: the failing
        inter-leaf collective sees only one rank per leaf, so the
        adjudicator must reconstruct the 192+64 fabric census from the
        installed partition event before judging quorum."""
        from repro.cluster.faults import (
            FaultPlan,
            PartitionEvent,
            RetryPolicy,
        )
        from repro.cluster.simcluster import SimCluster
        from repro.core.params import SoiParams
        from repro.core.soi_dist import DistributedSoiFFT

        q = 256
        top = fabric_for(q)
        params = SoiParams(n=4 * q * q, n_procs=q, n_mu=2, d_mu=1, b=4)
        rng = np.random.default_rng(2013)
        x = rng.standard_normal(params.n) + 1j * rng.standard_normal(
            params.n)
        majority = tuple(range(192))  # 12 of the 16 leaves
        minority = tuple(range(192, 256))
        cl = SimCluster(q, topology=top)
        cl.comm.install_faults(
            FaultPlan(partition=PartitionEvent(
                at_transfer=2, components=(majority, minority))),
            RetryPolicy(max_retries=1))
        soi = DistributedSoiFFT(cl, params)
        y = soi.assemble(soi(soi.scatter(x)))
        rep = soi.last_partition
        assert rep is not None and rep.quorum
        assert tuple(len(c) for c in rep.components) == (192, 64)
        assert rep.majority == majority and rep.aborted == minority
        assert cl.live_ranks == list(majority)
        cl0 = SimCluster(q, topology=top)
        soi0 = DistributedSoiFFT(cl0, params)
        assert np.array_equal(y, soi0.assemble(soi0(soi0.scatter(x))))

    def test_domain_recovery_at_256_ranks(self):
        """End-to-end SOI with a dead leaf switch: domain-aware
        recovery, per-domain MTTR, bit-identical output (1024-rank
        version runs in the full-mode exhibit)."""
        from repro.bench.scalechaos import soi_domain_recovery

        rep = soi_domain_recovery(256)
        assert rep["domain_kind"] == "fat-tree leaf"
        assert len(rep["dead"]) == 16
        assert rep["survivors"] == 240
        assert rep["bitwise_equal"]
        assert list(rep["mttr_by_domain"]) == [rep["victim_domain"]]
        assert all(t > 0 for t in rep["mttr_by_domain"].values())

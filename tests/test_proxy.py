"""Tests for the reverse-communication MPI proxy model."""

import pytest

from repro.cluster.network import STAMPEDE_EFFECTIVE, NetworkSpec
from repro.cluster.pcie import PcieSpec
from repro.cluster.proxy import NATIVE_MPI_CUTOFF_BYTES, ReverseProxy


@pytest.fixture
def proxy():
    return ReverseProxy(PcieSpec(6.0, 10.0), STAMPEDE_EFFECTIVE)


class TestBandwidth:
    def test_asymptotic_bandwidth_is_min_of_stages(self, proxy):
        assert proxy.bandwidth_gbps == 3.0
        fast_net = ReverseProxy(PcieSpec(6.0), NetworkSpec("fast", 12.0))
        assert fast_net.bandwidth_gbps == 6.0

    def test_large_message_approaches_wire_rate(self, proxy):
        nbytes = 1 << 28  # 256 MB
        bw = proxy.effective_bandwidth(nbytes)
        # chunked wire transfers pay the per-chunk ramp: ~0.89 of peak
        assert 0.8 * 3.0 < bw <= 3.0

    def test_latency_composition(self, proxy):
        assert proxy.latency_us == pytest.approx(22.0)


class TestMessageTime:
    def test_short_messages_use_native_path(self, proxy):
        nbytes = 32 * 1024
        assert proxy.message_time(nbytes) == \
            pytest.approx(STAMPEDE_EFFECTIVE.message_time(nbytes))

    def test_cutoff_boundary(self, proxy):
        at = proxy.message_time(NATIVE_MPI_CUTOFF_BYTES)
        above = proxy.message_time(NATIVE_MPI_CUTOFF_BYTES + 1)
        assert at == pytest.approx(
            STAMPEDE_EFFECTIVE.message_time(NATIVE_MPI_CUTOFF_BYTES))
        assert above > 0

    def test_pipelining_hides_pcie(self, proxy):
        # proxied long transfer should cost ~wire time, not wire + 2x pcie
        nbytes = 1 << 26
        t = proxy.message_time(nbytes)
        wire = STAMPEDE_EFFECTIVE.message_time(nbytes)
        unpipelined = wire + 2 * proxy.pcie.transfer_time(nbytes)
        assert t < 0.75 * unpipelined
        assert t > 0.9 * wire

    def test_rejects_negative(self, proxy):
        with pytest.raises(ValueError):
            proxy.message_time(-5)


class TestAlltoall:
    def test_matches_paper_assumption(self, proxy):
        # §4: "mpi bandwidth between Xeon Phis is the same as that between
        # Xeons ... achieved by optimizations described in Section 5.1"
        p, per_pair = 32, 1 << 22
        phi = proxy.alltoall_time(p, per_pair)
        xeon = STAMPEDE_EFFECTIVE.alltoall_time(p, per_pair)
        assert phi == pytest.approx(xeon, rel=0.10)

    def test_single_node_free(self, proxy):
        assert proxy.alltoall_time(1, 1 << 20) == 0.0

    def test_slow_pcie_becomes_bottleneck(self):
        slow = ReverseProxy(PcieSpec(0.5), STAMPEDE_EFFECTIVE)
        p, per_pair = 16, 1 << 24
        t_slow = slow.alltoall_time(p, per_pair)
        t_norm = STAMPEDE_EFFECTIVE.alltoall_time(p, per_pair)
        assert t_slow > 2 * t_norm

    def test_rejects_zero_nodes(self, proxy):
        with pytest.raises(ValueError):
            proxy.alltoall_time(0, 10)


class TestGhostPath:
    def test_ring_exchange_short_is_native(self, proxy):
        nb = 64 * 1024  # "tens of KBs" ghost messages
        assert proxy.ring_exchange_time(nb) == \
            pytest.approx(STAMPEDE_EFFECTIVE.ring_exchange_time(nb))


class TestValidation:
    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            ReverseProxy(PcieSpec(), STAMPEDE_EFFECTIVE, chunk_bytes=0)

    def test_name_mentions_components(self, proxy):
        assert "proxy" in proxy.name

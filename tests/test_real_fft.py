"""Tests for real-input FFTs."""

import numpy as np
import pytest

from repro.fft.real import irfft, rfft, rfft_pair


class TestRfft:
    @pytest.mark.parametrize("n", [2, 4, 8, 64, 448, 1024, 30])
    def test_matches_numpy(self, rng, n):
        x = rng.standard_normal(n)
        assert np.allclose(rfft(x), np.fft.rfft(x))

    def test_output_length(self, rng):
        assert rfft(rng.standard_normal(64)).shape == (33,)

    def test_dc_and_nyquist_are_real(self, rng):
        y = rfft(rng.standard_normal(32))
        assert y[0].imag == pytest.approx(0.0, abs=1e-12)
        assert y[-1].imag == pytest.approx(0.0, abs=1e-12)

    def test_rejects_odd_length(self, rng):
        with pytest.raises(ValueError):
            rfft(rng.standard_normal(7))

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            rfft(rng.standard_normal((4, 4)))


class TestIrfft:
    @pytest.mark.parametrize("n", [4, 64, 448])
    def test_roundtrip(self, rng, n):
        x = rng.standard_normal(n)
        assert np.allclose(irfft(rfft(x)), x)

    def test_matches_numpy(self, rng):
        s = np.fft.rfft(rng.standard_normal(64))
        assert np.allclose(irfft(s), np.fft.irfft(s))

    def test_explicit_n(self, rng):
        s = np.fft.rfft(rng.standard_normal(16))
        assert irfft(s, n=16).shape == (16,)
        with pytest.raises(ValueError):
            irfft(s, n=20)

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            irfft(np.zeros(1, dtype=np.complex128))


class TestRfftPair:
    @pytest.mark.parametrize("n", [8, 15, 64, 100])
    def test_both_match_numpy(self, rng, n):
        a, b = rng.standard_normal(n), rng.standard_normal(n)
        fa, fb = rfft_pair(a, b)
        assert np.allclose(fa, np.fft.rfft(a))
        assert np.allclose(fb, np.fft.rfft(b))

    def test_rejects_mismatch(self, rng):
        with pytest.raises(ValueError):
            rfft_pair(rng.standard_normal(8), rng.standard_normal(9))

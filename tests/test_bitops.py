"""Unit and property tests for repro.fft.bitops."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fft.bitops import (
    bit_reverse_indices,
    digit_reverse_indices,
    factorize_radices,
    ilog2,
    is_power_of_two,
    largest_factor_leq_sqrt,
    mixed_radix_factors,
    split_balanced,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for s in range(20):
            assert is_power_of_two(1 << s)

    def test_non_powers(self):
        for n in (0, -1, -2, 3, 5, 6, 7, 12, 100, 1023):
            assert not is_power_of_two(n)


class TestIlog2:
    def test_values(self):
        for s in range(16):
            assert ilog2(1 << s) == s

    @pytest.mark.parametrize("bad", [0, -4, 3, 12])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            ilog2(bad)


class TestBitReverse:
    def test_small_known(self):
        assert bit_reverse_indices(8).tolist() == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_identity_for_one(self):
        assert bit_reverse_indices(1).tolist() == [0]

    @pytest.mark.parametrize("n", [2, 4, 16, 64, 256])
    def test_is_involution(self, n):
        rev = bit_reverse_indices(n)
        assert np.array_equal(rev[rev], np.arange(n))

    @pytest.mark.parametrize("n", [2, 8, 32, 128])
    def test_is_permutation(self, n):
        rev = bit_reverse_indices(n)
        assert sorted(rev.tolist()) == list(range(n))

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            bit_reverse_indices(12)


class TestDigitReverse:
    def test_uniform_radix_matches_bit_reverse(self):
        assert np.array_equal(digit_reverse_indices([2, 2, 2]),
                              bit_reverse_indices(8))

    def test_mixed_radix_is_permutation(self):
        perm = digit_reverse_indices([2, 3, 5])
        assert sorted(perm.tolist()) == list(range(30))

    def test_reversed_radices_inverts(self):
        fwd = digit_reverse_indices([2, 3, 4])
        bwd = digit_reverse_indices([4, 3, 2])
        assert np.array_equal(fwd[bwd], np.arange(24))


class TestFactorize:
    def test_radix_4_2(self):
        assert factorize_radices(32, radices=(4, 2)) == [4, 4, 2]
        assert factorize_radices(64, radices=(4, 2)) == [4, 4, 4]

    def test_radix_8(self):
        assert factorize_radices(512, radices=(8, 4, 2)) == [8, 8, 8]

    def test_product_invariant(self):
        for s in range(1, 14):
            fac = factorize_radices(1 << s)
            assert int(np.prod(fac)) == 1 << s

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            factorize_radices(24)


class TestMixedRadixFactors:
    def test_smooth(self):
        assert mixed_radix_factors(60) == [2, 2, 3, 5]
        assert mixed_radix_factors(7) == [7]
        assert mixed_radix_factors(1) == []

    def test_non_smooth_returns_none(self):
        assert mixed_radix_factors(11) is None
        assert mixed_radix_factors(13 * 4) is None

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            mixed_radix_factors(0)

    @given(st.integers(min_value=1, max_value=10 ** 6))
    def test_product_property(self, n):
        fac = mixed_radix_factors(n)
        if fac is not None:
            assert int(np.prod(fac)) == n
            assert all(f in (2, 3, 5, 7) for f in fac)


class TestSplitBalanced:
    def test_powers_of_two(self):
        assert split_balanced(16) == (4, 4)
        assert split_balanced(32) == (4, 8)
        assert split_balanced(2) == (1, 2)

    def test_general(self):
        n1, n2 = split_balanced(48)
        assert n1 * n2 == 48 and n1 <= n2

    def test_prime(self):
        assert split_balanced(13) == (1, 13)

    @given(st.integers(min_value=1, max_value=10 ** 5))
    def test_product_and_order(self, n):
        n1, n2 = split_balanced(n)
        assert n1 * n2 == n
        assert 1 <= n1 <= n2


class TestLargestFactor:
    def test_values(self):
        assert largest_factor_leq_sqrt(36) == 6
        assert largest_factor_leq_sqrt(35) == 5
        assert largest_factor_leq_sqrt(17) == 1

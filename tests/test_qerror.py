"""Tests for q-error scoring and cost-model calibration.

Covers the metric itself, the closed-form per-stage fit, the pinned
simulated-machine regression matrix (train on endpoint rank counts,
evaluate held-out on the middle — the same split ``bench/regression.py``
gates on), and the serving integration: a ``CostCalibration`` handed to
``SoiService``/``ClusterSoiService`` must rescale admission-control
projections stage by stage.
"""

import math

import numpy as np
import pytest

from repro.perfmodel.qerror import (CostCalibration, fit_calibration,
                                    q_error, stage_q_errors)

pytestmark = pytest.mark.autotune

#: Same pinned ceiling as bench/regression.py: held-out per-stage
#: q-error of the calibrated serving cost model on the simulated fabric.
QERROR_CEILING = 2.0


class TestQErrorMetric:
    def test_exact_prediction_scores_one(self):
        assert q_error(0.5, 0.5) == 1.0

    def test_symmetric_over_and_under(self):
        assert q_error(2.0, 1.0) == q_error(1.0, 2.0) == 2.0

    def test_scale_invariant(self):
        assert q_error(3e-6, 1e-6) == pytest.approx(q_error(3.0, 1.0))

    @pytest.mark.parametrize("pred,actual", [(0.0, 1.0), (1.0, 0.0),
                                             (-1.0, 1.0), (0.0, 0.0)])
    def test_degenerate_pairs_score_inf(self, pred, actual):
        assert q_error(pred, actual) == math.inf

    def test_stage_q_errors_keeps_worst_per_stage(self):
        obs = [("fft", 1.0, 2.0), ("fft", 1.0, 1.1), ("conv", 3.0, 1.0)]
        qs = stage_q_errors(obs)
        assert qs == {"fft": 2.0, "conv": 3.0}


class TestCostCalibration:
    def test_unknown_stage_passes_through(self):
        cal = CostCalibration({"fft": 2.0})
        assert cal.factor("conv") == 1.0
        assert cal.apply("conv", 0.5) == 0.5

    def test_apply_breakdown_preserves_keys(self):
        cal = CostCalibration({"a": 2.0})
        out = cal.apply_breakdown({"a": 1.0, "b": 3.0})
        assert out == {"a": 2.0, "b": 3.0}

    def test_total_is_calibrated_sum(self):
        cal = CostCalibration({"a": 2.0, "b": 0.5})
        assert cal.total({"a": 1.0, "b": 4.0}) == pytest.approx(4.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_rejects_degenerate_factors(self, bad):
        with pytest.raises(ValueError):
            CostCalibration({"fft": bad})


class TestFitCalibration:
    def test_recovers_constant_bias_exactly(self):
        # model under-predicts stage "fft" by exactly 3x everywhere
        obs = [("fft", p, 3.0 * p) for p in (0.1, 0.5, 2.0)]
        cal = fit_calibration(obs)
        assert cal.factor("fft") == pytest.approx(3.0)
        after = stage_q_errors([("fft", cal.apply("fft", p), a)
                                for _, p, a in obs])
        assert after["fft"] == pytest.approx(1.0)

    def test_factor_is_geometric_mean_of_ratios(self):
        obs = [("s", 1.0, 2.0), ("s", 1.0, 8.0)]
        assert fit_calibration(obs).factor("s") == pytest.approx(4.0)

    def test_skips_degenerate_pairs(self):
        obs = [("s", 0.0, 1.0), ("s", 1.0, 0.0), ("s", 1.0, 5.0)]
        assert fit_calibration(obs).factor("s") == pytest.approx(5.0)

    def test_empty_observations_pass_through(self):
        cal = fit_calibration([])
        assert cal.factors == {} and cal.factor("anything") == 1.0

    def test_fit_minimizes_squared_log_q_error(self):
        # the geometric-mean factor is the least-squares solution in
        # log space: perturbing it must not reduce mean squared log-q
        rng = np.random.default_rng(7)
        obs = [("s", p, p * float(f))
               for p, f in zip(rng.uniform(0.1, 2.0, 16),
                               rng.lognormal(1.0, 0.4, 16))]
        cal = fit_calibration(obs)
        f0 = cal.factor("s")

        def mean_sq_log_q(f):
            return float(np.mean([math.log(q_error(f * p, a)) ** 2
                                  for _, p, a in obs]))

        base = mean_sq_log_q(f0)
        for bump in (0.8, 0.95, 1.05, 1.25):
            assert base <= mean_sq_log_q(f0 * bump) + 1e-12


def _observations_for_ranks(ranks: int) -> list:
    """The bench harness's deterministic simulated-machine matrix row."""
    from repro.cluster.simcluster import SimCluster
    from repro.core.params import SoiParams
    from repro.core.soi_dist import DistributedSoiFFT
    from repro.perfmodel.model import soi_request_breakdown
    from repro.telemetry.profile import stage_profile

    n = ranks * 1792
    params = SoiParams(n=n, n_procs=ranks, segments_per_process=2,
                       n_mu=8, d_mu=7, b=48)
    cluster = SimCluster(ranks)
    dist = DistributedSoiFFT(cluster, params)
    rng = np.random.default_rng(2013)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    dist(dist.scatter(x))
    prof = {pr.stage: pr for pr in stage_profile(dist)}
    pred = soi_request_breakdown(params, cluster.machine, nodes=ranks)
    return [(stage, pred[stage], prof[stage].measured_s)
            for stage in ("convolution", "all-to-all", "local FFT")
            if stage in pred and prof[stage].measured_s > 0.0]


class TestSimulatedMachineRegression:
    """Pinned matrix on the simulated machine specs: the coarse §4
    serving estimator vs simulated-measured stage times."""

    def test_observations_are_deterministic(self):
        assert _observations_for_ranks(4) == _observations_for_ranks(4)

    def test_heldout_q_error_below_pinned_ceiling(self):
        train = _observations_for_ranks(2) + _observations_for_ranks(16)
        holdout = _observations_for_ranks(4) + _observations_for_ranks(8)
        cal = fit_calibration(train)
        after = stage_q_errors([(s, cal.apply(s, p), a)
                                for s, p, a in holdout])
        assert after  # all three stages observed
        assert max(after.values()) <= QERROR_CEILING

    def test_calibration_monotonically_reduces_heldout_q_error(self):
        train = _observations_for_ranks(2) + _observations_for_ranks(16)
        holdout = _observations_for_ranks(4) + _observations_for_ranks(8)
        cal = fit_calibration(train)
        before = stage_q_errors(holdout)
        after = stage_q_errors([(s, cal.apply(s, p), a)
                                for s, p, a in holdout])
        for stage in before:
            assert after[stage] <= before[stage] + 1e-12
        assert max(after.values()) < max(before.values())

    def test_stage_observations_helper_joins_profiles(self):
        from repro.telemetry.profile import StageProfile, stage_observations

        profiles = [
            StageProfile("convolution", 1.0, 2.0, 0.5),
            StageProfile("all-to-all", 0.0, 1.0),  # model predicts zero
            StageProfile("local FFT", 1.0, 0.0),  # never ran
        ]
        obs = stage_observations(profiles)
        assert obs == [("convolution", 1.0, 1.5)]  # retry share removed
        assert stage_observations(profiles, drop_retry=False) \
            == [("convolution", 1.0, 2.0)]


class TestServingIntegration:
    def test_soi_service_estimate_uses_calibration(self):
        from repro.resilience import DegradationLadder
        from repro.resilience.server import SoiService

        ladder = DegradationLadder.standard(8 * 448)
        plain = SoiService(ladder)
        scaled = SoiService(ladder,
                            calibration=CostCalibration(
                                {"local FFT": 3.0, "convolution": 3.0}))
        rung = ladder[0]
        assert scaled._estimate(1)(rung) == pytest.approx(
            3.0 * plain._estimate(1)(rung))

    def test_partial_calibration_scales_only_named_stage(self):
        from repro.perfmodel.model import soi_request_breakdown
        from repro.resilience import DegradationLadder
        from repro.resilience.server import SoiService

        ladder = DegradationLadder.standard(8 * 448)
        rung = ladder[0]
        svc = SoiService(ladder,
                         calibration=CostCalibration({"local FFT": 2.0}))
        br = soi_request_breakdown(rung.params, svc.machine,
                                   itemsize=rung.dtype.itemsize, batch=1)
        expected = 2.0 * br["local FFT"] + br["convolution"]
        assert svc._estimate(1)(rung) == pytest.approx(expected)

    def test_cluster_service_estimate_uses_calibration(self):
        from repro.cluster.simcluster import SimCluster
        from repro.resilience import DegradationLadder
        from repro.resilience.server import ClusterSoiService

        ranks = 4
        ladder = DegradationLadder.standard(8 * 448, n_procs=ranks,
                                            segments_per_process=2)
        plain = ClusterSoiService(SimCluster(ranks), ladder)
        cal = CostCalibration({"local FFT": 2.0, "convolution": 2.0,
                               "all-to-all": 2.0})
        scaled = ClusterSoiService(SimCluster(ranks), ladder,
                                   calibration=cal)
        rung = ladder[0]
        assert scaled._estimate(rung) == pytest.approx(
            2.0 * plain._estimate(rung))

    def test_calibrated_service_still_serves(self, rng):
        from repro.perfmodel.qerror import CostCalibration
        from repro.resilience import DegradationLadder
        from repro.resilience.server import SoiService

        n = 8 * 448
        ladder = DegradationLadder.standard(n)
        svc = SoiService(ladder,
                         calibration=CostCalibration({"local FFT": 1.5}))
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        res = svc.submit(x, deadline_seconds=30.0)
        assert res.outcome in ("ok", "degraded")
        assert np.allclose(res.y, np.fft.fft(x), atol=1e-4 * n)

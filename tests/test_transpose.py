"""Tests for blocked transpose and the stride permutation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.transpose import (
    blocked_transpose,
    stride_permutation_indices,
    transpose_naive,
)
from tests.conftest import random_complex


class TestTranspose:
    @pytest.mark.parametrize("shape", [(4, 4), (8, 16), (7, 13), (1, 9), (20, 3)])
    def test_blocked_matches_naive(self, rng, shape):
        a = random_complex(rng, *shape)
        assert np.array_equal(blocked_transpose(a), a.T)
        assert np.array_equal(transpose_naive(a), a.T)

    @pytest.mark.parametrize("block", [1, 2, 3, 8, 64])
    def test_any_block_size(self, rng, block):
        a = random_complex(rng, 10, 12)
        assert np.array_equal(blocked_transpose(a, block=block), a.T)

    def test_out_parameter(self, rng):
        a = random_complex(rng, 6, 4)
        out = np.empty((4, 6), dtype=np.complex128)
        res = blocked_transpose(a, out=out)
        assert res is out
        assert np.array_equal(out, a.T)

    def test_rejects_wrong_out_shape(self, rng):
        a = random_complex(rng, 6, 4)
        with pytest.raises(ValueError):
            blocked_transpose(a, out=np.empty((6, 4), dtype=np.complex128))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            blocked_transpose(np.zeros(5))
        with pytest.raises(ValueError):
            transpose_naive(np.zeros((2, 2, 2)))

    def test_rejects_bad_block(self, rng):
        with pytest.raises(ValueError):
            blocked_transpose(random_complex(rng, 4, 4), block=0)


class TestStridePermutation:
    def test_definition(self):
        # w = P^{l,n} v  <=>  v[j + k*l] = w[k + j*(n/l)]
        stride, n = 3, 12
        perm = stride_permutation_indices(stride, n)
        v = np.arange(n)
        w = v[perm]
        for j in range(stride):
            for k in range(n // stride):
                assert v[j + k * stride] == w[k + j * (n // stride)]

    def test_matches_matrix_transpose(self):
        # stride-l permutation == reading an (n/l)-by-l matrix column-major
        perm = stride_permutation_indices(4, 20)
        v = np.arange(20)
        assert np.array_equal(v[perm], v.reshape(5, 4).T.ravel())

    def test_identity_strides(self):
        assert np.array_equal(stride_permutation_indices(1, 8), np.arange(8))
        assert np.array_equal(stride_permutation_indices(8, 8), np.arange(8))

    def test_inverse_pair(self):
        n = 24
        fwd = stride_permutation_indices(4, n)
        inv = stride_permutation_indices(n // 4, n)
        assert np.array_equal(fwd[inv], np.arange(n))

    def test_rejects_non_divisor(self):
        with pytest.raises(ValueError):
            stride_permutation_indices(5, 12)

    @given(st.sampled_from([(2, 16), (4, 16), (3, 27), (6, 36)]))
    @settings(max_examples=10, deadline=None)
    def test_is_permutation(self, args):
        stride, n = args
        perm = stride_permutation_indices(stride, n)
        assert sorted(perm.tolist()) == list(range(n))

"""Tests for the mpi4py-compatible adapter (via the loopback stub)."""

import numpy as np
import pytest

from repro.cluster.mpi_compat import LoopbackComm, MpiCommunicator
from tests.conftest import random_complex


@pytest.fixture
def comm():
    return MpiCommunicator(LoopbackComm())


class TestAdapter:
    def test_rank_and_size(self, comm):
        assert (comm.rank, comm.size) == (0, 1)

    def test_alltoall_self(self, comm, rng):
        buf = random_complex(rng, 5)
        out = comm.alltoall([buf])
        assert len(out) == 1
        assert np.array_equal(out[0], buf)
        assert comm.bytes_moved == 0  # self message is free

    def test_alltoall_validates_count(self, comm, rng):
        with pytest.raises(ValueError):
            comm.alltoall([random_complex(rng, 2)] * 2)

    def test_ring_self_wrap(self, comm, rng):
        left, right = random_complex(rng, 3), random_complex(rng, 4)
        from_left, from_right = comm.ring_exchange(left, right)
        # one rank: own right halo wraps to the left ghost and vice versa
        assert np.array_equal(from_left, right)
        assert np.array_equal(from_right, left)

    def test_allgather(self, comm, rng):
        buf = random_complex(rng, 3)
        out = comm.allgather(buf)
        assert len(out) == 1 and np.array_equal(out[0], buf)

    def test_bcast(self, comm, rng):
        buf = random_complex(rng, 3)
        assert np.array_equal(comm.bcast(buf, root=0), buf)

    def test_barrier(self, comm):
        comm.barrier()  # must not raise

    def test_rejects_incomplete_comm(self):
        class Half:
            def Get_rank(self):
                return 0

        with pytest.raises(TypeError, match="Get_size"):
            MpiCommunicator(Half())


class TestSoiOnLoopback:
    def test_single_rank_soi_via_adapter(self, rng):
        """Drive the SOI rank program's collectives through the adapter:
        a 1-rank 'cluster' must reproduce the single-process transform."""
        from repro.core.convolution import convolve
        from repro.core.demodulate import demodulate
        from repro.core.params import SoiParams
        from repro.core.window import build_tables
        from repro.fft.plan import get_plan

        comm = MpiCommunicator(LoopbackComm())
        p = SoiParams(n=8 * 448, n_procs=1, segments_per_process=8,
                      n_mu=8, d_mu=7, b=48)
        tables = build_tables(p)
        x = rng.standard_normal(p.n) + 1j * rng.standard_normal(p.n)
        s = p.n_segments
        left_g, right_g = p.ghost_blocks

        from_left, from_right = comm.ring_exchange(
            x[: right_g * s], x[x.size - left_g * s:])
        x_ext = np.concatenate([from_left, x, from_right])
        u = convolve(x_ext, tables, 0, p.m_oversampled, -left_g)
        z = get_plan(s, -1)(u)
        pieces = comm.alltoall([np.ascontiguousarray(z)])
        alpha = np.concatenate(pieces, axis=0)
        beta = get_plan(p.m_oversampled, -1)(alpha.T)
        y = demodulate(beta, tables).reshape(-1)

        ref = np.fft.fft(x)
        err = np.linalg.norm(y - ref) / np.linalg.norm(ref)
        assert err < 1e-4

"""Tests for the SOI-backed STFT."""

import numpy as np
import pytest

from repro.core.params import SoiParams
from repro.core.streaming import SoiStft, _Frames, hann_window


def frame_params(n=4 * 448, b=48):
    return SoiParams(n=n, n_procs=1, segments_per_process=4,
                     n_mu=8, d_mu=7, b=b)


class TestHann:
    def test_endpoints_and_peak(self):
        w = hann_window(8)
        assert w[0] == pytest.approx(0.0)
        assert w[4] == pytest.approx(1.0)

    def test_cola_at_half_overlap(self):
        n = 64
        w = hann_window(n)
        total = w[: n // 2] + w[n // 2:]
        assert np.allclose(total, 1.0)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            hann_window(0)


class TestStft:
    def test_frame_count(self):
        stft = SoiStft(frame_params())
        n = stft.frame_length
        assert stft.frame_count(n) == 1
        assert stft.frame_count(n + stft.hop) == 2
        assert stft.frame_count(n - 1) == 0

    def test_shape(self, rng):
        stft = SoiStft(frame_params())
        x = rng.standard_normal(3 * stft.frame_length) + 0j
        s = stft.transform(x)
        assert s.shape == (stft.frame_count(x.size), stft.frame_length)

    def test_matches_numpy_per_frame(self, rng):
        stft = SoiStft(frame_params(), analysis_window=None)
        n = stft.frame_length
        x = rng.standard_normal(2 * n) + 1j * rng.standard_normal(2 * n)
        s = stft.transform(x)
        ref0 = np.fft.fft(x[:n])
        err = np.linalg.norm(s[0] - ref0) / np.linalg.norm(ref0)
        assert err < 1e-4

    def test_tracks_a_hopping_tone(self):
        """A tone that changes frequency mid-signal shows up in the right
        frames at the right bins."""
        params = frame_params()
        stft = SoiStft(params)
        n = stft.frame_length
        t = np.arange(n)
        first = np.exp(2j * np.pi * 100 * t / n)
        second = np.exp(2j * np.pi * 700 * t / n)
        x = np.concatenate([first, first, second, second])
        bins = stft.dominant_bins(x)
        assert bins[0] == 100
        assert bins[-1] == 700

    def test_spectrogram_nonnegative(self, rng):
        stft = SoiStft(frame_params())
        x = rng.standard_normal(2 * stft.frame_length) + 0j
        assert np.all(stft.spectrogram(x) >= 0)

    def test_custom_hop(self, rng):
        stft = SoiStft(frame_params(), hop=448)
        x = rng.standard_normal(2 * stft.frame_length) + 0j
        assert stft.transform(x).shape[0] == stft.frame_count(x.size)

    def test_float32_plan(self, rng):
        stft = SoiStft(frame_params(), dtype=np.complex64)
        x = rng.standard_normal(stft.frame_length) + 0j
        assert stft.transform(x).dtype == np.complex64


class TestValidation:
    def test_short_signal_rejected(self, rng):
        stft = SoiStft(frame_params())
        with pytest.raises(ValueError):
            stft.transform(rng.standard_normal(10) + 0j)

    def test_bad_hop(self):
        with pytest.raises(ValueError):
            SoiStft(frame_params(), hop=0)

    def test_bad_window_name(self):
        with pytest.raises(ValueError):
            SoiStft(frame_params(), analysis_window="blackman")

    def test_bad_window_length(self):
        with pytest.raises(ValueError):
            SoiStft(frame_params(), analysis_window=np.ones(7))

    def test_2d_signal_rejected(self, rng):
        stft = SoiStft(frame_params())
        with pytest.raises(ValueError):
            stft.transform(rng.standard_normal((2, stft.frame_length)) + 0j)


class TestFrameGeometry:
    def test_rejects_hop_longer_than_frame(self):
        # hop > frame would silently skip samples between frames
        with pytest.raises(ValueError, match="drop samples"):
            _Frames(frame=64, hop=65)
        with pytest.raises(ValueError):
            SoiStft(frame_params(), hop=frame_params().n + 1)

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            _Frames(frame=0, hop=1)
        with pytest.raises(ValueError):
            _Frames(frame=64, hop=0)

    def test_count_with_and_without_tail(self):
        g = _Frames(frame=8, hop=4)
        assert g.count(7) == 0 and g.count(7, pad_tail=True) == 1
        assert g.count(8) == g.count(8, pad_tail=True) == 1
        assert g.count(11) == 1 and g.count(11, pad_tail=True) == 2
        assert g.count(12) == g.count(12, pad_tail=True) == 2
        assert g.count(13, pad_tail=True) == 3
        assert g.count(0, pad_tail=True) == 0


class TestPadTail:
    def test_partial_final_frame_is_dropped_by_default(self, rng):
        """Regression: a trailing partial frame used to vanish silently —
        the default still drops it, but pad_tail=True must keep it."""
        stft = SoiStft(frame_params())
        n, hop = stft.frame_length, stft.hop
        x = rng.standard_normal(n + hop + 100) + 0j  # 100-sample tail
        assert stft.transform(x).shape[0] == 2
        assert stft.transform(x, pad_tail=True).shape[0] == 3

    def test_padded_tail_matches_zero_padded_fft(self, rng):
        stft = SoiStft(frame_params(), analysis_window=None)
        n, hop = stft.frame_length, stft.hop
        tail_len = 100
        x = rng.standard_normal(n + tail_len) + \
            1j * rng.standard_normal(n + tail_len)
        s = stft.transform(x, pad_tail=True)
        assert s.shape == (2, n)
        tail = np.zeros(n, dtype=np.complex128)
        tail[:n - hop + tail_len] = x[hop:]
        ref = np.fft.fft(tail)
        err = np.linalg.norm(s[1] - ref) / np.linalg.norm(ref)
        assert err < 1e-4

    def test_signal_shorter_than_one_frame(self, rng):
        stft = SoiStft(frame_params(), analysis_window=None)
        n = stft.frame_length
        x = rng.standard_normal(37) + 0j
        s = stft.transform(x, pad_tail=True)
        assert s.shape == (1, n)
        ref = np.fft.fft(np.concatenate([x, np.zeros(n - 37)]))
        err = np.linalg.norm(s[0] - ref) / np.linalg.norm(ref)
        assert err < 1e-4

    def test_empty_signal_rejected(self):
        stft = SoiStft(frame_params())
        with pytest.raises(ValueError):
            stft.transform(np.zeros(0, dtype=np.complex128), pad_tail=True)

    def test_windowed_tail(self, rng):
        stft = SoiStft(frame_params())  # hann
        n = stft.frame_length
        x = rng.standard_normal(n + n // 4) + 0j
        s = stft.transform(x, pad_tail=True)
        tail = np.zeros(n, dtype=np.complex128)
        tail[:n // 2 + n // 4] = x[n // 2:]
        ref = np.fft.fft(tail * hann_window(n))
        err = np.linalg.norm(s[-1] - ref) / np.linalg.norm(ref)
        assert err < 1e-4

"""Tests for twiddle tables and the dynamic block (split) scheme."""

import numpy as np
import pytest

from repro.fft.twiddle import SplitTwiddle, twiddle_matrix, twiddle_table


class TestTwiddleTable:
    def test_values(self):
        w = twiddle_table(4)
        assert np.allclose(w, [1, -1j, -1, 1j])

    def test_inverse_sign_conjugates(self):
        assert np.allclose(twiddle_table(16, +1), twiddle_table(16, -1).conj())

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            twiddle_table(0)


class TestTwiddleMatrix:
    def test_matches_direct(self):
        t = twiddle_matrix(3, 4)
        n = 12
        for j in range(3):
            for k in range(4):
                assert np.isclose(t[j, k], np.exp(-2j * np.pi * j * k / n))

    def test_first_row_and_column_are_one(self):
        t = twiddle_matrix(5, 7)
        assert np.allclose(t[0, :], 1)
        assert np.allclose(t[:, 0], 1)


class TestSplitTwiddle:
    @pytest.mark.parametrize("n", [16, 100, 1024, 4096])
    def test_factors_match_direct(self, n):
        split = SplitTwiddle(n)
        m = np.arange(n)
        direct = np.exp(-2j * np.pi * m / n)
        assert np.allclose(split.factors(m), direct)

    def test_exponents_wrap_mod_n(self):
        split = SplitTwiddle(64)
        assert np.allclose(split.factors([64 + 3]), split.factors([3]))

    def test_storage_is_sublinear(self):
        n = 1 << 16
        split = SplitTwiddle(n)
        assert split.table_entries < n // 8
        # near-optimal: O(sqrt n)
        assert split.table_entries <= 10 * int(np.sqrt(n))

    def test_block_matrix_matches_full(self):
        n1, n2 = 8, 16
        split = SplitTwiddle(n1 * n2)
        full = twiddle_matrix(n2, n1)  # [j2, k1]
        got = split.block_matrix(np.arange(n2), np.arange(n1))
        assert np.allclose(got, full)

    def test_inverse_sign(self):
        split = SplitTwiddle(256, sign=+1)
        m = np.arange(256)
        assert np.allclose(split.factors(m), np.exp(2j * np.pi * m / 256))

    def test_explicit_block(self):
        split = SplitTwiddle(100, block=10)
        assert len(split.fine) == 10
        assert len(split.coarse) == 10
        assert np.allclose(split.factors(np.arange(100)),
                           np.exp(-2j * np.pi * np.arange(100) / 100))

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            SplitTwiddle(0)

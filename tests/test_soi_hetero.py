"""Tests for the heterogeneous (mixed Xeon/Phi) distributed SOI."""

import numpy as np
import pytest

from repro.cluster.simcluster import SimCluster
from repro.core.segments import segments_for_machines
from repro.core.soi_hetero import HeterogeneousSoiFFT
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10
from repro.util.validate import relative_l2_error
from tests.conftest import random_complex

MIXED = [XEON_E5_2680, XEON_PHI_SE10, XEON_PHI_SE10, XEON_E5_2680]


def build(n=32 * 448, seg_counts=None, machines=MIXED, b=48):
    if seg_counts is None:
        seg_counts = segments_for_machines(machines, 32)
    cluster = SimCluster(len(machines), machines=machines)
    return cluster, HeterogeneousSoiFFT(cluster, n, seg_counts, b=b)


class TestNumerics:
    def test_matches_numpy(self, rng):
        cluster, h = build()
        x = random_complex(rng, 32 * 448)
        y = h.assemble(h(h.scatter(x)))
        assert relative_l2_error(y, np.fft.fft(x)) < \
            10 * h.tables.expected_stopband

    def test_uniform_split_equals_homogeneous_pipeline(self, rng):
        """With equal segment counts the result must match the standard
        distributed SOI (same decomposition, different bookkeeping)."""
        from repro.core.params import SoiParams
        from repro.core.soi_dist import DistributedSoiFFT

        n, p = 32 * 448, 4
        x = random_complex(rng, n)
        cluster, h = build(n=n, seg_counts=[8, 8, 8, 8])
        y_het = h.assemble(h(h.scatter(x)))
        params = SoiParams(n=n, n_procs=p, segments_per_process=8,
                           n_mu=8, d_mu=7, b=48)
        cl = SimCluster(p)
        d = DistributedSoiFFT(cl, params)
        y_hom = d.assemble(d(d.scatter(x)))
        assert np.allclose(y_het, y_hom, rtol=1e-12, atol=1e-10)

    def test_single_rank(self, rng):
        cluster = SimCluster(1, machines=[XEON_PHI_SE10])
        h = HeterogeneousSoiFFT(cluster, 8 * 448, [8], b=48)
        x = random_complex(rng, 8 * 448)
        y = h.assemble(h(h.scatter(x)))
        assert relative_l2_error(y, np.fft.fft(x)) < 1e-4

    def test_output_segment_ownership(self, rng):
        cluster, h = build()
        x = random_complex(rng, 32 * 448)
        parts = h(h.scatter(x))
        m = h.params.m
        ref = np.fft.fft(x)
        offset = 0
        for r, part in enumerate(parts):
            assert part.size == h.seg_counts[r] * m
            assert relative_l2_error(part, ref[offset:offset + part.size]) < 1e-4
            offset += part.size


class TestLoadBalance:
    def test_proportional_segments_balance_compute(self, rng):
        """The §6.1 claim: weighting segments by peak flops equalizes
        per-rank compute time on a mixed cluster."""
        x = random_complex(rng, 32 * 448)
        cluster, h = build()
        h(h.scatter(x))
        assert h.compute_imbalance() < 1.15

    def test_uniform_segments_imbalance_on_mixed_cluster(self, rng):
        x = random_complex(rng, 32 * 448)
        cluster, h = build(seg_counts=[8, 8, 8, 8])
        h(h.scatter(x))
        # Phi is ~3x the Xeon: uniform split leaves ~3x imbalance
        assert h.compute_imbalance() > 2.0

    def test_balanced_beats_uniform_in_elapsed(self, rng):
        x = random_complex(rng, 32 * 448)
        cl_bal, h_bal = build()
        h_bal(h_bal.scatter(x))
        cl_uni, h_uni = build(seg_counts=[8, 8, 8, 8])
        h_uni(h_uni.scatter(x))
        assert cl_bal.elapsed < cl_uni.elapsed


class TestValidation:
    def test_rejects_wrong_seg_count_length(self):
        with pytest.raises(ValueError):
            build(seg_counts=[16, 16])

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            build(seg_counts=[0, 16, 8, 8])

    def test_rejects_wrong_part_count(self, rng):
        cluster, h = build()
        with pytest.raises(ValueError):
            h([random_complex(rng, 10)] * 3)

    def test_scatter_validates_shape(self, rng):
        cluster, h = build()
        with pytest.raises(ValueError):
            h.scatter(random_complex(rng, 5))

    def test_degenerate_row_split_rejected(self):
        # extreme weights push one rank below a single chunk
        with pytest.raises(ValueError):
            build(n=4 * 448, seg_counts=[1, 1, 1, 29],
                  machines=MIXED, b=16)

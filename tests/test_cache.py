"""Tests for the cache and TLB simulators."""

import numpy as np
import pytest

from repro.machine.cache import CacheSim, TlbSim


def seq(*addrs):
    return np.asarray(addrs, dtype=np.int64)


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        c = CacheSim(size_bytes=1024, line_bytes=64, assoc=2)
        c.access(seq(0))
        assert (c.stats.hits, c.stats.misses) == (0, 1)
        c.access(seq(0))
        assert (c.stats.hits, c.stats.misses) == (1, 1)

    def test_same_line_hits(self):
        c = CacheSim(size_bytes=1024, line_bytes=64, assoc=2)
        c.access(seq(0, 8, 16, 63))
        assert c.stats.misses == 1
        assert c.stats.hits == 3

    def test_capacity_eviction(self):
        # direct-mapped 2 sets x 1 way of 64B: addresses 0 and 128 conflict
        c = CacheSim(size_bytes=128, line_bytes=64, assoc=1)
        c.access(seq(0, 128, 0))
        assert c.stats.misses == 3

    def test_associativity_avoids_conflict(self):
        # same addresses, 2-way: second round hits
        c = CacheSim(size_bytes=256, line_bytes=64, assoc=2)
        c.access(seq(0, 128, 0, 128))
        assert c.stats.misses == 2
        assert c.stats.hits == 2

    def test_lru_eviction_order(self):
        c = CacheSim(size_bytes=128, line_bytes=64, assoc=2)  # 1 set, 2 ways
        c.access(seq(0, 64, 0))      # lines A, B; A touched again
        c.access(seq(128))           # evicts LRU = B
        c.access(seq(0))             # A still resident -> hit
        assert c.stats.hits == 2
        c.access(seq(64))            # B was evicted -> miss
        assert c.stats.misses == 4

    def test_working_set_within_capacity_all_hits_on_reuse(self):
        c = CacheSim(size_bytes=4096, line_bytes=64, assoc=8)
        addrs = np.arange(0, 4096, 64)
        c.access(addrs)
        c.reset_stats()
        c.access(addrs)
        assert c.stats.misses == 0

    def test_working_set_beyond_capacity_thrashes(self):
        c = CacheSim(size_bytes=1024, line_bytes=64, assoc=2)
        addrs = np.arange(0, 4096, 64)  # 4x capacity, cyclic
        c.access(addrs)
        c.reset_stats()
        c.access(addrs)  # LRU + cyclic reuse = zero hits
        assert c.stats.hits == 0

    def test_power_of_two_stride_conflicts(self):
        # stride = n_sets * line maps everything to one set
        c = CacheSim(size_bytes=8192, line_bytes=64, assoc=4)
        stride = c.n_sets * 64
        addrs = np.arange(16) * stride
        c.access(addrs)
        c.reset_stats()
        c.access(addrs)
        assert c.stats.miss_rate == 1.0  # 16 lines through a 4-way set

    def test_flush(self):
        c = CacheSim(size_bytes=1024, line_bytes=64, assoc=2)
        c.access(seq(0))
        c.flush()
        c.access(seq(0))
        assert c.stats.misses == 2

    def test_resident_lines(self):
        c = CacheSim(size_bytes=1024, line_bytes=64, assoc=2)
        c.access(np.arange(0, 320, 64))
        assert c.resident_lines() == 5

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheSim(size_bytes=1000, line_bytes=64, assoc=3)

    def test_default_is_phi_l2(self):
        c = CacheSim()
        assert c.size_bytes == 512 * 1024
        assert c.n_sets == 1024


class TestTlbSim:
    def test_page_locality(self):
        t = TlbSim(entries=4)
        t.access(seq(0, 8, 4000, 4096))
        assert t.stats.misses == 2  # pages 0 and 1
        assert t.stats.hits == 2

    def test_capacity_eviction(self):
        t = TlbSim(entries=2)
        t.access(seq(0, 4096, 8192))  # third page evicts LRU (page 0)
        t.access(seq(0))
        assert t.stats.misses == 4

    def test_lru_keeps_recent(self):
        t = TlbSim(entries=2)
        t.access(seq(0, 4096, 0, 8192))  # page 4096 is LRU at eviction
        t.access(seq(0))
        assert t.stats.hits == 2  # the re-touch of page 0, twice

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TlbSim(entries=0)

    def test_miss_rate_zero_when_empty(self):
        assert TlbSim().stats.miss_rate == 0.0

"""Tests for single-precision SOI (the §8.4 GPU/Cell comparison context)."""

import numpy as np
import pytest

from repro.core.params import SoiParams
from repro.core.soi_single import SoiFFT
from repro.fft.plan import get_plan
from tests.conftest import random_complex


def params(b=48):
    return SoiParams(n=8 * 448, n_procs=1, segments_per_process=8,
                     n_mu=8, d_mu=7, b=b)


class TestComplex64Soi:
    def test_output_dtype(self, rng):
        f = SoiFFT(params(), dtype=np.complex64)
        y = f(random_complex(rng, f.params.n).astype(np.complex64))
        assert y.dtype == np.complex64

    def test_error_matches_double_when_stopband_dominates(self, rng):
        """At B = 48 the window stopband (~5e-6) swamps float32 epsilon:
        single precision costs essentially nothing."""
        p = params(b=48)
        x = random_complex(rng, p.n)
        ref = np.fft.fft(x)
        e64 = np.linalg.norm(SoiFFT(p)(x) - ref) / np.linalg.norm(ref)
        e32 = np.linalg.norm(
            SoiFFT(p, dtype=np.complex64)(x.astype(np.complex64)) - ref
        ) / np.linalg.norm(ref)
        assert e32 == pytest.approx(e64, rel=0.25)

    def test_float32_floor_shows_at_high_b(self, rng):
        """At B = 72 the design stopband (1.6e-8) is below float32 eps:
        single precision becomes the error floor."""
        p = params(b=72)
        x = random_complex(rng, p.n)
        ref = np.fft.fft(x)
        e64 = np.linalg.norm(SoiFFT(p)(x) - ref) / np.linalg.norm(ref)
        e32 = np.linalg.norm(
            SoiFFT(p, dtype=np.complex64)(x.astype(np.complex64)) - ref
        ) / np.linalg.norm(ref)
        assert e64 < 1e-7
        assert e32 > 10 * e64  # float32 floor

    def test_requires_direct_local_fft(self):
        with pytest.raises(ValueError, match="direct"):
            SoiFFT(params(), dtype=np.complex64, local_fft="sixstep")

    def test_rejects_other_dtypes(self):
        with pytest.raises(ValueError):
            SoiFFT(params(), dtype=np.float32)


class TestPlanDtypeDispatch:
    def test_separate_cache_entries(self):
        p64 = get_plan(64, -1)
        p32 = get_plan(64, -1, dtype=np.complex64)
        assert p64 is not p32
        assert p64 is get_plan(64, -1)

    def test_bluestein_single_precision_rejected(self):
        with pytest.raises(ValueError, match="smooth"):
            get_plan(11, -1, dtype=np.complex64)

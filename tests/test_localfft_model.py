"""Tests for the Fig 10 local-FFT ablation model."""

import pytest

from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10
from repro.perfmodel.localfft import (
    LOCAL_FFT_VARIANTS,
    LocalFftVariant,
    local_fft_gflops,
    local_fft_time,
)

N16M = 16 * 2 ** 20


class TestFig10Shape:
    def test_four_variants_in_paper_order(self):
        names = [v.name for v in LOCAL_FFT_VARIANTS]
        assert names == ["6-step-naive", "6-step-opt", "latency-hiding",
                         "fine-grain"]

    def test_monotone_improvement(self):
        rates = [local_fft_gflops(N16M, v) for v in LOCAL_FFT_VARIANTS]
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_final_performance_near_120_gflops(self):
        # §6.2: "The performance of the final fft implementation, 120 gflops"
        final = local_fft_gflops(N16M, LOCAL_FFT_VARIANTS[-1])
        assert final == pytest.approx(120.0, rel=0.10)

    def test_final_efficiency_near_12_percent(self):
        final = local_fft_gflops(N16M, LOCAL_FFT_VARIANTS[-1])
        assert final / XEON_PHI_SE10.peak_gflops == pytest.approx(0.12, abs=0.015)

    def test_naive_is_several_times_slower(self):
        naive = local_fft_gflops(N16M, LOCAL_FFT_VARIANTS[0])
        final = local_fft_gflops(N16M, LOCAL_FFT_VARIANTS[-1])
        assert final / naive > 4.0

    def test_optimized_sweep_reduction_is_biggest_single_gain(self):
        naive, opt, lat, fine = (local_fft_time(N16M, v)
                                 for v in LOCAL_FFT_VARIANTS)
        assert naive / opt > 2.0  # 13 -> 4 sweeps
        assert opt / lat > 1.5  # prefetch + SMT
        assert lat / fine > 1.1  # LLC spill removal

    def test_realized_is_about_half_the_roofline_bound(self):
        # §6.2: "Our realized efficiency is ~50% of this upper bound [23%]"
        final = local_fft_gflops(N16M, LOCAL_FFT_VARIANTS[-1])
        bound = 0.23 * XEON_PHI_SE10.peak_gflops
        assert final / bound == pytest.approx(0.5, abs=0.1)


class TestModelMechanics:
    def test_time_scales_superlinearly_in_n(self):
        v = LOCAL_FFT_VARIANTS[-1]
        assert local_fft_time(2 * N16M, v) > 1.9 * local_fft_time(N16M, v)

    def test_other_machine(self):
        v = LOCAL_FFT_VARIANTS[-1]
        t_phi = local_fft_time(N16M, v, XEON_PHI_SE10)
        t_xeon = local_fft_time(N16M, v, XEON_E5_2680)
        # bandwidth-bound: ratio follows STREAM (150 vs 79)
        assert t_xeon / t_phi == pytest.approx(150 / 79, rel=0.05)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            local_fft_time(1, LOCAL_FFT_VARIANTS[0])

    def test_custom_variant(self):
        v = LocalFftVariant("2-sweep-ideal", 2.0, 0.0, 1.0,
                            prefetch=True, fine_grain=True, fused=True)
        assert local_fft_gflops(N16M, v) > \
            local_fft_gflops(N16M, LOCAL_FFT_VARIANTS[-1])

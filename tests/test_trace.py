"""Tests for trace events and aggregation."""

import pytest

from repro.cluster.trace import Event, Trace


class TestEvent:
    def test_duration(self):
        assert Event(0, "x", "compute", 1.0, 3.5).duration == pytest.approx(2.5)

    def test_rejects_bad_category(self):
        with pytest.raises(ValueError):
            Event(0, "x", "quantum", 0.0, 1.0)

    def test_rejects_backwards_time(self):
        with pytest.raises(ValueError):
            Event(0, "x", "compute", 2.0, 1.0)


class TestTrace:
    def _sample(self):
        t = Trace()
        t.record(0, "fft", "compute", 0.0, 1.0)
        t.record(0, "a2a", "mpi", 1.0, 2.0, nbytes=100)
        t.record(1, "fft", "compute", 0.0, 1.5)
        t.record(1, "a2a", "mpi", 1.5, 2.0, nbytes=80)
        return t

    def test_span(self):
        assert self._sample().span == pytest.approx(2.0)

    def test_empty_span(self):
        assert Trace().span == 0.0

    def test_total_filters(self):
        t = self._sample()
        assert t.total("compute") == pytest.approx(2.5)
        assert t.total("mpi", rank=0) == pytest.approx(1.0)
        assert t.total(label="fft") == pytest.approx(2.5)

    def test_breakdown_by_label(self):
        t = self._sample()
        assert t.breakdown_by_label(rank=1) == \
            {"fft": pytest.approx(1.5), "a2a": pytest.approx(0.5)}

    def test_bytes_by_category(self):
        assert self._sample().bytes_by_category()["mpi"] == 180

    def test_rank_events(self):
        assert len(self._sample().rank_events(0)) == 2


class TestExposedTime:
    def test_fully_exposed(self):
        t = Trace()
        t.record(0, "a2a", "mpi", 0.0, 2.0)
        assert t.exposed_time(0) == pytest.approx(2.0)

    def test_fully_hidden(self):
        t = Trace()
        t.record(0, "a2a", "mpi", 0.0, 2.0)
        t.record(0, "fft", "compute", 0.0, 2.0)
        assert t.exposed_time(0) == 0.0

    def test_partial_overlap(self):
        t = Trace()
        t.record(0, "a2a", "mpi", 0.0, 3.0)
        t.record(0, "fft", "compute", 1.0, 2.0)
        assert t.exposed_time(0) == pytest.approx(2.0)

    def test_other_ranks_do_not_hide(self):
        t = Trace()
        t.record(0, "a2a", "mpi", 0.0, 2.0)
        t.record(1, "fft", "compute", 0.0, 2.0)
        assert t.exposed_time(0) == pytest.approx(2.0)

    def test_overlapping_compute_does_not_double_cover(self):
        # regression: two compute events overlapping on [1, 2] must not
        # subtract that second from the comm interval twice
        t = Trace()
        t.record(0, "a2a", "mpi", 0.0, 3.0)
        t.record(0, "fft", "compute", 0.0, 2.0)
        t.record(0, "hedge copy", "compute", 1.0, 3.0)
        assert t.exposed_time(0) == pytest.approx(0.0)

    def test_duplicate_compute_events_cover_once(self):
        # exact duplicates (a re-executed stage) are one covered second
        t = Trace()
        t.record(0, "a2a", "mpi", 0.0, 3.0)
        t.record(0, "fft", "compute", 0.0, 2.0)
        t.record(0, "fft", "compute", 0.0, 2.0)
        assert t.exposed_time(0) == pytest.approx(1.0)

    def test_exposed_never_negative(self):
        t = Trace()
        t.record(0, "a2a", "mpi", 1.0, 2.0)
        t.record(0, "fft", "compute", 0.0, 3.0)
        t.record(0, "fft2", "compute", 0.5, 2.5)
        assert t.exposed_time(0) == 0.0

    def test_disjoint_covers_sum(self):
        t = Trace()
        t.record(0, "a2a", "mpi", 0.0, 10.0)
        t.record(0, "a", "compute", 1.0, 2.0)
        t.record(0, "b", "compute", 4.0, 6.0)
        t.record(0, "c", "compute", 5.0, 7.0)  # merges with b -> [4, 7]
        assert t.exposed_time(0) == pytest.approx(10.0 - 1.0 - 3.0)

"""Tests for the batched Stockham FFT engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fft.dft import dft
from repro.fft.stockham import StockhamPlan, fft_flops, fft_stockham, stage_count
from tests.conftest import random_complex


class TestForwardCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32, 128, 1024, 4096])
    def test_pow2_matches_numpy(self, rng, n):
        x = random_complex(rng, n)
        assert np.allclose(fft_stockham(x), np.fft.fft(x))

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 9, 12, 15, 21, 35, 60, 105, 210])
    def test_smooth_matches_numpy(self, rng, n):
        x = random_complex(rng, n)
        assert np.allclose(fft_stockham(x), np.fft.fft(x))

    @pytest.mark.parametrize("n", [8, 24])
    def test_matches_naive_dft(self, rng, n):
        x = random_complex(rng, n)
        assert np.allclose(fft_stockham(x), dft(x))

    def test_batch_2d(self, rng):
        x = random_complex(rng, 5, 64)
        assert np.allclose(fft_stockham(x), np.fft.fft(x, axis=-1))

    def test_batch_3d(self, rng):
        x = random_complex(rng, 2, 3, 16)
        assert np.allclose(fft_stockham(x), np.fft.fft(x, axis=-1))

    def test_real_input_promoted(self):
        x = np.arange(8.0)
        assert np.allclose(fft_stockham(x), np.fft.fft(x))


class TestInverse:
    @pytest.mark.parametrize("n", [4, 12, 64, 135])
    def test_roundtrip(self, rng, n):
        x = random_complex(rng, n)
        assert np.allclose(fft_stockham(fft_stockham(x), sign=+1), x)

    def test_matches_numpy_ifft(self, rng):
        x = random_complex(rng, 48)
        assert np.allclose(fft_stockham(x, sign=+1), np.fft.ifft(x))


class TestPlan:
    def test_explicit_radices(self, rng):
        x = random_complex(rng, 16)
        for radices in ([2, 2, 2, 2], [4, 4], [2, 4, 2], [4, 2, 2]):
            plan = StockhamPlan(16, radices=radices)
            assert np.allclose(plan(x), np.fft.fft(x))

    def test_odd_radices(self, rng):
        x = random_complex(rng, 3 * 5 * 7)
        plan = StockhamPlan(105, radices=[3, 5, 7])
        assert np.allclose(plan(x), np.fft.fft(x))

    def test_rejects_mismatched_radices(self):
        with pytest.raises(ValueError):
            StockhamPlan(16, radices=[2, 2])

    def test_rejects_non_smooth(self):
        with pytest.raises(ValueError):
            StockhamPlan(22)

    def test_rejects_bad_sign(self):
        with pytest.raises(ValueError):
            StockhamPlan(8, sign=0)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            StockhamPlan(0)

    def test_rejects_wrong_length_input(self, rng):
        plan = StockhamPlan(8)
        with pytest.raises(ValueError):
            plan(random_complex(rng, 16))

    def test_flops_property(self):
        assert StockhamPlan(1024).flops == pytest.approx(5 * 1024 * 10)

    def test_input_not_mutated(self, rng):
        x = random_complex(rng, 32)
        saved = x.copy()
        fft_stockham(x)
        assert np.array_equal(x, saved)


class TestFlopsAndStages:
    def test_fft_flops(self):
        assert fft_flops(2) == pytest.approx(10.0)
        assert fft_flops(1) == 0.0

    def test_stage_count_radix4_bias(self):
        assert stage_count(16) == 2
        assert stage_count(32) == 3
        assert stage_count(1024) == 5


# -- property-based tests on DFT identities ---------------------------------

_signals = arrays(
    dtype=np.complex128,
    shape=st.sampled_from([4, 8, 16, 12, 30]),
    elements=st.complex_numbers(max_magnitude=1e3, allow_nan=False,
                                allow_infinity=False),
)


class TestDftProperties:
    @given(_signals, _signals.filter(lambda a: True))
    @settings(max_examples=40, deadline=None)
    def test_linearity(self, x, y):
        if x.shape != y.shape:
            return
        lhs = fft_stockham(2.0 * x + 3.0 * y)
        rhs = 2.0 * fft_stockham(x) + 3.0 * fft_stockham(y)
        assert np.allclose(lhs, rhs, atol=1e-8 * (1 + np.abs(rhs).max()))

    @given(_signals)
    @settings(max_examples=40, deadline=None)
    def test_parseval(self, x):
        y = fft_stockham(x)
        n = x.shape[-1]
        assert np.isclose(np.sum(np.abs(y) ** 2), n * np.sum(np.abs(x) ** 2),
                          rtol=1e-10, atol=1e-6)

    @given(_signals, st.integers(min_value=0, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_shift_theorem(self, x, shift):
        n = x.shape[-1]
        y = fft_stockham(np.roll(x, shift))
        k = np.arange(n)
        expected = fft_stockham(x) * np.exp(-2j * np.pi * k * shift / n)
        assert np.allclose(y, expected, atol=1e-8 * (1 + np.abs(expected).max()))

    @given(st.integers(min_value=0, max_value=15))
    @settings(max_examples=16, deadline=None)
    def test_impulse_is_exponential(self, pos):
        n = 16
        x = np.zeros(n, dtype=np.complex128)
        x[pos] = 1.0
        k = np.arange(n)
        assert np.allclose(fft_stockham(x), np.exp(-2j * np.pi * k * pos / n))

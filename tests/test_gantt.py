"""Tests for ASCII Gantt rendering."""

from repro.cluster.gantt import gantt_from_schedule, gantt_from_trace
from repro.cluster.schedule import Schedule
from repro.cluster.trace import CATEGORIES, Trace


def sample_trace() -> Trace:
    t = Trace()
    t.record(0, "conv", "compute", 0.0, 2.0)
    t.record(0, "a2a", "mpi", 2.0, 4.0)
    t.record(1, "conv", "compute", 0.0, 1.0)
    t.record(1, "dma", "pcie", 1.0, 2.0)
    return t


class TestTraceGantt:
    def test_one_lane_per_rank(self):
        out = gantt_from_trace(sample_trace())
        assert "rank 0" in out and "rank 1" in out

    def test_glyphs_by_category(self):
        out = gantt_from_trace(sample_trace(), width=16)
        rank0 = next(l for l in out.splitlines() if l.startswith("rank 0"))
        assert "#" in rank0 and "=" in rank0
        rank1 = next(l for l in out.splitlines() if l.startswith("rank 1"))
        assert "~" in rank1

    def test_proportions(self):
        out = gantt_from_trace(sample_trace(), width=16)
        rank0 = next(l for l in out.splitlines() if l.startswith("rank 0"))
        assert rank0.count("#") == rank0.count("=")  # 2s compute, 2s mpi

    def test_empty_trace(self):
        assert gantt_from_trace(Trace(), title="empty") == "empty"

    def test_title_and_legend(self):
        out = gantt_from_trace(sample_trace(), title="T")
        assert out.splitlines()[0] == "T"
        assert "compute" in out  # legend

    def test_retry_hedge_deadline_glyphs_distinct(self):
        t = Trace()
        t.record(0, "a2a retry", "retry", 0.0, 2.0)
        t.record(0, "hedge launch", "hedge", 2.0, 4.0)
        t.record(0, "deadline slack", "deadline", 4.0, 6.0)
        out = gantt_from_trace(t, width=18)
        rank0 = next(l for l in out.splitlines() if l.startswith("rank 0"))
        assert "!" in rank0 and "+" in rank0 and "x" in rank0
        # three distinct glyphs, never sharing one symbol
        assert len({g for g in rank0 if g in "!+x"}) == 3

    def test_legend_covers_every_category(self):
        out = gantt_from_trace(sample_trace())
        legend = out.splitlines()[-1]
        for cat in CATEGORIES:
            assert cat in legend


class TestScheduleGantt:
    def test_one_lane_per_resource(self):
        s = Schedule()
        s.add("a", ("cpu", 0), 1.0, category="compute")
        s.add("b", ("net", 0), 2.0, deps=["a"], category="mpi")
        out = gantt_from_schedule(s)
        assert "cpu/0" in out and "net/0" in out

    def test_overlap_visible(self):
        s = Schedule()
        s.add("c1", ("cpu", 0), 2.0, category="compute")
        s.add("n1", ("net", 0), 2.0, category="mpi")
        out = gantt_from_schedule(s, width=8)
        cpu = next(l for l in out.splitlines() if l.startswith("cpu"))
        net = next(l for l in out.splitlines() if l.startswith("net"))
        # both lanes fully busy over the same span
        assert cpu.count("#") >= 7 and net.count("=") >= 7

    def test_empty_schedule(self):
        assert gantt_from_schedule(Schedule(), title="x") == "x"

"""Deadline-aware resilient serving: deadlines/budgets, circuit breakers,
the degradation ladder, admission control, and the exception-chained
escalation path of the verified communicator."""

import numpy as np
import pytest

from repro.cluster.communicator import Communicator  # noqa: F401 (import cycle guard)
from repro.cluster.faults import (
    CorruptionDetected,
    FaultPlan,
    RankFailed,
    RetriesExhausted,
    RetryPolicy,
)
from repro.cluster.simcluster import SimCluster
from repro.core.error_model import expected_snr_db
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from repro.core.window import build_tables
from repro.resilience import (
    Budget,
    BreakerBoard,
    ClusterSoiService,
    Deadline,
    DeadlineExceeded,
    DegradationLadder,
    LinkBreaker,
    Overloaded,
    SoiService,
)
from repro.util.validate import spectral_snr
from tests.conftest import random_complex


class FakeClock:
    """Deterministic injectable clock for wall-clock deadline tests."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def p4_params() -> SoiParams:
    return SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                     n_mu=8, d_mu=7, b=48)


# ---------------------------------------------------------------------------
# deadlines and budgets
# ---------------------------------------------------------------------------

class TestDeadline:
    def test_passes_before_expiry_then_raises(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        d.check("early")  # no raise
        clock.advance(0.5)
        d.check("mid")
        assert d.remaining() == pytest.approx(0.5)
        clock.advance(0.6)
        with pytest.raises(DeadlineExceeded) as ei:
            d.check("late")
        assert ei.value.stage == "late"
        assert ei.value.elapsed == pytest.approx(1.1)
        assert ei.value.deadline_seconds == 1.0
        assert d.expired()

    def test_rejects_nonpositive_seconds(self):
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_budget_accounting(self):
        b = Budget(2.0)
        b.charge("mpi", 0.5)
        b.charge("retry", 0.25)
        b.charge("mpi", 0.5)
        assert b.charges["mpi"] == pytest.approx(1.0)
        assert b.spent == pytest.approx(1.25)
        assert "retry" in b.describe()
        with pytest.raises(ValueError):
            b.charge("mpi", -1.0)

    def test_simulated_deadline_records_trace_once(self):
        cl = SimCluster(2)
        d = Deadline.simulated(cl, 1e-3)
        cl.charge_seconds(0, "work", 5e-3)
        for _ in range(2):  # repeated checks must not double-record
            with pytest.raises(DeadlineExceeded):
                d.check("boundary")
        deadline_events = [e for e in cl.trace.events
                           if e.category == "deadline"]
        assert len(deadline_events) == 1
        ev = deadline_events[0]
        assert ev.t_start == pytest.approx(d.expires_at)
        assert ev.duration == pytest.approx(5e-3 - 1e-3)
        assert d.budget.charges["deadline"] == pytest.approx(4e-3)


class TestCommunicatorDeadline:
    def test_collectives_charge_budget_and_check_at_entry(self):
        cl = SimCluster(2)
        d = Deadline.simulated(cl, 1.0)
        cl.comm.install_deadline(d)
        cl.comm.allgather([np.ones(64, dtype=np.complex128)
                           for _ in range(2)])
        assert d.budget.charges.get("mpi", 0.0) > 0.0
        cl.charge_seconds(0, "slow kernel", 2.0)
        with pytest.raises(DeadlineExceeded):
            cl.comm.barrier()
        assert cl.trace.total("deadline") > 0.0
        cl.comm.clear_deadline()
        assert cl.comm.deadline is None
        cl.comm.barrier()  # no deadline, no raise

    def test_retry_attempts_charged_to_budget(self):
        cl = SimCluster(2)
        cl.comm.install_faults(FaultPlan(timeout_messages={1}),
                               RetryPolicy(max_retries=3))
        d = Deadline.simulated(cl, 10.0)
        cl.comm.install_deadline(d)
        cl.comm.allgather([np.ones(32, dtype=np.complex128)
                           for _ in range(2)])
        assert d.budget.charges.get("retry", 0.0) > 0.0
        assert d.budget.charges.get("mpi", 0.0) > 0.0


# ---------------------------------------------------------------------------
# circuit breakers
# ---------------------------------------------------------------------------

class TestLinkBreaker:
    def test_trips_after_threshold_and_cools_to_half_open(self):
        brk = LinkBreaker(threshold=3, cooldown_seconds=1.0)
        assert not brk.record_failure("timeout", now=0.0)
        assert not brk.record_failure("timeout", now=0.0)
        assert brk.record_failure("timeout", now=0.0)  # third trips
        assert brk.state == "open" and brk.trips == 1
        assert brk.blocking(0.5)
        assert not brk.blocking(1.5)  # cooled: becomes the trial
        assert brk.state == "half-open"
        assert brk.record_success()
        assert brk.state == "closed"

    def test_half_open_failure_escalates_cooldown(self):
        brk = LinkBreaker(threshold=1, cooldown_seconds=1.0, escalation=2.0)
        brk.record_failure("corrupt", now=0.0)
        assert not brk.blocking(1.5)  # half-open
        assert brk.record_failure("corrupt", now=1.5)  # failed trial
        assert brk.state == "open"
        assert brk.cooldown == pytest.approx(2.0)
        assert brk.blocking(3.0)  # 1.5 + 2.0 not yet reached
        assert not brk.blocking(3.6)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            LinkBreaker(threshold=0)
        with pytest.raises(ValueError):
            LinkBreaker(cooldown_seconds=0.0)
        with pytest.raises(ValueError):
            LinkBreaker(escalation=0.5)


class TestBreakerBoard:
    def test_transitions_and_blocking(self):
        board = BreakerBoard(threshold=2, cooldown_seconds=1.0)
        board.record_failure(0, 1, "timeout", now=0.0)
        board.record_failure(0, 1, "timeout", now=0.0)
        trs = board.drain_transitions()
        assert [(t.src, t.dst, t.old, t.new) for t in trs] == \
            [(0, 1, "closed", "open")]
        assert board.open_links == [(0, 1)]
        assert board.any_open(0.5)
        assert not board.any_open(2.0)  # cooled
        assert board.cooled_at() == pytest.approx(1.0)
        blocked = board.blocking([0, 1, 2], 0.5)
        assert [(s, d) for s, d, _ in blocked] == [(0, 1)]
        assert board.blocking([2, 3], 0.5) == []  # link not among parts
        board.record_success(0, 1, now=2.0)  # closes after implicit trial
        board.blocking([0, 1], 2.0)  # transitions open -> half-open
        board.record_success(0, 1, now=2.0)
        assert board.link(0, 1).state == "closed"
        board.reset()
        assert board.open_links == [] and board.fast_failures == 0


class TestCommunicatorBreakers:
    def _armed_cluster(self, n=4):
        cl = SimCluster(n)
        cl.comm.install_faults(FaultPlan())  # clean plan, verified path on
        board = BreakerBoard(threshold=3, cooldown_seconds=5e-3)
        cl.comm.install_breakers(board)
        return cl, board

    def test_open_link_fails_fast_with_chained_cause(self):
        cl, board = self._armed_cluster()
        for _ in range(3):
            board.record_failure(0, 1, "timeout", now=0.0)
        with pytest.raises(RetriesExhausted) as ei:
            cl.comm.barrier()
        assert isinstance(ei.value.__cause__, TimeoutError)
        assert board.fast_failures == 1
        labels = [e.label for e in cl.trace.events]
        assert any("breaker closed->open" in lb for lb in labels)

    def test_open_unresponsive_link_declares_rank_dead(self):
        cl, board = self._armed_cluster()
        for _ in range(3):
            board.record_failure(2, 1, "unresponsive", suspect=1, now=0.0)
        with pytest.raises(RankFailed) as ei:
            cl.comm.barrier()
        assert ei.value.rank == 1
        assert not cl.alive[1]
        assert isinstance(ei.value.__cause__, TimeoutError)

    def test_open_corrupt_link_raises_corruption(self):
        cl, board = self._armed_cluster()
        for _ in range(3):
            board.record_failure(0, 3, "corrupt", now=0.0)
        with pytest.raises(CorruptionDetected):
            cl.comm.allgather([np.ones(8, dtype=np.complex128)
                               for _ in range(4)])

    def test_half_open_trial_closes_on_clean_traffic(self):
        cl, board = self._armed_cluster()
        for _ in range(3):
            board.record_failure(0, 1, "timeout", now=0.0)
        for r in range(cl.n_ranks):
            cl.clocks[r] = 1.0  # past the cooldown
        cl.comm.allgather([np.ones(8, dtype=np.complex128)
                           for _ in range(4)])
        assert board.link(0, 1).state == "closed"

    def test_real_retry_path_trips_breaker_early(self):
        cl = SimCluster(2)
        cl.comm.install_faults(
            FaultPlan(timeout_messages=range(1, 1000)),
            RetryPolicy(max_retries=8))
        board = BreakerBoard(threshold=3, cooldown_seconds=5e-3)
        cl.comm.install_breakers(board)
        with pytest.raises(RetriesExhausted) as ei:
            cl.comm.allgather([np.ones(16, dtype=np.complex128)
                               for _ in range(2)])
        assert isinstance(ei.value.__cause__, TimeoutError)
        # the breaker tripped at its threshold, well short of max_retries
        assert cl.comm.retry_count == 2
        assert board.tripped_links  # at least one directed link opened


# ---------------------------------------------------------------------------
# exception chaining on the plain retry path
# ---------------------------------------------------------------------------

class TestExceptionChaining:
    def test_retries_exhausted_chains_timeout(self):
        cl = SimCluster(2)
        cl.comm.install_faults(FaultPlan(timeout_messages=range(1, 1000)),
                               RetryPolicy(max_retries=2))
        with pytest.raises(RetriesExhausted) as ei:
            cl.comm.allgather([np.ones(16, dtype=np.complex128)
                               for _ in range(2)])
        assert isinstance(ei.value.__cause__, TimeoutError)

    def test_rank_failed_chains_timeout(self):
        cl = SimCluster(2)
        cl.comm.install_faults(FaultPlan(rank_failures={1: 1}),
                               RetryPolicy(max_retries=1))
        with pytest.raises(RankFailed) as ei:
            cl.comm.allgather([np.ones(16, dtype=np.complex128)
                               for _ in range(2)])
        assert ei.value.rank == 1
        assert isinstance(ei.value.__cause__, TimeoutError)

    def test_exhausted_recovery_chains_last_rank_failure(self, rng):
        params = p4_params()
        cl = SimCluster(4)
        # every rank dies in sequence: recovery shrinks until nobody is left
        cl.comm.install_faults(
            FaultPlan(rank_failures={0: 1, 1: 2, 2: 3, 3: 4}),
            RetryPolicy(max_retries=1))
        soi = DistributedSoiFFT(cl, params)
        x = random_complex(rng, params.n)
        with pytest.raises(RankFailed) as ei:
            soi(soi.scatter(x))
        assert ei.value.rank == -1
        assert isinstance(ei.value.__cause__, RankFailed)


# ---------------------------------------------------------------------------
# the degradation ladder
# ---------------------------------------------------------------------------

class TestLadder:
    def test_standard_ladder_sorted_and_annotated(self):
        lad = DegradationLadder.standard(8 * 1344)
        assert len(lad) >= 5
        snrs = [r.predicted_snr_db for r in lad]
        assert snrs == sorted(snrs, reverse=True)
        assert any(r.dtype == np.dtype(np.complex64) for r in lad)

    def test_distributed_ladder_is_double_precision_only(self):
        lad = DegradationLadder.standard(8 * 448, n_procs=4,
                                         segments_per_process=2)
        assert len(lad) >= 3
        assert all(r.dtype == np.dtype(np.complex128) for r in lad)
        assert all(r.params.n_procs == 4 for r in lad)

    def test_viable_and_cheapest(self):
        lad = DegradationLadder.standard(8 * 1344)
        floor = lad[0].predicted_snr_db - 1.0
        viable = lad.viable(floor)
        assert viable and viable[0][0] == 0
        idx, rung = lad.cheapest_viable(0.0)
        assert idx == len(lad) - 1
        assert lad.cheapest_viable(1e9) is None
        with pytest.raises(ValueError):
            DegradationLadder([])

    def test_table_lists_every_rung(self):
        lad = DegradationLadder.standard(8 * 1344)
        table = lad.table()
        assert table.count("\n") == len(lad) + 1
        assert "predicted SNR" in table

    def test_predicted_noise_stays_below_abft_output_threshold(self):
        # A degraded rung must not trip its own verifier: the predicted
        # noise floor has to sit inside the rung's calibrated ABFT
        # output tolerance (which is derived from the same tables).
        lad = DegradationLadder.standard(8 * 1344)
        for rung in lad:
            predicted_noise = 10.0 ** (-rung.predicted_snr_db / 20.0)
            assert predicted_noise <= rung.thresholds.output_rtol

    def test_expected_snr_is_conservative(self, rng):
        # spot-check the model on one mid-ladder design point
        p = SoiParams(n=8 * 1344, n_procs=1, segments_per_process=8,
                      n_mu=8, d_mu=7, b=48)
        tables = build_tables(p)
        predicted = expected_snr_db(tables)
        from repro.core.soi_single import SoiFFT
        x = random_complex(rng, p.n)
        y = SoiFFT(p)(x)
        measured = spectral_snr(y, np.fft.fft(x))
        assert predicted <= measured <= predicted + 3.0


# ---------------------------------------------------------------------------
# node-local serving
# ---------------------------------------------------------------------------

class TestSoiService:
    @pytest.fixture(scope="class")
    def ladder(self):
        return DegradationLadder.standard(8 * 1344)

    def test_serves_full_quality_with_loose_deadline(self, ladder, rng):
        svc = SoiService(ladder, clock=FakeClock())
        x = random_complex(rng, 8 * 1344)
        res = svc.submit(x, deadline_seconds=60.0, min_snr_db=150.0)
        assert res.outcome == "ok"
        assert res.report.rung_index == 0
        assert res.report.reason == "full quality"
        snr = spectral_snr(res.y, np.fft.fft(x))
        assert snr >= 150.0

    def test_degrades_under_deadline_pressure(self, ladder, rng):
        svc = SoiService(ladder, clock=FakeClock())
        est = svc._estimate(1)
        best = est(ladder[0])
        cheapest = min(est(r) for r in ladder)
        assert cheapest < best  # otherwise the ladder cannot help
        x = random_complex(rng, 8 * 1344)
        res = svc.submit(x, deadline_seconds=(cheapest + best) / 2,
                         min_snr_db=70.0)
        assert res.outcome == "degraded"
        assert res.report.rung_index > 0
        assert res.report.reason == "deadline pressure"
        assert spectral_snr(res.y, np.fft.fft(x)) >= 70.0

    def test_sheds_infeasible_deadline(self, ladder, rng):
        svc = SoiService(ladder, clock=FakeClock())
        x = random_complex(rng, 8 * 1344)
        with pytest.raises(Overloaded) as ei:
            svc.submit(x, deadline_seconds=1e-12, min_snr_db=70.0)
        assert ei.value.projected_seconds is not None
        assert svc.admission.shed_count == 1

    def test_sheds_when_queue_full(self, ladder, rng):
        clock = FakeClock()
        svc = SoiService(ladder, clock=clock, queue_limit=1)
        svc.admission._backlog.append(clock() + 100.0)  # a queued request
        with pytest.raises(Overloaded) as ei:
            svc.submit(random_complex(rng, 8 * 1344), deadline_seconds=60.0)
        assert ei.value.queued == 1

    def test_sheds_unreachable_accuracy_floor(self, ladder, rng):
        svc = SoiService(ladder, clock=FakeClock())
        with pytest.raises(Overloaded):
            svc.submit(random_complex(rng, 8 * 1344), deadline_seconds=60.0,
                       min_snr_db=1e9)

    def test_calibration_tracks_observed_latency(self, ladder, rng):
        clock = FakeClock()
        svc = SoiService(ladder, clock=clock, calibration_gain=1.0)
        real = SoiService(ladder).clock  # wall clock unused; keep FakeClock
        del real
        x = random_complex(rng, 8 * 1344)

        # make the fake clock advance a fixed latency per submit
        orig_batch = svc.plan(0).batch

        def slow_batch(xs, out=None, deadline=None):
            clock.advance(0.125)
            return orig_batch(xs, out=out, deadline=deadline)

        svc.plan(0).batch = slow_batch
        svc.submit(x, deadline_seconds=60.0, min_snr_db=150.0)
        raw = svc._estimate(1)(ladder[0])
        assert svc.admission._scale == pytest.approx(0.125 / raw)

    def test_stft_serving(self, ladder, rng):
        svc = SoiService(ladder, clock=FakeClock())
        frame = ladder[0].params.n
        x = random_complex(rng, 2 * frame + 57)
        res = svc.submit_stft(x, deadline_seconds=120.0, min_snr_db=70.0,
                              pad_tail=True)
        n_frames = res.y.shape[0]
        assert res.y.shape[1] == frame
        assert n_frames >= 3  # the padded tail frame is present


# ---------------------------------------------------------------------------
# cluster serving
# ---------------------------------------------------------------------------

def cluster_ladder():
    return DegradationLadder.standard(8 * 448, n_procs=4,
                                      segments_per_process=2)


class TestClusterSoiService:
    def test_clean_request_is_ok_and_exact(self, rng):
        cl = SimCluster(4)
        svc = ClusterSoiService(cl, cluster_ladder())
        x = random_complex(rng, 8 * 448)
        res = svc.submit(x, deadline_seconds=10.0, min_snr_db=70.0)
        assert res.outcome == "ok"
        assert res.latency_seconds > 0.0
        assert spectral_snr(res.y, np.fft.fft(x)) >= 70.0
        assert cl.comm.deadline is None  # uninstalled after the request

    def test_rank_failure_recovery_reports_degraded(self, rng):
        cl = SimCluster(4)
        cl.comm.install_faults(FaultPlan(rank_failures={3: 2}),
                               RetryPolicy(max_retries=1))
        svc = ClusterSoiService(cl, cluster_ladder())
        x = random_complex(rng, 8 * 448)
        res = svc.submit(x, deadline_seconds=10.0, min_snr_db=70.0)
        assert res.outcome == "degraded"
        assert res.report.reason == "rank failure recovery"
        assert spectral_snr(res.y, np.fft.fft(x)) >= 70.0

    def test_open_breaker_degrades_preemptively(self, rng):
        cl = SimCluster(4)
        cl.comm.install_faults(FaultPlan())
        svc = ClusterSoiService(cl, cluster_ladder())
        for _ in range(svc.breakers.threshold):
            svc.breakers.record_failure(0, 1, "timeout", now=cl.elapsed)
        x = random_complex(rng, 8 * 448)
        res = svc.submit(x, deadline_seconds=10.0, min_snr_db=70.0)
        assert res.outcome == "degraded"
        assert res.report.reason == "open breaker"
        cheapest_idx, _ = svc.ladder.cheapest_viable(70.0)
        assert res.report.rung_index == cheapest_idx
        assert spectral_snr(res.y, np.fft.fft(x)) >= 70.0

    def test_deadline_exceeded_when_retries_eat_the_budget(self, rng):
        cl = SimCluster(4)
        cl.comm.install_faults(FaultPlan(timeout_messages=range(1, 60)),
                               RetryPolicy(max_retries=16))
        svc = ClusterSoiService(cl, cluster_ladder())
        est = svc.admission.scaled(svc._estimate(svc.ladder[0]))
        x = random_complex(rng, 8 * 448)
        with pytest.raises(DeadlineExceeded):
            svc.submit(x, deadline_seconds=est * 1.02, min_snr_db=150.0)
        assert cl.trace.total("deadline") > 0.0
        assert cl.comm.deadline is None

    def test_mismatched_ladder_rejected(self):
        cl = SimCluster(2)
        with pytest.raises(ValueError):
            ClusterSoiService(cl, cluster_ladder())

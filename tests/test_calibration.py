"""Tests for efficiency calibration (model <-> measurement closure)."""

import numpy as np
import pytest

from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10
from repro.perfmodel.calibration import (
    fit_efficiencies,
    implied_efficiency,
    implied_fft_efficiency,
)
from repro.perfmodel.model import PAPER_SECTION4_EXAMPLE


class TestImpliedEfficiency:
    def test_roundtrip(self):
        # running 346 GFlops in 2 s on a 346 GF/s machine = 50% efficiency
        assert implied_efficiency(2.0, 346e9, XEON_E5_2680) == pytest.approx(0.5)

    def test_nodes_aggregate(self):
        assert implied_efficiency(1.0, 2 * 346e9, XEON_E5_2680, nodes=2) == \
            pytest.approx(1.0)

    def test_fft_convention(self):
        n = 2 ** 20
        t = 5 * n * 20 / (0.12 * 1074e9)
        assert implied_fft_efficiency(t, n, XEON_PHI_SE10) == pytest.approx(0.12)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            implied_efficiency(0.0, 1.0, XEON_E5_2680)
        with pytest.raises(ValueError):
            implied_efficiency(1.0, 0.0, XEON_E5_2680)


class TestFitFromModel:
    def test_model_closure(self):
        """Feeding the §4 model's own component times back through the
        calibrator must recover the configured efficiencies exactly."""
        m = PAPER_SECTION4_EXAMPLE
        breakdown = {
            "local FFT": m.t_fft(XEON_E5_2680, m.mu * m.n_total),
            "convolution": m.t_conv(XEON_E5_2680),
        }
        fit = fit_efficiencies(breakdown, n=m.n_total, b=m.b, mu=m.mu,
                               machine=XEON_E5_2680, nodes=m.nodes)
        assert fit["fft"] == pytest.approx(0.12, rel=1e-6)
        assert fit["conv"] == pytest.approx(0.40, rel=1e-6)

    def test_partial_breakdown(self):
        fit = fit_efficiencies({"convolution": 1.0}, n=2 ** 20, b=72,
                               mu=8 / 7, machine=XEON_PHI_SE10)
        assert set(fit) == {"conv"}


class TestExecutedRunClosure:
    def test_simcluster_run_matches_configured_efficiencies(self, rng):
        """Calibrate from an actually-executed distributed SOI trace."""
        from repro.cluster.simcluster import SimCluster
        from repro.core.params import SoiParams
        from repro.core.soi_dist import DistributedSoiFFT

        params = SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        cl = SimCluster(4)
        dist = DistributedSoiFFT(cl, params)
        x = rng.standard_normal(params.n) + 1j * rng.standard_normal(params.n)
        dist(dist.scatter(x))
        b = cl.breakdown()
        # exact closure: use the flops actually charged (S length-M' FFTs)
        implied = implied_efficiency(b["local FFT"],
                                     params.local_fft_flops / 4,
                                     cl.machine)
        assert implied == pytest.approx(0.12, rel=1e-6)
        # the §4 model convention (5 muN log2 muN) over-counts by
        # log2(muN)/log2(M'), so the fitted value lands above 0.12
        fit = fit_efficiencies(b, n=params.n, b=params.b, mu=params.mu,
                               machine=cl.machine, nodes=4)
        ratio = np.log2(params.mu * params.n) / np.log2(params.m_oversampled)
        assert fit["fft"] == pytest.approx(0.12 * ratio, rel=0.01)

"""Tests for the PCIe link model and pipeline makespan."""

import pytest

from repro.cluster.pcie import PCIE_GEN2_X16, PcieSpec, pipeline_makespan


class TestPcieSpec:
    def test_transfer_time(self):
        p = PcieSpec(bandwidth_gbps=6.0, latency_us=0.0)
        assert p.transfer_time(6e9) == pytest.approx(1.0)

    def test_latency_added(self):
        p = PcieSpec(bandwidth_gbps=6.0, latency_us=10.0)
        assert p.transfer_time(1) == pytest.approx(10e-6, rel=0.1)

    def test_zero_bytes_free(self):
        assert PCIE_GEN2_X16.transfer_time(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PCIE_GEN2_X16.transfer_time(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PcieSpec(bandwidth_gbps=0)
        with pytest.raises(ValueError):
            PcieSpec(latency_us=-1)

    def test_paper_table3_default(self):
        assert PCIE_GEN2_X16.bandwidth_gbps == 6.0


class TestPipelineMakespan:
    def test_empty(self):
        assert pipeline_makespan([]) == 0.0

    def test_single_stage_sums(self):
        assert pipeline_makespan([[1.0, 2.0, 3.0]]) == pytest.approx(6.0)

    def test_two_balanced_stages_overlap(self):
        # 4 chunks of 1s on each of 2 stages: 1 fill + 4 = 5
        assert pipeline_makespan([[1.0] * 4, [1.0] * 4]) == pytest.approx(5.0)

    def test_bottleneck_stage_dominates(self):
        # stage 2 at 2 s/chunk dominates: 1 (fill) + 4*2 = 9
        assert pipeline_makespan([[1.0] * 4, [2.0] * 4]) == pytest.approx(9.0)

    def test_three_stage_fill(self):
        # 1s chunks, 3 stages, n chunks -> (stages - 1) fill + n
        assert pipeline_makespan([[1.0] * 5] * 3) == pytest.approx(7.0)

    def test_single_chunk_is_sum_of_stages(self):
        assert pipeline_makespan([[2.0], [3.0], [4.0]]) == pytest.approx(9.0)

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            pipeline_makespan([[1.0, 2.0], [1.0]])

    def test_pipelining_beats_serial(self):
        stages = [[0.5] * 8, [0.7] * 8]
        serial = sum(sum(s) for s in stages)
        assert pipeline_makespan(stages) < serial

"""Tests for window design and the exact demodulation table."""

import numpy as np
import pytest

from repro.core.params import SoiParams
from repro.core.window import (
    GaussianSincWindow,
    KaiserSincWindow,
    build_tables,
    kaiser_attenuation_db,
)


def params(n=8 * 448, s=8, n_mu=8, d_mu=7, b=48):
    return SoiParams(n=n, n_procs=1, segments_per_process=s,
                     n_mu=n_mu, d_mu=d_mu, b=b)


class TestAttenuationFormula:
    def test_depends_only_on_b_times_mu_excess(self):
        # A = 2.285 * 2 pi * B (mu - 1) + 8, capped
        assert kaiser_attenuation_db(72, 8 / 7) == \
            pytest.approx(2.285 * 2 * np.pi * 72 / 7 + 8)

    def test_cap(self):
        assert kaiser_attenuation_db(720, 1.25) == 300.0

    def test_more_taps_more_attenuation(self):
        assert kaiser_attenuation_db(72, 8 / 7) > kaiser_attenuation_db(48, 8 / 7)

    def test_more_oversampling_more_attenuation(self):
        assert kaiser_attenuation_db(72, 5 / 4) > kaiser_attenuation_db(72, 8 / 7)


class TestKaiserWindow:
    def test_compact_support(self):
        p = params()
        w = KaiserSincWindow(p)
        support = p.b * p.n_segments
        t = np.array([support / 2 + 1.0, -support / 2 - 1.0, support])
        assert np.allclose(w.time_response(t), 0.0)

    def test_peak_near_center(self):
        p = params()
        w = KaiserSincWindow(p)
        t = np.linspace(-100, 100, 201)
        vals = np.abs(w.time_response(t))
        assert vals.argmax() == 100  # t = 0

    def test_expected_stopband_positive_small(self):
        w = KaiserSincWindow(params(b=72))
        assert 0 < w.expected_stopband < 1e-6

    def test_rejects_bad_attenuation(self):
        with pytest.raises(ValueError):
            KaiserSincWindow(params(), attenuation_db=-10)


class TestGaussianWindow:
    def test_compact_support(self):
        p = params()
        w = GaussianSincWindow(p)
        support = p.b * p.n_segments
        assert np.allclose(w.time_response(np.array([support])), 0.0)

    def test_stopband_estimate(self):
        w = GaussianSincWindow(params(b=72))
        assert 0 < w.expected_stopband < 1.0

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            GaussianSincWindow(params(), sigma_factor=0.0)


class TestTables:
    def test_coefficient_table_shape(self):
        p = params()
        t = build_tables(p)
        assert t.coeffs.shape == (p.n_mu, p.b, p.n_segments)
        assert t.distinct_coefficients == p.n_mu * p.b * p.n_segments

    def test_phases_structure(self):
        p = params()
        t = build_tables(p)
        # f_r = frac(r d/n) are distinct multiples of 1/n_mu
        assert len(set(np.round(t.f_r * p.n_mu).astype(int).tolist())) == p.n_mu
        assert np.all(t.q_r == (np.arange(p.n_mu) * p.d_mu) // p.n_mu)

    def test_demod_length_and_condition(self):
        p = params()
        t = build_tables(p)
        assert t.demod.shape == (p.m,)
        assert 1.0 <= t.demod_condition < 10.0  # well-conditioned passband

    def test_demod_is_exact_tone_response(self):
        """demod[k] must equal the full pipeline's response to a unit tone
        divided by N — computed here by brute force through the actual
        convolution + FFTs."""
        from repro.core.soi_single import SoiFFT

        p = params(n=4 * 448, s=4, b=16)
        f = SoiFFT(p)
        for (seg, k) in ((0, 0), (1, 7), (3, p.m - 1), (2, p.m // 2)):
            freq = seg * p.m + k
            x = np.exp(2j * np.pi * np.arange(p.n) * freq / p.n)
            z = f.oversample(x)
            beta = f.segment_spectra(z)
            got = beta[seg, k] / p.n
            assert np.isclose(got, f.tables.demod[k], rtol=1e-10, atol=1e-12)

    def test_gaussian_tables_also_invertible(self):
        p = params()
        t = build_tables(p, GaussianSincWindow(p))
        assert np.all(np.abs(t.demod) > 0)

    def test_window_response_nonvanishing_guard(self):
        # a pathologically narrow window should trip the singularity guard
        p = params()

        class ZeroWindow:
            expected_stopband = 1.0

            def time_response(self, t):
                return np.zeros_like(np.asarray(t, dtype=np.complex128))

        with pytest.raises(ValueError, match="vanishes"):
            build_tables(p, ZeroWindow())

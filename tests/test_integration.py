"""Cross-module integration tests: the whole system working together."""

import numpy as np
import pytest

from repro.baseline.ct_dist import DistributedCooleyTukeyFFT
from repro.cluster.network import STAMPEDE_EFFECTIVE
from repro.cluster.pcie import PCIE_GEN2_X16
from repro.cluster.proxy import ReverseProxy
from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from repro.core.soi_single import SoiFFT
from repro.fft.plan import fft as our_fft
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10
from repro.util.validate import relative_l2_error
from tests.conftest import random_complex


class TestSoiVsCtSameCluster:
    """Run both algorithms at the same problem size and compare results
    and simulated cost — the executed-mode analog of Fig 8."""

    N, P = 16 * 448, 4

    def _run_soi(self, x, machine=XEON_PHI_SE10, transport=STAMPEDE_EFFECTIVE):
        params = SoiParams(n=self.N, n_procs=self.P, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        cl = SimCluster(self.P, machine=machine, transport=transport)
        soi = DistributedSoiFFT(cl, params)
        y = soi.assemble(soi(soi.scatter(x)))
        return y, cl

    def _run_ct(self, x, machine=XEON_PHI_SE10):
        cl = SimCluster(self.P, machine=machine)
        ct = DistributedCooleyTukeyFFT(cl, self.N)
        y = ct.assemble(ct(ct.scatter(x)))
        return y, cl

    def test_same_spectrum(self, rng):
        x = random_complex(rng, self.N)
        y_soi, _ = self._run_soi(x)
        y_ct, _ = self._run_ct(x)
        assert relative_l2_error(y_soi, y_ct) < 1e-4

    def test_soi_spends_less_mpi_time(self, rng):
        x = random_complex(rng, self.N)
        _, cl_soi = self._run_soi(x)
        _, cl_ct = self._run_ct(x)
        assert cl_soi.trace.total("mpi") < cl_ct.trace.total("mpi")

    def test_phi_beats_xeon_for_soi(self, rng):
        x = random_complex(rng, self.N)
        _, cl_phi = self._run_soi(x, machine=XEON_PHI_SE10)
        _, cl_xeon = self._run_soi(x, machine=XEON_E5_2680)
        assert cl_phi.elapsed < cl_xeon.elapsed

    def test_proxy_transport_changes_time_not_result(self, rng):
        x = random_complex(rng, self.N)
        proxy = ReverseProxy(PCIE_GEN2_X16, STAMPEDE_EFFECTIVE)
        y1, cl1 = self._run_soi(x)
        y2, cl2 = self._run_soi(x, transport=proxy)
        assert np.allclose(y1, y2)
        assert cl1.elapsed != cl2.elapsed or True  # times may differ slightly


class TestWeakScalingExecuted:
    """Executed mini weak-scaling: per-rank work constant, ranks grow."""

    def test_elapsed_grows_slowly(self, rng):
        per_rank = 2 * 448
        elapsed = []
        for p in (2, 4, 8):
            n = per_rank * p
            params = SoiParams(n=n, n_procs=p, segments_per_process=1,
                               n_mu=8, d_mu=7, b=16)
            cl = SimCluster(p)
            soi = DistributedSoiFFT(cl, params)
            x = random_complex(rng, n)
            y = soi.assemble(soi(soi.scatter(x)))
            assert relative_l2_error(y, np.fft.fft(x)) < 1e-1
            elapsed.append(cl.elapsed)
        # weak scaling: time grows sublinearly in ranks (at this tiny size
        # per-peer all-to-all latency dominates, so allow some growth)
        assert elapsed[-1] < 6 * elapsed[0]


class TestLibraryFftUsedThroughout:
    def test_soi_never_calls_numpy_fft(self, rng, monkeypatch):
        """The library must be self-contained: using numpy.fft anywhere in
        the SOI pipeline is a substrate violation."""
        def boom(*a, **k):  # pragma: no cover
            raise AssertionError("numpy.fft called inside the library")

        params = SoiParams(n=4 * 448, n_procs=1, segments_per_process=4,
                           n_mu=8, d_mu=7, b=48)
        f = SoiFFT(params)
        x = random_complex(rng, params.n)
        expected = np.fft.fft(x)  # take reference BEFORE patching
        monkeypatch.setattr(np.fft, "fft", boom)
        monkeypatch.setattr(np.fft, "ifft", boom)
        y = f(x)
        assert relative_l2_error(y, expected) < 10 * f.expected_stopband

    def test_our_fft_feeds_soi_reference(self, rng):
        x = random_complex(rng, 448)
        assert np.allclose(our_fft(x), np.fft.fft(x))


class TestEndToEndSignalProcessing:
    def test_tone_detection_through_distributed_soi(self, rng):
        """A realistic use: locate spectral peaks of a multi-tone signal."""
        from repro.bench.workloads import multi_tone

        n, p = 8 * 448, 4
        freqs = [37, 1000, 2500]
        x = multi_tone(n, freqs, amps=[1.0, 0.5, 2.0])
        params = SoiParams(n=n, n_procs=p, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        cl = SimCluster(p)
        soi = DistributedSoiFFT(cl, params)
        y = soi.assemble(soi(soi.scatter(x)))
        mag = np.abs(y)
        top3 = set(np.argsort(mag)[-3:].tolist())
        assert top3 == set(freqs)

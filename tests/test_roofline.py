"""Tests for the roofline kernel-timing model."""

import pytest

from repro.machine.roofline import (
    KernelCost,
    algorithmic_bops_fft,
    attainable_efficiency,
    kernel_time,
)
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10


class TestKernelCost:
    def test_bops(self):
        assert KernelCost(100.0, 50.0).bops == 0.5

    def test_zero_flops(self):
        assert KernelCost(0.0, 10.0).bops == float("inf")
        assert KernelCost(0.0, 0.0).bops == 0.0

    def test_add(self):
        c = KernelCost(1.0, 2.0, "a") + KernelCost(3.0, 4.0)
        assert (c.flops, c.nbytes, c.label) == (4.0, 6.0, "a")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            KernelCost(-1.0, 0.0)


class TestPaperBopsClaims:
    def test_in_cache_512_point_fft_bops(self):
        # §5.2.1: 512-point FFT, 2 sweeps -> bops ~ 0.7
        assert algorithmic_bops_fft(512, sweeps=2) == pytest.approx(0.71, abs=0.01)

    def test_phi_20_percent_ceiling(self):
        # §5.2.1: 0.14 / 0.7 ~= 20% max efficiency on Phi
        bops = algorithmic_bops_fft(512, sweeps=2)
        eff = attainable_efficiency(XEON_PHI_SE10, bops)
        assert eff == pytest.approx(0.20, abs=0.01)

    def test_16m_fft_5_sweeps_bops(self):
        # §6.2: 16M-point FFT with 5 sweeps -> bops = 0.67, ~23% ceiling
        bops = algorithmic_bops_fft(16 * 2 ** 20, sweeps=5)
        assert bops == pytest.approx(0.67, abs=0.01)
        assert attainable_efficiency(XEON_PHI_SE10, bops) == \
            pytest.approx(0.21, abs=0.02)

    def test_xeon_has_higher_ceiling_than_phi(self):
        bops = algorithmic_bops_fft(512, sweeps=2)
        assert attainable_efficiency(XEON_E5_2680, bops) > \
            attainable_efficiency(XEON_PHI_SE10, bops)

    def test_compute_bound_caps_at_one(self):
        assert attainable_efficiency(XEON_PHI_SE10, 0.001) == 1.0
        assert attainable_efficiency(XEON_PHI_SE10, 0.0) == 1.0

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            algorithmic_bops_fft(1, sweeps=2)


class TestKernelTime:
    def test_memory_bound(self):
        cost = KernelCost(flops=1e9, nbytes=150e9)  # 1s of memory on Phi
        t = kernel_time(cost, XEON_PHI_SE10)
        assert t == pytest.approx(1.0)

    def test_compute_bound(self):
        cost = KernelCost(flops=1074e9, nbytes=1.0)
        assert kernel_time(cost, XEON_PHI_SE10) == pytest.approx(1.0)

    def test_no_overlap_sums(self):
        cost = KernelCost(flops=1074e9, nbytes=150e9)
        assert kernel_time(cost, XEON_PHI_SE10, overlap=False) == pytest.approx(2.0)

    def test_efficiency_scales(self):
        cost = KernelCost(flops=1074e9, nbytes=0.0)
        assert kernel_time(cost, XEON_PHI_SE10, compute_efficiency=0.12) == \
            pytest.approx(1 / 0.12)

"""Package-level contract tests: public API integrity."""

import importlib
import subprocess
import sys

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module", [
        "repro.fft", "repro.machine", "repro.cluster", "repro.core",
        "repro.baseline", "repro.perfmodel", "repro.bench", "repro.util",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_snippet_from_readme(self):
        import numpy as np

        x = np.random.default_rng(0).standard_normal(8 * 7 * 1024) + 0j
        y = repro.soi_fft(x, n_segments=8, n_mu=8, d_mu=7, b=72)
        assert np.allclose(y, np.fft.fft(x), atol=1e-4)


class TestModuleExecution:
    def test_python_dash_m_repro(self):
        out = subprocess.run([sys.executable, "-m", "repro", "info"],
                             capture_output=True, text=True, timeout=120)
        assert out.returncode == 0
        assert "Xeon Phi" in out.stdout


class TestRadixVariants:
    """The paper's 'we use radix 8 and 16, case by case' (§5.2.4)."""

    def test_radix8_plan(self, rng):
        import numpy as np

        from repro.fft.stockham import StockhamPlan
        from tests.conftest import random_complex

        x = random_complex(rng, 512)
        plan = StockhamPlan(512, radices=[8, 8, 8])
        assert np.allclose(plan(x), np.fft.fft(x))

    def test_radix16_plan(self, rng):
        import numpy as np

        from repro.fft.stockham import StockhamPlan
        from tests.conftest import random_complex

        x = random_complex(rng, 256)
        plan = StockhamPlan(256, radices=[16, 16])
        assert np.allclose(plan(x), np.fft.fft(x))

    def test_mixed_8_16(self, rng):
        import numpy as np

        from repro.fft.stockham import StockhamPlan
        from tests.conftest import random_complex

        x = random_complex(rng, 2048)
        plan = StockhamPlan(2048, radices=[16, 16, 8])
        assert np.allclose(plan(x), np.fft.fft(x))

"""Tests for the segment-pipelined overlap model."""

from dataclasses import replace

import pytest

from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10
from repro.perfmodel.model import PAPER_SECTION4_EXAMPLE, FftModel
from repro.perfmodel.overlap import segmented_breakdown, soi_segment_schedule


class TestSchedule:
    def test_task_count(self):
        m = replace(PAPER_SECTION4_EXAMPLE, segments_per_process=4)
        sched = soi_segment_schedule(m, XEON_PHI_SE10)
        assert len(sched.run()) == 1 + 2 * 4  # conv + (a2a, fft) per segment

    def test_conv_runs_first(self):
        m = replace(PAPER_SECTION4_EXAMPLE, segments_per_process=2)
        r = soi_segment_schedule(m, XEON_PHI_SE10).run()
        assert r["conv"].start == 0.0
        assert r["a2a0"].start >= r["conv"].end

    def test_fft_waits_for_its_alltoall(self):
        m = replace(PAPER_SECTION4_EXAMPLE, segments_per_process=4)
        r = soi_segment_schedule(m, XEON_PHI_SE10).run()
        for seg in range(4):
            assert r[f"fft{seg}"].start >= r[f"a2a{seg}"].end


class TestOverlapBehaviour:
    def test_more_segments_less_exposed_mpi(self):
        """§6.1: segments let the all-to-all hide behind M'-FFT compute
        (with a flat network model so packet effects don't interfere)."""
        base = FftModel(n_total=(2 ** 27) * 32, nodes=32, n_mu=5, d_mu=4)
        exposed = []
        for spp in (1, 2, 4, 8):
            m = replace(base, segments_per_process=spp)
            exposed.append(segmented_breakdown(m, XEON_PHI_SE10).exposed_mpi)
        assert exposed[0] > exposed[1] > exposed[2] > exposed[3]

    def test_makespan_never_below_components(self):
        m = replace(PAPER_SECTION4_EXAMPLE, segments_per_process=8)
        run = segmented_breakdown(m, XEON_PHI_SE10)
        assert run.total >= run.convolution + run.exposed_mpi - 1e-9
        assert run.total >= run.local_fft

    def test_exposed_never_exceeds_total_mpi(self):
        m = replace(PAPER_SECTION4_EXAMPLE, segments_per_process=4)
        run = segmented_breakdown(m, XEON_PHI_SE10)
        assert 0 <= run.exposed_mpi <= run.mpi_total + 1e-12

    def test_unfused_demod_adds_etc_time(self):
        m = replace(PAPER_SECTION4_EXAMPLE, segments_per_process=2)
        fused = segmented_breakdown(m, XEON_E5_2680, fuse_demodulation=True)
        unfused = segmented_breakdown(m, XEON_E5_2680, fuse_demodulation=False)
        assert unfused.other > fused.other
        assert unfused.total > fused.total

    def test_xeon_exposes_less_mpi_than_phi(self):
        """§6.1: 'the exposed mpi communication time is larger in Xeon Phi
        because less communication can be overlapped due to faster
        computation.'"""
        m = replace(PAPER_SECTION4_EXAMPLE, segments_per_process=8)
        phi = segmented_breakdown(m, XEON_PHI_SE10)
        xeon = segmented_breakdown(m, XEON_E5_2680)
        assert phi.exposed_mpi > xeon.exposed_mpi

    def test_breakdown_keys(self):
        run = segmented_breakdown(PAPER_SECTION4_EXAMPLE, XEON_PHI_SE10)
        assert set(run.breakdown()) == {"local FFT", "convolution",
                                        "exposed MPI", "etc"}

    def test_rejects_zero_segments(self):
        m = replace(PAPER_SECTION4_EXAMPLE, segments_per_process=0)
        with pytest.raises(ValueError):
            soi_segment_schedule(m, XEON_PHI_SE10)

"""Tests for trace replay with segment overlap."""

import numpy as np
import pytest

from repro.cluster.replay import replay_with_overlap
from repro.cluster.simcluster import SimCluster
from repro.cluster.trace import Trace
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT


def synthetic_trace(setup=1.0, comm=4.0, post=2.0) -> Trace:
    t = Trace()
    clock = 0.0
    for label, cat, dur in (("ghost exchange", "mpi", 0.0),
                            ("convolution", "compute", setup),
                            ("all-to-all", "mpi", comm),
                            ("local FFT", "compute", post * 0.8),
                            ("demodulation", "compute", post * 0.2)):
        t.record(0, label, cat, clock, clock + dur)
        clock += dur
    return t


class TestSyntheticReplay:
    def test_single_segment_no_overlap(self):
        r = replay_with_overlap(synthetic_trace(), rank=0, segments=1)
        assert r.overlapped_elapsed == pytest.approx(r.sequential_elapsed)
        assert r.exposed_mpi == pytest.approx(4.0)

    def test_many_segments_hide_compute_side(self):
        r = replay_with_overlap(synthetic_trace(), rank=0, segments=8)
        assert r.overlapped_elapsed < r.sequential_elapsed
        assert r.overlap_gain > 1.2

    def test_comm_bound_floor(self):
        # comm >> compute: overlapped time approaches setup + comm
        r = replay_with_overlap(synthetic_trace(setup=1.0, comm=10.0,
                                                post=1.0), rank=0, segments=8)
        assert r.overlapped_elapsed == pytest.approx(1.0 + 10.0, rel=0.05)
        assert r.hidden_mpi_fraction < 0.2

    def test_compute_bound_hides_most_comm(self):
        r = replay_with_overlap(synthetic_trace(setup=0.5, comm=2.0,
                                                post=8.0), rank=0, segments=8)
        assert r.hidden_mpi_fraction > 0.8

    def test_more_segments_monotone_exposure(self):
        exposed = [replay_with_overlap(synthetic_trace(), 0, s).exposed_mpi
                   for s in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(exposed, exposed[1:]))

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            replay_with_overlap(synthetic_trace(), 0, 0)


class TestExecutedReplay:
    def test_replay_of_real_distributed_run(self, rng):
        params = SoiParams(n=8 * 448, n_procs=4, segments_per_process=2,
                           n_mu=8, d_mu=7, b=48)
        cl = SimCluster(4)
        soi = DistributedSoiFFT(cl, params)
        x = rng.standard_normal(params.n) + 1j * rng.standard_normal(params.n)
        soi(soi.scatter(x))
        r = replay_with_overlap(cl.trace, rank=0, segments=2)
        assert r.overlapped_elapsed <= r.sequential_elapsed + 1e-12
        assert 0.0 <= r.exposed_mpi <= r.total_mpi
        assert r.total_mpi > 0

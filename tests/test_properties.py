"""Cross-cutting property-based tests (hypothesis) on system invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.schedule import Schedule
from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_single import SoiFFT
from repro.fft.plan import fft, ifft
from repro.machine.memory import SweepLedger


# ---------------------------------------------------------------------------
# SOI across a random parameter grid
# ---------------------------------------------------------------------------

_soi_configs = st.tuples(
    st.sampled_from([4, 8]),            # segments
    st.sampled_from([(8, 7), (5, 4), (9, 8)]),  # mu
    st.sampled_from([16, 32, 48]),      # B
    st.integers(min_value=0, max_value=2 ** 31),  # seed
)


class TestSoiParameterGrid:
    @given(_soi_configs)
    @settings(max_examples=12, deadline=None)
    def test_error_always_under_design_bound(self, cfg):
        s, (n_mu, d_mu), b, seed = cfg
        m = d_mu * 64
        params = SoiParams(n=s * m, n_procs=1, segments_per_process=s,
                           n_mu=n_mu, d_mu=d_mu, b=b)
        assume(b * s < params.n)
        f = SoiFFT(params)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(params.n) + 1j * rng.standard_normal(params.n)
        ref = np.fft.fft(x)
        err = np.linalg.norm(f(x) - ref) / np.linalg.norm(ref)
        assert err < 20 * f.expected_stopband + 1e-11

    @given(st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=8, deadline=None)
    def test_roundtrip_identity(self, seed):
        params = SoiParams(n=4 * 448, n_procs=1, segments_per_process=4,
                           n_mu=8, d_mu=7, b=32)
        f = SoiFFT(params)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(params.n) + 1j * rng.standard_normal(params.n)
        back = f.inverse(f(x))
        assert np.linalg.norm(back - x) / np.linalg.norm(x) < \
            50 * f.expected_stopband


# ---------------------------------------------------------------------------
# kernel-library identities at random smooth sizes
# ---------------------------------------------------------------------------

_smooth_sizes = st.sampled_from([8, 12, 30, 64, 105, 240, 448])


class TestKernelIdentities:
    @given(_smooth_sizes, st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=20, deadline=None)
    def test_fft_ifft_identity(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(ifft(fft(x)), x)

    @given(_smooth_sizes, st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=20, deadline=None)
    def test_conjugate_symmetry_of_real_input(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 0j
        y = fft(x)
        k = np.arange(n)
        assert np.allclose(y[(-k) % n], np.conj(y))

    @given(_smooth_sizes, st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=20, deadline=None)
    def test_plancherel_inner_product(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        b = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        lhs = np.vdot(fft(a), fft(b))
        rhs = n * np.vdot(a, b)
        assert np.isclose(lhs, rhs, rtol=1e-9, atol=1e-6)


# ---------------------------------------------------------------------------
# scheduler invariants
# ---------------------------------------------------------------------------

_task_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),  # resource id
              st.floats(min_value=0.0, max_value=5.0, allow_nan=False)),
    min_size=1, max_size=12)


class TestScheduleInvariants:
    @given(_task_lists, st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_makespan_bounds(self, tasks, seed):
        """critical path <= makespan <= serial sum, with random chains."""
        rng = np.random.default_rng(seed)
        sched = Schedule()
        ids = []
        for i, (res, dur) in enumerate(tasks):
            deps = []
            if ids and rng.random() < 0.5:
                deps = [str(rng.choice(len(ids)))]
            sched.add(str(i), ("r", res), dur, deps=deps)
            ids.append(str(i))
        total = sum(d for _, d in tasks)
        per_resource = {}
        for res, dur in tasks:
            per_resource[res] = per_resource.get(res, 0.0) + dur
        lower = max(per_resource.values())
        assert lower - 1e-9 <= sched.makespan <= total + 1e-9

    @given(_task_lists)
    @settings(max_examples=20, deadline=None)
    def test_no_resource_overlap(self, tasks):
        sched = Schedule()
        for i, (res, dur) in enumerate(tasks):
            sched.add(str(i), ("r", res), dur)
        for res in {r for r, _ in tasks}:
            ivs = sched.intervals(("r", res))
            for (a0, a1), (b0, b1) in zip(ivs, ivs[1:]):
                assert a1 <= b0 + 1e-12


# ---------------------------------------------------------------------------
# communicator conservation
# ---------------------------------------------------------------------------

class TestCommunicatorConservation:
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=15, deadline=None)
    def test_alltoall_conserves_content(self, p, seed):
        """The multiset of (values) is preserved by the exchange."""
        rng = np.random.default_rng(seed)
        cl = SimCluster(p)
        send = [[rng.standard_normal(3) + 0j for _ in range(p)]
                for _ in range(p)]
        recv = cl.comm.alltoall(send)
        sent = np.sort_complex(np.concatenate(
            [b for row in send for b in row]))
        got = np.sort_complex(np.concatenate(
            [b for row in recv for b in row]))
        assert np.allclose(sent, got)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_double_alltoall_is_identity(self, p):
        """Exchanging twice returns every block to its origin."""
        rng = np.random.default_rng(p)
        cl = SimCluster(p)
        send = [[rng.standard_normal(2) + 0j for _ in range(p)]
                for _ in range(p)]
        once = cl.comm.alltoall(send)
        twice = cl.comm.alltoall(once)
        for i in range(p):
            for j in range(p):
                assert np.array_equal(twice[i][j], send[i][j])


# ---------------------------------------------------------------------------
# sweep-ledger algebra
# ---------------------------------------------------------------------------

class TestLedgerAlgebra:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=10 ** 6),
                              st.booleans()), min_size=0, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_merge_additivity(self, records):
        a, b = SweepLedger(), SweepLedger()
        for i, (elems, is_store) in enumerate(records):
            target = a if i % 2 == 0 else b
            if is_store:
                target.store(f"r{i}", elems)
            else:
                target.load(f"r{i}", elems)
        total = a.total_bytes + b.total_bytes
        a.merge(b)
        assert a.total_bytes == total

"""Tests for the multi-card-per-node model."""

import pytest

from repro.cluster.pcie import PcieSpec
from repro.perfmodel.model import FftModel
from repro.perfmodel.multicard import MultiCardModel


def base(nodes=64):
    return FftModel(n_total=(7 * 2 ** 24) * nodes, nodes=nodes,
                    n_mu=8, d_mu=7)


class TestScaling:
    def test_one_card_matches_base_model(self):
        from repro.machine.spec import XEON_PHI_SE10

        m = MultiCardModel(base())
        assert m.symmetric_total() == pytest.approx(
            base().soi_breakdown(XEON_PHI_SE10).total)

    def test_compute_terms_shrink_with_cards(self):
        b1 = MultiCardModel(base(), cards=1).compute_breakdown()
        b4 = MultiCardModel(base(), cards=4).compute_breakdown()
        assert b4.local_fft == pytest.approx(b1.local_fft / 4)
        assert b4.convolution == pytest.approx(b1.convolution / 4)
        assert b4.mpi == pytest.approx(b1.mpi)  # NIC is per node

    def test_speedup_saturates(self):
        speeds = [MultiCardModel(base(), cards=c).speedup_vs_single_card()
                  for c in (1, 2, 4, 8)]
        assert speeds[0] == pytest.approx(1.0)
        assert all(a <= b for a, b in zip(speeds, speeds[1:]))
        # communication floor: far below linear by 8 cards
        assert speeds[3] < 4.0

    def test_parallel_efficiency_decays(self):
        effs = [MultiCardModel(base(), cards=c).parallel_efficiency()
                for c in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(effs, effs[1:]))
        assert effs[0] == pytest.approx(1.0)


class TestOffload:
    def test_shared_pcie_hurts(self):
        shared = MultiCardModel(base(), cards=4, pcie_shared=True)
        dedicated = MultiCardModel(base(), cards=4, pcie_shared=False)
        assert shared.offload_total() > dedicated.offload_total()

    def test_faster_pcie_helps_offload_only(self):
        slow = MultiCardModel(base(), cards=2, pcie=PcieSpec(3.0))
        fast = MultiCardModel(base(), cards=2, pcie=PcieSpec(12.0))
        assert fast.offload_total() < slow.offload_total()
        assert fast.symmetric_total() == pytest.approx(slow.symmetric_total())


class TestValidation:
    def test_rejects_zero_cards(self):
        with pytest.raises(ValueError):
            MultiCardModel(base(), cards=0)

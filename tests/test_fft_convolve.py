"""Tests for circular convolution/correlation utilities."""

import numpy as np
import pytest

from repro.fft.convolve import fft_convolve, fft_correlate
from tests.conftest import random_complex


def direct_convolve(a, b):
    n = a.size
    return np.array([sum(a[m] * b[(k - m) % n] for m in range(n))
                     for k in range(n)])


def direct_correlate(a, b):
    n = a.size
    return np.array([sum(a[(m + k) % n] * np.conj(b[m]) for m in range(n))
                     for k in range(n)])


class TestConvolve:
    @pytest.mark.parametrize("n", [4, 15, 60, 64])
    def test_matches_direct(self, rng, n):
        a, b = random_complex(rng, n), random_complex(rng, n)
        assert np.allclose(fft_convolve(a, b), direct_convolve(a, b))

    def test_commutative(self, rng):
        a, b = random_complex(rng, 32), random_complex(rng, 32)
        assert np.allclose(fft_convolve(a, b), fft_convolve(b, a))

    def test_identity_kernel(self, rng):
        a = random_complex(rng, 16)
        delta = np.zeros(16, dtype=np.complex128)
        delta[0] = 1.0
        assert np.allclose(fft_convolve(a, delta), a)

    def test_shift_kernel(self, rng):
        a = random_complex(rng, 16)
        delta = np.zeros(16, dtype=np.complex128)
        delta[3] = 1.0
        assert np.allclose(fft_convolve(a, delta), np.roll(a, 3))

    def test_prime_length_via_bluestein(self, rng):
        a, b = random_complex(rng, 17), random_complex(rng, 17)
        assert np.allclose(fft_convolve(a, b), direct_convolve(a, b))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            fft_convolve(random_complex(rng, 4), random_complex(rng, 5))


class TestCorrelate:
    @pytest.mark.parametrize("n", [8, 21, 64])
    def test_matches_direct(self, rng, n):
        a, b = random_complex(rng, n), random_complex(rng, n)
        assert np.allclose(fft_correlate(a, b), direct_correlate(a, b))

    def test_autocorrelation_peak_at_zero_lag(self, rng):
        a = random_complex(rng, 64)
        r = fft_correlate(a, a)
        assert np.argmax(np.abs(r)) == 0
        assert r[0].real == pytest.approx(np.sum(np.abs(a) ** 2))

    def test_detects_shift(self, rng):
        # shifted[m] = a[m - 11], so correlate(shifted, a)[k] peaks at the
        # lag k = 11 that realigns them
        a = random_complex(rng, 64)
        shifted = np.roll(a, 11)
        r = fft_correlate(shifted, a)
        assert np.argmax(np.abs(r)) == 11

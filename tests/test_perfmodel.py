"""Tests for the Section 4 performance model."""

import pytest

from repro.cluster.network import NetworkSpec
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10
from repro.perfmodel.model import PAPER_SECTION4_EXAMPLE, FftModel, ModelBreakdown


class TestWorkedExample:
    """§4: 32 nodes, N = 2^27*32, eff 12%/40%, 3 GB/s/node, mu = 5/4."""

    def test_t_fft_xeon(self):
        assert PAPER_SECTION4_EXAMPLE.t_fft(XEON_E5_2680) == \
            pytest.approx(0.50, abs=0.05)

    def test_t_fft_phi(self):
        assert PAPER_SECTION4_EXAMPLE.t_fft(XEON_PHI_SE10) == \
            pytest.approx(0.16, abs=0.02)

    def test_t_conv(self):
        assert PAPER_SECTION4_EXAMPLE.t_conv(XEON_E5_2680) == \
            pytest.approx(0.64, abs=0.08)
        assert PAPER_SECTION4_EXAMPLE.t_conv(XEON_PHI_SE10) == \
            pytest.approx(0.21, abs=0.03)

    def test_t_mpi(self):
        assert PAPER_SECTION4_EXAMPLE.t_mpi() == pytest.approx(0.67, abs=0.06)

    def test_soi_phi_speedup_near_70_percent(self):
        assert PAPER_SECTION4_EXAMPLE.speedup("soi") == \
            pytest.approx(1.7, abs=0.1)

    def test_ct_phi_speedup_near_14_percent(self):
        assert PAPER_SECTION4_EXAMPLE.speedup("ct") == \
            pytest.approx(1.14, abs=0.05)

    def test_soi_beats_ct_on_both_machines(self):
        m = PAPER_SECTION4_EXAMPLE
        for machine in (XEON_E5_2680, XEON_PHI_SE10):
            assert m.soi_breakdown(machine).total < m.ct_breakdown(machine).total

    def test_fig3_normalized_shape(self):
        m = PAPER_SECTION4_EXAMPLE
        ref = m.ct_breakdown(XEON_E5_2680).total
        soi_phi = m.soi_breakdown(XEON_PHI_SE10).normalized_to(ref)
        # Fig 3: SOI on Phi runs at about half the CT/Xeon time
        assert soi_phi.total == pytest.approx(0.5, abs=0.05)

    def test_mpi_dominates_ct(self):
        br = PAPER_SECTION4_EXAMPLE.ct_breakdown(XEON_E5_2680)
        # §2: all-to-all accounts for 50-90% of Cooley-Tukey time
        assert 0.5 < br.mpi / br.total < 0.95


class TestBreakdown:
    def test_total(self):
        b = ModelBreakdown(1.0, 2.0, 3.0, 0.5)
        assert b.total == 6.5

    def test_normalize(self):
        b = ModelBreakdown(1.0, 2.0, 3.0).normalized_to(2.0)
        assert (b.local_fft, b.convolution, b.mpi) == (0.5, 1.0, 1.5)

    def test_normalize_rejects_zero(self):
        with pytest.raises(ValueError):
            ModelBreakdown(1, 1, 1).normalized_to(0.0)


class TestScalingKnobs:
    def test_with_nodes_weak_scaling(self):
        m = PAPER_SECTION4_EXAMPLE.with_nodes(64)
        assert m.nodes == 64
        assert m.n_total == (2 ** 27) * 64

    def test_with_nodes_strong_scaling(self):
        m = PAPER_SECTION4_EXAMPLE.with_nodes(64, weak_scaling=False)
        assert m.n_total == PAPER_SECTION4_EXAMPLE.n_total

    def test_gflops_is_hpcc_convention(self):
        m = FftModel(n_total=2 ** 20, nodes=1)
        assert m.gflops(1.0) == pytest.approx(5 * 2 ** 20 * 20 / 1e9)

    def test_gflops_rejects_zero_time(self):
        with pytest.raises(ValueError):
            PAPER_SECTION4_EXAMPLE.gflops(0.0)

    def test_packet_model_slower_with_many_segments(self):
        flat = FftModel(n_total=2 ** 30, nodes=64, use_packet_model=True,
                        segments_per_process=1)
        segmented = FftModel(n_total=2 ** 30, nodes=64, use_packet_model=True,
                             segments_per_process=8)
        # §6.1: more segments -> shorter packets -> lower MPI bandwidth
        assert segmented.t_mpi() > flat.t_mpi()

    def test_packet_model_reduces_bandwidth_at_scale(self):
        flat = FftModel(n_total=2 ** 26 * 512, nodes=512)
        pkt = FftModel(n_total=2 ** 26 * 512, nodes=512, use_packet_model=True)
        assert pkt.t_mpi() > flat.t_mpi()


class TestValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            FftModel(n_total=1, nodes=1)
        with pytest.raises(ValueError):
            FftModel(n_total=100, nodes=0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            FftModel(n_total=100, nodes=1, efficiency_fft=0.0)

    def test_rejects_mu_below_one(self):
        with pytest.raises(ValueError):
            FftModel(n_total=100, nodes=1, n_mu=4, d_mu=5)

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            PAPER_SECTION4_EXAMPLE.speedup("stockham")

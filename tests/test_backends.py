"""Execution-backend suite: simulated vs real worker processes.

The contract under test is the tentpole one: a ``ProcessBackend`` run —
real cores, shared-memory zero-copy all-to-all — must be *bit-for-bit*
identical to the rank-serial ``SimulatedBackend``, including the merged
``VerificationReport`` under injected silent data corruption.
"""

import numpy as np
import pytest

from repro.cluster.backends import ProcessBackend, SimulatedBackend
from repro.cluster.faults import (
    FaultPlan,
    ProcessFault,
    ProcessFaultPlan,
    RankFailed,
)
from repro.cluster.shm import ShmPool, list_segments
from repro.cluster.simcluster import SimCluster
from repro.cluster.spmd import (
    AllToAll,
    Barrier,
    Bcast,
    SendRecvRing,
    run_spmd,
)
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from repro.core.soi_spmd import run_parallel_soi, spmd_soi_fft
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.verify import HedgePolicy
from repro.verify.policy import VerifyPolicy

pytestmark = pytest.mark.parallel

P = 4  # worker count shared by the whole module (one spawn, many tests)


@pytest.fixture(scope="module")
def backend():
    with ProcessBackend(P) as b:
        yield b


def soi_params(n, spp=2, n_procs=P):
    return SoiParams(n=n, n_procs=n_procs, segments_per_process=spp,
                     n_mu=5, d_mu=4, b=48)


def signal(n, seed=2013):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


# -- module-level rank programs (workers unpickle them by reference) ----

def alltoall_prog(ctx, base):
    per_dest = [np.full(3, base + ctx.rank * 10 + d, dtype=np.float64)
                for d in range(ctx.size)]
    pieces = yield AllToAll(per_dest)
    return np.concatenate([np.asarray(p) for p in pieces])


def ring_prog(ctx, x_local):
    halo = yield SendRecvRing(to_left=x_local[:2], to_right=x_local[-2:])
    from_left, from_right = halo
    return np.concatenate([from_left, x_local, from_right])


def bcast_prog(ctx, payload):
    got = yield Bcast(payload if ctx.rank == 1 else None, root=1)
    return np.asarray(got) + ctx.rank


def typed_alltoall_prog(ctx, x_local):
    per_dest = [x_local[d::ctx.size].copy() for d in range(ctx.size)]
    pieces = yield AllToAll(per_dest)
    return np.concatenate([np.asarray(p) for p in pieces])


def boom_prog(ctx):
    yield Barrier()
    if ctx.rank == 2:
        raise RuntimeError("kaboom on rank two")
    yield Barrier()
    return ctx.rank


# -- shared-memory pool ------------------------------------------------

class TestShmPool:
    def test_place_and_resolve_roundtrip(self):
        with ShmPool() as pool:
            a = np.arange(12, dtype=np.complex128).reshape(3, 4)
            b = np.arange(5, dtype=np.float32)
            va, vb = pool.place("t-seg", [a, b])
            assert np.array_equal(va.resolve(pool), a)
            assert np.array_equal(vb.resolve(pool), b)
            assert va.nbytes == a.nbytes and vb.nbytes == b.nbytes

    def test_views_are_read_only_by_default(self):
        with ShmPool() as pool:
            (view,) = pool.place("t-ro", [np.zeros(4)])
            arr = view.resolve(pool)
            with pytest.raises(ValueError):
                arr[0] = 1.0
            arr_w = view.resolve(pool, writeable=True)
            arr_w[0] = 1.0
            assert view.resolve(pool)[0] == 1.0

    def test_attach_is_cached_per_pool(self):
        with ShmPool() as pool:
            pool.create("t-cache", 64)
            assert pool.attach("t-cache") is pool.attach("t-cache")

    def test_duplicate_create_rejected(self):
        with ShmPool() as pool:
            pool.create("t-dup", 16)
            with pytest.raises(ValueError, match="already created"):
                pool.create("t-dup", 16)

    def test_detach_prefix_drops_job_segments(self):
        with ShmPool() as pool:
            pool.place("job1-in", [np.zeros(4)])
            pool.place("job1-out", [np.zeros(4)])
            pool.place("job2-in", [np.zeros(4)])
            pool.detach_prefix("job1-")
            assert "job1-in" not in pool._created
            assert "job2-in" in pool._created


# -- simulated backend routing -----------------------------------------

class TestSimulatedBackend:
    def test_matches_run_spmd(self):
        cl = SimCluster(3)
        sim = SimulatedBackend(cl)
        got = sim.run(alltoall_prog, [(0.0,)] * 3)
        want = run_spmd(SimCluster(3), lambda ctx: alltoall_prog(ctx, 0.0))
        assert all(np.array_equal(a, b) for a, b in zip(got, want))
        assert not sim.is_real and sim.size == 3

    def test_spmd_soi_fft_default_backend_unchanged(self):
        params = soi_params(2 ** 12)
        x = signal(params.n)
        plain = spmd_soi_fft(SimCluster(P), params, x)
        cl = SimCluster(P)
        routed = spmd_soi_fft(cl, params, x, backend=SimulatedBackend(cl))
        assert np.array_equal(plain, routed)

    def test_foreign_cluster_rejected(self):
        params = soi_params(2 ** 12)
        with pytest.raises(ValueError, match="over this cluster"):
            spmd_soi_fft(SimCluster(P), params, signal(params.n),
                         backend=SimulatedBackend(SimCluster(P)))


# -- real process backend ----------------------------------------------

class TestProcessBackendCollectives:
    def test_alltoall_matches_simulated(self, backend):
        want = run_spmd(SimCluster(P), lambda ctx: alltoall_prog(ctx, 5.0))
        got = backend.run(alltoall_prog, [(5.0,)] * P)
        assert all(np.array_equal(a, b) for a, b in zip(got, want))

    def test_ring_matches_simulated(self, backend):
        xs = [signal(8, seed=r) for r in range(P)]
        want = run_spmd(SimCluster(P), lambda ctx: ring_prog(ctx, xs[ctx.rank]))
        got = backend.run(ring_prog, [(x,) for x in xs])
        assert all(np.array_equal(a, b) for a, b in zip(got, want))

    def test_bcast_matches_simulated(self, backend):
        payload = signal(16, seed=9)
        want = run_spmd(SimCluster(P),
                        lambda ctx: bcast_prog(ctx, payload))
        got = backend.run(bcast_prog, [(payload,)] * P)
        assert all(np.array_equal(a, b) for a, b in zip(got, want))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64,
                                       np.complex64, np.complex128,
                                       np.int32])
    def test_alltoall_preserves_dtype_bitwise(self, backend, dtype):
        rng = np.random.default_rng(17)
        xs = [(rng.standard_normal(16) * 100).astype(dtype)
              for _ in range(P)]
        want = run_spmd(SimCluster(P),
                        lambda ctx: typed_alltoall_prog(ctx, xs[ctx.rank]))
        got = backend.run(typed_alltoall_prog, [(x,) for x in xs])
        for a, b in zip(want, got):
            assert b.dtype == np.dtype(dtype)
            assert np.array_equal(a, b)

    def test_worker_error_propagates_and_backend_survives(self, backend):
        with pytest.raises(RuntimeError, match="kaboom on rank two"):
            backend.run(boom_prog, [()] * P)
        # the pool respawns dead workers: the next job must still run
        got = backend.run(alltoall_prog, [(1.0,)] * P)
        assert len(got) == P

    def test_unpicklable_program_rejected_eagerly(self, backend):
        def local_prog(ctx):
            yield Barrier()
            return ctx.rank

        with pytest.raises(ValueError, match="pickle"):
            backend.run(local_prog, [()] * P)

    def test_wrong_rank_count_rejected(self, backend):
        with pytest.raises(ValueError):
            backend.run(alltoall_prog, [(0.0,)] * (P + 1))

    def test_subset_group_runs_on_survivors(self, backend):
        """A job may target any subset of the worker set (recovery path)."""
        group = (0, 1, 3)
        want = run_spmd(SimCluster(len(group)),
                        lambda ctx: alltoall_prog(ctx, 2.0))
        got = backend.run(alltoall_prog, [(2.0,)] * len(group), ranks=group)
        assert all(np.array_equal(a, b) for a, b in zip(got, want))


class TestProcessBackendSoi:
    @pytest.mark.parametrize("n,spp", [(2 ** 12, 1), (2 ** 12, 2),
                                       (2 ** 14, 2)])
    def test_bit_for_bit_across_geometries(self, backend, n, spp):
        params = soi_params(n, spp)
        x = signal(n)
        want = spmd_soi_fft(SimCluster(P), params, x)
        got = spmd_soi_fft(SimCluster(P), params, x, backend=backend)
        assert np.array_equal(want, got)  # bitwise, not allclose

    def test_distributed_soi_fft_front_end(self, backend):
        params = soi_params(2 ** 12)
        x = signal(params.n)
        serial = DistributedSoiFFT(SimCluster(P), params)
        real = DistributedSoiFFT(SimCluster(P), params, backend=backend)
        parts = serial.scatter(x)
        want, got = serial(parts), real(parts)
        assert all(np.array_equal(a, b) for a, b in zip(want, got))
        assert np.array_equal(np.concatenate(want), np.concatenate(got))

    def test_verified_run_reports_clean(self, backend):
        params = soi_params(2 ** 12)
        x = signal(params.n)
        cl = SimCluster(P)
        soi = DistributedSoiFFT(cl, params, verify=True, backend=backend)
        out = soi(soi.scatter(x))
        assert soi.last_verification is not None
        assert soi.last_verification.detections == 0
        assert soi.last_verification.checks > 0
        np.testing.assert_allclose(
            np.concatenate(out), np.fft.fft(x), rtol=0,
            atol=1e-6 * params.n)

    @pytest.mark.parametrize("seed", [5, 11, 16])
    def test_identical_reports_under_sdc(self, backend, seed):
        """Chaos equivalence: same SDC plan, same detections, same events."""
        params = soi_params(2 ** 12)
        x = signal(params.n)

        cl_sim = SimCluster(P)
        cl_sim.comm.install_faults(FaultPlan.random(
            seed, P, sdc_rate=0.3, sdc_amplitude=50.0))
        from repro.verify.selfcheck import DistVerifier
        from repro.core.window import build_tables
        ver_sim = DistVerifier(build_tables(params, None), VerifyPolicy())
        want = spmd_soi_fft(cl_sim, params, x, verify=ver_sim)

        cl_real = SimCluster(P)
        cl_real.comm.install_faults(FaultPlan.random(
            seed, P, sdc_rate=0.3, sdc_amplitude=50.0))
        ver_real = DistVerifier(build_tables(params, None), VerifyPolicy())
        got = spmd_soi_fft(cl_real, params, x, verify=ver_real,
                           backend=backend)

        assert np.array_equal(want, got)
        assert ver_sim.report == ver_real.report
        assert ver_sim.report.detections > 0  # the plan actually struck

    def test_wire_faults_rejected_sdc_only_allowed(self, backend):
        params = soi_params(2 ** 12)
        x = signal(params.n)
        # a pure wire plan is simply dropped (nothing for real ranks to do)
        cl = SimCluster(P)
        cl.comm.install_faults(FaultPlan.random(3, P, corrupt_rate=0.1))
        want = spmd_soi_fft(SimCluster(P), params, x)
        assert np.array_equal(want, spmd_soi_fft(cl, params, x,
                                                 backend=backend))
        # a mixed plan (wire + SDC) cannot be honored and must refuse
        cl2 = SimCluster(P)
        cl2.comm.install_faults(FaultPlan.random(
            3, P, corrupt_rate=0.1, sdc_rate=0.2))
        with pytest.raises(ValueError, match="SDC-only"):
            spmd_soi_fft(cl2, params, x, backend=backend)

    def test_deadline_accepted_on_real_backend(self, backend):
        """A generous wall-clock budget changes nothing; an expired one
        raises cleanly and the backend keeps serving."""
        params = soi_params(2 ** 12)
        x = signal(params.n)
        want = spmd_soi_fft(SimCluster(P), params, x)
        got = spmd_soi_fft(SimCluster(P), params, x, backend=backend,
                           deadline=Deadline(60.0))
        assert np.array_equal(want, got)
        with pytest.raises(DeadlineExceeded):
            spmd_soi_fft(SimCluster(P), params, x, backend=backend,
                         deadline=Deadline(1e-9))
        after = spmd_soi_fft(SimCluster(P), params, x, backend=backend)
        assert np.array_equal(want, after)

    def test_hedge_accepted_on_real_backend(self, backend):
        """With no stragglers a hedge policy is a no-op pass-through."""
        params = soi_params(2 ** 12)
        x = signal(params.n)
        hedge = HedgePolicy(threshold=50.0, min_ranks=2)
        want = spmd_soi_fft(SimCluster(P), params, x)
        got = spmd_soi_fft(SimCluster(P), params, x, backend=backend,
                           hedge=hedge)
        assert np.array_equal(want, got)
        assert hedge.launched == 0

    def test_part_count_validated(self, backend):
        params = soi_params(2 ** 12)
        chunk = params.elements_per_process
        with pytest.raises(ValueError, match="parts"):
            run_parallel_soi(backend, params,
                             [np.zeros(chunk, complex)] * (P - 1),
                             machine=SimCluster(P).machine)


# -- elastic recovery and process-level chaos ---------------------------

@pytest.fixture()
def chaos_backend():
    """Function-scoped backend for tests that kill/stall workers."""
    b = ProcessBackend(P, hang_timeout=1.5)
    yield b
    token = b._token
    b.close()
    assert list_segments(token) == []  # no /dev/shm leak, ever


class TestProcessFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ProcessFault("explode", rank=0)
        with pytest.raises(ValueError, match="rank"):
            ProcessFault("kill", rank=-1)
        with pytest.raises(ValueError, match="SDC-only"):
            ProcessFaultPlan(sdc=FaultPlan.random(1, P, corrupt_rate=0.1))

    def test_seeded_plan_is_reproducible(self):
        a = ProcessFaultPlan.random(7, P, n_kills=1, n_stalls=1, n_delays=1)
        b = ProcessFaultPlan.random(7, P, n_kills=1, n_stalls=1, n_delays=1)
        assert a.faults == b.faults
        assert a.describe() == b.describe()

    def test_min_survivors_respected(self):
        for seed in range(20):
            plan = ProcessFaultPlan.random(seed, P, n_kills=P - 1,
                                           min_survivors=2)
            kills = [f for f in plan.faults if f.kind == "kill"]
            assert len(kills) <= P - 2

    def test_job_sequencing(self):
        plan = ProcessFaultPlan([ProcessFault("kill", rank=1, job=2,
                                              collective=0)])
        plan.reset()
        assert plan.next_job() == ()  # job 1: nothing scheduled
        assert len(plan.next_job()) == 1  # job 2: the kill fires


class TestElasticRecovery:
    def test_rank_failed_carries_failure_context(self, chaos_backend):
        """Satellite: RankFailed chains the watchdog's evidence — dead
        rank ids, job label, survivors — and a causal RuntimeError."""
        be = chaos_backend
        be.inject(ProcessFaultPlan([ProcessFault("kill", rank=2,
                                                 collective=0)]))
        with pytest.raises(RankFailed, match="worker 2 died") as ei:
            be.run(alltoall_prog, [(0.0,)] * P, label="doomed job")
        exc = ei.value
        assert exc.rank == 2
        assert exc.dead_ranks == (2,)
        assert set(exc.survivors) == {0, 1, 3}
        assert exc.job_label == "doomed job"
        assert isinstance(exc.__cause__, RuntimeError)
        assert "doomed job" in str(exc.__cause__)
        assert be.last_failure is not None
        assert be.last_failure.dead == (2,)
        # the backend survives: dead worker respawns on the next run
        got = be.run(alltoall_prog, [(3.0,)] * P)
        assert len(got) == P and be.live_workers() == list(range(P))

    def test_kill_mid_alltoall_recovers_bitwise(self, chaos_backend):
        """The acceptance scenario: SIGKILL one worker mid-all-to-all;
        shrink-and-redistribute completes on the survivors and the
        output is bit-identical to the fault-free run."""
        be = chaos_backend
        params = soi_params(2 ** 12)
        x = signal(params.n)
        want = spmd_soi_fft(SimCluster(P), params, x, backend=be)
        be.inject(ProcessFaultPlan([ProcessFault("kill", rank=2,
                                                 collective=1)]))
        got = spmd_soi_fft(SimCluster(P), params, x, backend=be)
        assert np.array_equal(want, got)
        report = be.last_recovery
        assert report is not None
        assert report.dead_ranks == (2,)
        assert report.n_live == P - 1
        assert report.recomputed_rows > 0
        assert len(report.slot_owners) == params.n_procs * \
            params.segments_per_process
        assert be.last_mttr_s is not None and be.last_mttr_s >= 0.0

    def test_kill_before_checkpoint_recovers_bitwise(self, chaos_backend):
        """Death at the first collective (pre-checkpoint): every dead
        row is recomputed from the input, still bit-identical."""
        be = chaos_backend
        params = soi_params(2 ** 12)
        x = signal(params.n)
        want = spmd_soi_fft(SimCluster(P), params, x, backend=be)
        be.inject(ProcessFaultPlan([ProcessFault("kill", rank=1,
                                                 collective=0)]))
        got = spmd_soi_fft(SimCluster(P), params, x, backend=be)
        assert np.array_equal(want, got)
        assert be.last_recovery.dead_ranks == (1,)

    def test_hang_detected_and_recovered(self, chaos_backend):
        """SIGSTOP without resume: the heartbeat watchdog escalates the
        hung worker to SIGKILL and recovery completes bit-identically."""
        be = chaos_backend
        params = soi_params(2 ** 12)
        x = signal(params.n)
        want = spmd_soi_fft(SimCluster(P), params, x, backend=be)
        be.inject(ProcessFaultPlan([ProcessFault("stall", rank=3,
                                                 collective=1)]))
        got = spmd_soi_fft(SimCluster(P), params, x, backend=be)
        assert np.array_equal(want, got)
        assert be.last_failure.hung == (3,)
        assert be.last_recovery.dead_ranks == (3,)

    def test_transient_stall_and_delay_are_transparent(self, chaos_backend):
        """A stall that resumes (SIGCONT) and a delayed job delivery
        finish without any recovery at all."""
        be = chaos_backend
        params = soi_params(2 ** 12)
        x = signal(params.n)
        want = spmd_soi_fft(SimCluster(P), params, x, backend=be)
        be.inject(ProcessFaultPlan([ProcessFault("stall", rank=3,
                                                 collective=1,
                                                 resume_s=0.3)]))
        assert np.array_equal(want, spmd_soi_fft(SimCluster(P), params, x,
                                                 backend=be))
        assert be.last_recovery is None
        be.inject(ProcessFaultPlan([ProcessFault("delay", rank=2,
                                                 after_s=0.2)]))
        assert np.array_equal(want, spmd_soi_fft(SimCluster(P), params, x,
                                                 backend=be))
        assert be.last_recovery is None

    def test_hedge_redispatches_straggler(self, chaos_backend):
        """A worker whose job delivery stalls far past the label's known
        duration is killed and the job re-dispatched to its replacement
        — the run completes long before the fault's delay elapses."""
        be = chaos_backend
        params = soi_params(2 ** 12)
        x = signal(params.n)
        want = spmd_soi_fft(SimCluster(P), params, x, backend=be)
        be.inject(ProcessFaultPlan([ProcessFault("delay", rank=0,
                                                 after_s=30.0)]))
        hedge = HedgePolicy(threshold=2.0, min_ranks=2)
        got = spmd_soi_fft(SimCluster(P), params, x, backend=be,
                           hedge=hedge)
        assert np.array_equal(want, got)
        assert hedge.launched >= 1 and hedge.won >= 1
        # and the respawned worker serves the next job normally
        be.inject(None)
        assert np.array_equal(want, spmd_soi_fft(SimCluster(P), params, x,
                                                 backend=be))

    def test_recovery_metrics_and_no_leaks(self, chaos_backend):
        be = chaos_backend
        recoveries = be.metrics.counter("repro_backend_recoveries_total")
        deaths = be.metrics.counter("repro_backend_worker_deaths_total")
        r0, d0 = recoveries.value, deaths.value
        params = soi_params(2 ** 12)
        x = signal(params.n)
        be.inject(ProcessFaultPlan([ProcessFault("kill", rank=0,
                                                 collective=1)]))
        spmd_soi_fft(SimCluster(P), params, x, backend=be)
        assert recoveries.value == r0 + 1
        assert deaths.value == d0 + 1
        # mid-life hygiene: only live infrastructure segments remain
        # (heartbeat + live outboxes); checkpoint/staging segments and
        # the dead worker's outbox were reclaimed by the janitor
        kinds = {n[len(be._token):][:1] for n in list_segments(be._token)}
        assert kinds <= {"h", "o"}


class TestProcessBackendTelemetry:
    def test_wall_clock_lands_in_trace_and_metrics(self, backend):
        jobs = backend.metrics.counter("repro_backend_jobs_total")
        wall = backend.metrics.counter("repro_backend_wall_seconds_total")
        jobs_before, wall_before = jobs.value, wall.value
        n_events = len(backend.trace.events)
        params = soi_params(2 ** 12)
        spmd_soi_fft(SimCluster(P), params, signal(params.n),
                     backend=backend)
        assert jobs.value == jobs_before + 1
        assert wall.value > wall_before
        new = backend.trace.events[n_events:]
        assert {e.rank for e in new} == set(range(P))
        assert any(e.category == "mpi" for e in new)
        assert any(e.category == "compute" for e in new)

"""Tests for the executed offload-mode SOI (paper §7 / Fig 12b)."""

import numpy as np
import pytest

from repro.cluster.pcie import PcieSpec
from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT
from repro.core.soi_offload import OffloadSoiFFT
from repro.util.validate import relative_l2_error
from tests.conftest import random_complex


def build(p=4, pcie=None):
    params = SoiParams(n=8 * 448, n_procs=p, segments_per_process=2,
                       n_mu=8, d_mu=7, b=48)
    kwargs = {"pcie": pcie} if pcie is not None else {}
    cluster = SimCluster(p, **kwargs)
    return cluster, OffloadSoiFFT(cluster, params)


class TestNumerics:
    def test_same_result_as_symmetric(self, rng):
        x = random_complex(rng, 8 * 448)
        cl_off, off = build()
        y_off = off.assemble(off(off.scatter(x)))
        params = off.params
        cl_sym = SimCluster(4)
        sym = DistributedSoiFFT(cl_sym, params)
        y_sym = sym.assemble(sym(sym.scatter(x)))
        assert np.allclose(y_off, y_sym)

    def test_matches_numpy(self, rng):
        x = random_complex(rng, 8 * 448)
        cl, off = build()
        y = off.assemble(off(off.scatter(x)))
        assert relative_l2_error(y, np.fft.fft(x)) < 1e-4


class TestTiming:
    def test_offload_slower_than_symmetric(self, rng):
        x = random_complex(rng, 8 * 448)
        cl_off, off = build()
        off(off.scatter(x))
        cl_sym = SimCluster(4)
        sym = DistributedSoiFFT(cl_sym, off.params)
        sym(sym.scatter(x))
        assert cl_off.elapsed > cl_sym.elapsed

    def test_two_pcie_legs_in_trace(self, rng):
        cl, off = build()
        off(off.scatter(random_complex(rng, 8 * 448)))
        labels = [e.label for e in cl.trace.events if e.category == "pcie"
                  and e.rank == 0]
        assert labels == ["PCIe host->phi", "PCIe phi->host"]

    def test_pcie_bytes_are_in_and_out_chunks(self, rng):
        cl, off = build()
        off(off.scatter(random_complex(rng, 8 * 448)))
        pcie_bytes = cl.trace.bytes_by_category()["pcie"]
        assert pcie_bytes == 2 * 16 * 8 * 448  # N elements in + out, total

    def test_pcie_seconds_scale_with_bandwidth(self, rng):
        x = random_complex(rng, 8 * 448)
        cl_fast, off_fast = build(pcie=PcieSpec(bandwidth_gbps=12.0))
        off_fast(off_fast.scatter(x))
        cl_slow, off_slow = build(pcie=PcieSpec(bandwidth_gbps=3.0))
        off_slow(off_slow.scatter(x))
        assert off_slow.pcie_seconds() > off_fast.pcie_seconds()

    def test_pcie_seconds_positive(self, rng):
        cl, off = build()
        off(off.scatter(random_complex(rng, 8 * 448)))
        assert off.pcie_seconds() > 0

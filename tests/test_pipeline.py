"""Tests for the SMT load/FFT/store pipeline simulator (Fig 5)."""

import pytest

from repro.machine.pipeline import PipelineStats, simulate_smt_pipeline, smt_sweep


class TestSingleThread:
    def test_fully_serial(self):
        s = simulate_smt_pipeline(4, 1.0, 2.0, 1.0, n_threads=1)
        assert s.makespan == pytest.approx(4 * 4.0)
        assert s.speedup_vs_serial == pytest.approx(1.0)

    def test_mem_utilization_is_mem_share(self):
        s = simulate_smt_pipeline(8, 1.0, 2.0, 1.0, n_threads=1)
        assert s.mem_utilization == pytest.approx(0.5)


class TestSmtHiding:
    def test_four_threads_saturate_memory(self):
        """§5.2.3: with 4 SMT threads the compute hides behind the memory
        pipe and the loop becomes bandwidth-bound."""
        s = simulate_smt_pipeline(64, 1.0, 2.0, 1.0, n_threads=4)
        assert s.mem_utilization > 0.95
        assert s.makespan == pytest.approx(s.mem_busy, rel=0.05)

    def test_speedup_monotone_in_threads(self):
        sweep = smt_sweep(64, 1.0, 2.0, 1.0, thread_counts=(1, 2, 4, 8))
        spans = [s.makespan for s in sweep]
        assert all(a >= b for a, b in zip(spans, spans[1:]))

    def test_saturation_point(self):
        # fft takes 2x one mem op: 2 extra threads suffice; 4 == 8
        sweep = smt_sweep(64, 1.0, 2.0, 1.0, thread_counts=(4, 8))
        assert sweep[0].makespan == pytest.approx(sweep[1].makespan)

    def test_memory_bound_loop_gains_nothing(self):
        # if FFT is tiny, one thread already saturates memory
        s1 = simulate_smt_pipeline(32, 1.0, 0.01, 1.0, n_threads=1)
        s4 = simulate_smt_pipeline(32, 1.0, 0.01, 1.0, n_threads=4)
        assert s4.makespan == pytest.approx(s1.makespan, rel=0.02)

    def test_compute_bound_loop_scales_with_threads(self):
        s1 = simulate_smt_pipeline(32, 0.01, 4.0, 0.01, n_threads=1)
        s4 = simulate_smt_pipeline(32, 0.01, 4.0, 0.01, n_threads=4)
        assert s1.makespan / s4.makespan == pytest.approx(4.0, rel=0.05)


class TestLowerBounds:
    def test_never_beats_memory_bound(self):
        for t in (1, 2, 4, 16):
            s = simulate_smt_pipeline(40, 1.0, 3.0, 1.0, n_threads=t)
            assert s.makespan >= s.mem_busy - 1e-12

    def test_stats_fields(self):
        s = simulate_smt_pipeline(10, 1.0, 1.0, 1.0, n_threads=2)
        assert isinstance(s, PipelineStats)
        assert s.mem_busy == pytest.approx(20.0)
        assert s.compute_busy == pytest.approx(10.0)
        assert s.serial_time == pytest.approx(30.0)


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            simulate_smt_pipeline(0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            simulate_smt_pipeline(4, 1.0, 1.0, 1.0, n_threads=0)
        with pytest.raises(ValueError):
            simulate_smt_pipeline(4, -1.0, 1.0, 1.0)

"""Fork/spawn safety of the process-wide caches (plan cache, wisdom).

The process backend forks workers that immediately hammer ``get_plan``
and the wisdom store.  A lock or cache object inherited from the parent
in a surprising state (held lock, parent's hit counters) must not leak
into the child: both caches detect the PID change and start fresh.
"""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.fft import plan as plan_mod
from repro.fft.plan import fft, get_plan
from repro.fft.wisdom import Wisdom

pytestmark = pytest.mark.parallel


def _child_probe(q):
    """Runs in a forked child: report the inherited cache's view."""
    info = plan_mod.cache_info()  # first touch runs the PID guard
    p = get_plan(64, -1)
    x = np.arange(64, dtype=np.complex128)
    q.put({
        "currsize_at_entry": info.currsize,
        "fft_ok": bool(np.allclose(p(x), np.fft.fft(x))),
    })


def _wisdom_child(q, wisdom):
    q.put(wisdom.learn(64))


class TestPlanCacheForkSafety:
    def test_child_starts_with_fresh_cache(self):
        plan_mod.cache_clear()
        get_plan(256, -1)
        get_plan(512, -1)
        assert plan_mod.cache_info().currsize == 2
        ctx = multiprocessing.get_context("fork")
        q = ctx.Queue()
        proc = ctx.Process(target=_child_probe, args=(q,))
        proc.start()
        child = q.get(timeout=30)
        proc.join(timeout=30)
        assert proc.exitcode == 0
        # the PID guard dropped the parent's entries on first touch
        assert child["currsize_at_entry"] == 0
        assert child["fft_ok"]
        # and the parent's cache is untouched by the child's activity
        assert plan_mod.cache_info().currsize == 2

    def test_cache_info_is_functools_compatible(self):
        plan_mod.cache_clear()
        info0 = plan_mod.cache_info()
        assert (info0.hits, info0.misses, info0.currsize) == (0, 0, 0)
        get_plan(128, -1)
        get_plan(128, -1)
        info = plan_mod.cache_info()
        assert info.misses == 1 and info.hits == 1
        assert info.currsize == 1 and info.maxsize >= info.currsize

    def test_cache_reuse_and_eviction_bound(self):
        plan_mod.cache_clear()
        assert get_plan(64, -1) is get_plan(64, -1)
        for k in range(plan_mod._MAXSIZE + 8):
            get_plan(16 + 2 * k, -1)
        assert plan_mod.cache_info().currsize <= plan_mod._MAXSIZE

    def test_threaded_hammer_returns_consistent_plans(self):
        import threading
        plan_mod.cache_clear()
        got = [None] * 8

        def worker(i):
            got[i] = get_plan(1024, -1)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(g is got[0] for g in got)
        x = np.random.default_rng(0).standard_normal(1024).astype(complex)
        assert np.allclose(got[0](x), np.fft.fft(x))


class TestWisdomForkSafety:
    def test_wisdom_pickles_without_its_lock(self):
        w = Wisdom()
        radices = w.learn(64, reps=1, batch=1)
        clone = pickle.loads(pickle.dumps(w))
        assert clone.learn(64) == radices  # cached entry survived the trip
        # the clone got a working lock of its own
        with clone._guard():
            pass

    def test_wisdom_usable_after_fork(self):
        w = Wisdom()
        radices = w.learn(64, reps=1, batch=1)
        ctx = multiprocessing.get_context("fork")
        q = ctx.Queue()
        proc = ctx.Process(target=_wisdom_child, args=(q, w))
        proc.start()
        assert q.get(timeout=30) == radices
        proc.join(timeout=30)
        assert proc.exitcode == 0


class TestFftStillCorrectAfterClear:
    def test_fft_after_cache_clear(self):
        plan_mod.cache_clear()
        x = np.random.default_rng(1).standard_normal(96) * 1j
        assert np.allclose(fft(x), np.fft.fft(x))

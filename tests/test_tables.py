"""Tests for the ASCII table/figure renderers."""

import pytest

from repro.bench.tables import fmt, render_bars, render_series, render_table


class TestFmt:
    def test_ints(self):
        assert fmt(42) == "42"

    def test_floats(self):
        assert fmt(0.125) == "0.125"
        assert fmt(1.0e-9) == "1.000e-09"
        assert fmt(0.0) == "0"

    def test_strings_pass_through(self):
        assert fmt("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_rule(self):
        out = render_table(["a", "bee"], [[1, 2], [30, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert lines[1].startswith("a ")

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])


class TestRenderBars:
    def test_bar_lengths_proportional(self):
        out = render_bars([("x", 1.0), ("y", 2.0)], width=10)
        x_line, y_line = out.splitlines()
        assert x_line.count("#") == 5
        assert y_line.count("#") == 10

    def test_empty(self):
        assert render_bars([], title="t") == "t"

    def test_unit_suffix(self):
        out = render_bars([("x", 3.0)], unit=" GF")
        assert "3 GF" in out


class TestRenderSeries:
    def test_structure(self):
        out = render_series("n", [1, 2], {"a": [10, 20], "b": [30, 40]})
        lines = out.splitlines()
        assert lines[0].split() == ["n", "a", "b"]
        assert lines[2].split() == ["1", "10", "30"]

"""Workspace aliasing, reuse, and zero-allocation contracts.

The planned execution layer promises: (a) repeated calls of one plan
return independent results, (b) ``out=`` may alias the input or previous
results safely, (c) ``complex64`` stays ``complex64`` end-to-end, and
(d) the steady-state planned loop performs no new large allocations —
asserted here with ``tracemalloc`` and in ``bench/regression.py``.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.convolution import ConvWorkspace, block_range_for_rows, convolve
from repro.core.params import SoiParams
from repro.core.soi_single import SoiFFT
from repro.fft import cache_clear, cache_info, get_plan
from repro.fft.bluestein import BluesteinPlan
from repro.fft.stockham import StockhamPlan
from tests.conftest import random_complex

LARGE = 1 << 20  # "large allocation" threshold: 1 MiB


def peak_new_bytes(fn, warmup=2, reps=3):
    """Peak newly-allocated bytes during *reps* steady-state calls of fn."""
    for _ in range(warmup):
        fn()
    tracemalloc.start()
    try:
        baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        for _ in range(reps):
            fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak - baseline


class TestPlanIndependence:
    @pytest.mark.parametrize("n", [64, 96, 105])
    def test_two_calls_return_independent_results(self, rng, n):
        plan = StockhamPlan(n)
        x1, x2 = random_complex(rng, n), random_complex(rng, n)
        y1 = plan(x1)
        y1_copy = y1.copy()
        y2 = plan(x2)
        assert not np.may_share_memory(y1, y2)
        assert np.array_equal(y1, y1_copy)  # second call didn't clobber
        assert np.allclose(y1, np.fft.fft(x1))
        assert np.allclose(y2, np.fft.fft(x2))

    def test_result_never_aliases_pool(self, rng):
        plan = StockhamPlan(128)
        y = plan(random_complex(rng, 128))
        for bufs in plan._pool.values():
            for buf in bufs:
                if buf is not None:
                    assert not np.may_share_memory(y, buf)

    def test_input_is_not_modified(self, rng):
        plan = StockhamPlan(256)
        x = random_complex(rng, 256)
        x_copy = x.copy()
        plan(x)
        assert np.array_equal(x, x_copy)


class TestOutParameter:
    @pytest.mark.parametrize("n", [64, 105])
    def test_out_is_returned_and_correct(self, rng, n):
        plan = StockhamPlan(n)
        x = random_complex(rng, n)
        out = np.empty(n, dtype=np.complex128)
        res = plan(x, out=out)
        assert res is out
        assert np.allclose(out, np.fft.fft(x))

    def test_out_may_alias_input(self, rng):
        plan = StockhamPlan(128)
        x = random_complex(rng, 128)
        ref = np.fft.fft(x)
        res = plan(x, out=x)  # fully in-place transform
        assert res is x
        assert np.allclose(x, ref)

    def test_out_may_be_previous_result(self, rng):
        plan = StockhamPlan(64)
        x1, x2 = random_complex(rng, 64), random_complex(rng, 64)
        buf = plan(x1)
        res = plan(x2, out=buf)
        assert res is buf
        assert np.allclose(buf, np.fft.fft(x2))

    def test_batched_out(self, rng):
        plan = StockhamPlan(64)
        x = random_complex(rng, 5, 64)
        out = np.empty((5, 64), dtype=np.complex128)
        assert plan(x, out=out) is out
        assert np.allclose(out, np.fft.fft(x, axis=-1))

    def test_inverse_scaling_lands_in_out(self, rng):
        plan = StockhamPlan(64, sign=+1)
        x = random_complex(rng, 64)
        out = np.empty(64, dtype=np.complex128)
        plan(x, out=out)
        assert np.allclose(out, np.fft.ifft(x))

    def test_rejects_bad_out(self, rng):
        plan = StockhamPlan(64)
        x = random_complex(rng, 64)
        with pytest.raises(ValueError, match="shape"):
            plan(x, out=np.empty(32, dtype=np.complex128))
        with pytest.raises(ValueError, match="dtype"):
            plan(x, out=np.empty(64, dtype=np.complex64))
        with pytest.raises(ValueError, match="contiguous"):
            plan(x, out=np.empty((64, 2), dtype=np.complex128)[:, 0])

    def test_bluestein_out_and_alias(self, rng):
        plan = BluesteinPlan(101)
        x = random_complex(rng, 101)
        ref = np.fft.fft(x)
        out = np.empty(101, dtype=np.complex128)
        assert plan(x, out=out) is out
        assert np.allclose(out, ref)
        assert plan(x, out=x) is x
        assert np.allclose(x, ref)

    def test_bluestein_workspace_reuse_is_clean(self, rng):
        # the padded chirp buffer is repurposed by the inverse pass; a
        # second call must re-zero the tail or the spectrum is corrupted
        plan = BluesteinPlan(37)
        x = random_complex(rng, 37)
        first = plan(x)
        second = plan(x)
        assert np.allclose(first, second)
        assert np.allclose(second, np.fft.fft(x))


class TestComplex64EndToEnd:
    def test_stockham_out_keeps_dtype(self, rng):
        plan = StockhamPlan(128, dtype=np.complex64)
        x = random_complex(rng, 128).astype(np.complex64)
        out = np.empty(128, dtype=np.complex64)
        res = plan(x, out=out)
        assert res.dtype == np.complex64
        assert np.allclose(res, np.fft.fft(x.astype(np.complex128)),
                           rtol=1e-4, atol=1e-3)

    def test_soi_batch_keeps_dtype(self, rng):
        params = SoiParams(n=8 * 448, n_procs=1, segments_per_process=8,
                           n_mu=8, d_mu=7, b=48)
        f = SoiFFT(params, dtype=np.complex64)
        xs = random_complex(rng, 3, params.n).astype(np.complex64)
        ys = f.batch(xs)
        assert ys.dtype == np.complex64
        ref = np.fft.fft(xs.astype(np.complex128), axis=1)
        scale = np.linalg.norm(ref)
        assert np.linalg.norm(ys - ref) / scale < 1e-3


class TestSoiPlannedExecution:
    @pytest.fixture(scope="class")
    def soi(self):
        params = SoiParams(n=8 * 448, n_procs=1, segments_per_process=8,
                           n_mu=8, d_mu=7, b=48)
        return SoiFFT(params)

    def test_out_matches_plain_call(self, rng, soi):
        x = random_complex(rng, soi.params.n)
        out = np.empty(soi.params.n, dtype=np.complex128)
        assert soi(x, out=out) is out
        assert np.allclose(out, soi(x))

    def test_batch_matches_per_row(self, rng, soi):
        xs = random_complex(rng, 4, soi.params.n)
        batched = soi.batch(xs)
        for i in range(4):
            assert np.allclose(batched[i], soi(xs[i]), rtol=1e-10, atol=1e-10)

    def test_batch_out(self, rng, soi):
        xs = random_complex(rng, 3, soi.params.n)
        out = np.empty_like(xs)
        assert soi.batch(xs, out=out) is out
        assert np.allclose(out, soi.batch(xs))

    def test_two_calls_independent(self, rng, soi):
        x1, x2 = (random_complex(rng, soi.params.n) for _ in range(2))
        y1 = soi(x1)
        y1_copy = y1.copy()
        soi(x2)
        assert np.array_equal(y1, y1_copy)

    def test_release_workspaces(self, rng, soi):
        soi(random_complex(rng, soi.params.n))
        assert soi.workspace_bytes() > 0
        soi.release_workspaces()
        assert soi.workspace_bytes() == 0


class TestConvolveWorkspace:
    def test_workspace_reuse_same_result(self, rng):
        p = SoiParams(n=8 * 448, n_procs=1, segments_per_process=8,
                      n_mu=8, d_mu=7, b=48)
        f = SoiFFT(p)
        lo, hi = block_range_for_rows(p, 0, p.m_oversampled)
        s = p.n_segments
        x = random_complex(rng, p.n)
        x_ext = x[np.arange(lo * s, hi * s) % p.n]
        ws = ConvWorkspace()
        ref = convolve(x_ext, f.tables, 0, p.m_oversampled, lo)
        for inner in ("einsum", "buffered", "matmul"):
            first = convolve(x_ext, f.tables, 0, p.m_oversampled, lo,
                             workspace=ws, inner=inner)
            again = convolve(x_ext, f.tables, 0, p.m_oversampled, lo,
                             workspace=ws, inner=inner)
            assert np.allclose(first, ref, rtol=1e-12, atol=1e-12)
            assert np.allclose(again, ref, rtol=1e-12, atol=1e-12)
        assert ws.nbytes() > 0
        ws.clear()
        assert ws.nbytes() == 0


class TestUnifiedPlanCache:
    def test_cache_info_counts(self):
        cache_clear()
        before = cache_info()
        get_plan(2 ** 10)
        get_plan(2 ** 10)
        after = cache_info()
        assert after.misses == before.misses + 1
        assert after.hits >= before.hits + 1

    def test_fft_stockham_shares_cache(self, rng):
        from repro.fft.stockham import fft_stockham

        cache_clear()
        plan = get_plan(512, -1)
        x = random_complex(rng, 512)
        assert np.allclose(fft_stockham(x), np.fft.fft(x))
        # the wrapper hit the same cached plan rather than building its own
        assert get_plan(512, -1) is plan
        assert cache_info().currsize >= 1

    def test_dtype_aware(self):
        assert get_plan(64, -1, np.complex64) is not get_plan(64, -1)

    def test_cache_clear_resets(self):
        get_plan(2 ** 9)
        cache_clear()
        assert cache_info().currsize == 0

    def test_fft_stockham_rejects_non_smooth(self, rng):
        from repro.fft.stockham import fft_stockham

        with pytest.raises(ValueError, match="smooth"):
            fft_stockham(random_complex(rng, 22))


class TestNoLargeAllocations:
    """tracemalloc: steady-state planned execution stays allocation-free."""

    def test_stockham_steady_state(self, rng):
        n = 2 ** 15
        plan = StockhamPlan(n)
        x = random_complex(rng, n)
        out = np.empty(n, dtype=np.complex128)
        assert peak_new_bytes(lambda: plan(x, out=out)) < LARGE

    def test_stockham_batched_steady_state(self, rng):
        plan = StockhamPlan(4096)
        x = random_complex(rng, 16, 4096)
        out = np.empty((16, 4096), dtype=np.complex128)
        assert peak_new_bytes(lambda: plan(x, out=out)) < LARGE

    def test_soi_batch_steady_state(self, rng):
        params = SoiParams(n=8 * 448, n_procs=1, segments_per_process=8,
                           n_mu=8, d_mu=7, b=48)
        f = SoiFFT(params)
        xs = random_complex(rng, 8, params.n)
        out = np.empty_like(xs)
        assert peak_new_bytes(lambda: f.batch(xs, out=out)) < LARGE

"""Tests for convolution-and-oversampling: numerics, structure, strategies."""

import numpy as np
import pytest

from repro.core.convolution import (
    ConvStrategy,
    block_range_for_rows,
    conv_time_model,
    convolve,
    convolve_reference,
    input_block_offsets,
)
from repro.core.params import SoiParams
from repro.core.window import build_tables
from repro.machine.cache import CacheSim
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10
from tests.conftest import random_complex


def params(n=4 * 448, s=4, n_mu=8, d_mu=7, b=16, p=1):
    return SoiParams(n=n, n_procs=p, segments_per_process=s // p,
                     n_mu=n_mu, d_mu=d_mu, b=b)


@pytest.fixture(scope="module")
def tables():
    return build_tables(params())


class TestBlockOffsets:
    def test_chunk_shift_is_d_mu(self):
        # Fig 6(a): "the same chunk repeats while shifting by d_mu blocks"
        p = params()
        m0 = input_block_offsets(p, 0, 4 * p.n_mu)
        chunk0 = m0[: p.n_mu]
        for c in range(1, 4):
            assert np.array_equal(m0[c * p.n_mu:(c + 1) * p.n_mu],
                                  chunk0 + c * p.d_mu)

    def test_phase_offsets_within_chunk(self):
        p = params()
        m0 = input_block_offsets(p, 0, p.n_mu)
        q_r = (np.arange(p.n_mu) * p.d_mu) // p.n_mu
        assert np.array_equal(m0, q_r - p.b // 2 + 1)

    def test_rejects_unaligned(self):
        p = params()
        with pytest.raises(ValueError):
            input_block_offsets(p, 3, p.n_mu)
        with pytest.raises(ValueError):
            input_block_offsets(p, 0, p.n_mu + 1)

    def test_block_range_covers_all_offsets(self):
        p = params()
        rows = p.m_oversampled
        lo, hi = block_range_for_rows(p, 0, rows)
        m0 = input_block_offsets(p, 0, rows)
        assert lo == m0.min()
        assert hi == m0.max() + p.b


class TestConvolveNumerics:
    def test_matches_reference(self, rng, tables):
        p = tables.params
        rows = p.m_oversampled
        lo, hi = block_range_for_rows(p, 0, rows)
        s = p.n_segments
        idx = np.arange(lo * s, hi * s) % p.n
        x = random_complex(rng, p.n)
        x_ext = x[idx]
        fast = convolve(x_ext, tables, 0, rows, lo)
        slow = convolve_reference(x_ext, tables, 0, rows, lo)
        assert np.allclose(fast, slow, rtol=1e-12, atol=1e-12)

    def test_partial_row_range_matches_full(self, rng, tables):
        p = tables.params
        rows = p.m_oversampled
        lo, hi = block_range_for_rows(p, 0, rows)
        s = p.n_segments
        x = random_complex(rng, p.n)
        x_ext = x[np.arange(lo * s, hi * s) % p.n]
        full = convolve(x_ext, tables, 0, rows, lo)
        half = rows // 2
        lo2, hi2 = block_range_for_rows(p, half, half)
        x_ext2 = x[np.arange(lo2 * s, hi2 * s) % p.n]
        part = convolve(x_ext2, tables, half, half, lo2)
        assert np.allclose(part, full[half:], rtol=1e-12, atol=1e-12)

    def test_out_parameter(self, rng, tables):
        p = tables.params
        rows = p.m_oversampled
        lo, hi = block_range_for_rows(p, 0, rows)
        s = p.n_segments
        x_ext = random_complex(rng, (hi - lo) * s)
        out = np.empty((rows, s), dtype=np.complex128)
        res = convolve(x_ext, tables, 0, rows, lo, out=out)
        assert res is out

    def test_rejects_insufficient_extension(self, rng, tables):
        p = tables.params
        with pytest.raises(ValueError, match="cover"):
            convolve(random_complex(rng, p.n_segments * 4), tables, 0,
                     p.m_oversampled, 0)

    def test_rejects_non_multiple_length(self, rng, tables):
        with pytest.raises(ValueError, match="multiple"):
            convolve(random_complex(rng, 7), tables, 0, 8, 0)

    def test_rejects_wrong_out_shape(self, rng, tables):
        p = tables.params
        rows = p.m_oversampled
        lo, hi = block_range_for_rows(p, 0, rows)
        x_ext = random_complex(rng, (hi - lo) * p.n_segments)
        with pytest.raises(ValueError, match="out"):
            convolve(x_ext, tables, 0, rows, lo,
                     out=np.empty((1, 1), dtype=np.complex128))


class TestStrategies:
    def test_working_sets(self):
        p = params(s=16)
        base = ConvStrategy.BASELINE.working_set_bytes(p)
        inter = ConvStrategy.INTERCHANGE.working_set_bytes(p)
        # §5.3: baseline's set is proportional to S; decomposed is not
        assert base == inter * p.n_segments
        p2 = params(n=32 * 448 * 2, s=32)
        assert ConvStrategy.BASELINE.working_set_bytes(p2) > base
        assert ConvStrategy.INTERCHANGE.working_set_bytes(p2) == inter

    def test_input_strides(self):
        p = params(s=16)
        assert ConvStrategy.BUFFERED.input_stride_bytes(p) == 16
        assert ConvStrategy.INTERCHANGE.input_stride_bytes(p) == 16 * 16

    def test_extra_sweeps(self):
        assert ConvStrategy.BASELINE.extra_sweeps() == 0.0
        assert ConvStrategy.INTERCHANGE.extra_sweeps() == 1.0
        assert ConvStrategy.BUFFERED.extra_sweeps() == 1.0

    def test_ledgers_contain_expected_passes(self):
        p = params()
        for strat in ConvStrategy:
            led = strat.ledger(p, p.m_oversampled)
            labels = {r.label for r in led.records}
            assert "conv input" in labels and "conv output" in labels
        buf = ConvStrategy.BUFFERED.ledger(p, p.m_oversampled)
        assert any("staging" in r.label for r in buf.records)


class TestCacheTraces:
    """Drive the strategies' address traces through the cache simulator and
    check the paper's §5.3 claims *directionally* at reduced scale."""

    def _misses(self, strategy, s, cache_kb=16):
        p = SoiParams(n=s * 448, n_procs=1, segments_per_process=s,
                      n_mu=8, d_mu=7, b=16)
        cache = CacheSim(size_bytes=cache_kb * 1024, line_bytes=64, assoc=8)
        trace = strategy.address_trace(p, n_chunks=4)
        cache.access(trace)
        return cache.stats.misses / max(1, cache.stats.accesses)

    def test_buffered_has_fewest_misses_at_large_stride(self):
        s = 64  # stride 1 KB: conflict-prone
        m_base = self._misses(ConvStrategy.BASELINE, s)
        m_int = self._misses(ConvStrategy.INTERCHANGE, s)
        m_buf = self._misses(ConvStrategy.BUFFERED, s)
        assert m_buf < m_int
        assert m_buf < m_base

    def test_interchange_beats_baseline_reuse(self):
        # lane-major traversal reuses each window B times before moving on
        s = 32
        assert self._misses(ConvStrategy.INTERCHANGE, s, cache_kb=8) <= \
            self._misses(ConvStrategy.BASELINE, s, cache_kb=8)


class TestTimeModel:
    def test_buffered_is_flat_in_nodes(self):
        # Fig 11: buffering achieves "close-to-ideal scalability"
        times = []
        for nodes in (4, 8, 16, 32, 64):
            p = SoiParams(n=(7 * 2 ** 18) * nodes, n_procs=nodes,
                          segments_per_process=8, b=72)
            times.append(conv_time_model(p, XEON_PHI_SE10, ConvStrategy.BUFFERED))
        assert max(times) / min(times) < 1.05

    def test_baseline_degrades_with_nodes(self):
        # Fig 11: baseline "degrades with more nodes" (working set ~ S)
        p4 = SoiParams(n=(7 * 2 ** 18) * 4, n_procs=4,
                       segments_per_process=8, b=72)
        p64 = SoiParams(n=(7 * 2 ** 18) * 64, n_procs=64,
                        segments_per_process=8, b=72)
        t4 = conv_time_model(p4, XEON_PHI_SE10, ConvStrategy.BASELINE)
        t64 = conv_time_model(p64, XEON_PHI_SE10, ConvStrategy.BASELINE)
        assert t64 > 2.0 * t4

    def test_strategy_ordering_at_scale(self):
        p = SoiParams(n=(7 * 2 ** 18) * 64, n_procs=64,
                      segments_per_process=8, b=72)
        tb = conv_time_model(p, XEON_PHI_SE10, ConvStrategy.BASELINE)
        ti = conv_time_model(p, XEON_PHI_SE10, ConvStrategy.INTERCHANGE)
        tf = conv_time_model(p, XEON_PHI_SE10, ConvStrategy.BUFFERED)
        assert tf < ti < tb

    def test_xeon_shared_llc_tolerates_baseline_longer(self):
        # §5.3: the table spill is "particularly problematic in Xeon Phi
        # with private llcs" — the Xeon's 20 MB shared L3 absorbs it
        p = SoiParams(n=(7 * 2 ** 18) * 32, n_procs=32,
                      segments_per_process=8, b=72)
        phi_ratio = conv_time_model(p, XEON_PHI_SE10, ConvStrategy.BASELINE) / \
            conv_time_model(p, XEON_PHI_SE10, ConvStrategy.BUFFERED)
        xeon_ratio = conv_time_model(p, XEON_E5_2680, ConvStrategy.BASELINE) / \
            conv_time_model(p, XEON_E5_2680, ConvStrategy.BUFFERED)
        assert phi_ratio > xeon_ratio

    def test_conv_efficiency_comparable_both_machines(self):
        # §5.3/§6.3: the buffered convolution runs at ~40% on both machines,
        # "leading to similar execution times" relative to flops
        p = SoiParams(n=(7 * 2 ** 18) * 8, n_procs=8,
                      segments_per_process=1, b=72)
        t_phi = conv_time_model(p, XEON_PHI_SE10, ConvStrategy.BUFFERED)
        flops = p.conv_flops / p.n_procs
        implied = flops / (t_phi * XEON_PHI_SE10.peak_gflops * 1e9)
        assert implied == pytest.approx(0.40, abs=0.05)

"""End-to-end tests for the single-process SOI FFT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import SoiParams
from repro.core.soi_single import LOCAL_FFT_CHOICES, SoiFFT, soi_fft
from repro.core.window import GaussianSincWindow
from repro.util.validate import relative_l2_error
from tests.conftest import random_complex


def make_params(n=8 * 448, s=8, n_mu=8, d_mu=7, b=48):
    return SoiParams(n=n, n_procs=1, segments_per_process=s,
                     n_mu=n_mu, d_mu=d_mu, b=b)


class TestAccuracy:
    @pytest.mark.parametrize("n,s,n_mu,d_mu,b", [
        (8 * 448, 8, 8, 7, 48),
        (8 * 448, 8, 8, 7, 72),
        (16 * 448, 16, 8, 7, 72),
        (4 * 448, 4, 8, 7, 32),
        (2 ** 13, 8, 5, 4, 48),
        (2 ** 13, 8, 5, 4, 72),
        (6 * 448, 6, 8, 7, 48),       # non-power-of-two segment count
        (8 * 448, 8, 9, 8, 48),       # mu = 9/8
    ])
    def test_error_within_design_bound(self, rng, n, s, n_mu, d_mu, b):
        params = SoiParams(n=n, n_procs=1, segments_per_process=s,
                           n_mu=n_mu, d_mu=d_mu, b=b)
        f = SoiFFT(params)
        x = random_complex(rng, n)
        err = relative_l2_error(f(x), np.fft.fft(x))
        # the Kaiser design formula predicts the stopband well; allow 10x
        assert err < 10 * f.expected_stopband + 1e-12

    def test_mu_5_4_b72_is_near_machine_precision(self, rng):
        params = make_params(n=2 ** 13, n_mu=5, d_mu=4, b=72)
        f = SoiFFT(params)
        x = random_complex(rng, params.n)
        assert relative_l2_error(f(x), np.fft.fft(x)) < 1e-11

    def test_error_decreases_with_b(self, rng):
        x = random_complex(rng, 8 * 448)
        errs = []
        for b in (16, 32, 48, 72):
            f = SoiFFT(make_params(b=b))
            errs.append(relative_l2_error(f(x), np.fft.fft(x)))
        assert errs == sorted(errs, reverse=True)
        assert errs[-1] < 1e-7

    def test_pure_tone_every_segment(self, rng):
        params = make_params(n=4 * 448, s=4, b=48)
        f = SoiFFT(params)
        n, m = params.n, params.m
        for seg in range(4):
            freq = seg * m + int(rng.integers(0, m))
            x = np.exp(2j * np.pi * np.arange(n) * freq / n)
            y = f(x)
            expected = np.zeros(n, dtype=np.complex128)
            expected[freq] = n
            assert relative_l2_error(y, expected) < 1e-5

    def test_gaussian_window_works(self, rng):
        params = make_params(b=72)
        window = GaussianSincWindow(params)
        f = SoiFFT(params, window=window)
        x = random_complex(rng, params.n)
        err = relative_l2_error(f(x), np.fft.fft(x))
        assert err < 5e-3
        assert err < 10 * window.expected_stopband

    def test_kaiser_beats_gaussian_at_same_support(self, rng):
        params = make_params(b=72)
        x = random_complex(rng, params.n)
        ref = np.fft.fft(x)
        err_kaiser = relative_l2_error(SoiFFT(params)(x), ref)
        err_gauss = relative_l2_error(
            SoiFFT(params, window=GaussianSincWindow(params))(x), ref)
        assert err_kaiser < err_gauss


class TestLocalFftChoices:
    @pytest.mark.parametrize("choice", LOCAL_FFT_CHOICES)
    def test_all_choices_agree(self, rng, choice):
        params = make_params(n=4 * 448, s=4, b=32)
        x = random_complex(rng, params.n)
        ref = SoiFFT(params, local_fft="direct")(x)
        got = SoiFFT(params, local_fft=choice)(x)
        assert np.allclose(got, ref, rtol=1e-10, atol=1e-10)

    def test_rejects_unknown_choice(self):
        with pytest.raises(ValueError):
            SoiFFT(make_params(), local_fft="fftw")


class TestConvenienceWrapper:
    def test_soi_fft_function(self, rng):
        x = random_complex(rng, 8 * 448)
        y = soi_fft(x, n_segments=8, b=48)
        assert relative_l2_error(y, np.fft.fft(x)) < 1e-4

    def test_kwargs_forwarded(self, rng):
        x = random_complex(rng, 2 ** 12)
        y = soi_fft(x, n_segments=8, n_mu=5, d_mu=4, b=64)
        assert relative_l2_error(y, np.fft.fft(x)) < 1e-9


class TestValidation:
    def test_rejects_wrong_input_shape(self, rng):
        f = SoiFFT(make_params())
        with pytest.raises(ValueError):
            f(random_complex(rng, 17))

    def test_rejects_2d_input(self, rng):
        f = SoiFFT(make_params())
        with pytest.raises(ValueError):
            f(random_complex(rng, 2, 448 * 4))


class TestLinearity:
    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.floats(min_value=-3, max_value=3, allow_nan=False))
    @settings(max_examples=10, deadline=None)
    def test_linearity_property(self, seed, alpha):
        params = make_params(n=4 * 448, s=4, b=16)
        f = SoiFFT(params)
        r = np.random.default_rng(seed)
        x = r.standard_normal(params.n) + 1j * r.standard_normal(params.n)
        y = r.standard_normal(params.n) + 1j * r.standard_normal(params.n)
        lhs = f(x + alpha * y)
        rhs = f(x) + alpha * f(y)
        assert np.allclose(lhs, rhs, rtol=1e-8, atol=1e-6)

    def test_zero_maps_to_zero(self):
        params = make_params(n=4 * 448, s=4, b=16)
        f = SoiFFT(params)
        assert np.allclose(f(np.zeros(params.n, dtype=np.complex128)), 0.0)

"""Tests for the API-reference generator."""

import pytest

from repro.bench.apidoc import SUBPACKAGES, build_apidoc, write_apidoc


@pytest.fixture(scope="module")
def doc() -> str:
    return build_apidoc()


class TestApidoc:
    def test_all_subpackages_present(self, doc):
        for pkg in SUBPACKAGES:
            assert f"## {pkg}" in doc

    def test_key_classes_documented(self, doc):
        for name in ("SoiFFT", "DistributedSoiFFT", "StockhamPlan",
                     "SimCluster", "FftModel", "MachineSpec"):
            assert name in doc

    def test_no_private_names(self, doc):
        assert "### `_" not in doc
        assert "### class `_" not in doc

    def test_substantial(self, doc):
        assert len(doc.splitlines()) > 400

    def test_write(self, tmp_path):
        p = write_apidoc(tmp_path / "API.md")
        assert p.exists() and p.stat().st_size > 10_000

    def test_cli(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "API.md"
        assert main(["apidoc", "--output", str(out)]) == 0
        assert out.exists()

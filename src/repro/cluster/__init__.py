"""Simulated-cluster substrate: transports, communicator, clocks, schedules."""

from repro.cluster.backends import (
    ExecutionBackend,
    ProcessBackend,
    SimulatedBackend,
    WorkerFailure,
)
from repro.cluster.collectives import (
    alltoall_bruck,
    alltoall_pairwise,
    bruck_time,
    pairwise_time,
    recommend_algorithm,
)
from repro.cluster.communicator import Communicator
from repro.cluster.faults import (
    CollectiveFailure,
    CorruptionDetected,
    FaultPlan,
    FlappingLink,
    LinkDegradation,
    PartitionDetected,
    PartitionEvent,
    ProcessFault,
    ProcessFaultPlan,
    RankFailed,
    RetriesExhausted,
    RetryPolicy,
    chaos_cluster,
    checksum,
)
from repro.cluster.gantt import gantt_from_schedule, gantt_from_trace
from repro.cluster.mpi_compat import LoopbackComm, MpiCommunicator
from repro.cluster.noise import NoiseModel, expected_bsp_slowdown, noisy_cluster
from repro.cluster.replay import OverlapReplay, replay_with_overlap
from repro.cluster.network import FDR_INFINIBAND, STAMPEDE_EFFECTIVE, NetworkSpec
from repro.cluster.pcie import PCIE_GEN2_X16, PcieSpec, pipeline_makespan
from repro.cluster.proxy import ReverseProxy
from repro.cluster.schedule import Schedule, ScheduledTask, Task
from repro.cluster.shm import (
    ShmJanitor,
    ShmPool,
    ShmView,
    list_segments,
    unlink_segment,
)
from repro.cluster.simcluster import SimCluster
from repro.cluster.spmd import (
    AllToAll,
    Barrier,
    Bcast,
    Compute,
    RankContext,
    SendRecvRing,
    SpmdError,
    run_spmd,
)
from repro.cluster.topology import (
    FatTree,
    FaultDomains,
    Torus,
    alltoall_contention,
)
from repro.cluster.trace import CATEGORIES, Event, Trace

__all__ = [
    "AllToAll",
    "Barrier",
    "Bcast",
    "CATEGORIES",
    "CollectiveFailure",
    "Communicator",
    "Compute",
    "CorruptionDetected",
    "ExecutionBackend",
    "FaultDomains",
    "FaultPlan",
    "FlappingLink",
    "LinkDegradation",
    "PartitionDetected",
    "PartitionEvent",
    "ProcessBackend",
    "ProcessFault",
    "ProcessFaultPlan",
    "RankFailed",
    "RetriesExhausted",
    "RetryPolicy",
    "ShmJanitor",
    "ShmPool",
    "ShmView",
    "SimulatedBackend",
    "SpmdError",
    "WorkerFailure",
    "chaos_cluster",
    "checksum",
    "RankContext",
    "SendRecvRing",
    "alltoall_bruck",
    "alltoall_pairwise",
    "bruck_time",
    "pairwise_time",
    "recommend_algorithm",
    "run_spmd",
    "list_segments",
    "unlink_segment",
    "Event",
    "FDR_INFINIBAND",
    "FatTree",
    "LoopbackComm",
    "MpiCommunicator",
    "NetworkSpec",
    "NoiseModel",
    "OverlapReplay",
    "expected_bsp_slowdown",
    "gantt_from_schedule",
    "gantt_from_trace",
    "noisy_cluster",
    "replay_with_overlap",
    "PCIE_GEN2_X16",
    "PcieSpec",
    "ReverseProxy",
    "STAMPEDE_EFFECTIVE",
    "Schedule",
    "ScheduledTask",
    "SimCluster",
    "Task",
    "Torus",
    "Trace",
    "alltoall_contention",
    "pipeline_makespan",
]

"""Reverse-communication MPI proxy (paper §5.1).

In symmetric mode, Xeon Phi's native MPI handles latency-bound short
messages well but is inefficient for the long all-to-all messages.  The
paper routes those through a host-side proxy: a dedicated host core DMAs
data out of Phi memory, forwards it over InfiniBand, and the destination
host DMAs it into the remote Phi.  The three stages are chunked and
pipelined, so the realized bandwidth approaches ``min(pcie, ib)`` — which
is how the paper's model can assume Phi-to-Phi MPI bandwidth equal to
Xeon-to-Xeon.

:class:`ReverseProxy` composes a :class:`~repro.cluster.pcie.PcieSpec`
with a :class:`~repro.cluster.network.NetworkSpec` and exposes the same
timing interface as a plain network, so a simulated Phi cluster can be
constructed simply by swapping the transport.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import NetworkSpec
from repro.cluster.pcie import PcieSpec, pipeline_makespan

__all__ = ["ReverseProxy"]

#: Messages at or below this size go through Phi's native MPI (latency
#: optimized), larger ones through the proxy pipeline (§5.1: nearest
#: neighbor ghost messages are "tens of KBs ... latency bound").
NATIVE_MPI_CUTOFF_BYTES = 256 * 1024


@dataclass(frozen=True)
class ReverseProxy:
    """Host-proxied transport between coprocessors."""

    pcie: PcieSpec
    network: NetworkSpec
    chunk_bytes: int = 512 * 1024

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")

    @property
    def name(self) -> str:
        return f"proxy({self.network.name} via {self.pcie.bandwidth_gbps} GB/s PCIe)"

    @property
    def bandwidth_gbps(self) -> float:
        """Asymptotic proxied bandwidth: the slowest pipeline stage."""
        return min(self.pcie.bandwidth_gbps, self.network.bandwidth_gbps)

    @property
    def latency_us(self) -> float:
        """End-to-end first-byte latency through the three stages."""
        return 2 * self.pcie.latency_us + self.network.latency_us

    def _chunks(self, nbytes: float) -> list[float]:
        n_full, rem = divmod(int(nbytes), self.chunk_bytes)
        sizes = [float(self.chunk_bytes)] * n_full
        if rem:
            sizes.append(float(rem))
        return sizes or [0.0]

    def message_time(self, nbytes: float, nodes: int = 2) -> float:
        """One proxied point-to-point message: 3-stage chunked pipeline."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes <= NATIVE_MPI_CUTOFF_BYTES:
            # short/latency-bound path: Phi native MPI, no proxy detour
            return self.network.message_time(nbytes, nodes)
        sizes = self._chunks(nbytes)
        src_dma = [self.pcie.transfer_time(s) for s in sizes]
        wire = [self.network.message_time(s, nodes) for s in sizes]
        dst_dma = [self.pcie.transfer_time(s) for s in sizes]
        return pipeline_makespan([src_dma, wire, dst_dma])

    def alltoall_time(self, nodes: int, bytes_per_pair: float) -> float:
        """All-to-all through the proxy.

        The per-node volume ((nodes-1) * bytes_per_pair) flows through the
        node's PCIe link and its NIC as a two-resource chunked pipeline;
        with chunking, the makespan is governed by the slower of the two
        plus one pipeline fill.
        """
        if nodes < 1:
            raise ValueError("need at least one node")
        if nodes == 1 or bytes_per_pair == 0:
            return 0.0
        ib = self.network.alltoall_time(nodes, bytes_per_pair)
        vol = (nodes - 1) * bytes_per_pair
        pci = vol / (self.pcie.bandwidth_gbps * 1e9)
        fill = self.pcie.transfer_time(min(self.chunk_bytes, bytes_per_pair))
        # PCIe out and in are full duplex; the pipeline bottleneck is the
        # slower of the wire and the PCIe stream, plus fill/drain.
        return max(ib, pci) + 2 * fill

    def ring_exchange_time(self, nbytes: float, nodes: int = 2) -> float:
        """Ghost exchange uses the native-MPI short-message path."""
        return self.network.ring_exchange_time(min(nbytes, NATIVE_MPI_CUTOFF_BYTES), nodes) \
            if nbytes <= NATIVE_MPI_CUTOFF_BYTES else self.message_time(nbytes, nodes)

    def effective_bandwidth(self, msg_bytes: float, nodes: int = 2) -> float:
        """Realized GB/s for one message of *msg_bytes* through the proxy."""
        t = self.message_time(msg_bytes, nodes)
        if t == 0.0:
            return float("inf")
        return msg_bytes / t / 1e9

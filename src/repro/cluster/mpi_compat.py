"""Adapter: run the distributed algorithms on a real MPI communicator.

The library's algorithms talk to the narrow ``Communicator`` surface
(`alltoall`, `ring_exchange`, `allgather`, `bcast`, `barrier`).
:class:`MpiCommunicator` implements the same surface on top of an
mpi4py-style communicator object, so a real cluster run is:

    from mpi4py import MPI
    comm = MpiCommunicator(MPI.COMM_WORLD)
    ... SPMD port of the rank program, using comm.* ...

Since this environment has no MPI, the adapter is exercised against
:class:`LoopbackComm`, a single-process stand-in implementing the small
mpi4py subset used (``Get_rank``/``Get_size``/``alltoall``/``sendrecv``/
``allgather``/``bcast``/``Barrier``), which also documents exactly which
MPI calls a real deployment needs.

Semantics note: unlike the SimCluster communicator (which sees all ranks
at once), this adapter is *per-rank*: each method takes and returns only
the local rank's buffers, mpi4py style.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LoopbackComm", "MpiCommunicator"]


class LoopbackComm:
    """mpi4py-lookalike for a single process (rank 0 of 1).

    Every collective degenerates to identity/self-exchange; useful for
    tests and for running SPMD-ported code without MPI installed.
    """

    def Get_rank(self) -> int:  # noqa: N802 - mpi4py naming
        return 0

    def Get_size(self) -> int:  # noqa: N802
        return 1

    def alltoall(self, sendobj):
        if len(sendobj) != 1:
            raise ValueError("loopback alltoall expects 1 buffer")
        return [sendobj[0]]

    def sendrecv(self, sendobj, dest, source):
        if dest != 0 or source != 0:
            raise ValueError("loopback has only rank 0")
        return sendobj

    def allgather(self, sendobj):
        return [sendobj]

    def bcast(self, obj, root=0):
        if root != 0:
            raise ValueError("loopback has only rank 0")
        return obj

    def Barrier(self) -> None:  # noqa: N802
        return None


class MpiCommunicator:
    """The library's collective surface over an mpi4py-style comm."""

    def __init__(self, comm) -> None:
        for attr in ("Get_rank", "Get_size", "alltoall", "sendrecv",
                     "allgather", "bcast", "Barrier"):
            if not hasattr(comm, attr):
                raise TypeError(f"comm lacks required method {attr!r}")
        self._comm = comm
        self.rank = comm.Get_rank()
        self.size = comm.Get_size()
        self.bytes_moved = 0
        self.message_count = 0

    # -- collectives (per-rank view) ---------------------------------------

    def alltoall(self, send_per_dest: list[np.ndarray]) -> list[np.ndarray]:
        """This rank's buffers per destination -> buffers per source."""
        if len(send_per_dest) != self.size:
            raise ValueError(f"need {self.size} send buffers")
        send = [np.ascontiguousarray(b) for b in send_per_dest]
        self.bytes_moved += sum(b.nbytes for i, b in enumerate(send)
                                if i != self.rank)
        self.message_count += self.size - 1
        return [np.asarray(b) for b in self._comm.alltoall(send)]

    def ring_exchange(self, to_left: np.ndarray, to_right: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Send halos to ring neighbors; receive ours."""
        left = (self.rank - 1) % self.size
        right = (self.rank + 1) % self.size
        from_right = self._comm.sendrecv(np.ascontiguousarray(to_left),
                                         dest=left, source=right)
        from_left = self._comm.sendrecv(np.ascontiguousarray(to_right),
                                        dest=right, source=left)
        if self.size > 1:
            self.bytes_moved += int(np.asarray(to_left).nbytes
                                    + np.asarray(to_right).nbytes)
            self.message_count += 2
        return np.asarray(from_left), np.asarray(from_right)

    def allgather(self, buf: np.ndarray) -> list[np.ndarray]:
        out = self._comm.allgather(np.ascontiguousarray(buf))
        self.bytes_moved += (self.size - 1) * int(np.asarray(buf).nbytes)
        self.message_count += self.size - 1
        return [np.asarray(b) for b in out]

    def bcast(self, buf: np.ndarray | None, root: int = 0) -> np.ndarray:
        out = self._comm.bcast(
            None if buf is None else np.ascontiguousarray(buf), root=root)
        if self.rank != root and out is not None:
            self.bytes_moved += int(np.asarray(out).nbytes)
            self.message_count += 1
        return np.asarray(out)

    def barrier(self) -> None:
        self._comm.Barrier()

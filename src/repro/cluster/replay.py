"""Replay an executed trace under a comm/compute-overlap schedule.

Executed `SimCluster` runs are conservatively sequential: a collective
synchronizes every clock, so nothing overlaps.  The paper's real runtime
pipelines per-segment all-to-alls against per-segment local FFTs (§6.1).
This module bridges the two: it takes the *measured* component durations
of an executed run and re-schedules them on per-rank {cpu, nic} resources
with the segment-pipelined dependency structure, yielding the
overlap-adjusted makespan and exposed-MPI time — i.e. it post-processes an
executed trace into the Fig 9 quantities without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.schedule import Schedule
from repro.cluster.trace import Trace

__all__ = ["OverlapReplay", "replay_with_overlap"]


@dataclass(frozen=True)
class OverlapReplay:
    """Overlap-adjusted view of one rank's executed SOI run."""

    sequential_elapsed: float  # as executed (no overlap)
    overlapped_elapsed: float  # re-scheduled with segment pipelining
    exposed_mpi: float
    total_mpi: float

    @property
    def overlap_gain(self) -> float:
        """Speedup from pipelining (>= 1)."""
        if self.overlapped_elapsed <= 0:
            return 1.0
        return self.sequential_elapsed / self.overlapped_elapsed

    @property
    def hidden_mpi_fraction(self) -> float:
        if self.total_mpi <= 0:
            return 0.0
        return 1.0 - self.exposed_mpi / self.total_mpi


def replay_with_overlap(trace: Trace, rank: int, segments: int,
                        setup_labels: tuple[str, ...] = ("ghost exchange",
                                                         "convolution"),
                        comm_label: str = "all-to-all",
                        compute_labels: tuple[str, ...] = ("local FFT",
                                                           "demodulation"),
                        ) -> OverlapReplay:
    """Re-schedule one rank's SOI components with *segments*-way pipelining.

    The setup stages run first (unsplittable); the all-to-all and the
    post-exchange compute are split into per-segment slices: exchange of
    segment i+1 overlaps compute of segment i, exactly the paper's scheme.
    """
    if segments < 1:
        raise ValueError("segments must be >= 1")
    by_label = trace.breakdown_by_label(rank=rank)
    setup = sum(by_label.get(l, 0.0) for l in setup_labels)
    comm = by_label.get(comm_label, 0.0)
    post = sum(by_label.get(l, 0.0) for l in compute_labels)
    sequential = setup + comm + post

    sched = Schedule()
    cpu, nic = ("cpu", rank), ("nic", rank)
    sched.add("setup", cpu, setup, category="compute")
    prev_fft = "setup"
    for seg in range(segments):
        deps = ["setup"] if seg == 0 else ["setup", f"a2a{seg - 1}"]
        sched.add(f"a2a{seg}", nic, comm / segments, deps=deps,
                  category="mpi")
        sched.add(f"fft{seg}", cpu, post / segments,
                  deps=[f"a2a{seg}", prev_fft], category="compute")
        prev_fft = f"fft{seg}"
    sched.run()
    return OverlapReplay(
        sequential_elapsed=sequential,
        overlapped_elapsed=sched.makespan,
        exposed_mpi=sched.exposed_time(nic, cpu),
        total_mpi=comm,
    )

"""Dependency scheduler for communication/computation overlap.

The paper pipelines work at two levels: PCIe chunks against InfiniBand
transfers (§5.1), and per-segment all-to-alls against the next segment's
local FFT + demodulation (§6.1, "using multiple segments allows all-to-all
communications to be overlapped with M'-point FFTs").  This module models
such schedules explicitly: tasks bound to (rank, resource) pairs — a CPU
and a NIC per rank — executed in dependency order, each resource serving
one task at a time.  The resulting timeline yields the *exposed* (i.e.
un-overlapped) MPI time reported in Fig 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Task", "Schedule", "ScheduledTask"]


@dataclass(frozen=True)
class Task:
    """One unit of work bound to a resource.

    ``resource`` is a hashable key, conventionally ``("cpu", rank)``,
    ``("net", rank)`` or ``("pcie", rank)``.  Dependencies refer to task
    ids added earlier (the schedule is built in topological order).
    """

    id: str
    resource: tuple
    duration: float
    deps: tuple[str, ...] = ()
    category: str = "compute"

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")


@dataclass(frozen=True)
class ScheduledTask:
    task: Task
    start: float
    end: float


class Schedule:
    """In-order list scheduler over exclusive resources."""

    def __init__(self) -> None:
        self._tasks: list[Task] = []
        self._ids: set[str] = set()
        self._result: dict[str, ScheduledTask] | None = None

    def add(self, id: str, resource: tuple, duration: float,
            deps: tuple[str, ...] | list[str] = (), category: str = "compute"
            ) -> Task:
        """Append a task; its deps must already be present."""
        if id in self._ids:
            raise ValueError(f"duplicate task id {id!r}")
        deps = tuple(deps)
        for d in deps:
            if d not in self._ids:
                raise ValueError(f"dependency {d!r} of {id!r} not added yet")
        t = Task(id, resource, duration, deps, category)
        self._tasks.append(t)
        self._ids.add(id)
        self._result = None
        return t

    def run(self) -> dict[str, ScheduledTask]:
        """Compute start/end for every task (idempotent).

        Greedy earliest-start list scheduling: among the dependency-ready
        tasks, the one that can start soonest runs next (ties broken by
        insertion order), each resource serving one task at a time.  This
        lets independent work slot into resource gaps — e.g. the next
        panel's load overlapping the previous panel's FFT in the §5.2.3
        SMT pipeline.
        """
        if self._result is not None:
            return self._result
        res_avail: dict[tuple, float] = {}
        done: dict[str, ScheduledTask] = {}
        pending = list(enumerate(self._tasks))
        while pending:
            best = None  # (est, insertion_idx, list_pos, task)
            for pos, (idx, t) in enumerate(pending):
                if any(d not in done for d in t.deps):
                    continue
                ready = max((done[d].end for d in t.deps), default=0.0)
                est = max(ready, res_avail.get(t.resource, 0.0))
                key = (est, idx)
                if best is None or key < best[0]:
                    best = (key, pos, t)
            if best is None:  # pragma: no cover - deps validated at add()
                raise RuntimeError("dependency cycle in schedule")
            (est, _), pos, t = best
            pending.pop(pos)
            end = est + t.duration
            res_avail[t.resource] = end
            done[t.id] = ScheduledTask(t, est, end)
        self._result = done
        return done

    # -- analysis ------------------------------------------------------------

    @property
    def makespan(self) -> float:
        r = self.run()
        return max((s.end for s in r.values()), default=0.0)

    def busy_time(self, resource: tuple) -> float:
        r = self.run()
        return sum(s.end - s.start for s in r.values()
                   if s.task.resource == resource)

    def intervals(self, resource: tuple) -> list[tuple[float, float]]:
        r = self.run()
        return sorted((s.start, s.end) for s in r.values()
                      if s.task.resource == resource)

    def exposed_time(self, resource: tuple, against: tuple) -> float:
        """Time *resource* is busy while *against* is idle.

        With ``resource=("net", r)`` and ``against=("cpu", r)`` this is the
        exposed MPI time of rank r.
        """
        busy = self.intervals(resource)
        cover = self.intervals(against)
        exposed = 0.0
        for b0, b1 in busy:
            covered = 0.0
            for c0, c1 in cover:
                lo, hi = max(b0, c0), min(b1, c1)
                if hi > lo:
                    covered += hi - lo
            exposed += max(0.0, (b1 - b0) - covered)
        return exposed

    def category_total(self, category: str) -> float:
        r = self.run()
        return sum(s.end - s.start for s in r.values()
                   if s.task.category == category)

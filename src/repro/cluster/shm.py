"""Shared-memory segment pool and zero-copy slice descriptors.

The process backend's all-to-all does not pickle arrays through pipes:
each worker packs its outgoing slices into a POSIX shared-memory segment
it owns and sends peers a tiny :class:`ShmView` *descriptor* (segment
name, offset, shape, dtype).  The receiver resolves the descriptor into
a numpy view over the mapped segment — the payload bytes cross the
process boundary zero-copy, exactly like the paper's one all-to-all
moves data without intermediate staging buffers.

Two pieces:

* :class:`ShmView` — a picklable descriptor resolving to an ndarray view;
* :class:`ShmPool` — per-process cache of created/attached segments, so
  a segment is mapped at most once per process no matter how many
  descriptors point into it.

CPython wart handled here: on 3.8-3.12 merely *attaching* to a segment
registers it with the ``resource_tracker``, which then unlinks it when
the attaching process exits — destroying a segment the creator still
owns.  :meth:`ShmPool.attach` suppresses that registration while
mapping, so only the creator's tracker entry ever exists (the creator
unlinks explicitly).  Sending ``unregister`` after the fact instead
would race: under fork every process shares one tracker, and N
attachers plus the creator's unlink would send N+1 removals for one
registration, spraying KeyError tracebacks at exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShmPool", "ShmView"]


@dataclass(frozen=True)
class ShmView:
    """Picklable pointer to an ndarray living inside a shared segment."""

    segment: str
    offset: int
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize

    def resolve(self, pool: "ShmPool", *, writeable: bool = False) -> np.ndarray:
        """A numpy view over the segment's bytes (no copy).

        Views are handed out read-only by default: the bytes belong to
        the sending rank's outbox and will be reused for its next
        collective, so a receiver that wants to mutate must copy (the
        same contract as an MPI receive buffer it does not own).
        """
        shm = pool.attach(self.segment)
        arr = np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                         buffer=shm.buf, offset=self.offset)
        arr.flags.writeable = writeable
        return arr


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without a resource_tracker registration."""
    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ShmPool:
    """Per-process registry of shared-memory segments.

    Segments *created* through the pool are owned by it: ``close()``
    (and therefore interpreter exit of the creator) unlinks them.
    Segments *attached* are only mapped; closing the pool unmaps but
    never unlinks them.
    """

    def __init__(self) -> None:
        self._created: dict[str, shared_memory.SharedMemory] = {}
        self._attached: dict[str, shared_memory.SharedMemory] = {}

    def create(self, name: str, nbytes: int) -> shared_memory.SharedMemory:
        if name in self._created:
            raise ValueError(f"segment {name!r} already created by this pool")
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(1, int(nbytes)))
        self._created[name] = shm
        return shm

    def attach(self, name: str) -> shared_memory.SharedMemory:
        shm = self._created.get(name) or self._attached.get(name)
        if shm is None:
            shm = _attach_untracked(name)
            self._attached[name] = shm
        return shm

    def place(self, name: str, arrays: list[np.ndarray]) -> list[ShmView]:
        """Create segment *name* sized for *arrays*, copy them in, and
        return one descriptor per array (creator-side packing)."""
        arrays = [np.ascontiguousarray(a) for a in arrays]
        total = sum(a.nbytes for a in arrays)
        shm = self.create(name, total)
        views, off = [], 0
        for a in arrays:
            dst = np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf, offset=off)
            np.copyto(dst, a)
            views.append(ShmView(name, off, tuple(a.shape), a.dtype.name))
            off += a.nbytes
        return views

    def detach(self, name: str) -> None:
        """Unmap an attached (or unlink a created) segment by name."""
        shm = self._attached.pop(name, None)
        if shm is not None:
            shm.close()
            return
        shm = self._created.pop(name, None)
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def detach_prefix(self, prefix: str) -> None:
        """Drop every mapping whose segment name starts with *prefix*
        (job-scoped staging segments at job end)."""
        for name in [n for n in self._attached if n.startswith(prefix)]:
            self.detach(name)
        for name in [n for n in self._created if n.startswith(prefix)]:
            self.detach(name)

    def close(self) -> None:
        """Unmap everything; unlink every segment this pool created."""
        for name in list(self._attached):
            self.detach(name)
        for name in list(self._created):
            self.detach(name)

    def __enter__(self) -> "ShmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

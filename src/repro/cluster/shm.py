"""Shared-memory segment pool and zero-copy slice descriptors.

The process backend's all-to-all does not pickle arrays through pipes:
each worker packs its outgoing slices into a POSIX shared-memory segment
it owns and sends peers a tiny :class:`ShmView` *descriptor* (segment
name, offset, shape, dtype).  The receiver resolves the descriptor into
a numpy view over the mapped segment — the payload bytes cross the
process boundary zero-copy, exactly like the paper's one all-to-all
moves data without intermediate staging buffers.

Two pieces:

* :class:`ShmView` — a picklable descriptor resolving to an ndarray view;
* :class:`ShmPool` — per-process cache of created/attached segments, so
  a segment is mapped at most once per process no matter how many
  descriptors point into it.

CPython wart handled here: on 3.8-3.12 merely *attaching* to a segment
registers it with the ``resource_tracker``, which then unlinks it when
the attaching process exits — destroying a segment the creator still
owns.  :meth:`ShmPool.attach` suppresses that registration while
mapping, so only the creator's tracker entry ever exists (the creator
unlinks explicitly).  Sending ``unregister`` after the fact instead
would race: under fork every process shares one tracker, and N
attachers plus the creator's unlink would send N+1 removals for one
registration, spraying KeyError tracebacks at exit.

Crash hygiene: a SIGKILL'd worker never runs its pool's ``close()``, so
the segments it created (outbox generations, checkpoint stashes) would
outlive it in ``/dev/shm``.  :class:`ShmJanitor` is the parent-side
reclaimer: it enumerates live segments by name prefix
(:func:`list_segments`) and force-unlinks the orphans
(:func:`unlink_segment`), so repeated worker crashes cannot leak
shared memory.  As a second line of defense every :class:`ShmPool`
carries a ``weakref.finalize`` hook that unlinks its created segments at
interpreter exit — guarded by PID so a forked child exiting never
destroys segments its parent still owns.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShmJanitor", "ShmPool", "ShmView", "list_segments",
           "unlink_segment"]

#: Where the kernel exposes POSIX shared-memory segments as files.
_SHM_DIR = "/dev/shm"


@dataclass(frozen=True)
class ShmView:
    """Picklable pointer to an ndarray living inside a shared segment."""

    segment: str
    offset: int
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize

    def resolve(self, pool: "ShmPool", *, writeable: bool = False) -> np.ndarray:
        """A numpy view over the segment's bytes (no copy).

        Views are handed out read-only by default: the bytes belong to
        the sending rank's outbox and will be reused for its next
        collective, so a receiver that wants to mutate must copy (the
        same contract as an MPI receive buffer it does not own).
        """
        shm = pool.attach(self.segment)
        arr = np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                         buffer=shm.buf, offset=self.offset)
        arr.flags.writeable = writeable
        return arr


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without a resource_tracker registration."""
    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def list_segments(prefix: str) -> list[str]:
    """Names of live shared-memory segments starting with *prefix*.

    Reads the kernel's view (``/dev/shm``), not any pool's — so it sees
    segments created by crashed processes that no live pool remembers.
    Returns ``[]`` on platforms without a tmpfs segment directory.
    """
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - non-Linux
        return []
    return sorted(n for n in names if n.startswith(prefix))


def unlink_segment(name: str) -> bool:
    """Force-unlink a segment by name; True if it existed.

    Used by the janitor on segments whose creator is gone: mapping
    processes keep valid views (POSIX unlink semantics), but the name is
    freed and the memory dies with the last mapping.
    """
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return False
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - lost the race
        return False
    except Exception:  # pragma: no cover - tracker bookkeeping noise
        pass
    return True


class ShmJanitor:
    """Reclaims shared-memory segments orphaned by crashed processes.

    Scoped to a name *prefix* (one backend instance's token): anything
    under the prefix that is not in the ``keep`` set is fair game.  The
    process backend sweeps after worker deaths (a SIGKILL'd worker's
    outbox/checkpoint segments) and on ``close()``, so repeated failures
    cannot leak ``/dev/shm``.
    """

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.reclaimed = 0

    def orphans(self, keep=()) -> list[str]:
        """Live segments under the prefix not owned by anyone in *keep*."""
        keep = set(keep)
        return [n for n in list_segments(self.prefix) if n not in keep]

    def sweep(self, sub: str = "", keep=()) -> list[str]:
        """Unlink every orphan under ``prefix + sub``; returns the names."""
        keep = set(keep)
        gone = []
        for name in list_segments(self.prefix + sub):
            if name in keep:
                continue
            if unlink_segment(name):
                gone.append(name)
        self.reclaimed += len(gone)
        return gone


def _finalize_pool(pid: int, created: dict, attached: dict) -> None:
    """atexit backstop: unlink what this pool created, unmap the rest.

    PID-guarded: under fork a child inherits the parent's pool object,
    and its exit must not destroy segments the parent still owns.
    """
    if os.getpid() != pid:
        return
    for shm in attached.values():
        try:
            shm.close()
        except Exception:  # pragma: no cover - exit-path best effort
            pass
    attached.clear()
    for shm in created.values():
        try:
            shm.close()
            shm.unlink()
        except Exception:  # pragma: no cover - exit-path best effort
            pass
    created.clear()


class ShmPool:
    """Per-process registry of shared-memory segments.

    Segments *created* through the pool are owned by it: ``close()``
    (and therefore interpreter exit of the creator) unlinks them.
    Segments *attached* are only mapped; closing the pool unmaps but
    never unlinks them.
    """

    def __init__(self) -> None:
        self._created: dict[str, shared_memory.SharedMemory] = {}
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        # abnormal-exit backstop: unlink created segments at interpreter
        # exit even when close() never ran (see _finalize_pool)
        self._finalizer = weakref.finalize(
            self, _finalize_pool, os.getpid(), self._created, self._attached)

    def create(self, name: str, nbytes: int) -> shared_memory.SharedMemory:
        if name in self._created:
            raise ValueError(f"segment {name!r} already created by this pool")
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(1, int(nbytes)))
        self._created[name] = shm
        return shm

    def attach(self, name: str) -> shared_memory.SharedMemory:
        shm = self._created.get(name) or self._attached.get(name)
        if shm is None:
            shm = _attach_untracked(name)
            self._attached[name] = shm
        return shm

    def place(self, name: str, arrays: list[np.ndarray]) -> list[ShmView]:
        """Create segment *name* sized for *arrays*, copy them in, and
        return one descriptor per array (creator-side packing)."""
        arrays = [np.ascontiguousarray(a) for a in arrays]
        total = sum(a.nbytes for a in arrays)
        shm = self.create(name, total)
        views, off = [], 0
        for a in arrays:
            dst = np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf, offset=off)
            np.copyto(dst, a)
            views.append(ShmView(name, off, tuple(a.shape), a.dtype.name))
            off += a.nbytes
        return views

    def detach(self, name: str) -> None:
        """Unmap an attached (or unlink a created) segment by name."""
        shm = self._attached.pop(name, None)
        if shm is not None:
            shm.close()
            return
        shm = self._created.pop(name, None)
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def release(self, name: str) -> None:
        """Unmap a *created* segment without unlinking it.

        Ownership handoff: a worker that created a checkpoint segment
        releases it at job end so the parent (who holds the descriptor)
        controls its lifetime; the parent's janitor unlinks it later.
        Attached segments are simply unmapped (same as :meth:`detach`).
        """
        shm = self._created.pop(name, None)
        if shm is None:
            shm = self._attached.pop(name, None)
        if shm is not None:
            shm.close()

    def detach_prefix(self, prefix: str) -> None:
        """Drop every mapping whose segment name starts with *prefix*
        (job-scoped staging segments at job end)."""
        for name in [n for n in self._attached if n.startswith(prefix)]:
            self.detach(name)
        for name in [n for n in self._created if n.startswith(prefix)]:
            self.detach(name)

    def close(self) -> None:
        """Unmap everything; unlink every segment this pool created."""
        for name in list(self._attached):
            self.detach(name)
        for name in list(self._created):
            self.detach(name)

    def __enter__(self) -> "ShmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

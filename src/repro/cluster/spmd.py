"""Generator-based SPMD runtime: write rank-local programs, MPI style.

The phase-structured API (:mod:`repro.core.soi_dist`) drives the
algorithm from a global viewpoint.  This runtime offers the converse,
closer to how the paper's symmetric-mode code is written: each rank is a
Python generator that *yields* communication requests and receives the
result of the collective at the resume point:

    def program(ctx):
        halo = yield SendRecvRing(left=my_left, right=my_right)
        ...
        blocks = yield AllToAll(per_dest_list)
        ...
        return my_result

The engine steps all ranks to their next request, verifies they agree on
the collective (SPMD discipline — mismatched collectives deadlock real
MPI and raise here), performs the exchange through the cluster's
:class:`~repro.cluster.communicator.Communicator` (so byte accounting and
clock charging are identical to the phase-structured path), and resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.cluster.simcluster import SimCluster

__all__ = ["AllToAll", "Barrier", "Bcast", "Checkpoint", "Compute",
           "RankContext", "SendRecvRing", "SpmdError", "run_spmd"]


@dataclass(frozen=True)
class AllToAll:
    """Yield with one ndarray per destination rank; resumes with a list
    of arrays, one per source rank."""

    per_dest: list
    label: str = "all-to-all"


@dataclass(frozen=True)
class SendRecvRing:
    """Yield with halos for the left/right neighbors; resumes with
    ``(from_left, from_right)``."""

    to_left: np.ndarray
    to_right: np.ndarray
    label: str = "ghost exchange"


@dataclass(frozen=True)
class Bcast:
    """Yield with (buffer if root else None); resumes with the buffer."""

    buf: np.ndarray | None
    root: int = 0
    label: str = "bcast"


@dataclass(frozen=True)
class Barrier:
    label: str = "barrier"


@dataclass(frozen=True)
class Compute:
    """Charge simulated compute seconds on this rank (resumes with None)."""

    seconds: float
    label: str = "compute"


@dataclass(frozen=True)
class Checkpoint:
    """Stash rank-local stage data with the runtime (resumes with None).

    The engine stores *data* under ``(rank, tag)`` in the ``checkpoints``
    dict passed to :func:`run_spmd` and charges the rank the streaming
    cost of writing it — so if a later collective declares a rank dead,
    the caller can restart from the survivors' checkpoints instead of
    from scratch (see :func:`repro.core.soi_spmd.spmd_soi_fft`).
    """

    data: Any
    tag: str = "checkpoint"


@dataclass(frozen=True)
class RankContext:
    """What a rank program knows about itself."""

    rank: int
    size: int
    cluster: SimCluster = field(repr=False)


class SpmdError(RuntimeError):
    """SPMD discipline violation (mismatched collectives across ranks)."""


def _check_uniform(requests: list) -> type:
    kinds = {type(r) for r in requests}
    if len(kinds) != 1:
        raise SpmdError(f"ranks disagree on the collective: "
                        f"{sorted(k.__name__ for k in kinds)}")
    labels = {r.label for r in requests}
    if len(labels) != 1:
        raise SpmdError(f"ranks disagree on the collective label: {labels}")
    return kinds.pop()


def run_spmd(cluster: SimCluster, program: Callable, *args,
             checkpoints: dict | None = None, hedge=None) -> list:
    """Run *program(ctx, \\*args)* as a generator on every rank.

    Returns the list of per-rank return values.  Compute requests are
    charged per rank; collectives are matched across all live ranks.
    Ranks must finish after the same number of collectives (a rank
    returning early while others still communicate raises).

    *checkpoints*, if given, is filled in place with the data of every
    :class:`Checkpoint` request under ``(rank, tag)`` keys.  Because the
    caller owns the dict, checkpointed stage data survives a collective
    raising :class:`~repro.cluster.faults.RankFailed` — the basis for
    shrink-and-redistribute restarts.

    *hedge*, if given, is a :class:`repro.verify.watchdog.HedgePolicy`:
    after each stepping round (all ranks advanced to their next
    collective) it reviews the round's per-rank compute charges and
    speculatively duplicates straggling steps on idle peers, first
    finisher wins (charged to the ``"hedge"`` trace category).
    """
    p = cluster.n_ranks
    gens = []
    for r in range(p):
        g = program(RankContext(r, p, cluster), *args)
        if not hasattr(g, "send"):
            raise TypeError("program must be a generator function "
                            "(use 'yield' for collectives)")
        gens.append(g)
    results: list = [None] * p
    payload: list = [None] * p
    done = [False] * p
    try:
        while not all(done):
            requests: list = [None] * p
            round_steps: list = []  # (rank, label, t0, seconds) this round
            for r, g in enumerate(gens):
                if done[r]:
                    continue
                try:
                    while True:
                        req = g.send(payload[r])
                        payload[r] = None
                        if isinstance(req, Compute):
                            t0 = cluster.clocks[r]
                            cluster.charge_seconds(r, req.label, req.seconds)
                            # record the *charged* duration (noise models
                            # may inflate it) — what hedging must see
                            round_steps.append(
                                (r, req.label, t0, cluster.clocks[r] - t0))
                            continue  # local: keep stepping this rank
                        if isinstance(req, Checkpoint):
                            if checkpoints is not None:
                                checkpoints[(r, req.tag)] = req.data
                            nbytes = getattr(req.data, "nbytes", 0)
                            cluster.charge_seconds(
                                r, "checkpoint",
                                cluster.machine_of(r).mem_time(nbytes))
                            continue  # local: keep stepping this rank
                        requests[r] = req
                        break
                except StopIteration as stop:
                    done[r] = True
                    results[r] = stop.value
            if hedge is not None and round_steps:
                hedge.review(cluster, round_steps)
            live = [r for r in range(p) if not done[r]]
            if not live:
                break
            if any(done[r] for r in range(p)):
                raise SpmdError("some ranks finished while others still "
                                "communicate (unbalanced collective counts)")
            kind = _check_uniform([requests[r] for r in live])
            if kind is AllToAll:
                send = [requests[r].per_dest for r in range(p)]
                for row in send:
                    if len(row) != p:
                        raise SpmdError("AllToAll needs one buffer per rank")
                recv = cluster.comm.alltoall(
                    [[np.asarray(b) for b in row] for row in send],
                    label=requests[0].label)
                for r in range(p):
                    payload[r] = recv[r]
            elif kind is SendRecvRing:
                fl, fr = cluster.comm.ring_exchange(
                    [np.asarray(requests[r].to_left) for r in range(p)],
                    [np.asarray(requests[r].to_right) for r in range(p)],
                    label=requests[0].label)
                for r in range(p):
                    payload[r] = (fl[r], fr[r])
            elif kind is Bcast:
                root = requests[0].root
                if any(requests[r].root != root for r in range(p)):
                    raise SpmdError("ranks disagree on bcast root")
                if requests[root].buf is None:
                    raise SpmdError("bcast root provided no buffer")
                out = cluster.comm.bcast(np.asarray(requests[root].buf),
                                         root=root, label=requests[0].label)
                for r in range(p):
                    payload[r] = out[r]
            elif kind is Barrier:
                cluster.comm.barrier(label=requests[0].label)
                for r in range(p):
                    payload[r] = None
            else:  # pragma: no cover - _check_uniform limits the kinds
                raise SpmdError(f"unknown request type {kind.__name__}")
    finally:
        for g in gens:
            g.close()  # leave no suspended generators if a collective raised
    return results

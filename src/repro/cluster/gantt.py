"""ASCII Gantt rendering of traces and schedules (Fig 12-style lanes).

Turns a :class:`~repro.cluster.trace.Trace` or a
:class:`~repro.cluster.schedule.Schedule` into a per-lane text timeline,
so examples and benches can *show* overlap instead of asserting it.
"""

from __future__ import annotations

from repro.cluster.schedule import Schedule
from repro.cluster.trace import CATEGORIES, Trace

__all__ = ["gantt_from_trace", "gantt_from_schedule"]

_GLYPHS = {"compute": "#", "mpi": "=", "pcie": "~", "retry": "!",
           "hedge": "+", "other": ".", "deadline": "x", "partition": "%"}


def _render(lanes: dict[str, list[tuple[float, float, str]]], span: float,
            width: int, title: str) -> str:
    if span <= 0:
        return title
    label_w = max(len(k) for k in lanes)
    lines = [title] if title else []
    for name, intervals in lanes.items():
        row = [" "] * width
        for t0, t1, cat in intervals:
            c0 = min(width - 1, int(round(t0 / span * width)))
            c1 = max(c0 + 1, int(round(t1 / span * width)))
            glyph = _GLYPHS.get(cat, "?")  # unmapped categories stand out
            for c in range(c0, min(c1, width)):
                row[c] = glyph
        lines.append(f"{name.ljust(label_w)} |{''.join(row)}|")
    # legend is sourced from the canonical category list so a category
    # added to the trace cannot silently vanish from the key
    legend = "  ".join(f"{_GLYPHS.get(c, '?')}={c}" for c in CATEGORIES)
    lines.append(f"{' ' * label_w}  0{' ' * (width - len(f'{span:.3g}') - 1)}"
                 f"{span:.3g}")
    lines.append(f"({legend})")
    return "\n".join(lines)


def gantt_from_trace(trace: Trace, width: int = 64, title: str = "") -> str:
    """One lane per rank; glyphs by event category."""
    if not trace.events:
        return title
    t_min = min(e.t_start for e in trace.events)
    span = max(e.t_end for e in trace.events) - t_min
    ranks = sorted({e.rank for e in trace.events})
    lanes = {
        f"rank {r}": [(e.t_start - t_min, e.t_end - t_min, e.category)
                      for e in trace.events if e.rank == r]
        for r in ranks
    }
    return _render(lanes, span, width, title)


def gantt_from_schedule(schedule: Schedule, width: int = 64,
                        title: str = "") -> str:
    """One lane per resource; glyphs by task category."""
    result = schedule.run()
    if not result:
        return title
    span = schedule.makespan
    resources = sorted({s.task.resource for s in result.values()},
                       key=repr)
    lanes = {}
    for res in resources:
        name = "/".join(str(part) for part in res)
        lanes[name] = [(s.start, s.end, s.task.category)
                       for s in result.values() if s.task.resource == res]
    return _render(lanes, span, width, title)

"""Interconnect topologies: fat trees and tori, built on networkx.

Provides the contention factors consumed by
:class:`~repro.cluster.network.NetworkSpec`: for an all-to-all, the
binding constraint beyond node injection bandwidth is the bisection — half
the traffic of every node crosses it.  A two-level fat tree (Stampede) has
a configurable oversubscription ratio; a k-ary torus (the K computer
comparison in §6.1/§8.2) has a bisection that grows only as P^{(d-1)/d}.

At 10^3–10^4 ranks failures stop being independent: the shared hardware
behind a group of ranks (a leaf switch, a torus axis slab) fails as one
unit.  :class:`FaultDomains` derives that group structure from a topology
— every rank behind FatTree leaf *i*, every rank in the slab with a given
coordinate along a torus's longest axis — and is consumed by correlated
fault injection (:meth:`repro.cluster.faults.FaultPlan.fail_domain`),
domain-aware recovery placement (:mod:`repro.core.soi_dist`), and the
hierarchical two-level all-to-all, whose intra-group phase is grouped by
exactly these domains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

__all__ = ["FatTree", "FaultDomains", "Torus", "alltoall_contention"]


@dataclass(frozen=True)
class FatTree:
    """Two-level fat tree with *radix*-port leaf switches.

    ``oversubscription`` is the leaf downlink:uplink capacity ratio;
    1.0 means full bisection (no contention for uniform traffic).
    """

    radix: int = 36
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.radix < 2:
            raise ValueError("radix must be >= 2")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")

    def contention(self, nodes: int) -> float:
        """Fraction of injection bandwidth sustainable in an all-to-all."""
        if nodes <= self.radix // 2:
            return 1.0  # fits under one leaf switch: full crossbar
        return 1.0 / self.oversubscription

    def graph(self, nodes: int) -> nx.Graph:
        """Explicit switch/node graph (for diameter/path diagnostics)."""
        g = nx.Graph()
        down = max(1, self.radix // 2)
        n_leaves = math.ceil(nodes / down)
        up = max(1, int(round(down / self.oversubscription)))
        n_spines = max(1, up)
        for leaf in range(n_leaves):
            for spine in range(n_spines):
                g.add_edge(f"leaf{leaf}", f"spine{spine}")
        for node in range(nodes):
            g.add_edge(node, f"leaf{node // down}")
        return g

    def domains(self, nodes: int) -> "FaultDomains":
        """Fault domains: one per leaf switch (ranks sharing the uplink).

        Nodes attach to leaves in contiguous blocks of ``radix // 2``
        (the same numbering :meth:`graph` uses), so losing leaf *i* —
        switch power, uplink cable — takes out exactly the ranks of
        group *i*.
        """
        down = max(1, self.radix // 2)
        groups = [list(range(lo, min(lo + down, nodes)))
                  for lo in range(0, nodes, down)]
        return FaultDomains(kind="fat-tree leaf", groups=tuple(
            tuple(g) for g in groups))


@dataclass(frozen=True)
class Torus:
    """d-dimensional torus (e.g. K computer's 6-D Tofu, modeled as 3-D)."""

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise ValueError("dims must be positive")

    @property
    def nodes(self) -> int:
        return math.prod(self.dims)

    def graph(self) -> nx.Graph:
        g = nx.grid_graph(dim=list(self.dims), periodic=True)
        return g

    def bisection_links(self) -> int:
        """Links crossing the balanced bisection (cut along longest dim)."""
        longest = max(self.dims)
        others = self.nodes // longest
        wrap = 2 if longest > 2 else 1
        return others * wrap

    def contention(self, nodes: int | None = None) -> float:
        """All-to-all injection efficiency: bisection-limited.

        In a uniform all-to-all, half of each node's traffic crosses the
        bisection, so sustainable injection per node is
        ``2 * bisection_links / nodes`` of a link rate (capped at 1).
        """
        n = self.nodes if nodes is None else nodes
        return min(1.0, 2.0 * self.bisection_links() / n)

    def domains(self, nodes: int | None = None) -> "FaultDomains":
        """Fault domains: slabs perpendicular to the longest axis.

        Ranks are numbered in C order over ``dims``; the slab with
        coordinate *c* along the longest dimension is what a failed
        axis link/router plane takes out together.
        """
        n = self.nodes if nodes is None else nodes
        if n != self.nodes:
            raise ValueError(f"torus has {self.nodes} nodes, not {n}")
        axis = max(range(len(self.dims)), key=lambda i: self.dims[i])
        stride_after = math.prod(self.dims[axis + 1:], start=1)
        extent = self.dims[axis]
        groups: list[list[int]] = [[] for _ in range(extent)]
        for r in range(n):
            coord = (r // stride_after) % extent
            groups[coord].append(r)
        return FaultDomains(kind=f"torus axis-{axis} slab", groups=tuple(
            tuple(g) for g in groups))


@dataclass(frozen=True)
class FaultDomains:
    """Correlated-failure structure of a fabric: ranks grouped by the
    shared hardware whose loss takes them all out at once."""

    kind: str  # human-readable domain flavor ("fat-tree leaf", ...)
    groups: tuple[tuple[int, ...], ...]  # domain id -> member ranks

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for g in self.groups:
            if not g:
                raise ValueError("empty fault domain")
            if seen & set(g):
                raise ValueError("fault domains must be disjoint")
            seen |= set(g)

    @property
    def n_domains(self) -> int:
        return len(self.groups)

    def members(self, domain: int) -> tuple[int, ...]:
        """Ranks behind one domain (a leaf switch, an axis slab)."""
        return self.groups[domain]

    def domain_of(self, rank: int) -> int:
        """Domain id of one rank (-1 for ranks outside every domain)."""
        for i, g in enumerate(self.groups):
            if rank in g:
                return i
        return -1

    def spread_order(self, ranks: list[int]) -> list[int]:
        """*ranks* reordered to cycle across domains round-robin.

        Walking this order places consecutive adopted work units on
        *different* surviving domains, so recovery never piles a dead
        switch's whole load onto one other switch (or back onto a
        domain that is itself suspect).  Ranks outside every domain
        sort into a trailing pseudo-domain; order within a domain is
        preserved, so the result is deterministic.
        """
        by_dom: dict[int, list[int]] = {}
        for r in ranks:
            by_dom.setdefault(self.domain_of(r), []).append(r)
        queues = [by_dom[d] for d in sorted(by_dom,
                                            key=lambda d: (d < 0, d))]
        out: list[int] = []
        i = 0
        while len(out) < len(ranks):
            q = queues[i % len(queues)]
            if q:
                out.append(q.pop(0))
            i += 1
            if all(not q for q in queues):
                break
        return out

    def equal_groups(self, ranks: list[int]) -> list[list[int]] | None:
        """*ranks* partitioned by domain, if the partition is balanced.

        The hierarchical all-to-all needs equal-size groups (its
        inter-group phase pairs members at matching local indices);
        returns ``None`` when the surviving membership is ragged, so
        callers can fall back to the flat exchange.
        """
        by_dom: dict[int, list[int]] = {}
        for r in ranks:
            by_dom.setdefault(self.domain_of(r), []).append(r)
        groups = [by_dom[d] for d in sorted(by_dom)]
        if len(groups) < 2 or len({len(g) for g in groups}) != 1:
            return None
        return groups


def alltoall_contention(topology, nodes: int) -> float:
    """Uniform-traffic contention factor for any topology object."""
    return topology.contention(nodes)

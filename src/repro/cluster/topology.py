"""Interconnect topologies: fat trees and tori, built on networkx.

Provides the contention factors consumed by
:class:`~repro.cluster.network.NetworkSpec`: for an all-to-all, the
binding constraint beyond node injection bandwidth is the bisection — half
the traffic of every node crosses it.  A two-level fat tree (Stampede) has
a configurable oversubscription ratio; a k-ary torus (the K computer
comparison in §6.1/§8.2) has a bisection that grows only as P^{(d-1)/d}.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

__all__ = ["FatTree", "Torus", "alltoall_contention"]


@dataclass(frozen=True)
class FatTree:
    """Two-level fat tree with *radix*-port leaf switches.

    ``oversubscription`` is the leaf downlink:uplink capacity ratio;
    1.0 means full bisection (no contention for uniform traffic).
    """

    radix: int = 36
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.radix < 2:
            raise ValueError("radix must be >= 2")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")

    def contention(self, nodes: int) -> float:
        """Fraction of injection bandwidth sustainable in an all-to-all."""
        if nodes <= self.radix // 2:
            return 1.0  # fits under one leaf switch: full crossbar
        return 1.0 / self.oversubscription

    def graph(self, nodes: int) -> nx.Graph:
        """Explicit switch/node graph (for diameter/path diagnostics)."""
        g = nx.Graph()
        down = max(1, self.radix // 2)
        n_leaves = math.ceil(nodes / down)
        up = max(1, int(round(down / self.oversubscription)))
        n_spines = max(1, up)
        for leaf in range(n_leaves):
            for spine in range(n_spines):
                g.add_edge(f"leaf{leaf}", f"spine{spine}")
        for node in range(nodes):
            g.add_edge(node, f"leaf{node // down}")
        return g


@dataclass(frozen=True)
class Torus:
    """d-dimensional torus (e.g. K computer's 6-D Tofu, modeled as 3-D)."""

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise ValueError("dims must be positive")

    @property
    def nodes(self) -> int:
        return math.prod(self.dims)

    def graph(self) -> nx.Graph:
        g = nx.grid_graph(dim=list(self.dims), periodic=True)
        return g

    def bisection_links(self) -> int:
        """Links crossing the balanced bisection (cut along longest dim)."""
        longest = max(self.dims)
        others = self.nodes // longest
        wrap = 2 if longest > 2 else 1
        return others * wrap

    def contention(self, nodes: int | None = None) -> float:
        """All-to-all injection efficiency: bisection-limited.

        In a uniform all-to-all, half of each node's traffic crosses the
        bisection, so sustainable injection per node is
        ``2 * bisection_links / nodes`` of a link rate (capped at 1).
        """
        n = self.nodes if nodes is None else nodes
        return min(1.0, 2.0 * self.bisection_links() / n)


def alltoall_contention(topology, nodes: int) -> float:
    """Uniform-traffic contention factor for any topology object."""
    return topology.contention(nodes)

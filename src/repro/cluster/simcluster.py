"""SimCluster: a deterministic stand-in for the paper's Stampede nodes.

A cluster is P ranks, each with a machine model and a simulated clock,
joined by a transport (plain :class:`~repro.cluster.network.NetworkSpec`
for Xeon nodes, :class:`~repro.cluster.proxy.ReverseProxy` for Xeon Phi
nodes in symmetric mode).  Compute kernels charge roofline time against a
rank's clock; collectives go through :class:`Communicator`.  The resulting
:class:`~repro.cluster.trace.Trace` feeds the Fig 8/9 benches.

An optional ``topology`` (a :class:`~repro.cluster.topology.FatTree` or
:class:`~repro.cluster.topology.Torus`) gives the cluster a physical
shape: its :attr:`SimCluster.domains` are the correlated-failure groups
consumed by :meth:`repro.cluster.faults.FaultPlan.fail_domain`,
domain-aware recovery placement, and the hierarchical two-level
all-to-all.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.communicator import Communicator
from repro.cluster.network import STAMPEDE_EFFECTIVE, NetworkSpec
from repro.cluster.pcie import PCIE_GEN2_X16, PcieSpec
from repro.cluster.trace import Trace
from repro.machine.roofline import KernelCost, kernel_time
from repro.machine.spec import XEON_PHI_SE10, MachineSpec
from repro.telemetry.metrics import MetricsRegistry, get_registry

__all__ = ["SimCluster"]


class SimCluster:
    """P simulated compute nodes with per-rank clocks and one transport.

    ``machines`` optionally overrides the node type per rank (heterogeneous
    clusters, §6.1/§7 hybrid mode); ``machine`` remains the default type
    and the value reported for homogeneous clusters.  ``metrics`` injects
    a :class:`~repro.telemetry.metrics.MetricsRegistry` for the cluster's
    instruments (wire bytes, retries, breaker transitions, rank
    failures); by default they land in the process-wide registry.
    """

    def __init__(self, n_ranks: int, machine: MachineSpec = XEON_PHI_SE10,
                 transport=STAMPEDE_EFFECTIVE,
                 machines: list[MachineSpec] | None = None,
                 pcie: PcieSpec = PCIE_GEN2_X16,
                 metrics: MetricsRegistry | None = None,
                 topology=None):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if machines is not None and len(machines) != n_ranks:
            raise ValueError("machines must list one spec per rank")
        self.n_ranks = n_ranks
        self.machine = machine
        self.machines = list(machines) if machines is not None \
            else [machine] * n_ranks
        self.transport = transport
        self.pcie = pcie
        self.metrics = get_registry() if metrics is None else metrics
        self.topology = topology
        self._domains = None
        self.clocks = [0.0] * n_ranks
        self.alive = [True] * n_ranks
        self.trace = Trace()
        self.comm = Communicator(self)

    def machine_of(self, rank: int) -> MachineSpec:
        """The node type of one rank."""
        return self.machines[rank]

    @property
    def domains(self):
        """Correlated-failure domains derived from ``topology`` (lazy).

        ``None`` when the cluster has no topology — callers then fall
        back to independent-failure assumptions and the flat all-to-all.
        """
        if self.topology is None:
            return None
        if self._domains is None:
            self._domains = self.topology.domains(self.n_ranks)
        return self._domains

    @property
    def recorder(self):
        """The span recorder behind the trace (hierarchical view)."""
        return self.trace.recorder

    # -- rank liveness -----------------------------------------------------

    @property
    def live_ranks(self) -> list[int]:
        """Ranks not declared dead, in rank order."""
        return [r for r in range(self.n_ranks) if self.alive[r]]

    @property
    def n_live(self) -> int:
        return sum(self.alive)

    def fail_rank(self, rank: int) -> None:
        """Declare one rank dead: its clock freezes where it is and the
        failure is stamped into the trace.  Idempotent.  Collectives over
        an explicit surviving subset (``ranks=...``) exclude dead ranks;
        the recovery paths in :mod:`repro.core.soi_dist` re-partition the
        dead rank's work across the survivors."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError("rank out of range")
        if not self.alive[rank]:
            return
        self.alive[rank] = False
        t = self.clocks[rank]
        self.trace.record(rank, "rank failure", "other", t, t)
        self.metrics.counter("repro_cluster_rank_failures_total",
                             "ranks declared dead").inc()

    # -- time accounting ---------------------------------------------------

    def charge_seconds(self, rank: int, label: str, seconds: float,
                       category: str = "compute") -> None:
        """Advance one rank's clock by a precomputed duration."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        t0 = self.clocks[rank]
        self.clocks[rank] = t0 + seconds
        self.trace.record(rank, label, category, t0, t0 + seconds)

    def charge_kernel(self, rank: int, label: str, cost: KernelCost, *,
                      compute_efficiency: float = 1.0,
                      bw_efficiency: float = 1.0) -> float:
        """Charge a roofline-timed kernel on one rank; returns the seconds."""
        t = kernel_time(cost, self.machine_of(rank),
                        compute_efficiency=compute_efficiency,
                        bw_efficiency=bw_efficiency)
        self.charge_seconds(rank, label, t)
        return t

    def charge_pcie(self, rank: int, label: str, nbytes: float) -> float:
        """Charge a host<->coprocessor DMA on one rank (offload mode)."""
        t = self.pcie.transfer_time(nbytes)
        t0 = self.clocks[rank]
        self.clocks[rank] = t0 + t
        self.trace.record(rank, label, "pcie", t0, t0 + t, int(nbytes))
        return t

    def charge_all(self, label: str, seconds: float, category: str = "compute"
                   ) -> None:
        """Charge the same duration on every rank (SPMD step)."""
        for r in range(self.n_ranks):
            self.charge_seconds(r, label, seconds, category)

    def charge_kernel_all(self, label: str, cost: KernelCost, *,
                          compute_efficiency: float = 1.0,
                          bw_efficiency: float = 1.0) -> float:
        """Charge the same roofline kernel on every rank."""
        t = kernel_time(cost, self.machine,
                        compute_efficiency=compute_efficiency,
                        bw_efficiency=bw_efficiency)
        self.charge_all(label, t)
        return t

    # -- results -------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Simulated wall time so far (slowest surviving rank)."""
        live = self.live_ranks
        return max(self.clocks[r] for r in live) if live else max(self.clocks)

    def breakdown(self) -> dict[str, float]:
        """Per-label time of the slowest-clock rank (Fig 9 style)."""
        slowest = int(np.argmax(self.clocks))
        return self.trace.breakdown_by_label(rank=slowest)

    def reset(self) -> None:
        """Zero clocks, liveness, and trace (keeps machine/transport/comm
        counters)."""
        self.clocks = [0.0] * self.n_ranks
        self.alive = [True] * self.n_ranks
        self.trace = Trace()

"""System noise and straggler injection for simulated clusters.

Bulk-synchronous codes amplify per-node performance variability: every
collective waits for the slowest rank (the paper's acknowledgements thank
the Stampede and Endeavor teams for "resolving cluster instability" —
noise is a real part of this story).  :class:`NoiseModel` perturbs the
compute charges of a :class:`~repro.cluster.simcluster.SimCluster`
deterministically (seeded), enabling controlled studies of how noise
hits the two algorithms: Cooley-Tukey synchronizes three times per
transform, SOI once — so SOI's makespan inflates less.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.simcluster import SimCluster

__all__ = ["NoiseModel", "expected_bsp_slowdown", "noisy_cluster"]


class NoiseModel:
    """Multiplicative per-charge compute noise plus optional stragglers.

    Each compute charge on rank r is scaled by
    ``1 + |N(0, jitter)| + (straggler_slowdown if r in stragglers)``.
    Communication charges are untouched (the fabric is shared and its
    model already averages).
    """

    def __init__(self, jitter: float = 0.05,
                 stragglers: dict[int, float] | None = None,
                 seed: int = 0):
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if stragglers:
            if any(s < 0 for s in stragglers.values()):
                raise ValueError("straggler slowdowns must be non-negative")
        self.jitter = jitter
        self.stragglers = dict(stragglers or {})
        self._rng = np.random.default_rng(seed)

    def factor(self, rank: int) -> float:
        """Sampled slowdown multiplier for one charge on *rank* (>= 1)."""
        f = 1.0 + abs(self._rng.normal(0.0, self.jitter))
        f += self.stragglers.get(rank, 0.0)
        return f


def noisy_cluster(cluster: SimCluster, noise: NoiseModel) -> SimCluster:
    """Wrap *cluster* so compute charges pass through the noise model.

    Patching happens on the instance, so the cluster object keeps its
    identity (communicator, trace, clocks all intact).
    """
    original = cluster.charge_seconds

    def charge_seconds(rank: int, label: str, seconds: float,
                       category: str = "compute") -> None:
        if category == "compute":
            seconds = seconds * noise.factor(rank)
        original(rank, label, seconds, category)

    cluster.charge_seconds = charge_seconds  # type: ignore[method-assign]
    return cluster


def expected_bsp_slowdown(n_ranks: int, jitter: float,
                          n_barriers: int, samples: int = 2000,
                          seed: int = 1) -> float:
    """Monte-Carlo estimate of makespan inflation from BSP max-of-ranks.

    Each superstep's duration is the max over ranks of ``1 + |N(0, j)|``;
    more barriers per transform (CT's 3 vs SOI's 1) means more max-taking
    and a larger expected inflation.
    """
    if n_ranks < 1 or n_barriers < 1:
        raise ValueError("need at least one rank and one barrier")
    rng = np.random.default_rng(seed)
    draws = 1.0 + np.abs(rng.normal(0.0, jitter,
                                    size=(samples, n_barriers, n_ranks)))
    per_step_max = draws.max(axis=2)  # (samples, n_barriers)
    return float(per_step_max.mean())

"""Message integrity checking — deprecation shims over :mod:`faults`.

This module used to carry its own checksum wrapper and ad-hoc payload
injector.  Both are now thin shims over the unified fault layer
(:mod:`repro.cluster.faults` + the communicator's verified collective
path), kept so existing call sites and tests continue to work:

* :func:`checksummed_cluster` installs a detect-only
  :class:`~repro.cluster.faults.FaultPlan` (``max_retries = 0``) on the
  communicator — but now *every* collective is verified, not just the
  all-to-all (``barrier``/``bcast`` previously bypassed the checksum
  layer entirely).
* :class:`FaultInjector` builds the equivalent plan from the legacy
  ``corrupt_nth`` argument.  Note the unified layer counts **all** wire
  payloads (ghost exchanges, broadcasts, ...) in its message index, where
  the old injector saw only all-to-all payloads.

New code should construct a :class:`~repro.cluster.faults.FaultPlan` and
call :func:`~repro.cluster.faults.chaos_cluster` (or
``cluster.comm.install_faults``) directly.
"""

from __future__ import annotations

import warnings

from repro.cluster.faults import (
    CorruptionDetected,
    FaultPlan,
    RetryPolicy,
    checksum,
)
from repro.cluster.simcluster import SimCluster

__all__ = ["CorruptionDetected", "FaultInjector", "checksum",
           "checksummed_cluster"]


class FaultInjector:
    """Deprecated: corrupts the k-th wire payload (``corrupt_nth``).

    Shim over :class:`~repro.cluster.faults.FaultPlan`; the ``seen`` and
    ``injected`` counters mirror the plan's runtime statistics.
    """

    def __init__(self, corrupt_nth: int | None = None):
        warnings.warn(
            "FaultInjector is deprecated; build a "
            "repro.cluster.faults.FaultPlan(corrupt_messages=...) and "
            "install it with chaos_cluster() or comm.install_faults()",
            DeprecationWarning, stacklevel=2)
        self.corrupt_nth = corrupt_nth
        self.plan = FaultPlan(
            corrupt_messages=(corrupt_nth,) if corrupt_nth else ())

    @property
    def seen(self) -> int:
        return self.plan.messages_seen

    @property
    def injected(self) -> int:
        return self.plan.corruptions_injected


def checksummed_cluster(cluster: SimCluster,
                        injector: FaultInjector | None = None) -> SimCluster:
    """Deprecated: wrap a cluster's collectives with checksum verification.

    Detect-only mode (no retries): the first corrupted payload raises
    :class:`~repro.cluster.faults.CorruptionDetected` naming the damaged
    route, exactly as before — except the verification now covers all
    collectives through the communicator's single verified path.
    """
    warnings.warn(
        "checksummed_cluster is deprecated; every collective already runs "
        "through the communicator's verified path once a FaultPlan is "
        "installed — use repro.cluster.faults.chaos_cluster()",
        DeprecationWarning, stacklevel=2)
    plan = injector.plan if injector is not None else FaultPlan()
    cluster.comm.install_faults(plan, RetryPolicy(max_retries=0))
    return cluster

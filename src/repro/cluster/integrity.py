"""Message integrity checking and fault injection.

Large clusters corrupt data in flight more often than anyone likes (the
paper's acknowledgements credit the Stampede/Endeavor teams with
"resolving cluster instability in early installations of new hardware").
This module adds an end-to-end integrity layer over the simulated
transport — checksums computed at the sender and verified at the receiver
— plus a deterministic fault injector that flips payload bits in transit,
so the detection machinery is *tested*, not assumed.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.cluster.simcluster import SimCluster

__all__ = ["CorruptionDetected", "FaultInjector", "checksum",
           "checksummed_cluster"]


class CorruptionDetected(RuntimeError):
    """An in-flight payload failed its checksum at the receiver."""


def checksum(a: np.ndarray) -> int:
    """CRC32 of an array's raw bytes (cheap, order-sensitive)."""
    return zlib.crc32(np.ascontiguousarray(a).tobytes())


class FaultInjector:
    """Deterministically corrupts the k-th wire payload it sees.

    ``corrupt_nth`` counts only non-self messages, in (src, dst) scan
    order across all collectives on the wrapped cluster.
    """

    def __init__(self, corrupt_nth: int | None = None):
        self.corrupt_nth = corrupt_nth
        self.seen = 0
        self.injected = 0

    def maybe_corrupt(self, payload: np.ndarray) -> np.ndarray:
        self.seen += 1
        if self.corrupt_nth is not None and self.seen == self.corrupt_nth \
                and payload.size:
            bad = payload.copy()
            flat = bad.reshape(-1)
            flat[0] = flat[0] + (1.0 + 1.0j)  # a flipped mantissa, in spirit
            self.injected += 1
            return bad
        return payload


def checksummed_cluster(cluster: SimCluster,
                        injector: FaultInjector | None = None) -> SimCluster:
    """Wrap a cluster's all-to-all with checksum verification.

    Each non-self block is checksummed before the exchange and verified
    after; an :class:`injector <FaultInjector>` (if given) tampers with
    payloads in between, emulating in-flight corruption.  Raises
    :class:`CorruptionDetected` naming the damaged route.
    """
    comm = cluster.comm
    original = comm.alltoall

    def alltoall(sendbufs, label="all-to-all"):
        p = len(sendbufs)
        sums = {}
        for src in range(p):
            for dst in range(p):
                if src != dst:
                    sums[(src, dst)] = checksum(np.asarray(sendbufs[src][dst]))
        recv = original(sendbufs, label=label)
        for dst in range(p):
            for src in range(p):
                if src == dst:
                    continue
                payload = recv[dst][src]
                if injector is not None:
                    payload = injector.maybe_corrupt(payload)
                    recv[dst][src] = payload
                if checksum(np.asarray(payload)) != sums[(src, dst)]:
                    raise CorruptionDetected(
                        f"payload {src}->{dst} failed its checksum in "
                        f"'{label}'")
        return recv

    comm.alltoall = alltoall  # type: ignore[method-assign]
    return cluster

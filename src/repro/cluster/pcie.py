"""PCIe link model with chunked pipelining (paper §5.1, §7).

Each compute node couples the host Xeon and the Xeon Phi card over PCIe
(~6 GB/s sustained).  The paper hides PCIe transfer time behind InfiniBand
transfers by splitting application data into chunks and pipelining; chunk
size "is appropriately chosen to balance the latency and throughput".
:func:`pipeline_makespan` computes the makespan of such a multi-stage
chunked pipeline exactly, which both the reverse proxy (symmetric mode)
and the offload-mode model build on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PcieSpec", "pipeline_makespan", "PCIE_GEN2_X16"]


@dataclass(frozen=True)
class PcieSpec:
    """Host <-> coprocessor link."""

    bandwidth_gbps: float = 6.0
    latency_us: float = 10.0  # DMA setup + doorbell per chunk

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_us < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, nbytes: float) -> float:
        """Seconds for one DMA of *nbytes* (0 bytes costs nothing)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbps * 1e9)


def pipeline_makespan(stage_chunk_times: list[list[float]]) -> float:
    """Makespan of a linear pipeline given per-stage, per-chunk times.

    ``stage_chunk_times[s][c]`` is the service time of chunk *c* on stage
    *s*.  Stages process chunks in order; a chunk enters stage s+1 only
    after it finishes stage s, and each stage serves one chunk at a time.
    This is the standard flow-shop recurrence:

    ``done[s][c] = max(done[s-1][c], done[s][c-1]) + t[s][c]``
    """
    if not stage_chunk_times:
        return 0.0
    n_stages = len(stage_chunk_times)
    n_chunks = len(stage_chunk_times[0])
    if any(len(st) != n_chunks for st in stage_chunk_times):
        raise ValueError("all stages must have the same number of chunks")
    prev = [0.0] * (n_chunks + 1)
    for s in range(n_stages):
        cur = [0.0] * (n_chunks + 1)
        for c in range(1, n_chunks + 1):
            cur[c] = max(prev[c], cur[c - 1]) + stage_chunk_times[s][c - 1]
        prev = cur
    return prev[n_chunks]


#: Default link matching the paper's Table 3 ("Pcie bw 6 gb/s").
PCIE_GEN2_X16 = PcieSpec(bandwidth_gbps=6.0, latency_us=10.0)

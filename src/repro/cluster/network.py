"""Interconnect cost model: latency + message-length-dependent bandwidth.

The paper's scaling story rests on two network effects:

* an all-to-all moves ``16*N/P`` bytes in and out of every node, so its
  time is ``16*N / bw_mpi`` with ``bw_mpi = P * per-node bandwidth`` (§4);
* in weak scaling, per-pair message length shrinks like ``1/P``, and
  "shorter packets in large clusters ... is a challenge for sustaining a
  high mpi bandwidth" (§6.1) — which is why they drop from 8 to 2 segments
  per process at 512 nodes.

We model the effective per-node bandwidth with the classic ramp
``bw_eff(m) = bw_peak * m / (m + m_half)`` (equivalent to a fixed per-
message overhead), plus an explicit per-message latency term, and an
optional topology contention factor (see :mod:`repro.cluster.topology`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["NetworkSpec", "FDR_INFINIBAND", "STAMPEDE_EFFECTIVE"]


@dataclass(frozen=True)
class NetworkSpec:
    """Per-node interconnect characteristics."""

    name: str
    bandwidth_gbps: float  # peak achievable per-node bandwidth, GB/s
    latency_us: float = 2.0  # per-message latency
    half_bandwidth_msg_bytes: float = 64 * 1024  # msg size reaching bw/2
    contention: Callable[[int], float] | None = None  # P -> factor in (0, 1]

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_us < 0 or self.half_bandwidth_msg_bytes < 0:
            raise ValueError("latency and half-bandwidth size must be >= 0")

    # -- point-to-point ---------------------------------------------------

    def effective_bandwidth(self, msg_bytes: float, nodes: int = 2) -> float:
        """Realized per-node bandwidth (GB/s) for messages of *msg_bytes*."""
        if msg_bytes <= 0:
            return self.bandwidth_gbps
        ramp = msg_bytes / (msg_bytes + self.half_bandwidth_msg_bytes)
        cont = self.contention(nodes) if self.contention is not None else 1.0
        if not 0.0 < cont <= 1.0:
            raise ValueError("contention factor must be in (0, 1]")
        return self.bandwidth_gbps * ramp * cont

    def message_time(self, nbytes: float, nodes: int = 2) -> float:
        """Seconds for one point-to-point message of *nbytes*."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return self.latency_us * 1e-6
        bw = self.effective_bandwidth(nbytes, nodes)
        return self.latency_us * 1e-6 + nbytes / (bw * 1e9)

    # -- collectives ------------------------------------------------------

    def alltoall_time(self, nodes: int, bytes_per_pair: float) -> float:
        """Seconds for an all-to-all with *bytes_per_pair* per (src, dst).

        Each node injects (nodes-1) messages; with full-duplex links and a
        balanced schedule the bottleneck is per-node injection bandwidth at
        the realized (packet-length dependent) rate, plus one latency per
        peer.
        """
        if nodes < 1:
            raise ValueError("need at least one node")
        if nodes == 1 or bytes_per_pair == 0:
            return 0.0
        bw = self.effective_bandwidth(bytes_per_pair, nodes)
        vol = (nodes - 1) * bytes_per_pair
        return (nodes - 1) * self.latency_us * 1e-6 + vol / (bw * 1e9)

    def ring_exchange_time(self, nbytes: float, nodes: int = 2) -> float:
        """Nearest-neighbor (ghost) exchange: both directions in parallel."""
        return self.message_time(nbytes, nodes)

    def aggregate_alltoall_bandwidth(self, nodes: int, bytes_per_pair: float) -> float:
        """bw_mpi of the paper's §4 model: aggregate GB/s during all-to-all."""
        t = self.alltoall_time(nodes, bytes_per_pair)
        if t == 0.0:
            return float("inf")
        return nodes * (nodes - 1) * bytes_per_pair / t / 1e9


#: Paper §4 planning number: ~3 GB/s effective per-node MPI bandwidth on
#: Stampede's FDR InfiniBand fat tree.
STAMPEDE_EFFECTIVE = NetworkSpec(
    name="Stampede FDR IB (effective)",
    bandwidth_gbps=3.0,
    latency_us=2.0,
    half_bandwidth_msg_bytes=64 * 1024,
)

#: Nominal FDR InfiniBand 4x link (56 Gb/s signalling, ~6 GB/s realizable).
FDR_INFINIBAND = NetworkSpec(
    name="FDR InfiniBand 4x",
    bandwidth_gbps=6.0,
    latency_us=1.5,
    half_bandwidth_msg_bytes=64 * 1024,
)

"""The only doorway between ranks of a simulated cluster.

Distributed algorithms in this library are written phase-structured: each
rank's data lives in its own NumPy buffers, and *every* inter-rank byte
must pass through a :class:`Communicator` collective.  The communicator
really moves the bytes (copies between per-rank arrays) and charges
simulated time from the transport model, so communication volume, message
counts, and packet sizes are exact — which is what the paper's
communication-cost arguments are about.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Communicator"]


def _nbytes(a: np.ndarray) -> int:
    return int(np.asarray(a).nbytes)


class Communicator:
    """Collective operations over the ranks of a SimCluster."""

    def __init__(self, cluster) -> None:
        self._cluster = cluster
        self.message_count = 0
        self.bytes_moved = 0

    @property
    def size(self) -> int:
        return self._cluster.n_ranks

    # -- internals --------------------------------------------------------

    def _collective(self, label: str, duration: float, nbytes_per_rank: list[int],
                    category: str = "mpi") -> None:
        """Synchronize all clocks, advance them by *duration*, trace it."""
        cl = self._cluster
        start = max(cl.clocks)
        for r in range(self.size):
            cl.clocks[r] = start + duration
            cl.trace.record(r, label, category, start, start + duration,
                            nbytes_per_rank[r])

    # -- collectives --------------------------------------------------------

    def alltoall(self, sendbufs: list[list[np.ndarray]], label: str = "alltoall"
                 ) -> list[list[np.ndarray]]:
        """Personalized all-to-all: ``recv[dst][src] = send[src][dst]``.

        *sendbufs* is a P-by-P nested list of arrays (row = source rank).
        Returns the P-by-P received layout.  Self-messages are local copies
        and do not count toward wire traffic.
        """
        p = self.size
        if len(sendbufs) != p or any(len(row) != p for row in sendbufs):
            raise ValueError(f"sendbufs must be {p}x{p}")
        recv = [[np.array(sendbufs[src][dst], copy=True) for src in range(p)]
                for dst in range(p)]
        wire_bytes = [sum(_nbytes(sendbufs[src][dst]) for dst in range(p) if dst != src)
                      for src in range(p)]
        pair_sizes = [_nbytes(sendbufs[src][dst])
                      for src in range(p) for dst in range(p) if src != dst]
        bytes_per_pair = float(np.mean(pair_sizes)) if pair_sizes else 0.0
        duration = self._cluster.transport.alltoall_time(p, bytes_per_pair)
        self.message_count += p * (p - 1)
        self.bytes_moved += sum(wire_bytes)
        self._collective(label, duration, wire_bytes)
        return recv

    def ring_exchange(self, to_left: list[np.ndarray], to_right: list[np.ndarray],
                      label: str = "ghost exchange"
                      ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Bidirectional nearest-neighbor exchange on a ring.

        Rank r sends ``to_left[r]`` to rank r-1 and ``to_right[r]`` to rank
        r+1 (periodic).  Returns ``(from_left, from_right)`` where
        ``from_left[r]`` is what rank r-1 sent right, and ``from_right[r]``
        is what rank r+1 sent left — i.e. the ghost halos of rank r.
        """
        p = self.size
        if len(to_left) != p or len(to_right) != p:
            raise ValueError("need one send buffer per rank in each direction")
        from_left = [np.array(to_right[(r - 1) % p], copy=True) for r in range(p)]
        from_right = [np.array(to_left[(r + 1) % p], copy=True) for r in range(p)]
        per_rank = [_nbytes(to_left[r]) + _nbytes(to_right[r]) for r in range(p)]
        if p == 1:
            duration = 0.0
        else:
            msg = max(max(_nbytes(a) for a in to_left),
                      max(_nbytes(a) for a in to_right))
            duration = self._cluster.transport.ring_exchange_time(msg, p)
        self.message_count += 2 * p if p > 1 else 0
        self.bytes_moved += sum(per_rank) if p > 1 else 0
        self._collective(label, duration, per_rank)
        return from_left, from_right

    def allgather(self, sendbufs: list[np.ndarray], label: str = "allgather"
                  ) -> list[list[np.ndarray]]:
        """Every rank receives every rank's buffer (returned per dest rank)."""
        p = self.size
        if len(sendbufs) != p:
            raise ValueError("need one send buffer per rank")
        gathered = [np.array(b, copy=True) for b in sendbufs]
        out = [[np.array(g, copy=True) for g in gathered] for _ in range(p)]
        per_rank = [(p - 1) * _nbytes(sendbufs[r]) for r in range(p)]
        msg = max((_nbytes(b) for b in sendbufs), default=0)
        duration = self._cluster.transport.message_time(msg, p) * max(0, p - 1) \
            if p > 1 else 0.0
        self.message_count += p * (p - 1)
        self.bytes_moved += sum(per_rank) if p > 1 else 0
        self._collective(label, duration, per_rank)
        return out

    def bcast(self, buf: np.ndarray, root: int = 0, label: str = "bcast"
              ) -> list[np.ndarray]:
        """Broadcast *buf* from *root*; returns one copy per rank."""
        p = self.size
        if not 0 <= root < p:
            raise ValueError("root out of range")
        out = [np.array(buf, copy=True) for _ in range(p)]
        nb = _nbytes(buf)
        # binomial tree: ceil(log2 P) rounds
        rounds = int(np.ceil(np.log2(p))) if p > 1 else 0
        duration = rounds * self._cluster.transport.message_time(nb, p)
        per_rank = [nb if r != root else nb * (p - 1) for r in range(p)]
        self.message_count += max(0, p - 1)
        self.bytes_moved += nb * max(0, p - 1)
        self._collective(label, duration, per_rank)
        return out

    def barrier(self, label: str = "barrier") -> None:
        """Synchronize clocks (no data movement)."""
        self._collective(label, 0.0, [0] * self.size, category="other")

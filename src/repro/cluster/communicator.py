"""The only doorway between ranks of a simulated cluster.

Distributed algorithms in this library are written phase-structured: each
rank's data lives in its own NumPy buffers, and *every* inter-rank byte
must pass through a :class:`Communicator` collective.  The communicator
really moves the bytes (copies between per-rank arrays) and charges
simulated time from the transport model, so communication volume, message
counts, and packet sizes are exact — which is what the paper's
communication-cost arguments are about.

All five collectives execute through one verified path.  When a
:class:`~repro.cluster.faults.FaultPlan` is installed (see
:meth:`Communicator.install_faults`), every non-self payload is
checksummed at the sender and verified at the receiver, the plan may
tamper with payloads or make ranks unresponsive in between, and detected
faults trigger retry with exponential backoff: the failed attempt is
charged normally, the backoff wait and the re-flown transfer are charged
under the ``"retry"`` trace category, and a rank that stays unresponsive
past :attr:`~repro.cluster.faults.RetryPolicy.max_retries` is declared
dead (:class:`~repro.cluster.faults.RankFailed`) for the algorithm layer
to shrink around.

Two per-request hooks plug into the same path (both duck-typed, so this
module never imports :mod:`repro.resilience`):

* :meth:`Communicator.install_deadline` arms stage-boundary deadline
  enforcement — every collective checks the deadline at entry and before
  each retry, and charges its duration (attempts, backoff waits) to the
  request's budget;
* :meth:`Communicator.install_breakers` arms per-link circuit breakers —
  repeated failures on one directed link trip it open, after which
  collectives touching the link fail fast (escalating immediately
  instead of burning the retry budget), with state transitions stamped
  into the trace as zero-duration ``"other"`` events.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cluster.faults import (
    CorruptionDetected,
    FaultPlan,
    PartitionDetected,
    RankFailed,
    RetriesExhausted,
    RetryPolicy,
    checksum,
)
from repro.telemetry.metrics import NULL_REGISTRY

__all__ = ["Communicator"]


def _nbytes(a: np.ndarray) -> int:
    return int(np.asarray(a).nbytes)


class _Route:
    """One non-self wire payload inside a collective attempt."""

    __slots__ = ("src", "dst", "get", "set")

    def __init__(self, src: int, dst: int, get: Callable[[], np.ndarray],
                 set_: Callable[[np.ndarray], None]):
        self.src = src
        self.dst = dst
        self.get = get
        self.set = set_


class Communicator:
    """Collective operations over the ranks of a SimCluster."""

    def __init__(self, cluster) -> None:
        self._cluster = cluster
        self.message_count = 0
        self.bytes_moved = 0
        self.retry_count = 0
        self._plan: FaultPlan | None = None
        self._policy = RetryPolicy()
        self._deadline = None  # duck-typed: .check(stage), .charge(k, s)
        self._breakers = None  # duck-typed: a BreakerBoard
        # registry instruments (no-ops when the cluster's registry is
        # disabled, so the hot collective path stays branch-free)
        reg = getattr(cluster, "metrics", None) or NULL_REGISTRY
        self._m_bytes = reg.counter(
            "repro_cluster_wire_bytes_total",
            "payload bytes that crossed the simulated wire")
        self._m_messages = reg.counter(
            "repro_cluster_wire_messages_total",
            "point-to-point messages inside collectives")
        self._m_retries = reg.counter(
            "repro_cluster_retries_total",
            "collective attempts re-flown after detected faults")
        self._m_breaker_transitions = reg.counter(
            "repro_cluster_breaker_transitions_total",
            "circuit-breaker state changes on directed links")
        self._m_link_faults = reg.counter(
            "repro_cluster_link_faults_total",
            "payloads lost to degraded or flapping links")
        self._m_partition_stalls = reg.counter(
            "repro_cluster_partition_stalls_total",
            "collective attempts stalled on a fabric partition")

    @property
    def size(self) -> int:
        return self._cluster.n_ranks

    # -- fault layer --------------------------------------------------------

    def install_faults(self, plan: FaultPlan,
                       policy: RetryPolicy | None = None) -> None:
        """Arm the verified path: checksums, the plan's faults, retries."""
        self._plan = plan
        if policy is not None:
            self._policy = policy

    def clear_faults(self) -> None:
        self._plan = None
        self._policy = RetryPolicy()

    @property
    def fault_plan(self) -> FaultPlan | None:
        return self._plan

    @property
    def retry_policy(self) -> RetryPolicy:
        return self._policy

    # -- per-request resilience hooks ---------------------------------------

    def install_deadline(self, deadline) -> None:
        """Arm per-request deadline enforcement on every collective.

        *deadline* is duck-typed (``check(stage)`` raising on expiry,
        ``charge(purpose, seconds)``) so the resilience layer stays
        import-free from here; pass ``None`` to restore a previous
        deadline when nesting.
        """
        self._deadline = deadline

    def clear_deadline(self) -> None:
        self._deadline = None

    @property
    def deadline(self):
        return self._deadline

    def install_breakers(self, board) -> None:
        """Arm per-link circuit breakers (a ``BreakerBoard``) on the
        verified path.  Shared across requests by the serving layer."""
        self._breakers = board

    def clear_breakers(self) -> None:
        self._breakers = None

    @property
    def breakers(self):
        return self._breakers

    # -- internals --------------------------------------------------------

    def _collective(self, label: str, duration: float,
                    nbytes_by_rank: dict[int, int], category: str = "mpi",
                    participants: list[int] | None = None) -> None:
        """Synchronize participants' clocks, advance by *duration*, trace."""
        cl = self._cluster
        ranks = participants if participants is not None \
            else list(range(self.size))
        start = max(cl.clocks[r] for r in ranks)
        for r in ranks:
            cl.clocks[r] = start + duration
            cl.trace.record(r, label, category, start, start + duration,
                            nbytes_by_rank.get(r, 0))

    def _deliver(self, label: str, execute: Callable, *, duration: float,
                 nbytes_by_rank: dict[int, int], participants: list[int],
                 n_wire_messages: int, wire_bytes: int,
                 category: str = "mpi"):
        """Run one collective through the verified/retry path.

        *execute* performs the data movement and returns ``(result,
        routes)`` — it is re-invoked for every attempt, so retries really
        re-fly the wire.  Without an installed plan this is a single
        charged attempt with no checksum overhead.
        """
        plan, policy = self._plan, self._policy
        deadline, board = self._deadline, self._breakers
        if deadline is not None:
            deadline.check(label)
        if board is not None:
            self._fail_fast_on_open_links(label, participants, plan)
        result, routes = execute()
        self.message_count += n_wire_messages
        self.bytes_moved += wire_bytes
        self._m_messages.inc(n_wire_messages)
        self._m_bytes.inc(wire_bytes)
        if plan is None:
            self._collective(label, duration, nbytes_by_rank, category,
                             participants)
            if deadline is not None:
                deadline.charge(category, duration)
            return result

        slowdown = 1.0
        if plan.degraded_links:
            # a synchronized collective runs at its slowest link's pace
            slowdown = plan.link_slowdown(
                {(r.src, r.dst) for r in routes})
        attempt = 0
        while True:
            dead = plan.begin_transfer() & set(participants)
            failures: list[tuple[int, int, str]] = []
            check_links = plan.has_link_faults
            for route in routes:
                payload = route.get()
                ref = checksum(payload)  # sender-side checksum
                tampered, fault = plan.apply(payload)
                if route.src in dead or route.dst in dead:
                    failures.append((route.src, route.dst, "unresponsive"))
                    continue
                if fault == "timeout":
                    failures.append((route.src, route.dst, "timeout"))
                    continue
                if check_links and fault is None:
                    # correlated link behavior: partitions, flaps, loss
                    fault = plan.link_fault(route.src, route.dst)
                    if fault is not None:
                        if fault != "partitioned":
                            self._m_link_faults.inc()
                        failures.append((route.src, route.dst, fault))
                        continue
                if tampered is not payload:
                    route.set(tampered)
                    payload = tampered
                if checksum(payload) != ref:
                    failures.append((route.src, route.dst, "corrupt"))
            if not routes and dead:
                # route-free collectives (barrier) still detect dead ranks
                failures = [(r, r, "unresponsive") for r in sorted(dead)]

            stalled = any(kind != "corrupt" for _, _, kind in failures)
            partitioned = any(kind == "partitioned"
                              for _, _, kind in failures)
            att_duration = duration * slowdown + \
                (policy.timeout_seconds if stalled else 0.0)
            att_category = category if attempt == 0 else "retry"
            if partitioned:
                # a cut fabric is a different beast from a flaky link:
                # stall time is charged to its own trace category
                att_category = "partition"
                self._m_partition_stalls.inc()
            self._collective(label, att_duration, nbytes_by_rank,
                             att_category, participants)
            if deadline is not None:
                deadline.charge(att_category, att_duration)
            tripped = False
            if board is not None:
                tripped = self._record_on_board(routes, failures, dead,
                                                participants)
            if not failures:
                return result

            if tripped or attempt >= policy.max_retries:
                # A link just tripped open (stop burning retries on it)
                # or the policy's retry budget is spent: escalate.
                exc, cause = self._escalate(label, failures, dead,
                                            attempt + 1, plan,
                                            participants)
                if cause is not None:
                    raise exc from cause
                raise exc

            backoff = policy.backoff(attempt)
            if backoff > 0:
                wait_cat = "partition" if partitioned else "retry"
                self._collective(f"{label} (backoff)", backoff, {},
                                 wait_cat, participants)
                if deadline is not None:
                    deadline.charge(wait_cat, backoff)
            if deadline is not None:
                deadline.check(f"{label} (retry)")
            self.retry_count += 1
            self.message_count += n_wire_messages
            self.bytes_moved += wire_bytes
            self._m_retries.inc()
            self._m_messages.inc(n_wire_messages)
            self._m_bytes.inc(wire_bytes)
            result, routes = execute()  # the retry re-flies the data
            attempt += 1

    def _escalate(self, label: str, failures: list[tuple[int, int, str]],
                  dead: set[int], attempts: int, plan: FaultPlan | None,
                  participants: list[int] | None = None
                  ) -> tuple[Exception, Exception | None]:
        """Map persistent route failures to the exception to raise.

        Returns ``(exception, cause)``; the cause (the underlying timeout
        or checksum mismatch) is chained with ``raise ... from`` so the
        algorithm layer sees *why* the collective was given up on.
        """
        partitioned = [(s, d) for s, d, kind in failures
                       if kind == "partitioned"]
        if partitioned:
            # liveness signal: the persistent failures are exactly the
            # cross-component routes of an active partition event
            comps = plan.partition_components(participants) \
                if plan is not None else ()
            src, dst = partitioned[0]
            sizes = "+".join(str(len(c)) for c in comps)
            return PartitionDetected(
                f"fabric partitioned ({sizes}) in '{label}': "
                f"{len(partitioned)} route(s) (first {src}->{dst}) "
                f"dead across the cut after {attempts} attempt(s)",
                components=comps), TimeoutError(
                    f"route {src}->{dst} crosses the partition cut")
        unresponsive = sorted(
            r for s, d, kind in failures if kind == "unresponsive"
            for r in (s, d) if r in dead)
        if unresponsive:
            rank = unresponsive[0]
            self._cluster.fail_rank(rank)
            if plan is not None:
                plan.failed_ranks_declared.append(rank)
            cause = TimeoutError(
                f"rank {rank} stopped acknowledging transfers")
            return RankFailed(
                rank, f"rank {rank} unresponsive in '{label}' "
                      f"after {attempts} attempt(s)"), cause
        src, dst, kind = failures[0]
        if kind == "corrupt":
            return CorruptionDetected(
                f"payload {src}->{dst} failed its checksum in "
                f"'{label}' after {attempts} attempt(s)"), None
        n_corrupt = sum(1 for _, _, k in failures if k == "corrupt")
        cause: Exception = CorruptionDetected(
            f"{n_corrupt} payload(s) also failed checksums") if n_corrupt \
            else TimeoutError(f"transfer {src}->{dst} timed out")
        return RetriesExhausted(
            f"'{label}' still timing out after "
            f"{attempts} attempt(s)"), cause

    # -- circuit-breaker plumbing -------------------------------------------

    def _stamp_breaker_transitions(self) -> None:
        """Record drained breaker state changes as zero-duration events."""
        for tr in self._breakers.drain_transitions():
            self._cluster.trace.record(
                tr.src, f"breaker {tr.old}->{tr.new} [{tr.src}->{tr.dst}]",
                "other", tr.at, tr.at)
            self._m_breaker_transitions.inc()

    def _record_on_board(self, routes, failures, dead: set[int],
                         participants: list[int]) -> bool:
        """Feed one attempt's outcome to the breaker board.

        Returns True if any link tripped open on this attempt.  Routes
        that flew clean count as successes (closing half-open breakers);
        each failure counts against its directed link, with the dead
        endpoint remembered as the suspect for fast declaration.
        """
        board, cl = self._breakers, self._cluster
        now = max(cl.clocks[r] for r in participants)
        failed_links = {(s, d) for s, d, _ in failures}
        tripped = False
        for s, d, kind in failures:
            suspect = None
            if kind == "unresponsive":
                suspect = s if s in dead else d
            if board.record_failure(s, d, kind, suspect=suspect, now=now):
                tripped = True
        for route in routes:
            if (route.src, route.dst) not in failed_links:
                board.record_success(route.src, route.dst, now=now)
        self._stamp_breaker_transitions()
        return tripped

    def _fail_fast_on_open_links(self, label: str, participants: list[int],
                                 plan: FaultPlan | None) -> None:
        """Short-circuit a collective touching an open (uncooled) link.

        Raises the same exception the retry path would eventually reach,
        without re-burning the retry budget: an unresponsive suspect is
        declared dead on the spot (handing the algorithm layer straight
        to its shrink-and-recover path), corrupt links raise
        :class:`CorruptionDetected`, timing-out links
        :class:`RetriesExhausted`.  Cooled-down links transition to
        half-open inside ``blocking`` and let this attempt through as
        their trial.
        """
        board, cl = self._breakers, self._cluster
        now = max(cl.clocks[r] for r in participants)
        blocked = board.blocking(participants, now)
        self._stamp_breaker_transitions()
        if not blocked:
            return
        board.fast_failures += 1
        src, dst, brk = blocked[0]
        kind = brk.last_kind or "timeout"
        if kind == "partitioned":
            # breaker signal: links that tripped on cross-cut routes fail
            # the collective fast with the same census the retry path
            # would eventually produce
            comps = plan.partition_components(participants) \
                if plan is not None else ()
            sizes = "+".join(str(len(c)) for c in comps)
            raise PartitionDetected(
                f"open breaker on link {src}->{dst}: fabric partitioned "
                f"({sizes}), failing '{label}' fast",
                components=comps) from TimeoutError(
                    f"link {src}->{dst} tripped across the partition cut")
        if kind == "unresponsive":
            rank = brk.suspect_rank if brk.suspect_rank is not None else src
            self._cluster.fail_rank(rank)
            if plan is not None and rank not in plan.failed_ranks_declared:
                plan.failed_ranks_declared.append(rank)
            raise RankFailed(
                rank, f"open breaker on link {src}->{dst}: rank {rank} "
                      f"declared failed without retrying '{label}'") \
                from TimeoutError(
                    f"link {src}->{dst} tripped after repeated "
                    f"unresponsive transfers")
        if kind == "corrupt":
            raise CorruptionDetected(
                f"open breaker on link {src}->{dst}: failing '{label}' "
                f"fast after repeated checksum failures")
        raise RetriesExhausted(
            f"open breaker on link {src}->{dst}: failing '{label}' fast "
            f"after repeated timeouts") from TimeoutError(
                f"link {src}->{dst} tripped after repeated timeouts")

    @staticmethod
    def _resolve(ranks: list[int] | None, size: int) -> list[int]:
        if ranks is None:
            return list(range(size))
        if len(set(ranks)) != len(ranks) or not ranks:
            raise ValueError("ranks must be a non-empty list of distinct "
                             "rank ids")
        if any(not 0 <= r < size for r in ranks):
            raise ValueError("rank id out of range")
        return list(ranks)

    # -- collectives --------------------------------------------------------

    def alltoall(self, sendbufs: list[list[np.ndarray]],
                 label: str = "alltoall",
                 ranks: list[int] | None = None,
                 groups: list[list[int]] | None = None
                 ) -> list[list[np.ndarray]]:
        """Personalized all-to-all: ``recv[dst][src] = send[src][dst]``.

        *sendbufs* is a q-by-q nested list of arrays (row = source rank)
        where q is the number of participants — all ranks by default, or
        the subset *ranks* (a shrunken communicator, MPI
        ``Comm_shrink``-style, indexed in participant order).  Self-
        messages are local copies and do not count toward wire traffic.

        *groups*, a partition of the participants into equal-size groups
        by topology distance (e.g. the fabric's fault domains), selects
        the **hierarchical two-level exchange**: an intra-group
        all-to-all aggregating each member's blocks by destination local
        index, then one inter-group exchange per local index moving the
        aggregates between groups.  Each rank sends ``(m-1) + (G-1)``
        messages instead of ``q-1`` — the latency collapse that keeps
        10^3–10^4-rank exchanges tractable — and a failing group maps
        onto exactly one intra-group collective.  Results are bitwise
        identical to the flat exchange.
        """
        parts = self._resolve(ranks, self.size)
        q = len(parts)
        if len(sendbufs) != q or any(len(row) != q for row in sendbufs):
            raise ValueError(f"sendbufs must be {q}x{q}")
        if groups is not None:
            checked = self._check_groups(groups, parts, sendbufs)
            if checked is not None:
                return self._alltoall_two_level(sendbufs, label, parts,
                                                checked)
        wire_by_rank = {
            parts[src]: sum(_nbytes(sendbufs[src][dst]) for dst in range(q)
                            if dst != src)
            for src in range(q)}
        pair_sizes = [_nbytes(sendbufs[src][dst])
                      for src in range(q) for dst in range(q) if src != dst]
        bytes_per_pair = float(np.mean(pair_sizes)) if pair_sizes else 0.0
        duration = self._cluster.transport.alltoall_time(q, bytes_per_pair)

        def execute():
            recv = [[np.array(sendbufs[src][dst], copy=True)
                     for src in range(q)] for dst in range(q)]
            routes = [
                _Route(parts[src], parts[dst],
                       lambda src=src, dst=dst: recv[dst][src],
                       lambda v, src=src, dst=dst:
                           recv[dst].__setitem__(src, v))
                for src in range(q) for dst in range(q) if src != dst]
            return recv, routes

        return self._deliver(label, execute, duration=duration,
                             nbytes_by_rank=wire_by_rank,
                             participants=parts,
                             n_wire_messages=q * (q - 1),
                             wire_bytes=sum(wire_by_rank.values()))

    @staticmethod
    def _check_groups(groups: list[list[int]], parts: list[int],
                      sendbufs: list[list[np.ndarray]]
                      ) -> list[list[int]] | None:
        """Validate a two-level grouping; None selects the flat path.

        Groups must partition the participants exactly; unequal sizes
        raise (the inter-group phase pairs members at matching local
        indices, so a ragged grouping has no well-defined schedule).
        A single group, or groups of one, degenerate to the flat
        exchange.  So do mixed-dtype sendbufs: the two-level phases
        concatenate blocks, which would promote every block to the
        common dtype, while the flat exchange preserves each block's
        dtype — the bitwise-identity contract only holds per dtype.
        """
        flat = [r for g in groups for r in g]
        if len(flat) != len(set(flat)) or set(flat) != set(parts):
            raise ValueError("groups must partition the participants")
        if len(groups) < 2 or any(len(g) < 2 for g in groups):
            return None
        if len({len(g) for g in groups}) != 1:
            raise ValueError("two-level all-to-all needs equal-size "
                             "groups; regroup or use the flat exchange")
        dtypes = iter(np.asarray(b).dtype for row in sendbufs for b in row)
        first = next(dtypes, None)
        if any(d != first for d in dtypes):
            return None
        return [list(g) for g in groups]

    def _alltoall_two_level(self, sendbufs: list[list[np.ndarray]],
                            label: str, parts: list[int],
                            groups: list[list[int]]
                            ) -> list[list[np.ndarray]]:
        """Intra-group aggregation, then inter-group exchange.

        Phase 1 runs one all-to-all *inside* each group: member i ships
        member j everything it holds for local index j of any group
        (blocks raveled and concatenated in group order).  Phase 2 runs
        one all-to-all per local index j across the groups, moving the
        aggregated per-group payloads.  Groups are disjoint rank sets,
        so the per-group (and per-index) collectives overlap in
        simulated time exactly as they would on disjoint switches.
        """
        pos = {r: i for i, r in enumerate(parts)}
        gpos = [[pos[r] for r in grp] for grp in groups]
        n_groups, m = len(groups), len(groups[0])
        sizes = [[blk.size for blk in row] for row in sendbufs]

        # ---- phase 1: aggregate by destination local index ----
        recv1 = []
        for gi in range(n_groups):
            bufs = [[np.concatenate(
                [np.ravel(sendbufs[gpos[gi][i]][gpos[h][j]])
                 for h in range(n_groups)])
                for j in range(m)] for i in range(m)]
            recv1.append(self.alltoall(bufs, ranks=groups[gi],
                                       label=f"{label} [intra]"))

        # ---- phase 2: exchange aggregates between groups ----
        recv2 = []
        for j in range(m):
            bufs2 = []
            for gi in range(n_groups):
                # recv1[gi][j][i] holds source (gi, i)'s blocks for local
                # index j, ordered by destination group; regroup h-major
                offs = np.zeros((m, n_groups + 1), dtype=np.int64)
                for i in range(m):
                    np.cumsum([sizes[gpos[gi][i]][gpos[h][j]]
                               for h in range(n_groups)],
                              out=offs[i, 1:])
                bufs2.append([np.concatenate(
                    [recv1[gi][j][i][offs[i, h]:offs[i, h + 1]]
                     for i in range(m)])
                    for h in range(n_groups)])
            recv2.append(self.alltoall(
                bufs2, ranks=[groups[h][j] for h in range(n_groups)],
                label=f"{label} [inter]"))

        # ---- unpack into the flat recv[dst][src] contract ----
        recv: list[list[np.ndarray]] = [[None] * len(parts)
                                        for _ in range(len(parts))]
        for h in range(n_groups):
            for j in range(m):
                d = gpos[h][j]
                for gi in range(n_groups):
                    pay = recv2[j][h][gi]
                    off = 0
                    for i in range(m):
                        s = gpos[gi][i]
                        n = sizes[s][d]
                        recv[d][s] = pay[off:off + n].reshape(
                            sendbufs[s][d].shape)
                        off += n
        return recv

    def ring_exchange(self, to_left: list[np.ndarray],
                      to_right: list[np.ndarray],
                      label: str = "ghost exchange"
                      ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Bidirectional nearest-neighbor exchange on a ring.

        Rank r sends ``to_left[r]`` to rank r-1 and ``to_right[r]`` to rank
        r+1 (periodic).  Returns ``(from_left, from_right)`` where
        ``from_left[r]`` is what rank r-1 sent right, and ``from_right[r]``
        is what rank r+1 sent left — i.e. the ghost halos of rank r.
        """
        p = self.size
        if len(to_left) != p or len(to_right) != p:
            raise ValueError("need one send buffer per rank in each direction")
        per_rank = {r: _nbytes(to_left[r]) + _nbytes(to_right[r])
                    for r in range(p)}
        if p == 1:
            duration = 0.0
            per_rank = {0: 0}
        else:
            msg = max(max(_nbytes(a) for a in to_left),
                      max(_nbytes(a) for a in to_right))
            duration = self._cluster.transport.ring_exchange_time(msg, p)

        def execute():
            from_left = [np.array(to_right[(r - 1) % p], copy=True)
                         for r in range(p)]
            from_right = [np.array(to_left[(r + 1) % p], copy=True)
                          for r in range(p)]
            routes = []
            if p > 1:
                for r in range(p):
                    # r's to_left lands as the left neighbor's from_right
                    routes.append(_Route(
                        r, (r - 1) % p,
                        lambda r=r: from_right[(r - 1) % p],
                        lambda v, r=r: from_right.__setitem__((r - 1) % p,
                                                              v)))
                    routes.append(_Route(
                        r, (r + 1) % p,
                        lambda r=r: from_left[(r + 1) % p],
                        lambda v, r=r: from_left.__setitem__((r + 1) % p,
                                                             v)))
            return (from_left, from_right), routes

        wire = sum(per_rank.values()) if p > 1 else 0
        return self._deliver(label, execute, duration=duration,
                             nbytes_by_rank=per_rank,
                             participants=list(range(p)),
                             n_wire_messages=2 * p if p > 1 else 0,
                             wire_bytes=wire)

    def allgather(self, sendbufs: list[np.ndarray], label: str = "allgather"
                  ) -> list[list[np.ndarray]]:
        """Every rank receives every rank's buffer (returned per dest rank)."""
        p = self.size
        if len(sendbufs) != p:
            raise ValueError("need one send buffer per rank")
        per_rank = {r: (p - 1) * _nbytes(sendbufs[r]) for r in range(p)}
        msg = max((_nbytes(b) for b in sendbufs), default=0)
        duration = self._cluster.transport.message_time(msg, p) * \
            max(0, p - 1) if p > 1 else 0.0

        def execute():
            out = [[np.array(sendbufs[src], copy=True) for src in range(p)]
                   for _ in range(p)]
            routes = [
                _Route(src, dst,
                       lambda src=src, dst=dst: out[dst][src],
                       lambda v, src=src, dst=dst:
                           out[dst].__setitem__(src, v))
                for src in range(p) for dst in range(p) if src != dst]
            return out, routes

        wire = sum(per_rank.values()) if p > 1 else 0
        return self._deliver(label, execute, duration=duration,
                             nbytes_by_rank=per_rank,
                             participants=list(range(p)),
                             n_wire_messages=p * (p - 1), wire_bytes=wire)

    def bcast(self, buf: np.ndarray, root: int = 0, label: str = "bcast",
              ranks: list[int] | None = None) -> list[np.ndarray]:
        """Broadcast *buf* from *root*; returns one copy per participant.

        With *ranks* the broadcast runs on that subset only (*root* is a
        global rank id and must be a participant); the returned list is in
        participant order.
        """
        parts = self._resolve(ranks, self.size)
        if root not in parts:
            raise ValueError("root out of range")
        q = len(parts)
        nb = _nbytes(buf)
        # binomial tree: ceil(log2 q) rounds
        rounds = int(np.ceil(np.log2(q))) if q > 1 else 0
        duration = rounds * self._cluster.transport.message_time(nb, q)
        per_rank = {r: (nb if r != root else nb * (q - 1)) for r in parts}

        def execute():
            out = [np.array(buf, copy=True) for _ in range(q)]
            routes = [
                _Route(root, r,
                       lambda i=i: out[i],
                       lambda v, i=i: out.__setitem__(i, v))
                for i, r in enumerate(parts) if r != root]
            return out, routes

        return self._deliver(label, execute, duration=duration,
                             nbytes_by_rank=per_rank, participants=parts,
                             n_wire_messages=max(0, q - 1),
                             wire_bytes=nb * max(0, q - 1))

    def barrier(self, label: str = "barrier",
                ranks: list[int] | None = None) -> None:
        """Synchronize participants' clocks (no data movement).

        Routed through the verified path like every other collective: a
        rank the fault plan has made unresponsive fails the barrier and is
        eventually declared dead.
        """
        parts = self._resolve(ranks, self.size)
        self._deliver(label, lambda: (None, []), duration=0.0,
                      nbytes_by_rank={}, participants=parts,
                      n_wire_messages=0, wire_bytes=0, category="other")

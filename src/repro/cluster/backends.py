"""Execution backends: one SPMD program, simulated clocks or real cores.

The :mod:`repro.cluster.spmd` runtime established the programming model
— rank-local generators yielding :class:`AllToAll` / :class:`SendRecvRing`
/ :class:`Bcast` / :class:`Barrier` / :class:`Compute` requests.  This
module makes the *executor* pluggable:

* :class:`SimulatedBackend` — the existing engine: all ranks stepped
  rank-serially inside one process against a
  :class:`~repro.cluster.simcluster.SimCluster`'s simulated clocks, with
  byte-accurate charging through the verified
  :class:`~repro.cluster.communicator.Communicator` path.  Default,
  semantics unchanged.
* :class:`ProcessBackend` — every rank is a persistent OS worker process
  and collectives move bytes through ``multiprocessing.shared_memory``
  segments: the all-to-all between the conv and local-FFT stages is a
  zero-copy exchange of :class:`~repro.cluster.shm.ShmView` slice
  descriptors, not pickled arrays.  ``Compute`` requests become no-ops
  (wall clock is the truth) and their real durations are measured per
  rank and folded into a parent-side :class:`~repro.cluster.trace.Trace`
  plus the metrics registry, so the telemetry stack sees real timings
  under the same labels the simulator charges.

Exchange protocol (per collective, per worker):

1. entry barrier — each group member posts one ``__barrier__`` token per
   peer mailbox and collects one from every peer.  A rank posts its
   tokens only after it has stopped reading the previous collective's
   views (the yield is the release point), so collecting all tokens
   proves every peer is done with the old views and outbox segments can
   be reused.  Unlike an OS barrier, the token round works over any
   subset of workers — the property elastic recovery runs on;
2. pack outgoing slices into the rank-owned outbox segment and post one
   descriptor per destination mailbox queue (queue transfer gives the
   happens-before edge between the memcpy and the peer's read);
3. drain the own mailbox and resolve descriptors into read-only numpy
   views over the peers' segments — the resume payload.

Resumed views are valid until the rank's next yielded request (the
standard MPI receive-buffer contract); programs that need the data
longer must copy.

Elastic fault tolerance (the parent is the watchdog):

* every worker writes a heartbeat timestamp and a progress counter (the
  collective index it reached) into a tiny shared segment ~20x/s;
* while a job is in flight the parent polls liveness: an exited worker
  (SIGKILL, OOM) is *dead*; a worker whose heartbeat goes stale past
  ``hang_timeout`` (SIGSTOP, livelock) is *hung* and is escalated to
  SIGKILL — both flood abort markers so the survivors unwind, then
  surface as :class:`~repro.cluster.faults.RankFailed` carrying the
  dead rank ids, the job label, and the surviving worker set.  Shipped
  ``Checkpoint`` data stays available to the caller
  (:meth:`ProcessBackend.take_checkpoints`), so the SOI layer completes
  the transform on the survivors via shrink-and-redistribute instead of
  tearing the world down;
* dead workers are respawned lazily (next job) and every segment a
  crashed worker left behind is reclaimed by a
  :class:`~repro.cluster.shm.ShmJanitor`, so repeated failures cannot
  leak ``/dev/shm``;
* *deadline* budgets run off the wall clock: checked at dispatch and on
  every watchdog tick, an expired job is aborted cleanly and
  :class:`~repro.resilience.deadline.DeadlineExceeded` raised at the
  boundary; *hedge* policies re-dispatch straggling jobs — when some
  worker falls behind the group's progress for longer than
  ``threshold x`` the label's last known duration, the laggard is
  killed, respawned, and the whole job re-dispatched once to the fresh
  worker set.

Process-level chaos (:class:`~repro.cluster.faults.ProcessFaultPlan`,
installed via :meth:`ProcessBackend.inject`) drives all of the above
deterministically: seeded kill -9 and SIGSTOP at collective entry
(worker-side, exact), timed kills/stalls and job-delivery delays
(parent-side), delayed SIGCONT resumes, and worker-side SDC.

SPMD discipline (matching collective kinds/labels across ranks) is
checked per message: descriptors carry the collective index, and a
mismatch raises instead of deadlocking — the same guarantee
``run_spmd``'s ``_check_uniform`` gives the simulated path.
"""

from __future__ import annotations

import os
import pickle
import queue
import signal
import threading
import time
import traceback
import multiprocessing as mp
from multiprocessing import connection as mp_connection
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.cluster.faults import RankFailed
from repro.cluster.shm import ShmJanitor, ShmPool, ShmView
from repro.cluster.simcluster import SimCluster
from repro.cluster.spmd import (
    AllToAll,
    Barrier,
    Bcast,
    Checkpoint,
    Compute,
    RankContext,
    SendRecvRing,
    SpmdError,
    run_spmd,
)
from repro.cluster.trace import Trace
from repro.telemetry.metrics import NULL_REGISTRY, get_registry

__all__ = ["ExecutionBackend", "ProcessBackend", "SimulatedBackend",
           "WorkerFailure"]

_MAILBOX_TIMEOUT_S = 120.0
_HANG_TIMEOUT_S = 10.0
_HEARTBEAT_PERIOD_S = 0.05
_WATCHDOG_TICK_S = 0.05
_BAR = "__barrier__"


class ExecutionBackend:
    """Runs an SPMD rank program on every rank; returns per-rank results.

    ``run(program, per_rank_args, common=...)`` calls
    ``program(ctx, *per_rank_args[rank], *common)`` as a generator on
    each rank.  ``is_real`` distinguishes wall-clock executors from the
    simulator (callers use it to decide whether ``Compute`` seconds are
    models or measurements).
    """

    is_real = False

    def run(self, program: Callable, per_rank_args: list[tuple], *,
            common: tuple = (), **kwargs) -> list:
        raise NotImplementedError

    def close(self) -> None:
        """Release workers/segments (no-op for the simulator)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SimulatedBackend(ExecutionBackend):
    """The rank-serial simulated engine behind a backend interface."""

    is_real = False

    def __init__(self, cluster: SimCluster):
        self.cluster = cluster

    @property
    def size(self) -> int:
        return self.cluster.n_ranks

    def run(self, program: Callable, per_rank_args: list[tuple], *,
            common: tuple = (), checkpoints: dict | None = None,
            hedge=None, **_ignored) -> list:
        if len(per_rank_args) != self.cluster.n_ranks:
            raise ValueError("need one args tuple per rank")

        def prog(ctx: RankContext):
            return (yield from program(ctx, *per_rank_args[ctx.rank],
                                       *common))

        return run_spmd(self.cluster, prog, checkpoints=checkpoints,
                        hedge=hedge)


# ---------------------------------------------------------------------------
# Worker-side pieces (must be module-level: shipped to spawn children)
# ---------------------------------------------------------------------------

class _Aborted(RuntimeError):
    """A peer failed; this rank unwound without completing the job."""


#: Largest pickled mailbox message; must stay under ``PIPE_BUF`` (4096
#: on Linux) minus the 4-byte frame header so multi-writer pipe writes
#: are atomic without a lock (CPython sends header+payload as one
#: ``write`` for messages below 16 KiB).
_ATOMIC_MSG_BYTES = 3600


class _PipeChannel:
    """One-directional message channel over an OS pipe — no feeder
    thread, no locks.

    ``mp.Queue`` is lethal under chaos, twice over: (a) its background
    *feeder* thread holds the pipe write-lock while sending, so forking
    a replacement worker at that instant copies a held lock whose owner
    does not exist in the child, which then deadlocks on its first send
    — and elastic respawn forks right after abort-flood traffic, exactly
    that window; (b) a reader parked in ``get()`` holds the shared
    read-lock, so SIGKILLing an idle worker poisons the lock and wedges
    its respawned replacement forever.

    This channel therefore uses a bare pipe with *no* locks: reads have
    a single owner per channel by construction (each worker drains only
    its own mailbox/job pipe, the parent its result pipes), and the one
    multi-writer case — mailboxes, written by every peer plus the parent
    — relies on POSIX atomicity of pipe writes ``<= PIPE_BUF``; every
    mailbox message is a tiny token/descriptor, enforced at send via
    ``atomic=True``.  With no locks there is nothing a SIGKILL can
    poison.
    """

    def __init__(self, ctx, *, atomic: bool = False):
        self._reader, self._writer = ctx.Pipe(duplex=False)
        self._atomic = atomic

    def put(self, obj) -> None:
        data = pickle.dumps(obj)
        if self._atomic and len(data) > _ATOMIC_MSG_BYTES:
            raise ValueError(
                f"mailbox message of {len(data)} bytes exceeds the "
                f"atomic pipe-write limit ({_ATOMIC_MSG_BYTES})")
        self._writer.send_bytes(data)

    def get(self, timeout: float | None = None):
        """Next message; raises queue.Empty on timeout (or closed pipe)."""
        try:
            if timeout is not None and not self._reader.poll(timeout):
                raise queue.Empty
            return pickle.loads(self._reader.recv_bytes())
        except (EOFError, OSError):
            raise queue.Empty from None

    def get_nowait(self):
        return self.get(timeout=0)

    @property
    def reader(self):
        return self._reader

    def close(self) -> None:
        for end in (self._reader, self._writer):
            try:
                end.close()
            except OSError:  # pragma: no cover - already closed
                pass


class _StridedSdc:
    """Reproduce the simulator's global SDC ordering on real ranks.

    ``FaultPlan.apply_sdc`` keys events off a single monotone counter.
    The simulated engine steps ranks 0..P-1 in order each round, so the
    k-th stage-boundary call on rank r is globally call ``k*P + r + 1``.
    Workers run concurrently and each holds its own plan copy, so this
    wrapper pins the counter to that global index before delegating —
    bit-for-bit the same strikes as the simulated backend.
    """

    def __init__(self, plan, rank: int, size: int):
        self._plan = plan
        self._rank = rank
        self._size = size
        self._calls = 0

    @property
    def has_sdc(self) -> bool:
        return self._plan.has_sdc

    def apply_sdc(self, data, *, rank: int = -1, stage: str = ""):
        self._plan.sdc_seen = self._calls * self._size + self._rank
        self._calls += 1
        return self._plan.apply_sdc(data, rank=rank, stage=stage)


class _WorkerComm:
    """Just enough Communicator surface for rank programs/verifiers."""

    def __init__(self, fault_plan):
        self.fault_plan = fault_plan
        self.deadline = None


class _WorkerCluster:
    """SimCluster stand-in inside a worker: real time, no charging."""

    def __init__(self, machine, fault_plan, size: int):
        self.machine = machine
        self.machines = [machine] * size
        self.n_ranks = size
        self.comm = _WorkerComm(fault_plan)
        self.metrics = NULL_REGISTRY

    def machine_of(self, rank: int):
        return self.machines[rank]

    def charge_seconds(self, rank: int, label: str, seconds: float,
                       category: str = "compute") -> None:
        pass  # wall time is measured by the engine, not modeled


@dataclass(frozen=True)
class _Job:
    """Everything a worker needs to run one rank of one program."""

    job_id: int
    program: Callable  # pickled by reference; must be module-level
    args: tuple  # per-rank args; ShmView entries resolve to views
    common: tuple = ()
    machine: Any = None
    fault_plan: Any = None  # SDC-only FaultPlan (or None)
    result_slot: ShmView | None = None
    staging_prefix: str = ""
    ranks: tuple = ()  # worker ids forming the group ((), = all workers)
    faults: tuple = ()  # ((kind, collective), ...) for THIS worker
    ckpt_prefix: str = ""  # ship Checkpoint data to the parent when set


@dataclass
class WorkerFailure:
    """What the watchdog knew when it declared worker(s) dead.

    Stored as :attr:`ProcessBackend.last_failure` and mirrored onto the
    raised :class:`~repro.cluster.faults.RankFailed` (``dead_ranks``,
    ``survivors``, ``job_label``, ``detected_at``), so chaos-soak
    failures are attributable from the exception alone and recovery can
    run against the exact survivor set of the moment of failure.
    """

    job_id: int
    job_label: str
    dead: tuple  # worker ids declared dead, ascending
    survivors: tuple  # worker ids alive when the failure was declared
    detected_at: float  # time.monotonic() of the first detection
    reason: str
    hung: tuple = ()  # subset of ``dead`` that was hung, then killed


@dataclass
class _RankSteps:
    """Measured wall-clock intervals of one rank's job."""

    steps: list = field(default_factory=list)  # (label, category, t0, t1)
    _mark: float = 0.0

    def open(self) -> None:
        self._mark = time.monotonic()

    def close(self, label: str, category: str) -> float:
        now = time.monotonic()
        if now - self._mark > 1e-7:
            self.steps.append((label, category, self._mark, now))
        self._mark = now
        return now


def _matches(msg, job_id: int, coll_idx: int, want_bar: bool) -> bool:
    jid, cidx, _src, payload = msg
    if jid != job_id or cidx != coll_idx:
        return False
    is_bar = isinstance(payload, str) and payload == _BAR
    return is_bar if want_bar else not is_bar


def _next_msg(mailbox, job_id: int, coll_idx: int, timeout: float,
              pending: list, *, want_bar: bool):
    """One matching message off the mailbox; stashes out-of-phase ones.

    With the entry barrier running through the same mailboxes as the
    data, a fast peer's *next*-collective token can arrive while this
    rank is still collecting the current collective's payloads (and
    vice versa).  Messages ahead of the current (job, collective, phase)
    point are stashed in *pending* — a per-worker list that survives
    across jobs; stale messages from older jobs are dropped.
    """
    for i, msg in enumerate(pending):
        if _matches(msg, job_id, coll_idx, want_bar):
            pending.pop(i)
            return msg[2], msg[3]
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise _Aborted(f"no message within {timeout:.0f}s "
                           f"(collective {coll_idx})")
        try:
            msg = mailbox.get(timeout=remaining)
        except queue.Empty:
            raise _Aborted(f"no message within {timeout:.0f}s "
                           f"(collective {coll_idx})") from None
        if msg[0] == "abort":
            if msg[1] == job_id:
                raise _Aborted(
                    f"rank {msg[2]} aborted job {msg[1]}: {msg[3]}")
            continue  # stale abort of an older job
        jid, cidx, _src, _payload = msg
        if jid < job_id:
            continue  # residue of an aborted older job
        if jid == job_id and cidx < coll_idx:
            raise SpmdError(
                f"collective mismatch: got (job {jid}, collective {cidx}) "
                f"while serving (job {job_id}, collective {coll_idx}) — "
                f"ranks disagree on the collective sequence")
        if _matches(msg, job_id, coll_idx, want_bar):
            return msg[2], msg[3]
        pending.append(msg)


class _Outbox:
    """The rank-owned segment outgoing collective slices are packed into.

    Grown geometrically by generation; an old generation is unlinked at
    the next pack, which the entry barrier has made safe (every peer
    finished reading views of the previous collective before any rank
    reaches its own pack).
    """

    def __init__(self, prefix: str, pool: ShmPool):
        self._prefix = prefix
        self._pool = pool
        self._gen = -1
        self._name: str | None = None
        self._shm = None
        self._capacity = 0

    def pack(self, arrays: list[np.ndarray]) -> list[ShmView]:
        arrays = [np.ascontiguousarray(a) for a in arrays]
        total = sum(a.nbytes for a in arrays)
        if self._shm is None or total > self._capacity:
            cap = 1 << max(6, int(total - 1).bit_length() if total else 6)
            self._gen += 1
            name = f"{self._prefix}g{self._gen}"
            shm = self._pool.create(name, cap)
            if self._name is not None:
                self._pool.detach(self._name)  # peers keep their mappings
            self._shm, self._name, self._capacity = shm, name, cap
        views, off = [], 0
        for a in arrays:
            dst = np.ndarray(a.shape, dtype=a.dtype, buffer=self._shm.buf,
                             offset=off)
            np.copyto(dst, a)
            views.append(ShmView(self._name, off, tuple(a.shape),
                                 a.dtype.name))
            off += a.nbytes
        return views


def _serve_collective(req, coll_idx: int, rank: int, group: tuple,
                      mailboxes, pool: ShmPool, outbox: _Outbox,
                      timeout: float, job_id: int, pending: list,
                      hb, me: int, faults: tuple):
    """Run one collective for this rank; returns the resume payload.

    *rank* is the logical rank (index into *group*); *me* the physical
    worker id.  Scheduled worker-side faults fire at entry — after the
    progress counter is written, so the parent sees how far a victim
    got — and the entry barrier is a token round over the group's
    mailboxes (works for any subset of the worker set).
    """
    size = len(group)
    if hb is not None:
        hb[me, 1] = float(coll_idx)  # progress: collective reached
    for kind, coll in faults:
        if coll == coll_idx:
            if kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif kind == "stall":
                os.kill(os.getpid(), signal.SIGSTOP)

    def post(dest: int, payload) -> None:
        mailboxes[group[dest]].put((job_id, coll_idx, rank, payload))

    # entry barrier: one token to every peer, one collected from each
    if size > 1:
        for d in range(size):
            if d != rank:
                post(d, _BAR)
        for _ in range(size - 1):
            _next_msg(mailboxes[me], job_id, coll_idx, timeout, pending,
                      want_bar=True)

    if isinstance(req, Barrier):
        return None

    if isinstance(req, AllToAll):
        per_dest = [np.ascontiguousarray(np.asarray(b))
                    for b in req.per_dest]
        if len(per_dest) != size:
            raise SpmdError("AllToAll needs one buffer per rank")
        descs = outbox.pack([per_dest[d] for d in range(size) if d != rank])
        it = iter(descs)
        for d in range(size):
            if d != rank:
                post(d, next(it))
        pieces: list = [None] * size
        pieces[rank] = per_dest[rank]
        for _ in range(size - 1):
            src, view = _next_msg(mailboxes[me], job_id, coll_idx, timeout,
                                  pending, want_bar=False)
            pieces[src] = view.resolve(pool)
        return pieces

    if isinstance(req, SendRecvRing):
        to_left = np.ascontiguousarray(np.asarray(req.to_left))
        to_right = np.ascontiguousarray(np.asarray(req.to_right))
        if size == 1:
            return to_right, to_left
        d_left, d_right = outbox.pack([to_left, to_right])
        # tag with the direction the payload traveled: my to_right
        # arrives at rank+1 as its from_left ("R"), and vice versa
        post((rank - 1) % size, ("L", d_left))
        post((rank + 1) % size, ("R", d_right))
        from_left = from_right = None
        for _ in range(2):
            src, (tag, view) = _next_msg(mailboxes[me], job_id, coll_idx,
                                         timeout, pending, want_bar=False)
            if tag == "R":
                from_left = view.resolve(pool)
            else:
                from_right = view.resolve(pool)
        return from_left, from_right

    if isinstance(req, Bcast):
        root = req.root
        if rank == root:
            if req.buf is None:
                raise SpmdError("bcast root provided no buffer")
            buf = np.ascontiguousarray(np.asarray(req.buf))
            if size > 1:
                (desc,) = outbox.pack([buf])
                for d in range(size):
                    if d != rank:
                        post(d, desc)
            return buf
        _, view = _next_msg(mailboxes[me], job_id, coll_idx, timeout,
                            pending, want_bar=False)
        return view.resolve(pool)

    raise SpmdError(f"unknown request type {type(req).__name__}")


def _resolve_args(args: tuple, pool: ShmPool) -> tuple:
    return tuple(a.resolve(pool) if isinstance(a, ShmView) else a
                 for a in args)


def _run_rank(job: _Job, me: int, n_workers: int, mailboxes,
              pool: ShmPool, outbox: _Outbox, timeout: float,
              pending: list, hb, post_ckpt):
    """Drive the rank generator to completion; returns (result, steps)."""
    group = job.ranks if job.ranks else tuple(range(n_workers))
    rank = group.index(me)
    size = len(group)
    args = _resolve_args(job.args, pool)
    common = _resolve_args(job.common, pool)
    fault_plan = job.fault_plan
    if fault_plan is not None:
        fault_plan = _StridedSdc(fault_plan, rank, size)
    cluster = _WorkerCluster(job.machine, fault_plan, size)
    gen = job.program(RankContext(rank, size, cluster), *args, *common)
    if not hasattr(gen, "send"):
        raise TypeError("program must be a generator function "
                        "(use 'yield' for collectives)")
    steps = _RankSteps()
    steps.open()
    coll_idx = 0
    n_ckpts = 0
    payload = None
    try:
        while True:
            try:
                req = gen.send(payload)
            except StopIteration as stop:
                steps.close("epilogue", "compute")
                return stop.value, steps.steps
            payload = None
            if isinstance(req, Compute):
                # the simulator charges modeled seconds here; we record
                # the measured wall time of the work that preceded it
                steps.close(req.label, "compute")
                continue
            if isinstance(req, Checkpoint):
                if job.ckpt_prefix:
                    # ship the stage data to the parent through a
                    # dedicated segment: survivors' checkpoints seed
                    # shrink-and-redistribute recovery after a crash
                    data = np.ascontiguousarray(np.asarray(req.data))
                    name = f"{job.ckpt_prefix}r{me}n{n_ckpts}"
                    n_ckpts += 1
                    shm = pool.create(name, data.nbytes)
                    dst = np.ndarray(data.shape, dtype=data.dtype,
                                     buffer=shm.buf)
                    np.copyto(dst, data)
                    del dst
                    post_ckpt(req.tag, ShmView(name, 0, tuple(data.shape),
                                               data.dtype.name))
                steps.close("checkpoint", "compute")
                continue
            steps.close(f"{req.label} prep", "compute")
            payload = _serve_collective(req, coll_idx, rank, group,
                                        mailboxes, pool, outbox, timeout,
                                        job.job_id, pending, hb, me,
                                        job.faults)
            coll_idx += 1
            steps.close(req.label, "mpi")
    finally:
        gen.close()


def _ship_result(result, slot: ShmView | None, pool: ShmPool):
    """Write array results into the parent's slot; pickle the rest."""
    if slot is not None and isinstance(result, np.ndarray) \
            and tuple(result.shape) == slot.shape \
            and result.dtype.name == slot.dtype:
        np.copyto(slot.resolve(pool, writeable=True), result)
        return "slot", None
    if slot is not None and isinstance(result, tuple) and result \
            and isinstance(result[0], np.ndarray) \
            and tuple(result[0].shape) == slot.shape \
            and result[0].dtype.name == slot.dtype:
        np.copyto(slot.resolve(pool, writeable=True), result[0])
        return "slot+rest", result[1:]
    return "pickle", result


def _worker_main(me: int, n_workers: int, token: str, job_q, result_q,
                 mailboxes, timeout: float, hb_name: str,
                 epoch: int) -> None:
    """Persistent worker loop: one process, one rank, many jobs.

    *epoch* is this worker slot's spawn count: it keys the outbox
    segment names so a respawned worker never reuses a name its peers
    may still hold a cached (stale, unlinked) mapping of.
    """
    pool = ShmPool()
    outbox = _Outbox(f"{token}o{me}e{epoch}", pool)
    pending: list = []  # out-of-phase mailbox messages (see _next_msg)
    hb = None
    stop_beat = threading.Event()
    try:
        try:
            hb = np.ndarray((n_workers, 2), dtype=np.float64,
                            buffer=pool.attach(hb_name).buf)
        except FileNotFoundError:  # pragma: no cover - parent raced close
            hb = None
        if hb is not None:
            def _beat() -> None:
                while not stop_beat.wait(_HEARTBEAT_PERIOD_S):
                    hb[me, 0] = time.monotonic()
            threading.Thread(target=_beat, daemon=True,
                             name=f"repro-heartbeat-{me}").start()
        def post_result(msg) -> None:
            try:
                result_q.put(msg)
            except OSError:  # pragma: no cover - parent tore down mid-job
                pass

        while True:
            try:
                raw = job_q.get()
            except queue.Empty:  # pipe closed: parent is gone
                return
            if raw is None:
                return
            job = pickle.loads(raw)
            pending[:] = [m for m in pending if m[0] >= job.job_id]
            ckpt_names: list[str] = []

            def post_ckpt(tag, view, _jid=job.job_id):
                ckpt_names.append(view.segment)
                post_result((_jid, me, "ckpt", tag, view, None))

            try:
                result, steps = _run_rank(job, me, n_workers, mailboxes,
                                          pool, outbox, timeout, pending,
                                          hb, post_ckpt)
                kind, rest = _ship_result(result, job.result_slot, pool)
                post_result((job.job_id, me, "ok", kind, rest, steps))
            except _Aborted as exc:
                post_result((job.job_id, me, "aborted", str(exc),
                             None, None))
            except BaseException as exc:  # noqa: BLE001 - forwarded
                group = job.ranks if job.ranks else tuple(range(n_workers))
                for d in group:
                    if d != me:
                        try:
                            mailboxes[d].put(("abort", job.job_id, me,
                                              repr(exc)[:1000]))
                        except OSError:  # pragma: no cover - teardown race
                            pass
                try:
                    payload = pickle.dumps(exc)
                except Exception:
                    payload = pickle.dumps(RuntimeError(repr(exc)))
                post_result((job.job_id, me, "error", payload,
                             traceback.format_exc(), None))
            finally:
                if job.staging_prefix:
                    pool.detach_prefix(job.staging_prefix)
                for name in ckpt_names:
                    # ownership handoff: the parent unlinks checkpoint
                    # segments once recovery (or the job) is done
                    pool.release(name)
    finally:
        stop_beat.set()
        hb = None
        pool.close()


# ---------------------------------------------------------------------------
# Parent-side backend
# ---------------------------------------------------------------------------

class _FaultTimeline:
    """Parent-side schedule of one job's injected fault actions.

    Holds back delayed job payloads, fires timed kills/stalls, and sends
    the scheduled SIGCONT resumes — all relative to the dispatch time,
    ticked from the watchdog loop.
    """

    def __init__(self, backend: "ProcessBackend", t0: float):
        self._backend = backend
        self.t0 = t0
        self.held: dict[int, tuple[float, bytes]] = {}  # wid -> (due, raw)
        self.timers: list[tuple[float, str, int]] = []  # (due, kind, wid)

    def hold(self, wid: int, delay_s: float, payload: bytes) -> None:
        self.held[wid] = (self.t0 + delay_s, payload)

    def at(self, kind: str, wid: int, after_s: float) -> None:
        self.timers.append((self.t0 + after_s, kind, wid))

    def cancel(self, wid: int) -> None:
        self.held.pop(wid, None)
        self.timers = [t for t in self.timers if t[2] != wid]

    def undelivered(self) -> tuple[int, ...]:
        return tuple(sorted(self.held))

    def tick(self, now: float) -> None:
        b = self._backend
        for wid, (due, payload) in list(self.held.items()):
            if now >= due:
                del self.held[wid]
                b._job_qs[wid].put(payload)
        still = []
        for due, kind, wid in self.timers:
            if now < due:
                still.append((due, kind, wid))
                continue
            proc = b._procs[wid] if wid < len(b._procs) else None
            if proc is None or proc.pid is None:
                continue
            try:
                if kind == "kill":
                    os.kill(proc.pid, signal.SIGKILL)
                elif kind == "stall":
                    os.kill(proc.pid, signal.SIGSTOP)
                elif kind == "resume":
                    os.kill(proc.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
        self.timers = still


@dataclass
class _JobOutcome:
    """What the watchdog collected for one dispatch attempt."""

    outcomes: dict  # wid -> (status, *rest)
    errors: list  # (wid, pickled exc, traceback)
    deaths: list  # wids that actually died (not hedge kills)
    hung: list  # subset of deaths first detected as stale heartbeats
    hedged: list  # wids killed by the hedge (job must be re-dispatched)
    detected_at: float | None
    deadline_tripped: bool


class ProcessBackend(ExecutionBackend):
    """Real-parallel executor: one persistent worker process per rank.

    Parameters
    ----------
    n_workers:
        SPMD size = number of worker processes (defaults to the CPUs
        this process may schedule on).
    start_method:
        ``"fork"`` (default on Linux: instant, shares planned tables
        copy-on-write) or ``"spawn"``.
    mailbox_timeout:
        Seconds a rank waits on a collective before declaring the job
        wedged; also bounds how long the parent waits for results.
    hang_timeout:
        Seconds a worker's heartbeat may go stale while it has a job in
        flight before the watchdog declares it hung and escalates to
        SIGKILL (the dead-worker path: abort flood, ``RankFailed``,
        lazy respawn).
    trace, metrics:
        Destinations for the measured per-rank wall-clock intervals.
        Defaults: a backend-owned :class:`~repro.cluster.trace.Trace`
        and the process-wide metrics registry.

    Use as a context manager (or call :meth:`close`) to release the
    workers and shared segments deterministically.
    """

    is_real = True

    def __init__(self, n_workers: int | None = None, *,
                 start_method: str = "fork",
                 mailbox_timeout: float = _MAILBOX_TIMEOUT_S,
                 hang_timeout: float = _HANG_TIMEOUT_S,
                 trace: Trace | None = None, metrics=None):
        if n_workers is None:
            try:
                n_workers = len(os.sched_getaffinity(0))
            except AttributeError:  # pragma: no cover - non-Linux
                n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.size = int(n_workers)
        self.start_method = start_method
        self.mailbox_timeout = float(mailbox_timeout)
        self.hang_timeout = float(hang_timeout)
        self.trace = Trace() if trace is None else trace
        self.metrics = get_registry() if metrics is None else metrics
        self._token = f"rpb{os.getpid():x}{id(self) & 0xffff:x}"
        self._ctx = mp.get_context(start_method)
        self._procs: list = []
        self._epochs: list[int] = [0] * self.size  # per-slot spawn count
        self._job_qs: list = []
        self._mailboxes: list = []
        self._result_chans: list = []  # one result pipe per worker
        self._pool = ShmPool()
        self._hb: np.ndarray | None = None
        self.janitor = ShmJanitor(self._token)
        self._job_counter = 0
        self._t_cursor = 0.0  # trace offset so successive jobs don't overlap
        #: Installed process-level chaos schedule (see :meth:`inject`).
        self.fault_plan: Any = None
        #: Watchdog's view of the most recent worker failure.
        self.last_failure: WorkerFailure | None = None
        #: RecoveryReport of the most recent shrink-and-redistribute.
        self.last_recovery = None
        #: Detection-to-recovered seconds of the most recent recovery.
        self.last_mttr_s: float | None = None
        self._ckpts: dict[tuple[int, str], ShmView] = {}
        self._label_est: dict[str, float] = {}  # label -> last wall seconds

    # -- worker lifecycle ----------------------------------------------

    def _ensure_workers(self) -> None:
        if not self._mailboxes:
            ctx = self._ctx
            self._mailboxes = [_PipeChannel(ctx, atomic=True)
                               for _ in range(self.size)]
            self._job_qs = [_PipeChannel(ctx) for _ in range(self.size)]
            self._result_chans = [_PipeChannel(ctx)
                                  for _ in range(self.size)]
            self._procs = [None] * self.size
            hb = self._pool.create(f"{self._token}hb", self.size * 2 * 8)
            self._hb = np.ndarray((self.size, 2), dtype=np.float64,
                                  buffer=hb.buf)
            self._hb[:, 0] = time.monotonic()
            self._hb[:, 1] = -1.0
        for wid in range(self.size):
            p = self._procs[wid]
            if p is None or not p.is_alive():
                self._spawn_worker(wid)
        self.metrics.gauge(
            "repro_backend_workers_count",
            "live worker processes of the ProcessBackend").set(self.size)

    def _spawn_worker(self, wid: int) -> None:
        old = self._procs[wid]
        if old is not None:
            old.join(timeout=0.5)
            # a crashed worker leaves its queues and segments dirty:
            # drain stale payloads/messages, reclaim its outbox
            self._drain(self._job_qs[wid])
            self._drain(self._mailboxes[wid])
            self._drain(self._result_chans[wid])
            self.janitor.sweep(f"o{wid}e")
            self._epochs[wid] += 1
            self.metrics.counter(
                "repro_backend_worker_respawns_total",
                "worker processes respawned after a death").inc()
        self._hb[wid, 0] = time.monotonic()
        self._hb[wid, 1] = -1.0
        p = self._ctx.Process(
            target=_worker_main,
            args=(wid, self.size, self._token, self._job_qs[wid],
                  self._result_chans[wid], self._mailboxes,
                  self.mailbox_timeout, f"{self._token}hb",
                  self._epochs[wid]),
            daemon=True, name=f"repro-rank-{wid}")
        p.start()
        self._procs[wid] = p

    @staticmethod
    def _drain(q) -> None:
        while True:
            try:
                q.get_nowait()
            except (queue.Empty, OSError, ValueError):
                return

    def _teardown_workers(self) -> None:
        for q in self._job_qs:
            try:
                q.put(None)
            except Exception:
                pass
        for p in self._procs:
            if p is not None:
                # a SIGSTOPped worker cannot run its shutdown path (and
                # holds SIGTERM pending); resume it first, then escalate
                try:
                    os.kill(p.pid, signal.SIGCONT)
                except (ProcessLookupError, TypeError):
                    pass
                p.join(timeout=2.0)
        for p in self._procs:
            if p is not None and p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        for p in self._procs:
            if p is not None and p.is_alive():  # pragma: no cover - stuck
                p.kill()
                p.join(timeout=2.0)
        for ch in [*self._job_qs, *self._mailboxes, *self._result_chans]:
            ch.close()
        self._procs, self._job_qs, self._mailboxes = [], [], []
        self._result_chans = []
        self._hb = None

    def close(self) -> None:
        self._teardown_workers()
        self._ckpts.clear()
        self._pool.close()
        reclaimed = self.janitor.sweep("")
        if reclaimed:
            self.metrics.counter(
                "repro_backend_shm_reclaimed_total",
                "orphaned shared-memory segments reclaimed"
                ).inc(len(reclaimed))
        try:
            self.metrics.gauge("repro_backend_workers_count").set(0)
        except Exception:
            pass

    # -- elasticity surface --------------------------------------------

    def inject(self, plan) -> None:
        """Install a :class:`~repro.cluster.faults.ProcessFaultPlan`.

        Faults fire on the *job*-th :meth:`run` after installation
        (the plan's counters are reset here).  ``None`` disarms.
        """
        if plan is not None:
            plan.reset()
        self.fault_plan = plan

    def live_workers(self) -> list[int]:
        """Worker ids currently alive (dead ones respawn on the next run)."""
        return [wid for wid, p in enumerate(self._procs)
                if p is not None and p.is_alive()]

    def take_checkpoints(self) -> dict[tuple[int, str], np.ndarray]:
        """Copy out all shipped checkpoint data; reclaims the segments.

        Keyed ``(worker_id, tag)``.  Called by the recovery driver right
        after a :class:`~repro.cluster.faults.RankFailed`: the copies
        survive the sweep, so recovery jobs can re-stage them.
        """
        out: dict[tuple[int, str], np.ndarray] = {}
        for key, view in self._ckpts.items():
            try:
                out[key] = np.array(view.resolve(self._pool), copy=True)
            except FileNotFoundError:  # pragma: no cover - creator died
                continue
            finally:
                self._pool.detach(view.segment)
        self._ckpts.clear()
        self.janitor.sweep("k")
        return out

    def note_recovery(self, report, detected_at: float | None) -> None:
        """Record a completed shrink-and-redistribute recovery.

        Sets :attr:`last_recovery`, stamps the MTTR histogram and the
        recovery counter, and drops a zero-width ``"shrink recovery"``
        trace marker on every dead rank's lane.
        """
        self.last_recovery = report
        mttr = (time.monotonic() - detected_at
                if detected_at is not None else 0.0)
        self.last_mttr_s = mttr
        m = self.metrics
        m.counter("repro_backend_recoveries_total",
                  "jobs completed via shrink-and-redistribute after "
                  "worker deaths").inc()
        m.histogram("repro_backend_mttr_seconds",
                    "failure detection to recovered result, seconds"
                    ).observe(mttr)
        for r in getattr(report, "dead_ranks", ()):
            self.trace.record(r, "shrink recovery", "retry",
                              self._t_cursor, self._t_cursor)
        self._sweep_checkpoints()

    def _sweep_checkpoints(self) -> None:
        for view in self._ckpts.values():
            self._pool.detach(view.segment)
        self._ckpts.clear()
        reclaimed = self.janitor.sweep("k")
        if reclaimed:
            self.metrics.counter(
                "repro_backend_shm_reclaimed_total",
                "orphaned shared-memory segments reclaimed"
                ).inc(len(reclaimed))

    # -- job execution -------------------------------------------------

    def run(self, program: Callable, per_rank_args: list[tuple], *,
            common: tuple = (), machine=None, fault_plan=None,
            result_spec: tuple | None = None, label: str = "spmd job",
            checkpoints: dict | None = None, hedge=None, deadline=None,
            ranks: tuple | None = None, **_ignored) -> list:
        """Run *program* on a group of workers; returns per-rank results.

        ``per_rank_args[i]`` may contain ndarrays — they are staged
        through shared memory, and the rank receives zero-copy views
        (``common`` ndarrays are staged once, shared by all ranks).
        ``result_spec=(shape, dtype)`` pre-allocates a shared result
        slot per rank for array(-first) results, avoiding a pickle of
        the output.  ``fault_plan`` must be SDC-only (wire faults are a
        property of the simulated fabric).

        ``ranks`` selects a subset of the workers as the SPMD group
        (default: all of them) — recovery jobs run on the survivors this
        way.  ``checkpoints``, when a dict is passed, arms checkpoint
        shipping: workers post their ``Checkpoint`` stage data through
        shared segments, available via :meth:`take_checkpoints` after a
        failure.  ``deadline`` (wall-clock
        :class:`~repro.resilience.Deadline`) is checked at dispatch and
        on every watchdog tick; ``hedge`` (a
        :class:`~repro.verify.HedgePolicy`) arms straggler re-dispatch:
        a worker lagging the group's progress past ``threshold x`` the
        label's last duration is killed, respawned, and the job re-run
        once on the fresh worker set.

        A worker that dies (or hangs past ``hang_timeout``) mid-job
        raises :class:`~repro.cluster.faults.RankFailed` carrying the
        dead ids and survivor set; the surviving workers stay up and the
        dead are respawned on the next call.
        """
        group = tuple(ranks) if ranks else tuple(range(self.size))
        if len(per_rank_args) != len(group):
            raise ValueError(f"need one args tuple per rank "
                             f"(got {len(per_rank_args)}, group "
                             f"{len(group)})")
        if sorted(set(group)) != sorted(group) \
                or any(not 0 <= w < self.size for w in group):
            raise ValueError(f"invalid worker group {group!r}")
        plan = self.fault_plan
        if fault_plan is None and plan is not None:
            fault_plan = plan.sdc
        if fault_plan is not None and not _sdc_only(fault_plan):
            raise ValueError("ProcessBackend supports SDC-only fault "
                             "plans; wire faults belong to the simulator")
        if deadline is not None:
            deadline.check(f"dispatch ({label})")
        self._ensure_workers()
        self._job_counter += 1
        jid = self._job_counter
        staging_prefix = f"{self._token}j{jid}"
        actions = plan.next_job() if plan is not None else ()

        # stage per-rank and common ndarray args through shared segments
        arrays, slots = [], []
        for i, args in enumerate(per_rank_args):
            for k, a in enumerate(args):
                if isinstance(a, np.ndarray):
                    arrays.append(a)
                    slots.append(("a", i, k))
        for k, c in enumerate(common):
            if isinstance(c, np.ndarray):
                arrays.append(c)
                slots.append(("c", 0, k))
        staged = [list(args) for args in per_rank_args]
        staged_common = list(common)
        if arrays:
            views = self._pool.place(staging_prefix + "i", arrays)
            for (kind, i, k), v in zip(slots, views):
                if kind == "a":
                    staged[i][k] = v
                else:
                    staged_common[k] = v

        q = len(group)
        result_views: list[ShmView | None] = [None] * q
        result_arrays: list[np.ndarray | None] = [None] * q
        if result_spec is not None:
            shape, dtype = result_spec
            # per-rank slots inside one segment; workers write, we copy out
            dt = np.dtype(dtype)
            per = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
            shm = self._pool.create(staging_prefix + "r", max(1, per * q))
            for i in range(q):
                result_views[i] = ShmView(staging_prefix + "r", i * per,
                                          tuple(shape), dt.name)
                result_arrays[i] = np.ndarray(tuple(shape), dtype=dt,
                                              buffer=shm.buf,
                                              offset=i * per)

        try:
            attempt = 0
            while True:
                attempt += 1
                ckpt_prefix = (f"{self._token}k{jid}"
                               if checkpoints is not None else "")
                # pickle eagerly: surfaces an unpicklable program as a
                # clean error here, and delayed/held deliveries plus the
                # hedge retry reuse the bytes verbatim
                try:
                    payloads = {wid: pickle.dumps(_Job(
                        job_id=jid, program=program,
                        args=tuple(staged[i]), common=tuple(staged_common),
                        machine=machine, fault_plan=fault_plan,
                        result_slot=result_views[i],
                        staging_prefix=staging_prefix, ranks=group,
                        faults=tuple(
                            (f.kind, f.collective) for f in actions
                            if f.rank == wid and f.collective is not None
                            and f.kind in ("kill", "stall")),
                        ckpt_prefix=ckpt_prefix))
                        for i, wid in enumerate(group)}
                except Exception as exc:
                    raise ValueError(
                        "job does not pickle — the program must be a "
                        "module-level generator function and every argument "
                        "picklable (closures and lambdas are not)") from exc

                t0 = time.monotonic()
                timeline = _FaultTimeline(self, t0)
                for f in actions:
                    if f.kind == "delay" and f.rank in group:
                        timeline.hold(f.rank, f.after_s, payloads[f.rank])
                        plan.note_injected("delay")
                    elif f.collective is None and f.kind in ("kill", "stall"):
                        timeline.at(f.kind, f.rank, f.after_s)
                        plan.note_injected(f.kind)
                    elif f.kind in ("kill", "stall") and f.rank in group:
                        plan.note_injected(f.kind)
                    if f.kind == "stall" and f.resume_s is not None:
                        timeline.at("resume", f.rank, f.resume_s)
                for wid in group:
                    self._hb[wid, 1] = -1.0
                    if wid not in timeline.held:
                        self._job_qs[wid].put(payloads[wid])

                est = self._label_est.get(label)
                out = self._await_job(jid, group, label, deadline, timeline,
                                      t0, hedge if attempt == 1 else None,
                                      est)
                if deadline is not None:
                    deadline.charge("compute" if attempt == 1 else "hedge",
                                    time.monotonic() - t0)
                if out.deadline_tripped:
                    deadline.check(label)  # raises DeadlineExceeded
                if out.hedged:
                    # straggler re-dispatch: replace the laggards, retry
                    # the whole job once on the fresh worker set
                    if hedge is not None:
                        hedge.launched += len(out.hedged)
                    self.metrics.counter(
                        "repro_backend_hedge_retries_total",
                        "jobs re-dispatched after killing stragglers"
                        ).inc()
                    for wid in out.hedged:
                        self._spawn_worker(wid)
                    self._sweep_checkpoints()
                    self._drain_stale()
                    self._job_counter += 1
                    jid = self._job_counter
                    actions = ()
                    continue
                break

            if out.deaths:
                self._handle_deaths(jid, label, group, out)
            if out.errors:
                wid, payload, tb = min(out.errors, key=lambda e: e[0])
                exc = pickle.loads(payload)
                raise exc from RuntimeError(
                    f"rank {wid} failed; worker traceback:\n{tb}")
            if any(status != "ok" for status, *_ in out.outcomes.values()):
                bad = {w: o[0] for w, o in out.outcomes.items()
                       if o[0] != "ok"}
                raise RuntimeError(f"job aborted without a root error: {bad}")

            if hedge is not None and attempt > 1:
                hedge.won += 1
            results: list = [None] * q
            for i, wid in enumerate(group):
                status, kind, rest, steps = out.outcomes[wid]
                if kind == "slot":
                    results[i] = result_arrays[i].copy()
                elif kind == "slot+rest":
                    results[i] = (result_arrays[i].copy(), *rest)
                else:
                    results[i] = rest
            self._fold_telemetry(jid, label,
                                 {w: o[3] for w, o in out.outcomes.items()})
            self._label_est[label] = time.monotonic() - t0
            if checkpoints is not None:
                self._sweep_checkpoints()
            return results
        finally:
            del result_arrays  # views die before their segment unlinks
            self._pool.detach_prefix(staging_prefix)

    # -- the watchdog --------------------------------------------------

    def _await_job(self, jid: int, group: tuple, label: str, deadline,
                   timeline: _FaultTimeline, t0: float, hedge,
                   est: float | None) -> _JobOutcome:
        """Collect one dispatch attempt's outcomes, watching liveness.

        The parent *is* the heartbeat watchdog: each ~50ms tick it
        drains the result queue, fires scheduled fault actions, checks
        every in-flight worker's process state and heartbeat, enforces
        the deadline, and evaluates the hedge policy.
        """
        need = set(group)
        outcomes: dict[int, tuple] = {}
        errors: list[tuple] = []
        deaths: list[int] = []
        hung: list[int] = []
        hedged: list[int] = []
        detected_at: float | None = None
        deadline_tripped = False
        flooded = False
        grace_until: float | None = None
        hard_deadline = t0 + self.mailbox_timeout + 30.0

        def settled(wid: int) -> bool:
            return wid in outcomes or wid in deaths or wid in hedged

        readers = [self._result_chans[w].reader for w in group]
        while not all(settled(w) for w in need):
            now = time.monotonic()
            timeline.tick(now)
            try:
                mp_connection.wait(readers, timeout=_WATCHDOG_TICK_S)
            except OSError:  # pragma: no cover - teardown race
                pass
            got_msg = False
            for w in group:
                while True:
                    try:
                        msg = self._result_chans[w].get_nowait()
                    except queue.Empty:
                        break
                    got_msg = True
                    mjid, wid, status, a, b, _c = msg
                    if status == "ckpt":
                        if mjid == jid:
                            self._ckpts[(wid, a)] = b
                        continue
                    if mjid != jid:
                        continue  # residue of a previously failed job
                    outcomes[wid] = (status, a, b, _c)
                    if status == "error":
                        errors.append((wid, a, b))
            if got_msg:
                continue  # drain fast; liveness re-checked next empty tick

            for wid in sorted(need):
                if settled(wid):
                    continue
                p = self._procs[wid]
                alive = p is not None and p.is_alive()
                if alive and now - float(self._hb[wid, 0]) \
                        > self.hang_timeout:
                    # hung (SIGSTOP/livelock): escalate to SIGKILL; the
                    # next branch turns it into a detected death
                    self.metrics.counter(
                        "repro_backend_worker_hangs_total",
                        "workers whose heartbeat went stale in-flight"
                        ).inc()
                    hung.append(wid)
                    try:
                        os.kill(p.pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                    p.join(timeout=1.0)
                    alive = p.is_alive()
                if not alive:
                    deaths.append(wid)
                    timeline.cancel(wid)
                    if detected_at is None:
                        detected_at = time.monotonic()
                    self.metrics.counter(
                        "repro_backend_worker_deaths_total",
                        "worker processes that died with a job in flight"
                        ).inc()
                    if not flooded:
                        flooded = True
                        self._flood_abort(jid, group, wid,
                                          "worker process died")
                        grace_until = now + max(5.0, 2 * self.hang_timeout)

            if deadline is not None and not deadline_tripped \
                    and deadline.expired():
                deadline_tripped = True
                if not flooded:
                    flooded = True
                    self._flood_abort(jid, group, -1, "deadline expired")
                grace_until = now + 5.0

            if hedge is not None and est is not None and not hedged \
                    and not deaths and len(group) >= hedge.min_ranks \
                    and now - t0 > max(hedge.threshold * est, 0.05):
                laggards = self._find_laggards(group, outcomes, timeline,
                                               now)
                if laggards:
                    hedged.extend(laggards)
                    if not flooded:
                        flooded = True
                        self._flood_abort(jid, group, laggards[0],
                                          "straggler hedged")
                    grace_until = now + max(5.0, 2 * self.hang_timeout)
                    for wid in laggards:
                        timeline.cancel(wid)
                        p = self._procs[wid]
                        try:
                            os.kill(p.pid, signal.SIGKILL)
                        except (ProcessLookupError, TypeError):
                            pass
                        p.join(timeout=1.0)

            if grace_until is not None and now > grace_until:
                for wid in sorted(need):
                    if not settled(wid):
                        outcomes[wid] = ("aborted",
                                         "no outcome within the grace "
                                         "period", None, None)
                break
            if now > hard_deadline:
                missing = sorted(w for w in need if not settled(w))
                self._teardown_workers()
                raise RuntimeError(
                    f"workers unresponsive after "
                    f"{self.mailbox_timeout:.0f}s (job {jid}: ranks "
                    f"{missing} missing)")

        # deaths among hedge victims are intentional, not failures
        deaths = [w for w in deaths if w not in hedged]
        return _JobOutcome(outcomes=outcomes, errors=errors, deaths=deaths,
                           hung=[w for w in hung if w in deaths],
                           hedged=hedged, detected_at=detected_at,
                           deadline_tripped=deadline_tripped)

    def _find_laggards(self, group: tuple, outcomes: dict,
                       timeline: _FaultTimeline, now: float) -> list[int]:
        """Workers behind the group's progress front but not hung.

        Progress is the collective index each worker last entered
        (written next to its heartbeat); a rank still waiting for its
        delayed job payload sits at -1.  Hung workers are the hang
        watchdog's business, not the hedge's.
        """
        prog = {wid: float(self._hb[wid, 1]) for wid in group}
        front = max(prog.values())
        undelivered = set(timeline.undelivered())
        laggards = []
        for wid in group:
            if wid in outcomes:
                continue
            p = self._procs[wid]
            if p is None or not p.is_alive():
                continue
            if now - float(self._hb[wid, 0]) > self.hang_timeout:
                continue
            if prog[wid] < front or wid in undelivered:
                laggards.append(wid)
        return laggards

    def _flood_abort(self, jid: int, group: tuple, culprit: int,
                     reason: str) -> None:
        """Unblock every live group member waiting in a collective."""
        for wid in group:
            p = self._procs[wid]
            if p is not None and p.is_alive():
                try:
                    self._mailboxes[wid].put(("abort", jid, culprit,
                                              reason))
                except Exception:  # pragma: no cover - queue torn down
                    pass

    def _drain_stale(self) -> None:
        """Drop result-pipe residue of an abandoned dispatch attempt."""
        for chan in self._result_chans:
            self._drain(chan)

    def _handle_deaths(self, jid: int, label: str, group: tuple,
                       out: _JobOutcome) -> None:
        """Turn detected worker deaths into a recoverable RankFailed."""
        dead = tuple(sorted(out.deaths))
        survivors = tuple(w for w in group if w not in dead
                          and self._procs[w] is not None
                          and self._procs[w].is_alive())
        exitcodes = {w: (self._procs[w].exitcode
                         if self._procs[w] is not None else None)
                     for w in dead}
        reason = ", ".join(
            f"worker {w} "
            + ("hung (heartbeat stale), killed" if w in out.hung else
               f"died (exitcode {exitcodes[w]})")
            for w in dead)
        self.last_failure = WorkerFailure(
            job_id=jid, job_label=label, dead=dead, survivors=survivors,
            detected_at=out.detected_at or time.monotonic(),
            reason=reason, hung=tuple(out.hung))
        # reclaim what the dead left behind (their outbox generations);
        # survivors' mappings of the segments stay valid until job end
        reclaimed = []
        for w in dead:
            reclaimed += self.janitor.sweep(f"o{w}e")
        if reclaimed:
            self.metrics.counter(
                "repro_backend_shm_reclaimed_total",
                "orphaned shared-memory segments reclaimed"
                ).inc(len(reclaimed))
        self.metrics.gauge(
            "repro_backend_workers_count",
            "live worker processes of the ProcessBackend"
            ).set(len(self.live_workers()))
        exc = RankFailed(
            dead[0],
            f"{reason} during job {jid} ({label!r}); "
            f"survivors: {list(survivors)}")
        exc.dead_ranks = dead
        exc.survivors = survivors
        exc.job_label = label
        exc.detected_at = self.last_failure.detected_at
        raise exc from RuntimeError(
            f"job {jid} ({label!r}) lost workers {list(dead)}: {reason}")

    # -- telemetry -----------------------------------------------------

    def _fold_telemetry(self, jid: int, label: str,
                        steps_by_rank: dict[int, list]) -> None:
        all_steps = [s for steps in steps_by_rank.values()
                     for s in (steps or ())]
        if not all_steps:
            return
        t0 = min(s[2] for s in all_steps)
        t1 = max(s[3] for s in all_steps)
        base = self._t_cursor - t0
        rec = self.trace.recorder
        for rank, steps in sorted(steps_by_rank.items()):
            steps = steps or []
            lo = min(s[2] for s in steps) if steps else t0
            hi = max(s[3] for s in steps) if steps else t0
            scope = rec.begin(rank, label, "other", base + lo,
                              attributes={"job": jid, "measured": True})
            for slabel, category, s0, s1 in steps:
                self.trace.record(rank, slabel, category,
                                  base + s0, base + s1)
            rec.end(scope, base + hi)
        self._t_cursor = base + t1
        m = self.metrics
        m.counter("repro_backend_jobs_total",
                  "jobs completed by the process backend").inc()
        m.counter("repro_backend_wall_seconds_total",
                  "max-over-ranks measured job wall seconds").inc(t1 - t0)
        for cat, metric in (("compute", "repro_backend_compute_seconds_total"),
                            ("mpi", "repro_backend_exchange_seconds_total")):
            secs = sum(s[3] - s[2] for s in all_steps if s[1] == cat)
            m.counter(metric,
                      f"summed per-rank measured {cat} seconds").inc(secs)


def _sdc_only(plan) -> bool:
    """True when a FaultPlan carries nothing the real fabric can't do."""
    return (not getattr(plan, "corrupt_messages", ())
            and not getattr(plan, "timeout_messages", ())
            and not getattr(plan, "rank_failures", {})
            and not getattr(plan, "stragglers", {})
            and not getattr(plan, "jitter", 0.0))

"""Execution backends: one SPMD program, simulated clocks or real cores.

The :mod:`repro.cluster.spmd` runtime established the programming model
— rank-local generators yielding :class:`AllToAll` / :class:`SendRecvRing`
/ :class:`Bcast` / :class:`Barrier` / :class:`Compute` requests.  This
module makes the *executor* pluggable:

* :class:`SimulatedBackend` — the existing engine: all ranks stepped
  rank-serially inside one process against a
  :class:`~repro.cluster.simcluster.SimCluster`'s simulated clocks, with
  byte-accurate charging through the verified
  :class:`~repro.cluster.communicator.Communicator` path.  Default,
  semantics unchanged.
* :class:`ProcessBackend` — every rank is a persistent OS worker process
  and collectives move bytes through ``multiprocessing.shared_memory``
  segments: the all-to-all between the conv and local-FFT stages is a
  zero-copy exchange of :class:`~repro.cluster.shm.ShmView` slice
  descriptors, not pickled arrays.  ``Compute`` requests become no-ops
  (wall clock is the truth) and their real durations are measured per
  rank and folded into a parent-side :class:`~repro.cluster.trace.Trace`
  plus the metrics registry, so the telemetry stack sees real timings
  under the same labels the simulator charges.

Exchange protocol (per collective, per worker):

1. ``barrier.wait()`` — guarantees every peer has finished *reading* the
   views of the previous collective, so outbox segments can be reused;
2. pack outgoing slices into the rank-owned outbox segment and post one
   descriptor per destination mailbox queue (queue transfer gives the
   happens-before edge between the memcpy and the peer's read);
3. drain the own mailbox and resolve descriptors into read-only numpy
   views over the peers' segments — the resume payload.

Resumed views are valid until the rank's next yielded request (the
standard MPI receive-buffer contract); programs that need the data
longer must copy.  A worker that raises floods abort markers and breaks
the barrier so every peer unwinds; the parent then rebuilds the worker
set and re-raises the original exception.

SPMD discipline (matching collective kinds/labels across ranks) is
checked per message: descriptors carry the collective index, and a
mismatch raises instead of deadlocking — the same guarantee
``run_spmd``'s ``_check_uniform`` gives the simulated path.
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import time
import traceback
import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.cluster.shm import ShmPool, ShmView
from repro.cluster.simcluster import SimCluster
from repro.cluster.spmd import (
    AllToAll,
    Barrier,
    Bcast,
    Checkpoint,
    Compute,
    RankContext,
    SendRecvRing,
    SpmdError,
    run_spmd,
)
from repro.cluster.trace import Trace
from repro.telemetry.metrics import NULL_REGISTRY, get_registry

__all__ = ["ExecutionBackend", "ProcessBackend", "SimulatedBackend"]

_MAILBOX_TIMEOUT_S = 120.0


class ExecutionBackend:
    """Runs an SPMD rank program on every rank; returns per-rank results.

    ``run(program, per_rank_args, common=...)`` calls
    ``program(ctx, *per_rank_args[rank], *common)`` as a generator on
    each rank.  ``is_real`` distinguishes wall-clock executors from the
    simulator (callers use it to decide whether ``Compute`` seconds are
    models or measurements).
    """

    is_real = False

    def run(self, program: Callable, per_rank_args: list[tuple], *,
            common: tuple = (), **kwargs) -> list:
        raise NotImplementedError

    def close(self) -> None:
        """Release workers/segments (no-op for the simulator)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SimulatedBackend(ExecutionBackend):
    """The rank-serial simulated engine behind a backend interface."""

    is_real = False

    def __init__(self, cluster: SimCluster):
        self.cluster = cluster

    @property
    def size(self) -> int:
        return self.cluster.n_ranks

    def run(self, program: Callable, per_rank_args: list[tuple], *,
            common: tuple = (), checkpoints: dict | None = None,
            hedge=None, **_ignored) -> list:
        if len(per_rank_args) != self.cluster.n_ranks:
            raise ValueError("need one args tuple per rank")

        def prog(ctx: RankContext):
            return (yield from program(ctx, *per_rank_args[ctx.rank],
                                       *common))

        return run_spmd(self.cluster, prog, checkpoints=checkpoints,
                        hedge=hedge)


# ---------------------------------------------------------------------------
# Worker-side pieces (must be module-level: shipped to spawn children)
# ---------------------------------------------------------------------------

class _Aborted(RuntimeError):
    """A peer failed; this rank unwound without completing the job."""


class _StridedSdc:
    """Reproduce the simulator's global SDC ordering on real ranks.

    ``FaultPlan.apply_sdc`` keys events off a single monotone counter.
    The simulated engine steps ranks 0..P-1 in order each round, so the
    k-th stage-boundary call on rank r is globally call ``k*P + r + 1``.
    Workers run concurrently and each holds its own plan copy, so this
    wrapper pins the counter to that global index before delegating —
    bit-for-bit the same strikes as the simulated backend.
    """

    def __init__(self, plan, rank: int, size: int):
        self._plan = plan
        self._rank = rank
        self._size = size
        self._calls = 0

    @property
    def has_sdc(self) -> bool:
        return self._plan.has_sdc

    def apply_sdc(self, data, *, rank: int = -1, stage: str = ""):
        self._plan.sdc_seen = self._calls * self._size + self._rank
        self._calls += 1
        return self._plan.apply_sdc(data, rank=rank, stage=stage)


class _WorkerComm:
    """Just enough Communicator surface for rank programs/verifiers."""

    def __init__(self, fault_plan):
        self.fault_plan = fault_plan
        self.deadline = None


class _WorkerCluster:
    """SimCluster stand-in inside a worker: real time, no charging."""

    def __init__(self, machine, fault_plan, size: int):
        self.machine = machine
        self.machines = [machine] * size
        self.n_ranks = size
        self.comm = _WorkerComm(fault_plan)
        self.metrics = NULL_REGISTRY

    def machine_of(self, rank: int):
        return self.machines[rank]

    def charge_seconds(self, rank: int, label: str, seconds: float,
                       category: str = "compute") -> None:
        pass  # wall time is measured by the engine, not modeled


@dataclass(frozen=True)
class _Job:
    """Everything a worker needs to run one rank of one program."""

    job_id: int
    program: Callable  # pickled by reference; must be module-level
    args: tuple  # per-rank args; ShmView entries resolve to views
    common: tuple = ()
    machine: Any = None
    fault_plan: Any = None  # SDC-only FaultPlan (or None)
    result_slot: ShmView | None = None
    staging_prefix: str = ""


@dataclass
class _RankSteps:
    """Measured wall-clock intervals of one rank's job."""

    steps: list = field(default_factory=list)  # (label, category, t0, t1)
    _mark: float = 0.0

    def open(self) -> None:
        self._mark = time.monotonic()

    def close(self, label: str, category: str) -> float:
        now = time.monotonic()
        if now - self._mark > 1e-7:
            self.steps.append((label, category, self._mark, now))
        self._mark = now
        return now


def _recv(mailbox, job_id: int, coll_idx: int, timeout: float):
    """One descriptor message off the mailbox, with abort handling."""
    try:
        msg = mailbox.get(timeout=timeout)
    except queue.Empty:
        raise _Aborted(f"no message within {timeout:.0f}s "
                       f"(collective {coll_idx})") from None
    if msg[0] == "abort":
        raise _Aborted(f"rank {msg[2]} aborted job {msg[1]}: {msg[3]}")
    jid, cidx, src, payload = msg
    if jid != job_id or cidx != coll_idx:
        raise SpmdError(
            f"collective mismatch: got (job {jid}, collective {cidx}) "
            f"while serving (job {job_id}, collective {coll_idx}) — "
            f"ranks disagree on the collective sequence")
    return src, payload


class _Outbox:
    """The rank-owned segment outgoing collective slices are packed into.

    Grown geometrically by generation; an old generation is unlinked at
    the next pack, which the entry barrier has made safe (every peer
    finished reading views of the previous collective before any rank
    reaches its own pack).
    """

    def __init__(self, prefix: str, pool: ShmPool):
        self._prefix = prefix
        self._pool = pool
        self._gen = -1
        self._name: str | None = None
        self._shm = None
        self._capacity = 0

    def pack(self, arrays: list[np.ndarray]) -> list[ShmView]:
        arrays = [np.ascontiguousarray(a) for a in arrays]
        total = sum(a.nbytes for a in arrays)
        if self._shm is None or total > self._capacity:
            cap = 1 << max(6, int(total - 1).bit_length() if total else 6)
            self._gen += 1
            name = f"{self._prefix}g{self._gen}"
            shm = self._pool.create(name, cap)
            if self._name is not None:
                self._pool.detach(self._name)  # peers keep their mappings
            self._shm, self._name, self._capacity = shm, name, cap
        views, off = [], 0
        for a in arrays:
            dst = np.ndarray(a.shape, dtype=a.dtype, buffer=self._shm.buf,
                             offset=off)
            np.copyto(dst, a)
            views.append(ShmView(self._name, off, tuple(a.shape),
                                 a.dtype.name))
            off += a.nbytes
        return views


def _serve_collective(req, coll_idx: int, rank: int, size: int, barrier,
                      mailboxes, pool: ShmPool, outbox: _Outbox,
                      timeout: float, job_id: int):
    """Run one collective for this rank; returns the resume payload."""
    try:
        barrier.wait(timeout)
    except threading.BrokenBarrierError:
        raise _Aborted("a peer broke the collective barrier") from None

    def post(dest: int, payload) -> None:
        mailboxes[dest].put((job_id, coll_idx, rank, payload))

    if isinstance(req, Barrier):
        return None

    if isinstance(req, AllToAll):
        per_dest = [np.ascontiguousarray(np.asarray(b))
                    for b in req.per_dest]
        if len(per_dest) != size:
            raise SpmdError("AllToAll needs one buffer per rank")
        descs = outbox.pack([per_dest[d] for d in range(size) if d != rank])
        it = iter(descs)
        for d in range(size):
            if d != rank:
                post(d, next(it))
        pieces: list = [None] * size
        pieces[rank] = per_dest[rank]
        for _ in range(size - 1):
            src, view = _recv(mailboxes[rank], job_id, coll_idx, timeout)
            pieces[src] = view.resolve(pool)
        return pieces

    if isinstance(req, SendRecvRing):
        to_left = np.ascontiguousarray(np.asarray(req.to_left))
        to_right = np.ascontiguousarray(np.asarray(req.to_right))
        if size == 1:
            return to_right, to_left
        d_left, d_right = outbox.pack([to_left, to_right])
        # tag with the direction the payload traveled: my to_right
        # arrives at rank+1 as its from_left ("R"), and vice versa
        post((rank - 1) % size, ("L", d_left))
        post((rank + 1) % size, ("R", d_right))
        from_left = from_right = None
        for _ in range(2):
            src, (tag, view) = _recv(mailboxes[rank], job_id, coll_idx,
                                     timeout)
            if tag == "R":
                from_left = view.resolve(pool)
            else:
                from_right = view.resolve(pool)
        return from_left, from_right

    if isinstance(req, Bcast):
        root = req.root
        if rank == root:
            if req.buf is None:
                raise SpmdError("bcast root provided no buffer")
            buf = np.ascontiguousarray(np.asarray(req.buf))
            if size > 1:
                (desc,) = outbox.pack([buf])
                for d in range(size):
                    if d != rank:
                        post(d, desc)
            return buf
        _, view = _recv(mailboxes[rank], job_id, coll_idx, timeout)
        return view.resolve(pool)

    raise SpmdError(f"unknown request type {type(req).__name__}")


def _run_rank(job: _Job, rank: int, size: int, barrier, mailboxes,
              pool: ShmPool, outbox: _Outbox, timeout: float):
    """Drive the rank generator to completion; returns (result, steps)."""
    args = tuple(a.resolve(pool) if isinstance(a, ShmView) else a
                 for a in job.args)
    fault_plan = job.fault_plan
    if fault_plan is not None:
        fault_plan = _StridedSdc(fault_plan, rank, size)
    cluster = _WorkerCluster(job.machine, fault_plan, size)
    gen = job.program(RankContext(rank, size, cluster), *args, *job.common)
    if not hasattr(gen, "send"):
        raise TypeError("program must be a generator function "
                        "(use 'yield' for collectives)")
    steps = _RankSteps()
    steps.open()
    coll_idx = 0
    payload = None
    try:
        while True:
            try:
                req = gen.send(payload)
            except StopIteration as stop:
                steps.close("epilogue", "compute")
                return stop.value, steps.steps
            payload = None
            if isinstance(req, Compute):
                # the simulator charges modeled seconds here; we record
                # the measured wall time of the work that preceded it
                steps.close(req.label, "compute")
                continue
            if isinstance(req, Checkpoint):
                # no parent-side stash: the process backend has no
                # simulated rank deaths to recover from
                steps.close("checkpoint", "compute")
                continue
            steps.close(f"{req.label} prep", "compute")
            payload = _serve_collective(req, coll_idx, rank, size, barrier,
                                        mailboxes, pool, outbox, timeout,
                                        job.job_id)
            coll_idx += 1
            steps.close(req.label, "mpi")
    finally:
        gen.close()


def _ship_result(result, slot: ShmView | None, pool: ShmPool):
    """Write array results into the parent's slot; pickle the rest."""
    if slot is not None and isinstance(result, np.ndarray) \
            and tuple(result.shape) == slot.shape \
            and result.dtype.name == slot.dtype:
        np.copyto(slot.resolve(pool, writeable=True), result)
        return "slot", None
    if slot is not None and isinstance(result, tuple) and result \
            and isinstance(result[0], np.ndarray) \
            and tuple(result[0].shape) == slot.shape \
            and result[0].dtype.name == slot.dtype:
        np.copyto(slot.resolve(pool, writeable=True), result[0])
        return "slot+rest", result[1:]
    return "pickle", result


def _worker_main(rank: int, size: int, token: str, job_q, result_q,
                 barrier, mailboxes, timeout: float) -> None:
    """Persistent worker loop: one process, one rank, many jobs."""
    pool = ShmPool()
    outbox = _Outbox(f"{token}o{rank}", pool)
    try:
        while True:
            raw = job_q.get()
            if raw is None:
                return
            job = pickle.loads(raw)
            try:
                result, steps = _run_rank(job, rank, size, barrier,
                                          mailboxes, pool, outbox, timeout)
                kind, rest = _ship_result(result, job.result_slot, pool)
                result_q.put((job.job_id, rank, "ok", kind, rest, steps))
            except _Aborted as exc:
                result_q.put((job.job_id, rank, "aborted", str(exc),
                              None, None))
            except BaseException as exc:  # noqa: BLE001 - forwarded
                barrier.abort()
                for d in range(size):
                    if d != rank:
                        mailboxes[d].put(("abort", job.job_id, rank,
                                          repr(exc)))
                try:
                    payload = pickle.dumps(exc)
                except Exception:
                    payload = pickle.dumps(RuntimeError(repr(exc)))
                result_q.put((job.job_id, rank, "error", payload,
                              traceback.format_exc(), None))
            finally:
                if job.staging_prefix:
                    pool.detach_prefix(job.staging_prefix)
    finally:
        pool.close()


# ---------------------------------------------------------------------------
# Parent-side backend
# ---------------------------------------------------------------------------

class ProcessBackend(ExecutionBackend):
    """Real-parallel executor: one persistent worker process per rank.

    Parameters
    ----------
    n_workers:
        SPMD size = number of worker processes (defaults to the CPUs
        this process may schedule on).
    start_method:
        ``"fork"`` (default on Linux: instant, shares planned tables
        copy-on-write) or ``"spawn"``.
    mailbox_timeout:
        Seconds a rank waits on a collective before declaring the job
        wedged; also bounds how long the parent waits for results.
    trace, metrics:
        Destinations for the measured per-rank wall-clock intervals.
        Defaults: a backend-owned :class:`~repro.cluster.trace.Trace`
        and the process-wide metrics registry.

    Use as a context manager (or call :meth:`close`) to release the
    workers and shared segments deterministically.
    """

    is_real = True

    def __init__(self, n_workers: int | None = None, *,
                 start_method: str = "fork",
                 mailbox_timeout: float = _MAILBOX_TIMEOUT_S,
                 trace: Trace | None = None, metrics=None):
        if n_workers is None:
            try:
                n_workers = len(os.sched_getaffinity(0))
            except AttributeError:  # pragma: no cover - non-Linux
                n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.size = int(n_workers)
        self.start_method = start_method
        self.mailbox_timeout = float(mailbox_timeout)
        self.trace = Trace() if trace is None else trace
        self.metrics = get_registry() if metrics is None else metrics
        self._token = f"rpb{os.getpid():x}{id(self) & 0xffff:x}"
        self._ctx = mp.get_context(start_method)
        self._procs: list = []
        self._job_qs: list = []
        self._result_q = None
        self._pool = ShmPool()
        self._job_counter = 0
        self._t_cursor = 0.0  # trace offset so successive jobs don't overlap

    # -- worker lifecycle ----------------------------------------------

    def _ensure_workers(self) -> None:
        if self._procs and all(p.is_alive() for p in self._procs):
            return
        if self._procs:
            self._teardown_workers()
        ctx = self._ctx
        barrier = ctx.Barrier(self.size)
        mailboxes = [ctx.Queue() for _ in range(self.size)]
        self._job_qs = [ctx.Queue() for _ in range(self.size)]
        self._result_q = ctx.Queue()
        self._procs = []
        for r in range(self.size):
            p = ctx.Process(
                target=_worker_main,
                args=(r, self.size, self._token, self._job_qs[r],
                      self._result_q, barrier, mailboxes,
                      self.mailbox_timeout),
                daemon=True, name=f"repro-rank-{r}")
            p.start()
            self._procs.append(p)
        self.metrics.gauge(
            "repro_backend_workers_count",
            "live worker processes of the ProcessBackend").set(self.size)

    def _teardown_workers(self) -> None:
        for q in self._job_qs:
            try:
                q.put(None)
            except Exception:
                pass
        for p in self._procs:
            p.join(timeout=2.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        for q in [*self._job_qs,
                  *( [self._result_q] if self._result_q is not None else [])]:
            q.close()
        self._procs, self._job_qs, self._result_q = [], [], None

    def close(self) -> None:
        self._teardown_workers()
        self._pool.close()
        try:
            self.metrics.gauge("repro_backend_workers_count").set(0)
        except Exception:
            pass

    # -- job execution -------------------------------------------------

    def run(self, program: Callable, per_rank_args: list[tuple], *,
            common: tuple = (), machine=None, fault_plan=None,
            result_spec: tuple | None = None, label: str = "spmd job",
            checkpoints: dict | None = None, hedge=None, **_ignored) -> list:
        """Run *program* on every rank; returns per-rank results.

        ``per_rank_args[r]`` may contain ndarrays — they are staged
        through shared memory, and the rank receives zero-copy views.
        ``result_spec=(shape, dtype)`` pre-allocates a shared result
        slot per rank for array(-first) results, avoiding a pickle of
        the output.  ``fault_plan`` must be SDC-only (wire faults are a
        property of the simulated fabric).  ``hedge`` is unsupported
        here (real stragglers are measured, not modeled); ``checkpoints``
        is accepted but stays empty — there are no simulated rank deaths
        to restart from.
        """
        if len(per_rank_args) != self.size:
            raise ValueError(f"need one args tuple per rank "
                             f"(got {len(per_rank_args)}, size {self.size})")
        if hedge is not None:
            raise ValueError("ProcessBackend does not support hedging: "
                             "stragglers are real, not modeled")
        if fault_plan is not None and not _sdc_only(fault_plan):
            raise ValueError("ProcessBackend supports SDC-only fault "
                             "plans; wire faults belong to the simulator")
        self._ensure_workers()
        self._job_counter += 1
        jid = self._job_counter
        staging_prefix = f"{self._token}j{jid}"

        # stage per-rank ndarray args zero-copy through one segment
        arrays, slots = [], []
        for r, args in enumerate(per_rank_args):
            for i, a in enumerate(args):
                if isinstance(a, np.ndarray):
                    arrays.append(a)
                    slots.append((r, i))
        staged = [list(args) for args in per_rank_args]
        if arrays:
            views = self._pool.place(staging_prefix + "i", arrays)
            for (r, i), v in zip(slots, views):
                staged[r][i] = v

        result_views: list[ShmView | None] = [None] * self.size
        result_arrays: list[np.ndarray | None] = [None] * self.size
        if result_spec is not None:
            shape, dtype = result_spec
            # per-rank slots inside one segment; workers write, we copy out
            dt = np.dtype(dtype)
            per = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
            shm = self._pool.create(staging_prefix + "r",
                                    max(1, per * self.size))
            for r in range(self.size):
                result_views[r] = ShmView(staging_prefix + "r", r * per,
                                          tuple(shape), dt.name)
                result_arrays[r] = np.ndarray(tuple(shape), dtype=dt,
                                              buffer=shm.buf,
                                              offset=r * per)

        try:
            # pickle eagerly: a queue feeder thread swallows pickling
            # errors, turning an unpicklable program into a silent hang
            try:
                payloads = [pickle.dumps(_Job(
                    job_id=jid, program=program, args=tuple(staged[r]),
                    common=common, machine=machine, fault_plan=fault_plan,
                    result_slot=result_views[r],
                    staging_prefix=staging_prefix))
                    for r in range(self.size)]
            except Exception as exc:
                raise ValueError(
                    "job does not pickle — the program must be a "
                    "module-level generator function and every argument "
                    "picklable (closures and lambdas are not)") from exc
            for r in range(self.size):
                self._job_qs[r].put(payloads[r])

            outcomes: dict[int, tuple] = {}
            errors: list[tuple] = []
            deadline = time.monotonic() + self.mailbox_timeout + 30.0
            try:
                while len(outcomes) < self.size:
                    try:
                        msg = self._result_q.get(
                            timeout=max(0.1, deadline - time.monotonic()))
                    except queue.Empty:
                        raise RuntimeError(
                            f"workers unresponsive after "
                            f"{self.mailbox_timeout:.0f}s (job {jid}: ranks "
                            f"{sorted(set(range(self.size)) - set(outcomes))} "
                            f"missing)") from None
                    mjid, rank, status, *rest = msg
                    if mjid != jid:
                        continue  # residue of a previously failed job
                    outcomes[rank] = (status, *rest)
                    if status == "error":
                        errors.append((rank, rest[0], rest[1]))
            except BaseException:
                self._teardown_workers()
                raise
            if errors:
                self._teardown_workers()
                rank, payload, tb = min(errors, key=lambda e: e[0])
                exc = pickle.loads(payload)
                raise exc from RuntimeError(
                    f"rank {rank} failed; worker traceback:\n{tb}")
            if any(status != "ok" for status, *_ in outcomes.values()):
                self._teardown_workers()
                bad = {r: o[0] for r, o in outcomes.items() if o[0] != "ok"}
                raise RuntimeError(f"job aborted without a root error: {bad}")

            results: list = [None] * self.size
            for r, (status, kind, rest, steps) in sorted(outcomes.items()):
                if kind == "slot":
                    results[r] = result_arrays[r].copy()
                elif kind == "slot+rest":
                    results[r] = (result_arrays[r].copy(), *rest)
                else:
                    results[r] = rest
            self._fold_telemetry(jid, label,
                                 {r: o[3] for r, o in outcomes.items()})
            return results
        finally:
            del result_arrays  # views die before their segment unlinks
            self._pool.detach_prefix(staging_prefix)

    # -- telemetry -----------------------------------------------------

    def _fold_telemetry(self, jid: int, label: str,
                        steps_by_rank: dict[int, list]) -> None:
        all_steps = [s for steps in steps_by_rank.values() for s in steps]
        if not all_steps:
            return
        t0 = min(s[2] for s in all_steps)
        t1 = max(s[3] for s in all_steps)
        base = self._t_cursor - t0
        rec = self.trace.recorder
        for rank, steps in sorted(steps_by_rank.items()):
            lo = min(s[2] for s in steps) if steps else t0
            hi = max(s[3] for s in steps) if steps else t0
            scope = rec.begin(rank, label, "other", base + lo,
                              attributes={"job": jid, "measured": True})
            for slabel, category, s0, s1 in steps:
                self.trace.record(rank, slabel, category,
                                  base + s0, base + s1)
            rec.end(scope, base + hi)
        self._t_cursor = base + t1
        m = self.metrics
        m.counter("repro_backend_jobs_total",
                  "jobs completed by the process backend").inc()
        m.counter("repro_backend_wall_seconds_total",
                  "max-over-ranks measured job wall seconds").inc(t1 - t0)
        for cat, metric in (("compute", "repro_backend_compute_seconds_total"),
                            ("mpi", "repro_backend_exchange_seconds_total")):
            secs = sum(s[3] - s[2] for s in all_steps if s[1] == cat)
            m.counter(metric,
                      f"summed per-rank measured {cat} seconds").inc(secs)


def _sdc_only(plan) -> bool:
    """True when a FaultPlan carries nothing the real fabric can't do."""
    return (not getattr(plan, "corrupt_messages", ())
            and not getattr(plan, "timeout_messages", ())
            and not getattr(plan, "rank_failures", {})
            and not getattr(plan, "stragglers", {})
            and not getattr(plan, "jitter", 0.0))

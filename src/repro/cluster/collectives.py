"""All-to-all exchange algorithms: pairwise and Bruck.

The single ``Communicator.alltoall`` treats the exchange as one collective
with a cost model.  Real MPI implementations choose among *algorithms*
whose step counts and per-step message sizes differ — and that choice is
exactly what bites the paper at scale ("shorter packets in large clusters
... is a challenge for sustaining a high mpi bandwidth", §6.1, and the
acknowledgement's "tuning of mpi parameters"):

* **pairwise exchange**: P-1 rounds; in round k rank r trades its block
  directly with rank ``r XOR k`` (or ``r +- k``).  Messages keep their
  natural size; latency cost grows linearly in P.
* **Bruck**: ceil(log2 P) rounds of aggregated messages of ~half the
  total volume each.  Latency cost is logarithmic — the right choice for
  the short-message regime — at the price of forwarding each byte
  ~log2(P)/2 times.

Both are implemented as *data-moving* schedules over per-rank buffers
(results asserted identical to the direct exchange) plus closed-form cost
estimates under a :class:`~repro.cluster.network.NetworkSpec`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.network import NetworkSpec

__all__ = [
    "alltoall_bruck",
    "alltoall_pairwise",
    "bruck_time",
    "pairwise_time",
    "recommend_algorithm",
]


def _validate(blocks: list[list[np.ndarray]]) -> int:
    p = len(blocks)
    if any(len(row) != p for row in blocks):
        raise ValueError("blocks must be a PxP nested list")
    return p


def alltoall_pairwise(blocks: list[list[np.ndarray]]
                      ) -> tuple[list[list[np.ndarray]], int]:
    """Pairwise-exchange all-to-all: returns (recv, n_rounds).

    ``recv[dst][src] = blocks[src][dst]``; executes P-1 explicit rounds
    (ring offsets), moving real data each round so the schedule is
    faithful, not just its endpoint.
    """
    p = _validate(blocks)
    recv: list[list[np.ndarray]] = [[None] * p for _ in range(p)]
    for r in range(p):
        recv[r][r] = np.array(blocks[r][r], copy=True)
    rounds = 0
    for k in range(1, p):
        rounds += 1
        for r in range(p):
            partner = (r + k) % p
            # r sends its block for `partner`; receives from (r - k) % p
            recv[partner][r] = np.array(blocks[r][partner], copy=True)
    return recv, rounds


def alltoall_bruck(blocks: list[list[np.ndarray]]
                   ) -> tuple[list[list[np.ndarray]], int]:
    """Bruck all-to-all: returns (recv, n_rounds), rounds = ceil(log2 P).

    Executes the genuine Bruck schedule: local rotation, log2(P) rounds of
    aggregated store-and-forward shifts (each byte may travel through
    intermediate ranks), final inverse rotation.  The result equals the
    direct exchange; the point is the step structure.
    """
    p = _validate(blocks)
    if p == 1:
        return [[np.array(blocks[0][0], copy=True)]], 0
    # phase 1: local rotation — rank r holds blocks for (dst - r) mod p
    # indexed by relative offset
    hold: list[list[np.ndarray]] = [
        [np.array(blocks[r][(r + off) % p], copy=True) for off in range(p)]
        for r in range(p)
    ]
    rounds = 0
    k = 1
    while k < p:
        rounds += 1
        # every rank sends the blocks whose offset has bit k set to
        # rank (r + k); they arrive still indexed by offset
        staged = [[None] * p for _ in range(p)]
        for r in range(p):
            dst = (r + k) % p
            for off in range(p):
                if off & k:
                    staged[dst][off] = hold[r][off]
        for r in range(p):
            for off in range(p):
                if staged[r][off] is not None:
                    hold[r][off] = np.array(staged[r][off], copy=True)
        k <<= 1
    # phase 3: inverse rotation into recv[dst][src] layout.
    # after forwarding, rank r's offset-`off` slot holds the block sent by
    # rank (r - off) mod p destined for rank r... derive: block[src][dst]
    # started at src in slot off0 = (dst - src) mod p and moved by the sum
    # of applied shifts = off0, landing at rank (src + off0) = dst.
    recv: list[list[np.ndarray]] = [[None] * p for _ in range(p)]
    for dst in range(p):
        for off in range(p):
            src = (dst - off) % p
            recv[dst][src] = np.array(hold[dst][off], copy=True)
    return recv, rounds


# -- cost models ------------------------------------------------------------


def pairwise_time(network: NetworkSpec, nodes: int, bytes_per_pair: float
                  ) -> float:
    """(P-1) rounds of single-block messages."""
    if nodes <= 1 or bytes_per_pair == 0:
        return 0.0
    return (nodes - 1) * network.message_time(bytes_per_pair, nodes)


def bruck_time(network: NetworkSpec, nodes: int, bytes_per_pair: float
               ) -> float:
    """ceil(log2 P) rounds, each moving ~P/2 aggregated blocks."""
    if nodes <= 1 or bytes_per_pair == 0:
        return 0.0
    rounds = math.ceil(math.log2(nodes))
    per_round = (nodes / 2.0) * bytes_per_pair
    return rounds * network.message_time(per_round, nodes)


def recommend_algorithm(network: NetworkSpec, nodes: int,
                        bytes_per_pair: float) -> str:
    """'bruck' for the latency-bound short-message regime, else 'pairwise'.

    This is the decision the paper's segment-count tuning dances around:
    fewer segments lengthen packets, which pushes the exchange back into
    pairwise/bandwidth territory.
    """
    if nodes <= 1:
        return "pairwise"
    tb = bruck_time(network, nodes, bytes_per_pair)
    tp = pairwise_time(network, nodes, bytes_per_pair)
    return "bruck" if tb < tp else "pairwise"

"""Timeline events for simulated distributed runs.

Every compute kernel and communication operation performed on a
:class:`~repro.cluster.simcluster.SimCluster` appends an :class:`Event`.
The benches aggregate these into the execution-time breakdowns of the
paper's Fig 9 (local FFT / convolution / exposed MPI / etc.) and the
timing diagrams of Fig 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Event", "Trace", "CATEGORIES"]

#: Canonical event categories used by the breakdown benches.  ``"retry"``
#: holds fault-recovery cost: backoff waits, re-flown transfers charged
#: by the communicator's verified path (see :mod:`repro.cluster.faults`),
#: and ABFT repair recomputes (see :mod:`repro.verify`).  ``"hedge"``
#: holds speculative duplicate execution launched by the straggler
#: watchdog (:class:`repro.verify.HedgePolicy`) — time a helper rank
#: spent racing a slow rank's task.  ``"deadline"`` holds simulated time
#: a request ran *past* its per-request deadline before the overrun was
#: detected at a stage boundary (see :mod:`repro.resilience`).
CATEGORIES = ("compute", "mpi", "pcie", "retry", "hedge", "other",
              "deadline")


@dataclass(frozen=True)
class Event:
    """One timed activity on one rank."""

    rank: int
    label: str
    category: str
    t_start: float
    t_end: float
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"category must be one of {CATEGORIES}")
        if self.t_end < self.t_start:
            raise ValueError("event ends before it starts")

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Trace:
    """Ordered collection of events with aggregation helpers."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def add(self, event: Event) -> None:
        self.events.append(event)

    def record(self, rank: int, label: str, category: str, t_start: float,
               t_end: float, nbytes: int = 0) -> Event:
        ev = Event(rank, label, category, t_start, t_end, nbytes)
        self.add(ev)
        return ev

    @property
    def span(self) -> float:
        """Wall-clock extent of the trace (max end - min start)."""
        if not self.events:
            return 0.0
        return max(e.t_end for e in self.events) - min(e.t_start for e in self.events)

    def total(self, category: str | None = None, rank: int | None = None,
              label: str | None = None) -> float:
        """Summed duration of matching events (may double-count overlap)."""
        t = 0.0
        for e in self.events:
            if category is not None and e.category != category:
                continue
            if rank is not None and e.rank != rank:
                continue
            if label is not None and e.label != label:
                continue
            t += e.duration
        return t

    def breakdown_by_label(self, rank: int | None = None) -> dict[str, float]:
        """label -> summed duration (optionally for a single rank)."""
        out: dict[str, float] = {}
        for e in self.events:
            if rank is not None and e.rank != rank:
                continue
            out[e.label] = out.get(e.label, 0.0) + e.duration
        return out

    def bytes_by_category(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.category] = out.get(e.category, 0) + e.nbytes
        return out

    def rank_events(self, rank: int) -> list[Event]:
        return [e for e in self.events if e.rank == rank]

    def exposed_time(self, rank: int, category: str = "mpi",
                     against: str = "compute") -> float:
        """Duration of *category* intervals not overlapped by *against*.

        This is the paper's "exposed MPI": communication time that could
        not be hidden behind computation on the same rank.
        """
        comm = sorted(
            (e.t_start, e.t_end) for e in self.events
            if e.rank == rank and e.category == category
        )
        comp = sorted(
            (e.t_start, e.t_end) for e in self.events
            if e.rank == rank and e.category == against
        )
        exposed = 0.0
        for c0, c1 in comm:
            covered = 0.0
            for p0, p1 in comp:
                lo, hi = max(c0, p0), min(c1, p1)
                if hi > lo:
                    covered += hi - lo
            exposed += max(0.0, (c1 - c0) - covered)
        return exposed

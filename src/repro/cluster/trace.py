"""Timeline events for simulated distributed runs.

Every compute kernel and communication operation performed on a
:class:`~repro.cluster.simcluster.SimCluster` appends an :class:`Event`.
The benches aggregate these into the execution-time breakdowns of the
paper's Fig 9 (local FFT / convolution / exposed MPI / etc.) and the
timing diagrams of Fig 12.

Since the telemetry subsystem landed, the flat event list is a
*projection*: the source of truth is a hierarchical
:class:`~repro.telemetry.spans.SpanRecorder` (``trace.recorder``), where
each :meth:`Trace.record` call becomes a leaf "charge" span, parented
under whatever scope span (a request, an SPMD step) is open on that
rank.  Flat consumers — ``total``, ``breakdown_by_label``,
``exposed_time``, the gantt renderer, every bench — keep working
unchanged on ``trace.events``; hierarchical consumers (the Chrome trace
export, per-request attribution) read ``trace.recorder`` directly.  By
construction the flat projection and the span tree account the same
seconds: scope spans carry no charged time of their own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.spans import SpanRecorder

__all__ = ["Event", "Trace", "CATEGORIES"]

#: Canonical event categories used by the breakdown benches.  ``"retry"``
#: holds fault-recovery cost: backoff waits, re-flown transfers charged
#: by the communicator's verified path (see :mod:`repro.cluster.faults`),
#: and ABFT repair recomputes (see :mod:`repro.verify`).  ``"hedge"``
#: holds speculative duplicate execution launched by the straggler
#: watchdog (:class:`repro.verify.HedgePolicy`) — time a helper rank
#: spent racing a slow rank's task.  ``"deadline"`` holds simulated time
#: a request ran *past* its per-request deadline before the overrun was
#: detected at a stage boundary (see :mod:`repro.resilience`).
#: ``"partition"`` holds time stalled on (and ranks cut off by) a fabric
#: partition — visually distinct from ordinary retries so a network
#: split reads differently from a flaky link in the Gantt lanes.
CATEGORIES = ("compute", "mpi", "pcie", "retry", "hedge", "other",
              "deadline", "partition")


@dataclass(frozen=True)
class Event:
    """One timed activity on one rank."""

    rank: int
    label: str
    category: str
    t_start: float
    t_end: float
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"category must be one of {CATEGORIES}")
        if self.t_end < self.t_start:
            raise ValueError("event ends before it starts")

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Trace:
    """Ordered collection of events with aggregation helpers.

    ``recorder`` (a :class:`~repro.telemetry.spans.SpanRecorder`) holds
    the span tree this flat view projects; pass one in to share a
    recorder across traces, or let the trace own a fresh one.
    """

    def __init__(self, recorder: SpanRecorder | None = None) -> None:
        self.recorder = SpanRecorder() if recorder is None else recorder
        self._flat: list[Event] = []

    @property
    def events(self) -> list[Event]:
        """Flat projection of the recorder's charge spans (cached)."""
        charges = self.recorder.charges
        if len(self._flat) != len(charges):
            self._flat.extend(
                Event(s.rank, s.name, s.category, s.t_start, s.t_end,
                      s.nbytes)
                for s in charges[len(self._flat):])
        return self._flat

    def add(self, event: Event) -> None:
        self.recorder.record(event.rank, event.label, event.category,
                             event.t_start, event.t_end, event.nbytes)
        if len(self._flat) == len(self.recorder.charges) - 1:
            self._flat.append(event)

    def record(self, rank: int, label: str, category: str, t_start: float,
               t_end: float, nbytes: int = 0) -> Event:
        ev = Event(rank, label, category, t_start, t_end, nbytes)
        self.add(ev)
        return ev

    @property
    def span(self) -> float:
        """Wall-clock extent of the trace (max end - min start)."""
        events = self.events
        if not events:
            return 0.0
        return max(e.t_end for e in events) - min(e.t_start for e in events)

    def total(self, category: str | None = None, rank: int | None = None,
              label: str | None = None) -> float:
        """Summed duration of matching events (may double-count overlap)."""
        t = 0.0
        for e in self.events:
            if category is not None and e.category != category:
                continue
            if rank is not None and e.rank != rank:
                continue
            if label is not None and e.label != label:
                continue
            t += e.duration
        return t

    def breakdown_by_label(self, rank: int | None = None) -> dict[str, float]:
        """label -> summed duration (optionally for a single rank)."""
        out: dict[str, float] = {}
        for e in self.events:
            if rank is not None and e.rank != rank:
                continue
            out[e.label] = out.get(e.label, 0.0) + e.duration
        return out

    def bytes_by_category(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.category] = out.get(e.category, 0) + e.nbytes
        return out

    def rank_events(self, rank: int) -> list[Event]:
        return [e for e in self.events if e.rank == rank]

    def exposed_time(self, rank: int, category: str = "mpi",
                     against: str = "compute") -> float:
        """Duration of *category* intervals not overlapped by *against*.

        This is the paper's "exposed MPI": communication time that could
        not be hidden behind computation on the same rank.  The
        *against* intervals are merged into a disjoint union before
        subtracting, so overlapping compute events (hedged duplicates,
        re-executed stages) cannot cover one comm interval twice; the
        subtraction then runs as a single two-pointer sweep over the
        sorted interval lists instead of an O(n*m) cross scan.
        """
        comm = sorted(
            (e.t_start, e.t_end) for e in self.events
            if e.rank == rank and e.category == category
        )
        if not comm:
            return 0.0
        cover = _merge_intervals(sorted(
            (e.t_start, e.t_end) for e in self.events
            if e.rank == rank and e.category == against
        ))
        exposed = 0.0
        i = 0
        for c0, c1 in comm:
            # comm is sorted by start, so cover entirely left of this
            # interval stays left of every later one too
            while i < len(cover) and cover[i][1] <= c0:
                i += 1
            covered = 0.0
            j = i
            while j < len(cover) and cover[j][0] < c1:
                covered += min(c1, cover[j][1]) - max(c0, cover[j][0])
                j += 1
            exposed += (c1 - c0) - covered
        return exposed


def _merge_intervals(intervals: list[tuple[float, float]]
                     ) -> list[tuple[float, float]]:
    """Union of sorted (start, end) intervals as a disjoint sorted list."""
    merged: list[tuple[float, float]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1]:
            last_lo, last_hi = merged[-1]
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged

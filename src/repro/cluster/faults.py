"""Unified fault scheduling for the simulated cluster.

Large installations corrupt payloads, drop messages, and lose whole nodes
(the paper's acknowledgements credit the Stampede/Endeavor teams with
"resolving cluster instability in early installations of new hardware").
This module is the single source of truth for *when* the simulated fabric
misbehaves:

* :class:`FaultPlan` — a deterministic (seeded) schedule of in-flight
  corruption, message timeouts, whole-rank failures, compute noise
  (stragglers/jitter), and — because at 10^3-10^4 ranks failures are
  *correlated* — degraded links (:class:`LinkDegradation`), flapping
  links (:class:`FlappingLink`), whole fault domains dying together
  (:meth:`FaultPlan.fail_domain`), and fabric partitions
  (:class:`PartitionEvent`).
* :class:`RetryPolicy` — how hard the
  :class:`~repro.cluster.communicator.Communicator` fights back: retries
  with exponential backoff, a detection timeout, and the retry budget
  after which an unresponsive rank is declared dead.
* The failure taxonomy: :class:`CorruptionDetected` (checksum mismatch),
  :class:`RetriesExhausted` (transient faults outlasted the budget), and
  :class:`RankFailed` (a rank declared dead — recoverable by the
  algorithm layer's shrink-and-redistribute path).

Time spent recovering — re-flown transfers and backoff waits — is charged
to the :class:`~repro.cluster.trace.Trace` under the ``"retry"`` event
category, so Fig-9-style breakdowns show the cost of resilience.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CollectiveFailure",
    "CorruptionDetected",
    "FaultPlan",
    "FlappingLink",
    "LinkDegradation",
    "PartitionDetected",
    "PartitionEvent",
    "ProcessFault",
    "ProcessFaultPlan",
    "RankFailed",
    "RetriesExhausted",
    "RetryPolicy",
    "SdcEvent",
    "chaos_cluster",
    "checksum",
]


def checksum(a: np.ndarray) -> int:
    """CRC32 of an array's raw bytes (cheap, order-sensitive)."""
    return zlib.crc32(np.ascontiguousarray(a).tobytes())


class CollectiveFailure(RuntimeError):
    """Base class for failures surfaced by the verified collective path."""


class CorruptionDetected(CollectiveFailure):
    """An in-flight payload failed its checksum at the receiver."""


class RetriesExhausted(CollectiveFailure):
    """Transient faults persisted past the retry budget (no dead rank)."""


class RankFailed(CollectiveFailure):
    """A rank stayed unresponsive past the retry budget and was declared
    dead.  Algorithm layers catch this and shrink onto the survivors."""

    def __init__(self, rank: int, message: str):
        super().__init__(message)
        self.rank = rank


class PartitionDetected(CollectiveFailure):
    """The fabric split into disconnected components mid-collective.

    Raised by the verified path when cross-component routes stay dead
    past the retry budget (liveness signal) or when their breakers trip
    (fast path).  Carries the **component census**: ``components`` is
    the full partition of the participating ranks, ``component`` the
    component from whose perspective the error is raised — the majority
    side catches this and shrinks onto its own component
    (quorum-checked); minority components abort with it.
    """

    def __init__(self, message: str,
                 components: tuple[tuple[int, ...], ...] = (),
                 component: tuple[int, ...] = ()):
        super().__init__(message)
        self.components = tuple(tuple(sorted(c)) for c in components)
        self.component = tuple(sorted(component))

    @property
    def census(self) -> dict[int, int]:
        """rank -> component id, for every rank named in the census."""
        return {r: i for i, comp in enumerate(self.components)
                for r in comp}


@dataclass(frozen=True)
class LinkDegradation:
    """One directed link running below spec without being down.

    ``bandwidth_factor`` scales the link's realized bandwidth (0.25 =
    the link runs at a quarter rate, so collectives crossing it take
    4x the modeled wire time); ``loss_rate`` is the per-attempt
    probability that a payload on the link is dropped (surfacing as a
    timeout the verified path retries through).
    """

    bandwidth_factor: float = 1.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be a probability")


@dataclass(frozen=True)
class FlappingLink:
    """A directed link driven by a deterministic on/off process.

    The link is *up* for the first ``round(duty * period)`` transfer
    slots of every ``period``-transfer cycle (shifted by ``phase``) and
    down for the rest.  Payloads attempted while it is down time out;
    a retry that lands after the link flaps back up heals the
    collective, so short flaps cost backoff time while long ones
    escalate through the normal taxonomy.
    """

    period: int
    duty: float = 0.5
    phase: int = 0

    def __post_init__(self) -> None:
        if self.period < 2:
            raise ValueError("flap period must span at least 2 transfers")
        if not 0.0 < self.duty < 1.0:
            raise ValueError("duty must be in (0, 1) — always-up/down "
                             "links are not flapping")
        if self.phase < 0:
            raise ValueError("phase must be non-negative")

    def up_at(self, transfer: int) -> bool:
        """Is the link up during 1-based transfer slot *transfer*?"""
        up_slots = max(1, min(self.period - 1,
                              int(round(self.duty * self.period))))
        return (transfer + self.phase) % self.period < up_slots


@dataclass(frozen=True)
class PartitionEvent:
    """A seeded fabric split: from transfer ``at_transfer`` onward every
    route crossing component boundaries is dead.

    ``components`` partitions the rank ids into connected islands.
    Ranks not named in any component are isolated (they can reach no
    one).  ``heal_at``, if set, restores full connectivity from that
    transfer onward — a transient partition the retry path can ride
    out when it is shorter than the retry budget.
    """

    at_transfer: int
    components: tuple[tuple[int, ...], ...]
    heal_at: int | None = None

    def __post_init__(self) -> None:
        if self.at_transfer < 1:
            raise ValueError("transfer indices are 1-based")
        if len(self.components) < 2:
            raise ValueError("a partition needs at least two components")
        seen: set[int] = set()
        for comp in self.components:
            if not comp:
                raise ValueError("empty partition component")
            if seen & set(comp):
                raise ValueError("partition components must be disjoint")
            seen |= set(comp)
        if self.heal_at is not None and self.heal_at <= self.at_transfer:
            raise ValueError("heal_at must come after at_transfer")

    def active_at(self, transfer: int) -> bool:
        if transfer < self.at_transfer:
            return False
        return self.heal_at is None or transfer < self.heal_at

    def component_of(self, rank: int) -> int:
        """Component id of *rank*; -1 for ranks outside every component."""
        for i, comp in enumerate(self.components):
            if rank in comp:
                return i
        return -1


@dataclass(frozen=True)
class SdcEvent:
    """One injected silent data corruption (ground truth for coverage).

    Recorded in :attr:`FaultPlan.sdc_log` when :meth:`FaultPlan.apply_sdc`
    fires, so detection-coverage sweeps can compare what the ABFT layer
    *reported* against what was *actually* injected."""

    index: int  # 1-based slot in the SDC schedule
    rank: int  # rank whose stage output was corrupted
    stage: str  # pipeline stage name ("conv", "segment-fft", ...)
    element: int  # flat index of the corrupted element
    amplitude: float  # perturbation magnitude relative to the array rms


class RetryPolicy:
    """Retry-with-exponential-backoff parameters for collectives.

    ``max_retries = 0`` is detect-only mode: the first observed fault
    raises immediately instead of being retried.
    ``timeout_seconds`` is the detection stall charged whenever an attempt
    contains a timed-out or unresponsive route; ``backoff(k)`` is the wait
    before re-attempt k (0-based), growing geometrically.
    """

    def __init__(self, max_retries: int = 3, backoff_base: float = 50e-6,
                 backoff_factor: float = 2.0,
                 timeout_seconds: float = 1e-3):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_base < 0 or backoff_factor < 1.0:
            raise ValueError("need backoff_base >= 0 and backoff_factor >= 1")
        if timeout_seconds < 0:
            raise ValueError("timeout_seconds must be non-negative")
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.timeout_seconds = timeout_seconds

    def backoff(self, attempt: int) -> float:
        """Backoff wait (seconds) before re-attempt *attempt* (0-based)."""
        return self.backoff_base * self.backoff_factor ** attempt


class FaultPlan:
    """A deterministic schedule of faults for one simulated run.

    The plan is indexed by two monotone counters that the communicator's
    verified path advances:

    * the **wire-message index** — 1-based count of non-self payloads
      inspected, in collective order, src-major within each collective,
      retries included (so a transient fault scheduled at index *i* hits
      exactly one attempt and the retry heals it);
    * the **transfer index** — 1-based count of wire transfers (each
      attempt of each collective).  ``rank_failures[r] = t`` makes rank
      *r* unresponsive from transfer *t* onward; after
      :attr:`RetryPolicy.max_retries` the communicator declares it dead.

    ``stragglers``/``jitter`` describe compute-side noise, applied by
    :func:`chaos_cluster` through :class:`~repro.cluster.noise.NoiseModel`
    so communication and compute chaos share one schedule object.

    The schedule is immutable; the ``*_seen``/``*_injected`` attributes
    are runtime counters (call :meth:`reset` to reuse a plan).  Two plans
    built from the same arguments produce bitwise-identical traces on the
    same workload.
    """

    def __init__(self, corrupt_messages=(), timeout_messages=(),
                 rank_failures: dict[int, int] | None = None,
                 stragglers: dict[int, float] | None = None,
                 jitter: float = 0.0, seed: int = 0,
                 sdc_events: dict[int, float] | None = None,
                 degraded_links: dict[tuple[int, int],
                                      LinkDegradation] | None = None,
                 flapping_links: dict[tuple[int, int],
                                      FlappingLink] | None = None,
                 partition: PartitionEvent | None = None):
        self.corrupt_messages = frozenset(int(i) for i in corrupt_messages)
        self.timeout_messages = frozenset(int(i) for i in timeout_messages)
        self.rank_failures = {int(r): int(t)
                              for r, t in (rank_failures or {}).items()}
        self.stragglers = dict(stragglers or {})
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.sdc_events = {int(i): float(a)
                           for i, a in (sdc_events or {}).items()}
        self.degraded_links = {(int(s), int(d)): deg
                               for (s, d), deg in
                               (degraded_links or {}).items()}
        self.flapping_links = {(int(s), int(d)): fl
                               for (s, d), fl in
                               (flapping_links or {}).items()}
        self.partition = partition
        if any(i < 1 for i in self.corrupt_messages | self.timeout_messages):
            raise ValueError("message indices are 1-based")
        if self.corrupt_messages & self.timeout_messages:
            raise ValueError("a message cannot both corrupt and time out")
        if any(t < 1 for t in self.rank_failures.values()):
            raise ValueError("transfer indices are 1-based")
        if self.jitter < 0 or any(s < 0 for s in self.stragglers.values()):
            raise ValueError("noise terms must be non-negative")
        if any(i < 1 for i in self.sdc_events):
            raise ValueError("SDC indices are 1-based")
        if any(a <= 0 for a in self.sdc_events.values()):
            raise ValueError("SDC amplitudes must be positive")
        if any(not isinstance(d, LinkDegradation)
               for d in self.degraded_links.values()):
            raise TypeError("degraded_links values must be LinkDegradation")
        if any(not isinstance(f, FlappingLink)
               for f in self.flapping_links.values()):
            raise TypeError("flapping_links values must be FlappingLink")
        if partition is not None \
                and not isinstance(partition, PartitionEvent):
            raise TypeError("partition must be a PartitionEvent")
        self.reset()

    # -- construction -------------------------------------------------------

    @classmethod
    def random(cls, seed: int, n_ranks: int, *, corrupt_rate: float = 0.0,
               timeout_rate: float = 0.0, n_rank_failures: int = 0,
               horizon_messages: int = 4096, horizon_transfers: int = 64,
               min_survivors: int = 1, jitter: float = 0.0,
               n_stragglers: int = 0, straggler_slowdown: float = 1.0,
               sdc_rate: float = 0.0, sdc_amplitude: float = 1.0,
               horizon_sdc: int = 256) -> "FaultPlan":
        """Draw a seeded schedule: per-message Bernoulli corruption and
        timeout over the first *horizon_messages* wire payloads, plus
        *n_rank_failures* distinct ranks failing at uniform transfer
        indices (capped so at least *min_survivors* ranks remain).
        ``sdc_rate`` adds per-slot Bernoulli silent data corruption over
        the first *horizon_sdc* compute-stage outputs, each perturbing
        one element by ``sdc_amplitude`` times the array rms (the
        compute-side analogue of ``corrupt_rate`` — invisible to wire
        checksums, the ABFT layer's problem to catch)."""
        if not 0 <= corrupt_rate <= 1 or not 0 <= timeout_rate <= 1 \
                or not 0 <= sdc_rate <= 1:
            raise ValueError("rates must be probabilities (in [0, 1])")
        if n_rank_failures < 0 or n_stragglers < 0:
            raise ValueError("fault counts must be non-negative")
        if min_survivors < 0:
            raise ValueError("min_survivors must be non-negative")
        if horizon_messages < 0 or horizon_transfers < 0 or horizon_sdc < 0:
            raise ValueError("horizons must be non-negative")
        if straggler_slowdown < 0:
            raise ValueError("straggler_slowdown must be non-negative")
        rng = np.random.default_rng(seed)
        draws = rng.random(horizon_messages)
        corrupt = {i + 1 for i in range(horizon_messages)
                   if draws[i] < corrupt_rate}
        draws_t = rng.random(horizon_messages)
        timeouts = {i + 1 for i in range(horizon_messages)
                    if draws_t[i] < timeout_rate and (i + 1) not in corrupt}
        n_fail = min(n_rank_failures, max(0, n_ranks - min_survivors))
        failures: dict[int, int] = {}
        if n_fail:
            ranks = rng.choice(n_ranks, size=n_fail, replace=False)
            times = rng.integers(1, max(2, horizon_transfers), size=n_fail)
            failures = {int(r): int(t) for r, t in zip(ranks, times)}
        stragglers: dict[int, float] = {}
        if n_stragglers:
            picks = rng.choice(n_ranks, size=min(n_stragglers, n_ranks),
                               replace=False)
            stragglers = {int(r): float(straggler_slowdown) for r in picks}
        # drawn last so schedules built without SDC keep the exact draw
        # sequence (and traces) of pre-SDC plans with the same arguments
        sdc: dict[int, float] = {}
        if sdc_rate:
            draws_s = rng.random(horizon_sdc)
            sdc = {i + 1: float(sdc_amplitude) for i in range(horizon_sdc)
                   if draws_s[i] < sdc_rate}
        return cls(corrupt_messages=corrupt, timeout_messages=timeouts,
                   rank_failures=failures, stragglers=stragglers,
                   jitter=jitter, seed=seed, sdc_events=sdc)

    @classmethod
    def fail_domain(cls, domains, domain: int, *, at_transfer: int = 1,
                    seed: int = 0, jitter: float = 0.0) -> "FaultPlan":
        """Correlated failure: every rank behind one fault domain dies.

        *domains* is a :class:`~repro.cluster.topology.FaultDomains`
        (derived from the fabric topology); all members of ``domain`` —
        the ranks behind one leaf switch, one torus axis slab — become
        unresponsive at the same collective entry (*at_transfer*), the
        way a switch power loss or an uplink cut actually presents.
        """
        members = domains.members(domain)
        return cls(rank_failures={r: at_transfer for r in members},
                   seed=seed, jitter=jitter)

    @classmethod
    def degrade_links(cls, links, *, bandwidth_factor: float = 1.0,
                      loss_rate: float = 0.0, seed: int = 0) -> "FaultPlan":
        """Uniform degradation over directed *links* ((src, dst) pairs)."""
        deg = LinkDegradation(bandwidth_factor=bandwidth_factor,
                              loss_rate=loss_rate)
        return cls(degraded_links={(s, d): deg for s, d in links},
                   seed=seed)

    # -- runtime interface (driven by the Communicator) ---------------------

    def reset(self) -> None:
        """Zero the runtime counters so the schedule can be replayed."""
        self.messages_seen = 0
        self.transfers_seen = 0
        self.corruptions_injected = 0
        self.timeouts_injected = 0
        self.failed_ranks_declared: list[int] = []
        self.sdc_seen = 0
        self.sdc_injected = 0
        self.sdc_log: list[SdcEvent] = []
        self.losses_injected = 0
        self.flap_timeouts_injected = 0
        self.partition_blocks = 0
        # dedicated stream for per-link loss draws: re-created on reset so
        # a replayed schedule reproduces the same drop sequence
        self._loss_rng = np.random.default_rng((self.seed << 8) ^ 0x10553)

    def begin_transfer(self) -> frozenset[int]:
        """Advance the transfer counter; returns the ranks dead during it."""
        self.transfers_seen += 1
        return frozenset(r for r, t in self.rank_failures.items()
                         if self.transfers_seen >= t)

    # -- correlated link faults (queried per route per attempt) -------------

    def link_fault(self, src: int, dst: int) -> str | None:
        """Fault verdict for one (src, dst) payload of the current transfer.

        Checked in severity order: an active partition blocks every
        cross-component route (``"partitioned"``), a flapping link in
        its off-window times the payload out, and a degraded link drops
        it with its loss rate (a seeded draw).  ``None`` means the link
        carried the payload.
        """
        if self.partition is not None \
                and self.partition.active_at(self.transfers_seen):
            cs = self.partition.component_of(src)
            cd = self.partition.component_of(dst)
            if cs != cd or cs == -1:
                self.partition_blocks += 1
                return "partitioned"
        flap = self.flapping_links.get((src, dst))
        if flap is not None and not flap.up_at(self.transfers_seen):
            self.flap_timeouts_injected += 1
            return "timeout"
        deg = self.degraded_links.get((src, dst))
        if deg is not None and deg.loss_rate > 0.0 \
                and self._loss_rng.random() < deg.loss_rate:
            self.losses_injected += 1
            return "timeout"
        return None

    def link_slowdown(self, links) -> float:
        """Duration multiplier for a collective touching *links*.

        A synchronized collective runs at the pace of its slowest
        member, so the worst degraded link's inverse bandwidth factor
        dictates the attempt duration (1.0 when nothing is degraded).
        """
        if not self.degraded_links:
            return 1.0
        worst = 1.0
        for key in links:
            deg = self.degraded_links.get(key)
            if deg is not None:
                worst = max(worst, 1.0 / deg.bandwidth_factor)
        return worst

    def partition_components(self, ranks) -> tuple[tuple[int, ...], ...]:
        """The census of *ranks* under the (possibly inactive) partition:
        one tuple per component, isolated ranks as singletons."""
        if self.partition is None:
            return (tuple(sorted(ranks)),)
        by_comp: dict[int, list[int]] = {}
        isolated: list[tuple[int, ...]] = []
        for r in sorted(ranks):
            c = self.partition.component_of(r)
            if c < 0:
                isolated.append((r,))
            else:
                by_comp.setdefault(c, []).append(r)
        comps = [tuple(by_comp[c]) for c in sorted(by_comp)]
        return tuple(comps) + tuple(isolated)

    @property
    def has_link_faults(self) -> bool:
        """True if any correlated link behavior is scheduled."""
        return bool(self.degraded_links or self.flapping_links
                    or self.partition is not None)

    def apply(self, payload: np.ndarray) -> tuple[np.ndarray, str | None]:
        """Consume one wire-message slot; returns ``(payload, fault)``.

        ``fault`` is ``None``, ``"timeout"``, or ``"corrupt"`` (in which
        case the returned payload is a tampered copy — a flipped mantissa
        in spirit).  Empty payloads cannot corrupt.
        """
        self.messages_seen += 1
        i = self.messages_seen
        if i in self.timeout_messages:
            self.timeouts_injected += 1
            return payload, "timeout"
        if i in self.corrupt_messages and payload.size:
            bad = payload.copy()
            flat = bad.reshape(-1)
            flat[0] = flat[0] + ((1.0 + 1.0j)
                                 if np.iscomplexobj(bad) else 1.0)
            self.corruptions_injected += 1
            return bad, "corrupt"
        return payload, None

    def apply_sdc(self, data: np.ndarray, *, rank: int = -1,
                  stage: str = "") -> np.ndarray:
        """Consume one compute-output slot; maybe corrupt one element.

        Silent data corruption: the returned array (a tampered copy when
        the schedule fires, *data* itself otherwise) carries a single
        element perturbed by ``amplitude * rms(data)`` at a seeded
        position and phase.  Unlike :meth:`apply`, nothing downstream
        raises — wire checksums verify the corrupted values faithfully,
        so only algorithm-level invariants (:mod:`repro.verify`) can
        notice.  The pipelines call this at every stage-output point
        whether or not verification is enabled; with an empty SDC
        schedule the call is free.
        """
        if not self.sdc_events:
            return data
        self.sdc_seen += 1
        amp = self.sdc_events.get(self.sdc_seen)
        if amp is None or data.size == 0:
            return data
        bad = np.array(data, copy=True)
        flat = bad.reshape(-1)
        rng = np.random.default_rng(
            (self.seed << 20) ^ (self.sdc_seen * 0x9E3779B1))
        k = int(rng.integers(flat.size))
        rms = float(np.sqrt(np.mean(np.abs(flat) ** 2))) or 1.0
        if np.iscomplexobj(bad):
            flat[k] += amp * rms * np.exp(2j * np.pi * rng.random())
        else:
            flat[k] += amp * rms * (1.0 if rng.random() < 0.5 else -1.0)
        self.sdc_injected += 1
        self.sdc_log.append(SdcEvent(index=self.sdc_seen, rank=rank,
                                     stage=stage, element=k,
                                     amplitude=float(amp)))
        return bad

    @property
    def is_clean(self) -> bool:
        """True if the schedule contains no communication faults.

        Compute-side silent corruption is tracked separately (see
        :attr:`has_sdc`): wire checksums neither see nor heal it."""
        return not (self.corrupt_messages or self.timeout_messages
                    or self.rank_failures or self.has_link_faults)

    @property
    def has_sdc(self) -> bool:
        """True if the schedule injects compute-side silent corruption."""
        return bool(self.sdc_events)

    def describe(self) -> str:
        extra = ""
        if self.degraded_links:
            extra += f", degraded_links={len(self.degraded_links)}"
        if self.flapping_links:
            extra += f", flapping_links={len(self.flapping_links)}"
        if self.partition is not None:
            sizes = "+".join(str(len(c))
                             for c in self.partition.components)
            extra += (f", partition={sizes}"
                      f"@t{self.partition.at_transfer}")
        return (f"FaultPlan(seed={self.seed}, "
                f"corrupt={len(self.corrupt_messages)}, "
                f"timeout={len(self.timeout_messages)}, "
                f"rank_failures={dict(sorted(self.rank_failures.items()))}, "
                f"stragglers={len(self.stragglers)}, jitter={self.jitter}, "
                f"sdc={len(self.sdc_events)}{extra})")


@dataclass(frozen=True)
class ProcessFault:
    """One scheduled misbehavior of a real worker process.

    ``kind``:

    * ``"kill"`` — SIGKILL: worker-side self-kill at the entry of
      collective *collective* when set, else a parent-side kill
      *after_s* seconds into the job (crash at an arbitrary point);
    * ``"stall"`` — SIGSTOP at the same trigger points; *resume_s*
      seconds after dispatch the parent sends SIGCONT.  Without a
      resume the worker stays frozen until the heartbeat watchdog
      declares it hung and escalates to SIGKILL;
    * ``"delay"`` — the parent holds the rank's job payload back for
      *after_s* seconds (a starved job queue: the worker is alive and
      idle while its peers block in the first collective).

    ``job`` is the 1-based job sequence number counted from the plan's
    installation; ``rank`` the worker id the fault targets.
    """

    kind: str  # "kill" | "stall" | "delay"
    rank: int
    job: int = 1
    collective: int | None = None  # 0-based trigger at collective entry
    after_s: float = 0.0  # parent-side trigger/holdback, seconds from dispatch
    resume_s: float | None = None  # SIGCONT delay for "stall"

    def __post_init__(self):
        if self.kind not in ("kill", "stall", "delay"):
            raise ValueError(f"unknown process fault kind {self.kind!r}")
        if self.rank < 0:
            raise ValueError("rank must be a non-negative worker id")
        if self.job < 1:
            raise ValueError("job sequence numbers are 1-based")
        if self.kind == "delay" and self.collective is not None:
            raise ValueError("a delivery delay has no collective trigger")


class ProcessFaultPlan:
    """A deterministic schedule of *process-level* chaos for a real backend.

    The wire-fault :class:`FaultPlan` describes a simulated fabric; this
    plan describes what can actually happen to OS worker processes:
    kill -9, SIGSTOP stalls (with or without a delayed SIGCONT), job
    delivery delays, and worker-side silent data corruption (an
    SDC-only :class:`FaultPlan` applied inside the workers).  Install it
    with :meth:`repro.cluster.backends.ProcessBackend.inject`; faults
    fire on the *job*-th run() after installation.

    The schedule is immutable; ``injected`` counts fired faults by kind
    at runtime (:meth:`reset` re-arms the plan).
    """

    def __init__(self, faults=(), *, sdc: FaultPlan | None = None,
                 seed: int = 0):
        self.faults = tuple(faults)
        if any(not isinstance(f, ProcessFault) for f in self.faults):
            raise TypeError("faults must be ProcessFault instances")
        if sdc is not None and not sdc.is_clean:
            raise ValueError("the embedded FaultPlan must be SDC-only: "
                             "wire faults belong to the simulator")
        self.sdc = sdc
        self.seed = int(seed)
        self.reset()

    @classmethod
    def random(cls, seed: int, n_ranks: int, *, n_kills: int = 0,
               n_stalls: int = 0, n_delays: int = 0,
               max_collective: int = 2, min_survivors: int = 1,
               stall_resume_s: float | None = 0.5,
               delay_s: float = 0.25, jobs: int = 1,
               sdc_rate: float = 0.0,
               sdc_amplitude: float = 1.0) -> "ProcessFaultPlan":
        """Draw a seeded schedule over distinct victim ranks.

        Victims are drawn without replacement so at least
        *min_survivors* ranks never get a kill/stall; each fault lands
        on a uniform job in ``1..jobs`` and a uniform collective entry
        in ``0..max_collective``.
        """
        rng = np.random.default_rng(seed)
        n_lethal = min(n_kills + n_stalls,
                       max(0, n_ranks - min_survivors))
        n_kills = min(n_kills, n_lethal)
        n_stalls = min(n_stalls, n_lethal - n_kills)
        victims = list(rng.choice(n_ranks, size=n_lethal, replace=False))
        faults = []
        for i in range(n_kills + n_stalls):
            kind = "kill" if i < n_kills else "stall"
            faults.append(ProcessFault(
                kind=kind, rank=int(victims[i]),
                job=int(rng.integers(1, jobs + 1)),
                collective=int(rng.integers(0, max_collective + 1)),
                resume_s=(stall_resume_s if kind == "stall" else None)))
        for _ in range(n_delays):
            faults.append(ProcessFault(
                kind="delay", rank=int(rng.integers(n_ranks)),
                job=int(rng.integers(1, jobs + 1)), after_s=delay_s))
        sdc = None
        if sdc_rate:
            sdc = FaultPlan.random(seed, n_ranks, sdc_rate=sdc_rate,
                                   sdc_amplitude=sdc_amplitude)
        return cls(faults, sdc=sdc, seed=seed)

    # -- runtime interface (driven by ProcessBackend) -----------------------

    def reset(self) -> None:
        """Zero the runtime counters so the schedule can be replayed."""
        self.jobs_seen = 0
        self.injected: dict[str, int] = {}

    def next_job(self) -> tuple[ProcessFault, ...]:
        """Advance the job counter; faults scheduled for this job."""
        self.jobs_seen += 1
        return self.actions_for(self.jobs_seen)

    def actions_for(self, job_seq: int) -> tuple[ProcessFault, ...]:
        """Faults scheduled for the *job_seq*-th job since installation."""
        return tuple(f for f in self.faults if f.job == job_seq)

    def note_injected(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    @property
    def has_sdc(self) -> bool:
        return self.sdc is not None and self.sdc.has_sdc

    def describe(self) -> str:
        by_kind: dict[str, int] = {}
        for f in self.faults:
            by_kind[f.kind] = by_kind.get(f.kind, 0) + 1
        parts = ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
        return (f"ProcessFaultPlan(seed={self.seed}, {parts or 'clean'}, "
                f"sdc={len(self.sdc.sdc_events) if self.sdc else 0})")


def chaos_cluster(cluster, plan: FaultPlan,
                  policy: RetryPolicy | None = None):
    """Arm a cluster with one unified fault schedule.

    Installs the plan (and retry *policy*) on the communicator — every
    collective then runs through the checksummed, retrying path — and, if
    the plan carries compute noise, wraps the cluster's compute charges in
    a seeded :class:`~repro.cluster.noise.NoiseModel`.  Returns the same
    cluster object.
    """
    cluster.comm.install_faults(plan, policy)
    if plan.jitter or plan.stragglers:
        from repro.cluster.noise import NoiseModel, noisy_cluster

        noisy_cluster(cluster, NoiseModel(jitter=plan.jitter,
                                          stragglers=plan.stragglers,
                                          seed=plan.seed))
    return cluster

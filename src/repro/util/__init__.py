"""Shared utilities: accuracy metrics, validation, HPCC residuals."""

from repro.util.hpcc import HPCC_RESIDUAL_THRESHOLD, gfft_residual, validate_gfft
from repro.util.validate import (
    max_abs_error,
    relative_l2_error,
    relative_linf_error,
    require,
    rms_error,
)

__all__ = [
    "HPCC_RESIDUAL_THRESHOLD",
    "gfft_residual",
    "max_abs_error",
    "relative_l2_error",
    "relative_linf_error",
    "require",
    "rms_error",
    "validate_gfft",
]

"""HPCC G-FFT style run validation.

The paper reports its headline numbers in HPCC G-FFT terms (§6.1 cites
the HPCC rankings).  HPCC validates an FFT run by inverse-transforming
the result and scaling the max residual:

``residual = ||x - ifft(fft(x))||_inf / (eps * log2(N))``

with the run accepted when ``residual < 16``.  These helpers implement
that exact criterion for any forward/inverse pair, so SOI runs can be
validated the same way the benchmark would.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gfft_residual", "validate_gfft", "HPCC_RESIDUAL_THRESHOLD"]

#: HPCC acceptance threshold for the scaled residual.
HPCC_RESIDUAL_THRESHOLD = 16.0


def gfft_residual(x: np.ndarray, x_roundtrip: np.ndarray) -> float:
    """Scaled max-norm residual of a forward+inverse roundtrip."""
    x = np.asarray(x, dtype=np.complex128)
    x_roundtrip = np.asarray(x_roundtrip, dtype=np.complex128)
    if x.shape != x_roundtrip.shape or x.ndim != 1:
        raise ValueError("expected equal-shape 1-D arrays")
    n = x.size
    if n < 2:
        raise ValueError("need at least 2 points")
    eps = np.finfo(np.float64).eps
    num = float(np.max(np.abs(x - x_roundtrip)))
    scale = float(np.max(np.abs(x)))
    if scale == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / (eps * np.log2(n) * scale)


def validate_gfft(x: np.ndarray, x_roundtrip: np.ndarray,
                  threshold: float = HPCC_RESIDUAL_THRESHOLD
                  ) -> tuple[bool, float]:
    """(passed, residual) under the HPCC criterion.

    Note: the exact kernels (`repro.fft`) pass the strict threshold; SOI
    deliberately trades a *bounded* spectral error for communication, so
    its roundtrip residual scales with the window stopband over machine
    epsilon — orders of magnitude above 16 at mu = 8/7, and still ~300 at
    mu = 5/4 (see tests).  This quantifies the accuracy concession the
    SC'12 companion paper discusses; callers wanting an SOI-appropriate
    acceptance test should pass ``threshold = stopband / eps`` instead.
    """
    r = gfft_residual(x, x_roundtrip)
    return r < threshold, r

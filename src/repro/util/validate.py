"""Accuracy metrics and argument-validation helpers.

Error metrics follow the conventions used in FFT accuracy literature
(e.g. the FFTW benchFFT accuracy methodology): errors are reported
relative to the l2 / l-inf norm of the reference signal, so they are
invariant under input scaling and directly comparable to the window
stop-band levels derived in :mod:`repro.core.window`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "max_abs_error",
    "relative_l2_error",
    "relative_linf_error",
    "require",
    "rms_error",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds.

    Used for public-API parameter validation so that misuse surfaces as a
    clear exception rather than a cryptic downstream shape error.
    """
    if not condition:
        raise ValueError(message)


def _as_arrays(actual, reference) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(actual)
    r = np.asarray(reference)
    if a.shape != r.shape:
        raise ValueError(f"shape mismatch: actual {a.shape} vs reference {r.shape}")
    return a, r


def relative_l2_error(actual, reference) -> float:
    """||actual - reference||_2 / ||reference||_2 (0 if both are zero)."""
    a, r = _as_arrays(actual, reference)
    denom = np.linalg.norm(r.ravel())
    num = np.linalg.norm((a - r).ravel())
    if denom == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return float(num / denom)


def relative_linf_error(actual, reference) -> float:
    """max|actual - reference| / max|reference| (0 if both are zero)."""
    a, r = _as_arrays(actual, reference)
    denom = float(np.max(np.abs(r))) if r.size else 0.0
    num = float(np.max(np.abs(a - r))) if a.size else 0.0
    if denom == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / denom


def max_abs_error(actual, reference) -> float:
    """max|actual - reference| (absolute, not normalized)."""
    a, r = _as_arrays(actual, reference)
    return float(np.max(np.abs(a - r))) if a.size else 0.0


def rms_error(actual, reference) -> float:
    """Root-mean-square of (actual - reference)."""
    a, r = _as_arrays(actual, reference)
    if a.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(np.abs(a - r) ** 2)))

"""Accuracy metrics and argument-validation helpers.

Error metrics follow the conventions used in FFT accuracy literature
(e.g. the FFTW benchFFT accuracy methodology): errors are reported
relative to the l2 / l-inf norm of the reference signal, so they are
invariant under input scaling and directly comparable to the window
stop-band levels derived in :mod:`repro.core.window`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "max_abs_error",
    "parseval_gap",
    "relative_l2_error",
    "relative_linf_error",
    "require",
    "rms_error",
    "spectral_snr",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds.

    Used for public-API parameter validation so that misuse surfaces as a
    clear exception rather than a cryptic downstream shape error.
    """
    if not condition:
        raise ValueError(message)


def _as_arrays(actual, reference) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(actual)
    r = np.asarray(reference)
    if a.shape != r.shape:
        raise ValueError(f"shape mismatch: actual {a.shape} vs reference {r.shape}")
    return a, r


def relative_l2_error(actual, reference) -> float:
    """||actual - reference||_2 / ||reference||_2 (0 if both are zero)."""
    a, r = _as_arrays(actual, reference)
    denom = np.linalg.norm(r.ravel())
    num = np.linalg.norm((a - r).ravel())
    if denom == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return float(num / denom)


def relative_linf_error(actual, reference) -> float:
    """max|actual - reference| / max|reference| (0 if both are zero)."""
    a, r = _as_arrays(actual, reference)
    denom = float(np.max(np.abs(r))) if r.size else 0.0
    num = float(np.max(np.abs(a - r))) if a.size else 0.0
    if denom == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / denom


def max_abs_error(actual, reference) -> float:
    """max|actual - reference| (absolute, not normalized)."""
    a, r = _as_arrays(actual, reference)
    return float(np.max(np.abs(a - r))) if a.size else 0.0


def rms_error(actual, reference) -> float:
    """Root-mean-square of (actual - reference)."""
    a, r = _as_arrays(actual, reference)
    if a.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(np.abs(a - r) ** 2)))


def spectral_snr(actual, reference) -> float:
    """Signal-to-noise ratio of *actual* against *reference*, in dB.

    ``10 * log10(sum|reference|^2 / sum|actual - reference|^2)`` — the
    paper's §6 accuracy currency (its SNR floors per (mu, B) design point
    are stated in exactly these units).  Returns ``inf`` for an exact
    match and ``-inf`` for a zero reference against a nonzero actual.
    """
    a, r = _as_arrays(actual, reference)
    signal = float(np.sum(np.abs(r) ** 2))
    noise = float(np.sum(np.abs(a - r) ** 2))
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return float(10.0 * np.log10(signal / noise))


def parseval_gap(time_domain, freq_domain) -> float:
    """Relative violation of Parseval's identity for an unscaled DFT.

    For ``X = fft(x)`` (numpy's unscaled forward convention, applied
    along the last axis) Parseval gives ``sum|X|^2 = n * sum|x|^2`` with
    ``n = x.shape[-1]``.  Returns ``|sum|X|^2 - n*sum|x|^2| / (n*sum|x|^2)``
    (0 for empty or all-zero inputs) — an O(n) invariant the ABFT layer
    (:mod:`repro.verify`) uses to cross-check FFT stages: floating-point
    rounding keeps the gap at ~eps*log2(n) while a single corrupted
    element of typical magnitude shifts it by ~1/n.
    """
    x = np.asarray(time_domain)
    f = np.asarray(freq_domain)
    if x.shape != f.shape:
        raise ValueError(f"shape mismatch: time {x.shape} vs freq {f.shape}")
    if x.size == 0:
        return 0.0
    n = x.shape[-1]
    e_time = float(np.sum(np.abs(x) ** 2))
    e_freq = float(np.sum(np.abs(f) ** 2))
    if e_time == 0.0:
        return 0.0 if e_freq == 0.0 else float("inf")
    return abs(e_freq - n * e_time) / (n * e_time)

"""The asyncio serving gateway: concurrent admission, coalesced execution.

:class:`AsyncSoiGateway` is the traffic front end over the node-local
serving stack.  Requests arrive concurrently on the event loop; each one
runs through, in order:

1. **QoS admission** (:class:`~repro.serve.qos.QosPolicy`) — per-tenant
   rate limit and queue-share check; a noisy tenant sheds here before it
   can pressure anyone else.
2. **Cost-model admission** (the same
   :class:`~repro.resilience.server._Admission` the synchronous services
   use, now thread-safe) — picks the best ladder rung inside the
   class's window whose projected completion fits the deadline, or
   sheds as :class:`~repro.resilience.deadline.Overloaded`.
3. **Coalescing** (:class:`~repro.serve.coalesce.Coalescer`) — the
   request joins the open window for its ``(n, dtype, rung)``; the
   window flushes when full (``max_batch``) or when ``window_seconds``
   elapse, whichever is first.
4. **Batched execution** — one ``SoiFFT.batch()`` call per window, run
   on an executor thread so the loop keeps accepting; the plan, twiddle
   tables, and pooled workspaces amortize over the whole window.  Row
   *i* of the result is request *i*'s spectrum, bitwise identical to
   serving it alone (the ``"einsum"`` batch invariance).
5. **Per-request completion** — each member's own
   :class:`~repro.resilience.deadline.Deadline` is checked, its budget
   itemized (``"compute"`` share + ``"coalesce wait"``), and its future
   resolved to a :class:`~repro.resilience.server.ServeResult` or one of
   the contract exceptions.

The four-outcome contract survives coalescing: a batch that fails
mid-execution does not fail its members as a unit — each member is
retried alone one rung down its viable window (outcome ``"degraded"``)
or, if no cheaper rung exists or the retry also fails, shed
individually (:class:`Overloaded`); members whose deadline has passed
raise :class:`DeadlineExceeded`.  Every submitted request resolves to
exactly one of the four outcomes (property-tested under chaos).

The wall-clock/loop split: coalescing *timers* always run on the event
loop's clock, while deadlines, latencies, and budget accounting use the
injectable ``clock`` — so tests drive time deterministically without
stalling the loop.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.soi_single import SoiFFT
from repro.machine.spec import XEON_PHI_SE10, MachineSpec
from repro.perfmodel.model import soi_request_breakdown
from repro.resilience.deadline import Deadline, DeadlineExceeded, Overloaded
from repro.resilience.ladder import DegradationLadder, DegradationReport
from repro.resilience.server import ServeResult, _Admission
from repro.serve.coalesce import (
    CoalesceKey,
    Coalescer,
    PendingRequest,
    itemize_batch,
    split_rows,
    stack_requests,
)
from repro.serve.qos import QosPolicy
from repro.telemetry.metrics import get_registry

__all__ = ["AsyncSoiGateway", "serve_requests"]


class AsyncSoiGateway:
    """Asyncio front end coalescing same-shape requests into ``batch()``.

    Parameters
    ----------
    ladder:
        The :class:`DegradationLadder` every request maps onto (one
        problem size per gateway).
    qos:
        A :class:`QosPolicy`; default is the stock three-tier policy.
    queue_limit / calibration_gain / calibration / machine:
        Admission-control knobs, as for
        :class:`~repro.resilience.server.SoiService`.
    max_batch / window_seconds:
        Coalescing bounds: a window flushes at ``max_batch`` members or
        after ``window_seconds`` on the event loop, whichever is first.
    clock:
        Injectable time source for deadlines/latency/budget accounting.
    recorder:
        Optional :class:`~repro.telemetry.SpanRecorder`; each executed
        window records a ``"coalesce"``-kind span carrying its row count.
    verify:
        Arm ABFT on the per-rung plans (as for :class:`SoiFFT`).
    executor:
        Optional executor for batch execution (default: a private
        2-thread pool, shut down by :meth:`close`).
    fault_injector:
        Test/chaos hook ``(key, members) -> None`` invoked on the
        executor thread before each batch executes; an exception it
        raises is handled exactly like a mid-batch execution failure.
    """

    def __init__(self, ladder: DegradationLadder, *,
                 qos: QosPolicy | None = None,
                 machine: MachineSpec = XEON_PHI_SE10,
                 queue_limit: int = 64, max_batch: int = 32,
                 window_seconds: float = 2e-3, clock=time.monotonic,
                 calibration_gain: float = 0.3, calibration=None,
                 metrics=None, recorder=None, verify=False,
                 executor=None, fault_injector=None):
        self.ladder = ladder
        self.machine = machine
        self.clock = clock
        self.qos = QosPolicy() if qos is None else qos
        self.metrics = get_registry() if metrics is None else metrics
        self.recorder = recorder
        self.calibration = calibration
        self.verify = verify
        self.fault_injector = fault_injector
        self.admission = _Admission(ladder, queue_limit, calibration_gain,
                                    metrics=self.metrics)
        self.coalescer = Coalescer(max_batch=max_batch,
                                   window_seconds=window_seconds)
        self._plans: dict[int, SoiFFT] = {}
        self._plans_lock = threading.Lock()
        # SoiFFT plans reuse pooled workspaces and are NOT safe under
        # concurrent batch() calls: one execution lock per rung keeps
        # same-plan batches serial while different rungs still overlap.
        self._plan_exec_locks: dict[int, threading.Lock] = {}
        self._own_executor = executor is None
        self.executor = (ThreadPoolExecutor(max_workers=2)
                         if executor is None else executor)
        self._timers: dict[CoalesceKey, asyncio.TimerHandle] = {}
        self._flushes: set[asyncio.Task] = set()
        self._closed = False

    # -- plans -------------------------------------------------------------

    def plan(self, rung_index: int) -> SoiFFT:
        """The lazily built per-rung plan (thread-safe get-or-create)."""
        with self._plans_lock:
            plan = self._plans.get(rung_index)
        if plan is None:
            rung = self.ladder[rung_index]
            plan = SoiFFT(rung.params, dtype=rung.dtype, verify=self.verify)
            with self._plans_lock:
                plan = self._plans.setdefault(rung_index, plan)
        return plan

    def _exec_lock(self, rung_index: int) -> threading.Lock:
        with self._plans_lock:
            lock = self._plan_exec_locks.get(rung_index)
            if lock is None:
                lock = self._plan_exec_locks[rung_index] = threading.Lock()
            return lock

    def _project(self, rung, batch: int) -> float:
        br = soi_request_breakdown(rung.params, self.machine,
                                   itemsize=rung.dtype.itemsize,
                                   batch=batch)
        if self.calibration is not None:
            return self.calibration.total(br)
        return sum(br.values())

    # -- submission --------------------------------------------------------

    async def submit(self, x: np.ndarray, *, tenant: str = "default",
                     deadline_seconds: float,
                     min_snr_db: float = 0.0) -> ServeResult:
        """Serve one 1-D transform; exactly one of four things happens.

        Returns a :class:`ServeResult` (outcome ``"ok"``/``"degraded"``)
        or raises :class:`Overloaded` / :class:`DeadlineExceeded`.
        """
        if self._closed:
            raise RuntimeError("gateway is closed")
        x = np.asarray(x)
        n = self.ladder[0].params.n
        if x.ndim != 1 or x.size != n:
            raise ValueError(f"expected a 1-D signal of length {n}")
        now = float(self.clock())
        # 1. QoS: the noisy/low-tier shed point.
        try:
            qos = self.qos.admit(tenant, now, self.admission.queued,
                                 self.admission.queue_limit)
        except Overloaded:
            self.admission.record_shed()
            raise
        # 2. Cost model, restricted to the class's ladder window.
        window = qos.viable_window(self.ladder, min_snr_db)
        try:
            idx, rung, projected = self.admission.admit(
                now, deadline_seconds, max(min_snr_db, qos.min_snr_db),
                lambda r: self._project(r, 1), viable=window)
        except Overloaded:
            self.qos.record_outcome(tenant, "overloaded")
            raise
        deadline = Deadline(deadline_seconds, clock=self.clock, start=now)
        req = PendingRequest(
            x=x, tenant=tenant, deadline=deadline, min_snr_db=min_snr_db,
            arrival=now, rung_index=idx, projected=projected,
            enqueued_at=now,
            future=asyncio.get_running_loop().create_future())
        # 3. Coalesce.
        key = CoalesceKey(n=n, dtype=np.dtype(rung.dtype).name,
                          rung_index=idx)
        state = self.coalescer.add(key, req)
        self._gauge_pending()
        if state == "full":
            self._cancel_timer(key)
            self._spawn_flush(key)
        elif state == "first":
            loop = asyncio.get_running_loop()
            self._timers[key] = loop.call_later(
                self.coalescer.window_seconds, self._spawn_flush, key)
        try:
            result = await req.future
        except DeadlineExceeded:
            self.qos.record_outcome(tenant, "deadline_exceeded")
            raise
        except Overloaded:
            self.qos.record_outcome(tenant, "overloaded")
            raise
        self.qos.record_outcome(tenant, result.outcome,
                                coalesced_with=req.coalesced_with)
        return result

    # -- window execution --------------------------------------------------

    def _cancel_timer(self, key: CoalesceKey) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()

    def _spawn_flush(self, key: CoalesceKey) -> None:
        """Close the window *synchronously* (so ``max_batch`` truly
        bounds it even while the flush task waits its turn), then
        execute it as a task."""
        self._timers.pop(key, None)
        members = self.coalescer.take(key)
        self._gauge_pending()
        if not members:
            return
        task = asyncio.get_running_loop().create_task(
            self._flush_members(key, members))
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    def _execute_batch(self, key: CoalesceKey,
                       members: list[PendingRequest]):
        """Runs on the executor thread: one ``batch()`` for the window."""
        plan = self.plan(key.rung_index)
        if self.fault_injector is not None:
            self.fault_injector(key, members)
        xs = stack_requests(members, plan.dtype)
        t0 = float(self.clock())
        with self._exec_lock(key.rung_index):
            y = plan.batch(xs)
        elapsed = float(self.clock()) - t0
        return split_rows(y, members), elapsed

    def _reason(self, rung_index: int, tenant: str) -> str:
        if rung_index == 0:
            return "full quality"
        if self.qos.class_of(tenant).best_rung >= rung_index > 0:
            return "qos class window"
        return "deadline pressure"

    def _complete(self, m: PendingRequest, y: np.ndarray, rung_index: int,
                  reason: str) -> None:
        """Resolve one member: ok/degraded, or DeadlineExceeded."""
        if m.future.done():
            return
        try:
            m.deadline.check("completion")
        except DeadlineExceeded as exc:
            self.admission.record_overrun()
            m.future.set_exception(exc)
            return
        latency = float(self.clock()) - m.arrival
        self.admission.record_served(rung_index, latency)
        rung = self.ladder[rung_index]
        report = DegradationReport(rung_index=rung_index, rung=rung,
                                   reason=reason, min_snr_db=m.min_snr_db)
        m.future.set_result(ServeResult(
            y=y, outcome="degraded" if report.degraded else "ok",
            report=report, latency_seconds=latency,
            deadline_seconds=m.deadline.seconds))

    async def _degrade_members(self, key: CoalesceKey,
                               members: list[PendingRequest],
                               exc: Exception) -> None:
        """Batch failed: each member degrades or sheds *individually*.

        A member whose deadline already passed raises
        :class:`DeadlineExceeded`; otherwise it retries alone one rung
        down its class's viable window; with no cheaper rung (or a
        failed retry) it sheds as :class:`Overloaded`.  No member ever
        resolves twice, so the four-outcome contract holds per request.
        """
        loop = asyncio.get_running_loop()
        reason = f"batch failure ({type(exc).__name__})"
        for m in members:
            if m.future.done():
                continue
            try:
                m.deadline.check("after batch failure")
            except DeadlineExceeded as overrun:
                self.admission.record_overrun()
                m.future.set_exception(overrun)
                continue
            window = self.qos.class_of(m.tenant).viable_window(
                self.ladder, m.min_snr_db)
            cheaper = [i for i, _ in window if i > key.rung_index]
            if not cheaper:
                m.future.set_exception(Overloaded(
                    f"shed after batch failure: {exc}"))
                self.admission.record_shed()
                continue
            retry_idx = cheaper[0]
            try:
                started_at = float(self.clock())
                ys, elapsed = await loop.run_in_executor(
                    self.executor, self._execute_batch,
                    CoalesceKey(key.n, np.dtype(
                        self.ladder[retry_idx].dtype).name, retry_idx),
                    [m])
            except Exception as exc2:
                m.future.set_exception(Overloaded(
                    f"shed after failed degrade retry: {exc2}"))
                self.admission.record_shed()
                continue
            itemize_batch([m], started_at, elapsed)
            self._complete(m, ys[0], retry_idx, reason)

    # -- telemetry ---------------------------------------------------------

    def _gauge_pending(self) -> None:
        self.metrics.gauge(
            "repro_serve_coalesce_pending",
            "requests waiting in open coalescing windows"
        ).set(self.coalescer.pending)

    def _record_batch(self, key: CoalesceKey, members: list[PendingRequest],
                      started_at: float, elapsed: float) -> None:
        m = self.metrics
        m.counter("repro_serve_coalesce_batches_total",
                  "coalesced batch() executions").inc()
        m.counter("repro_serve_coalesce_requests_total",
                  "requests served through coalesced batches"
                  ).inc(len(members))
        m.histogram("repro_serve_coalesce_rows",
                    "window sizes of executed batches",
                    bounds=(1, 2, 4, 8, 16, 32, 64)).observe(len(members))
        if self.recorder is not None:
            self.recorder.record(
                0, f"coalesce n={key.n} rung={key.rung_index}", "serve",
                started_at, started_at + elapsed, kind="coalesce",
                attributes={"rows": len(members),
                            "dtype": key.dtype,
                            "tenants": sorted({x.tenant
                                               for x in members})})

    # -- lifecycle ---------------------------------------------------------

    async def drain(self) -> None:
        """Flush every open window and wait for in-flight batches."""
        for key, members in self.coalescer.take_all():
            self._cancel_timer(key)
            task = asyncio.get_running_loop().create_task(
                self._flush_members(key, members))
            self._flushes.add(task)
            task.add_done_callback(self._flushes.discard)
        while self._flushes:
            await asyncio.gather(*list(self._flushes),
                                 return_exceptions=True)

    async def _flush_members(self, key, members) -> None:
        """Execute one closed window: batch, itemize, resolve members."""
        loop = asyncio.get_running_loop()
        started_at = float(self.clock())
        try:
            ys, elapsed = await loop.run_in_executor(
                self.executor, self._execute_batch, key, members)
        except Exception as exc:
            await self._degrade_members(key, members, exc)
            return
        finally:
            for m in members:
                self.admission.release(m.projected)
        self._record_batch(key, members, started_at, elapsed)
        itemize_batch(members, started_at, elapsed)
        raw = self._project(self.ladder[key.rung_index], len(members))
        self.admission.calibrate(raw, elapsed)
        for m, y in zip(members, ys):
            self._complete(m, y, key.rung_index,
                           self._reason(key.rung_index, m.tenant))

    async def close(self) -> None:
        """Drain, then release the executor (idempotent)."""
        if self._closed:
            return
        await self.drain()
        self._closed = True
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        if self._own_executor:
            self.executor.shutdown(wait=True)

    def stats(self) -> dict:
        """Gateway-level counters (JSON-ready)."""
        return {
            "served": self.admission.served_count,
            "shed": self.admission.shed_count,
            "queued": self.admission.queued,
            "batches": self.coalescer.batches,
            "coalesced_requests": self.coalescer.coalesced_requests,
            "coalesce_ratio": round(self.coalescer.ratio, 3),
            "tenants": self.qos.snapshot(),
        }


def serve_requests(gateway: AsyncSoiGateway, requests,
                   *, concurrent: bool = True) -> list:
    """Synchronous convenience driver: submit *requests* and collect
    outcomes.

    Each request is a dict of :meth:`AsyncSoiGateway.submit` kwargs plus
    ``"x"``.  Returns one entry per request, in order: the
    :class:`ServeResult`, or the :class:`Overloaded` /
    :class:`DeadlineExceeded` instance that ended it.  ``concurrent``
    submits everything at once (the coalescing-friendly shape);
    otherwise requests run strictly one at a time (the solo baseline).
    """

    out: list = []

    async def _run():
        async def one(r):
            r = dict(r)
            x = r.pop("x")
            try:
                return await gateway.submit(x, **r)
            except (Overloaded, DeadlineExceeded) as exc:
                return exc

        try:
            if concurrent:
                out.extend(await asyncio.gather(*[one(r)
                                                  for r in requests]))
            else:
                for r in requests:
                    out.append(await one(r))
        finally:
            await gateway.drain()

    # results travel via the closure, NOT the main-task result: CPython's
    # asyncio.run teardown reprs the SIGINT handler (a partial capturing
    # the main task), and a done task's repr includes its result — for a
    # list of spectra that is milliseconds of numpy pretty-printing.
    asyncio.run(_run())
    return out

"""Per-tenant QoS classes riding the degradation ladder.

The gateway serves many tenants from one bounded queue; without policy,
one noisy tenant's burst sheds everyone.  A :class:`QosClass` is a named
service tier with three levers, all mapped onto machinery that already
exists underneath:

* **Queue share** — the fraction of the gateway's admission queue the
  class may occupy.  Premium's share is 1.0 (it sheds only when the
  queue is truly full); lower tiers shed earlier, so under pressure a
  noisy bronze tenant starts failing with
  :class:`~repro.resilience.deadline.Overloaded` while gold requests
  still land.  This is strictly *earlier* shedding, never later — the
  global bound still applies to everyone.
* **Rate limit** — an optional per-tenant token bucket (tokens/second
  with a burst allowance).  A tenant that exceeds it sheds immediately,
  before touching the shared queue at all.
* **Ladder window** — ``best_rung`` maps the class onto the existing
  :class:`~repro.resilience.ladder.DegradationLadder`: a class with
  ``best_rung=1`` never occupies the most expensive rung, so scavenger
  traffic cannot crowd premium tenants off full quality, and
  ``min_snr_db`` floors the accuracy any request of the class may ask
  below (the effective floor is the max of the class's and the
  request's).

:class:`QosPolicy` maps tenant names onto classes, owns the per-tenant
token buckets and counters, and is thread-safe (the gateway calls it
from the event loop while executor threads complete batches).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field

from repro.resilience.deadline import Overloaded
from repro.telemetry.metrics import get_registry

__all__ = ["DEFAULT_CLASSES", "QosClass", "QosPolicy", "TenantState"]

_TENANT_RE = re.compile(r"[^a-z0-9]+")


def _metric_tenant(tenant: str) -> str:
    """Sanitize a tenant name into a metric-name segment."""
    return _TENANT_RE.sub("", tenant.lower()) or "anon"


@dataclass(frozen=True)
class QosClass:
    """One service tier: shed order, rate limit, and ladder window."""

    name: str
    #: Shed order: lower sheds later.  0 is premium.
    priority: int
    #: Fraction of the gateway queue this class may occupy (0, 1].
    queue_share: float = 1.0
    #: Sustained requests/second per tenant (None = unlimited).
    rate_limit: float | None = None
    #: Token-bucket burst allowance (requests).
    burst: float = 8.0
    #: Accuracy floor requested on behalf of the class (dB).
    min_snr_db: float = 0.0
    #: Best (most expensive) ladder rung the class may occupy.
    best_rung: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.queue_share <= 1.0:
            raise ValueError("queue_share must be in (0, 1]")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive (or None)")
        if self.burst < 1:
            raise ValueError("burst must allow at least one request")
        if self.best_rung < 0:
            raise ValueError("best_rung must be >= 0")

    def viable_window(self, ladder, min_snr_db: float):
        """(index, rung) pairs of *ladder* this class may run, best first.

        The class's ``best_rung`` clips the expensive end; the effective
        SNR floor (max of class and request) clips the cheap end.
        """
        floor = max(min_snr_db, self.min_snr_db)
        return [(i, r) for i, r in ladder.viable(floor)
                if i >= self.best_rung]


#: Three stock tiers: gold sheds last at full quality; silver sheds at
#: 3/4 queue; bronze is rate-limited, sheds at half queue, and never
#: occupies the most expensive rung.
DEFAULT_CLASSES = (
    QosClass("gold", priority=0, queue_share=1.0),
    QosClass("silver", priority=1, queue_share=0.75),
    QosClass("bronze", priority=2, queue_share=0.5, rate_limit=200.0,
             burst=16.0, best_rung=1),
)


@dataclass
class TenantState:
    """Mutable per-tenant accounting: token bucket + outcome counters."""

    qos: QosClass
    tokens: float = 0.0
    last_refill: float | None = None
    submitted: int = 0
    served: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    coalesced: int = 0
    extra: dict = field(default_factory=dict)

    def take_token(self, now: float) -> bool:
        """Refill-then-take; True if the request is within the rate."""
        limit = self.qos.rate_limit
        if limit is None:
            return True
        if self.last_refill is None:
            self.tokens = self.qos.burst
        else:
            self.tokens = min(self.qos.burst,
                              self.tokens + (now - self.last_refill) * limit)
        self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class QosPolicy:
    """Tenant -> class mapping with thread-safe admission and counters."""

    def __init__(self, classes=DEFAULT_CLASSES, *,
                 default_class: str | None = None, metrics=None):
        if not classes:
            raise ValueError("at least one QoS class is required")
        self.classes = {c.name: c for c in classes}
        if len(self.classes) != len(classes):
            raise ValueError("class names must be unique")
        if default_class is None:
            # least-privileged class by default: unknown tenants shed first
            default_class = max(classes, key=lambda c: c.priority).name
        if default_class not in self.classes:
            raise ValueError(f"unknown default class {default_class!r}")
        self.default_class = default_class
        self.metrics = get_registry() if metrics is None else metrics
        self._assignments: dict[str, str] = {}
        self._tenants: dict[str, TenantState] = {}
        self._lock = threading.Lock()

    # -- mapping -----------------------------------------------------------

    def assign(self, tenant: str, class_name: str) -> None:
        if class_name not in self.classes:
            raise ValueError(f"unknown QoS class {class_name!r}")
        with self._lock:
            self._assignments[tenant] = class_name
            state = self._tenants.get(tenant)
            if state is not None:
                state.qos = self.classes[class_name]

    def class_of(self, tenant: str) -> QosClass:
        name = self._assignments.get(tenant, self.default_class)
        return self.classes[name]

    def tenant_state(self, tenant: str) -> TenantState:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                state = TenantState(qos=self.class_of(tenant))
                self._tenants[tenant] = state
            return state

    # -- admission ---------------------------------------------------------

    def admit(self, tenant: str, now: float, queue_depth: int,
              queue_limit: int) -> QosClass:
        """Rate-limit and queue-share check; raises :class:`Overloaded`.

        Returns the tenant's class on success.  Shedding here is *before
        any work ran* — the same contract as admission control — and a
        lower tier always sheds at a depth where a higher tier would
        still be admitted.
        """
        state = self.tenant_state(tenant)
        qos = state.qos
        with self._lock:
            state.submitted += 1
            if not state.take_token(now):
                state.shed += 1
                self._count(tenant, "shed")
                raise Overloaded(
                    f"tenant {tenant!r} over its {qos.name} rate limit "
                    f"({qos.rate_limit:.4g} req/s)", queued=queue_depth)
            allowed = max(1, int(qos.queue_share * queue_limit))
            if queue_depth >= allowed:
                state.shed += 1
                self._count(tenant, "shed")
                raise Overloaded(
                    f"{qos.name} queue share exhausted "
                    f"({queue_depth}/{allowed} of {queue_limit})",
                    queued=queue_depth)
        self._count(tenant, "submitted")
        return qos

    # -- accounting --------------------------------------------------------

    def record_outcome(self, tenant: str, outcome: str,
                       coalesced_with: int = 0) -> None:
        """Fold one request's final outcome into the tenant counters.

        *outcome* is one of the contract's four:
        ``ok``/``degraded``/``overloaded``/``deadline_exceeded``.
        """
        state = self.tenant_state(tenant)
        with self._lock:
            if outcome in ("ok", "degraded"):
                state.served += 1
                if coalesced_with > 0:
                    state.coalesced += 1
            elif outcome == "overloaded":
                state.shed += 1
            elif outcome == "deadline_exceeded":
                state.deadline_exceeded += 1
            else:
                raise ValueError(f"unknown outcome {outcome!r}")
        if outcome in ("ok", "degraded"):
            self._count(tenant, "served")
        elif outcome == "overloaded":
            self._count(tenant, "shed")
        else:
            self._count(tenant, "deadline")

    def _count(self, tenant: str, event: str) -> None:
        t = _metric_tenant(tenant)
        self.metrics.counter(
            f"repro_serve_tenant_{t}_{event}_total",
            f"requests {event} for tenant {tenant!r}").inc()

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant counters (JSON-ready; tests and exhibits)."""
        with self._lock:
            return {
                t: {"class": s.qos.name, "submitted": s.submitted,
                    "served": s.served, "shed": s.shed,
                    "deadline_exceeded": s.deadline_exceeded,
                    "coalesced": s.coalesced}
                for t, s in sorted(self._tenants.items())
            }

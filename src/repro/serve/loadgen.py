"""Open-loop load generation and a virtual-time serving simulator.

Closed-loop drivers (issue the next request when the last one returns)
cannot see coordinated omission: when the server stalls, a closed loop
politely stops offering load, and the latency distribution looks fine.
Everything here is **open-loop** — arrivals are drawn from a Poisson
process (or replayed from a trace) *independently of completions*, so
queueing delay shows up in the numbers exactly as a real client
population would feel it.

Two drivers share the arrival schedules:

* :func:`simulate_serving` — an event-driven **virtual-time** simulator
  that pushes 10^5–10^6 requests through the *real* policy objects
  (:class:`~repro.serve.qos.QosPolicy`,
  :class:`~repro.serve.coalesce.Coalescer`, the same
  :class:`~repro.resilience.server._Admission` the gateway uses) with
  batch execution replaced by a :class:`ServiceModel` cost function.
  Fully deterministic (seeded arrivals, no wall clock), machine
  independent, and fast enough to sweep offered load past the knee.
* :func:`drive_gateway` — the wall-clock driver that fires the same
  open-loop schedule at a live :class:`~repro.serve.gateway
  .AsyncSoiGateway` (used by the serving bench for measured numbers).

:func:`sweep_offered_load` runs the simulator across arrival rates and
:func:`render_curves` writes the latency-vs-offered-load exhibit.
"""

from __future__ import annotations

import asyncio
import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.machine.spec import XEON_PHI_SE10
from repro.perfmodel.model import soi_request_breakdown
from repro.resilience.deadline import DeadlineExceeded, Overloaded
from repro.resilience.ladder import DegradationLadder
from repro.resilience.server import _Admission
from repro.serve.coalesce import CoalesceKey, Coalescer, PendingRequest
from repro.serve.qos import QosPolicy
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "Arrival", "LoadResult", "ServiceModel", "drive_gateway",
    "poisson_arrivals", "render_curves", "simulate_serving",
    "sweep_offered_load", "trace_arrivals",
]


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when, who, and what it asks for."""

    t: float
    tenant: str
    deadline_seconds: float
    min_snr_db: float = 0.0


def poisson_arrivals(rate: float, n_requests: int, *, seed: int = 0,
                     tenants: dict[str, float] | None = None,
                     deadline_seconds: float = 0.1,
                     min_snr_db: float = 0.0) -> list[Arrival]:
    """*n_requests* Poisson arrivals at *rate* req/s (seeded, exact count).

    *tenants* maps tenant name -> traffic weight (default: one
    ``"default"`` tenant).  Exponential inter-arrival times make the
    process memoryless; the same seed always yields the same schedule.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if n_requests < 1:
        raise ValueError("n_requests must be at least 1")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n_requests)
    times = np.cumsum(gaps)
    names = list(tenants) if tenants else ["default"]
    weights = np.array([tenants[t] for t in names], dtype=float) \
        if tenants else np.ones(1)
    weights = weights / weights.sum()
    picks = rng.choice(len(names), size=n_requests, p=weights)
    return [Arrival(float(times[i]), names[picks[i]], deadline_seconds,
                    min_snr_db) for i in range(n_requests)]


def trace_arrivals(rows) -> list[Arrival]:
    """Arrivals from an explicit trace of ``(t, tenant, deadline[, snr])``."""
    out = []
    for row in rows:
        t, tenant, deadline = row[0], row[1], row[2]
        snr = row[3] if len(row) > 3 else 0.0
        out.append(Arrival(float(t), str(tenant), float(deadline),
                           float(snr)))
    out.sort(key=lambda a: a.t)
    return out


@dataclass(frozen=True)
class ServiceModel:
    """Batch execution cost: ``setup + rows * per_row`` seconds per rung.

    The affine shape is exactly why coalescing wins: the setup term
    (plan dispatch, workspace checkout, twiddle reuse) is paid once per
    *batch*, not once per request.  ``analytic`` derives both terms per
    rung from the Section 4 performance model, so simulated results are
    machine-independent and deterministic.
    """

    setup_s: tuple[float, ...]
    per_row_s: tuple[float, ...]

    def batch_seconds(self, rung_index: int, rows: int) -> float:
        return self.setup_s[rung_index] + rows * self.per_row_s[rung_index]

    def request_seconds(self, rung_index: int) -> float:
        """Cost of a window of one (the admission estimate)."""
        return self.batch_seconds(rung_index, 1)

    @classmethod
    def analytic(cls, ladder: DegradationLadder,
                 machine=XEON_PHI_SE10, *, probe_batch: int = 32,
                 setup_fraction: float = 0.5) -> "ServiceModel":
        """Derive per-rung ``(setup, per_row)`` from the perf model.

        The model's single-request time splits into a marginal per-row
        cost — the slope between a batch of 1 and *probe_batch* — and a
        setup remainder.  Where the model is perfectly linear in batch
        (no amortization visible), *setup_fraction* of the one-row time
        is attributed to setup, matching the measured small-``n``
        amortization (batch/single ~ 2x at n≈1k).
        """
        setup, per_row = [], []
        for rung in ladder:
            t1 = sum(soi_request_breakdown(
                rung.params, machine, itemsize=rung.dtype.itemsize,
                batch=1).values())
            tb = sum(soi_request_breakdown(
                rung.params, machine, itemsize=rung.dtype.itemsize,
                batch=probe_batch).values())
            slope = max((tb - t1) / (probe_batch - 1), 0.0)
            if slope <= 0.0 or t1 - slope <= 0.0:
                slope = t1 * (1.0 - setup_fraction)
            s = max(t1 - slope, 0.0)
            setup.append(s)
            per_row.append(slope)
        return cls(setup_s=tuple(setup), per_row_s=tuple(per_row))

    @classmethod
    def measured(cls, ladder: DegradationLadder, *,
                 probe_batch: int = 8, repeats: int = 3) -> "ServiceModel":
        """Calibrate ``(setup, per_row)`` by timing the real plans."""
        import time

        from repro.core.soi_single import SoiFFT
        setup, per_row = [], []
        for rung in ladder:
            plan = SoiFFT(rung.params, dtype=rung.dtype)
            rng = np.random.default_rng(7)
            x1 = (rng.standard_normal(rung.params.n)
                  + 1j * rng.standard_normal(rung.params.n)
                  ).astype(rung.dtype)
            xb = np.stack([x1] * probe_batch)
            plan.batch(xb)  # warm the pools/tables before timing
            t1 = min(_timed(plan, x1[None, :], time) for _ in range(repeats))
            tb = min(_timed(plan, xb, time) for _ in range(repeats))
            slope = max((tb - t1) / (probe_batch - 1), 1e-9)
            setup.append(max(t1 - slope, 0.0))
            per_row.append(slope)
        return cls(setup_s=tuple(setup), per_row_s=tuple(per_row))


def _timed(plan, xs, time_mod) -> float:
    t0 = time_mod.perf_counter()
    plan.batch(xs)
    return time_mod.perf_counter() - t0


@dataclass
class LoadResult:
    """One operating point of the latency-vs-offered-load curve."""

    offered_rps: float
    n_requests: int
    served: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    degraded: int = 0
    coalesce_ratio: float = 0.0
    batches: int = 0
    throughput_rps: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    latency_mean: float = 0.0
    makespan_s: float = 0.0
    tenants: dict = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.n_requests if self.n_requests else 0.0

    def to_dict(self) -> dict:
        d = dict(self.__dict__)
        d["shed_rate"] = self.shed_rate
        return d


# event kinds, ordered so same-time events resolve deterministically:
# completions free capacity before new arrivals claim it, and arrivals
# join windows before the window timer fires.
_COMPLETE, _ARRIVE, _FLUSH = 0, 1, 2


def simulate_serving(ladder: DegradationLadder, arrivals: list[Arrival],
                     *, model: ServiceModel | None = None,
                     qos: QosPolicy | None = None, queue_limit: int = 64,
                     max_batch: int = 32, window_seconds: float = 2e-3,
                     n_workers: int = 2) -> LoadResult:
    """Event-driven virtual-time run of the gateway's serving policy.

    The policy path is the real thing — :class:`QosPolicy` admission,
    :class:`_Admission` cost-model projection against the bounded
    backlog, :class:`Coalescer` windows — only the ``batch()`` execution
    is replaced by *model* seconds on one of *n_workers* simulated
    executor threads.  Every submitted request resolves to exactly one
    of the four contract outcomes.
    """
    if not arrivals:
        raise ValueError("no arrivals to simulate")
    model = ServiceModel.analytic(ladder) if model is None else model
    qos = QosPolicy(metrics=MetricsRegistry()) if qos is None else qos
    admission = _Admission(ladder, queue_limit, 0.3,
                           metrics=MetricsRegistry())
    coalescer = Coalescer(max_batch=max_batch,
                          window_seconds=window_seconds)
    events: list[tuple[float, int, int, object]] = []
    seq = 0
    for a in arrivals:
        heapq.heappush(events, (a.t, _ARRIVE, seq, a))
        seq += 1
    worker_free = [0.0] * max(1, n_workers)
    rung_idx = {id(r): i for i, r in enumerate(ladder)}
    # window generation tokens: a timer flush only fires for the window
    # it was armed for, not a successor that reused the key
    open_gen: dict[CoalesceKey, int] = {}
    latencies: list[float] = []
    res = LoadResult(offered_rps=0.0, n_requests=len(arrivals))
    last_done = arrivals[0].t

    def start_batch(now: float, key: CoalesceKey,
                    members: list[PendingRequest]) -> None:
        nonlocal seq
        i = min(range(len(worker_free)), key=worker_free.__getitem__)
        start = max(now, worker_free[i])
        done = start + model.batch_seconds(key.rung_index, len(members))
        worker_free[i] = done
        heapq.heappush(events, (done, _COMPLETE, seq,
                                (key, members, start)))
        seq += 1

    while events:
        now, kind, _, payload = heapq.heappop(events)
        if kind == _ARRIVE:
            a = payload
            try:
                qcls = qos.admit(a.tenant, now, admission.queued,
                                 admission.queue_limit)
            except Overloaded:
                admission.record_shed()
                res.shed += 1
                continue
            window = qcls.viable_window(ladder, a.min_snr_db)
            try:
                idx, _rung, projected = admission.admit(
                    now, a.deadline_seconds,
                    max(a.min_snr_db, qcls.min_snr_db),
                    lambda r: model.request_seconds(rung_idx[id(r)]),
                    viable=window)
            except Overloaded:
                qos.record_outcome(a.tenant, "overloaded")
                res.shed += 1
                continue
            req = PendingRequest(
                x=None, tenant=a.tenant, deadline=None,
                min_snr_db=a.min_snr_db, arrival=now, rung_index=idx,
                projected=projected, enqueued_at=now,
                meta={"deadline_seconds": a.deadline_seconds})
            key = CoalesceKey(ladder[idx].params.n,
                              np.dtype(ladder[idx].dtype).name, idx)
            state = coalescer.add(key, req)
            if state == "full":
                open_gen.pop(key, None)
                start_batch(now, key, coalescer.take(key))
            elif state == "first":
                open_gen[key] = seq
                heapq.heappush(events, (now + window_seconds, _FLUSH, seq,
                                        (key, seq)))
                seq += 1
        elif kind == _FLUSH:
            key, gen = payload
            if open_gen.get(key) != gen:
                continue  # that window already flushed full
            open_gen.pop(key, None)
            start_batch(now, key, coalescer.take(key))
        else:  # _COMPLETE
            key, members, start = payload
            last_done = max(last_done, now)
            for m in members:
                admission.release(m.projected)
                latency = now - m.arrival
                if latency > m.meta["deadline_seconds"]:
                    admission.record_overrun()
                    qos.record_outcome(m.tenant, "deadline_exceeded")
                    res.deadline_exceeded += 1
                    continue
                admission.record_served(key.rung_index, latency)
                outcome = "ok" if key.rung_index == 0 else "degraded"
                qos.record_outcome(m.tenant, outcome,
                                   coalesced_with=len(members) - 1)
                res.served += 1
                if outcome == "degraded":
                    res.degraded += 1
                latencies.append(latency)
    span = max(last_done - arrivals[0].t, 1e-12)
    offered_span = max(arrivals[-1].t - arrivals[0].t, 1e-12)
    res.offered_rps = len(arrivals) / offered_span
    res.batches = coalescer.batches
    res.coalesce_ratio = coalescer.ratio
    res.throughput_rps = res.served / span
    res.makespan_s = span
    res.tenants = qos.snapshot()
    if latencies:
        arr = np.array(latencies)
        res.latency_p50 = float(np.percentile(arr, 50))
        res.latency_p95 = float(np.percentile(arr, 95))
        res.latency_p99 = float(np.percentile(arr, 99))
        res.latency_mean = float(arr.mean())
    return res


def sweep_offered_load(ladder: DegradationLadder, rates, *,
                       n_requests: int = 2000, seed: int = 0,
                       tenants: dict[str, float] | None = None,
                       deadline_seconds: float = 0.1,
                       model: ServiceModel | None = None,
                       qos_factory=None, **sim_kwargs) -> list[LoadResult]:
    """One :func:`simulate_serving` point per offered rate (deterministic).

    *qos_factory* builds a fresh :class:`QosPolicy` per point (tenant
    counters must not leak across operating points); default is the
    stock policy with an isolated metrics registry.
    """
    model = ServiceModel.analytic(ladder) if model is None else model
    out = []
    for i, rate in enumerate(rates):
        arrivals = poisson_arrivals(rate, n_requests, seed=seed + i,
                                    tenants=tenants,
                                    deadline_seconds=deadline_seconds)
        qos = (qos_factory() if qos_factory is not None
               else QosPolicy(metrics=MetricsRegistry()))
        out.append(simulate_serving(ladder, arrivals, model=model,
                                    qos=qos, **sim_kwargs))
    return out


def render_curves(results: list[LoadResult], *, title: str,
                  width: int = 40) -> str:
    """The latency-vs-offered-load exhibit (plain text, CI-artifact)."""
    lines = [title, "=" * len(title), "",
             f"{'offered':>10} {'tput':>10} {'p50':>9} {'p99':>9} "
             f"{'shed%':>6} {'coal':>5}  p99 latency",
             f"{'req/s':>10} {'req/s':>10} {'ms':>9} {'ms':>9} "
             f"{'':>6} {'x':>5}"]
    top = max((r.latency_p99 for r in results), default=0.0) or 1.0
    for r in results:
        bar = "#" * max(1, int(round(width * r.latency_p99 / top))) \
            if r.latency_p99 > 0 else ""
        lines.append(
            f"{r.offered_rps:>10.0f} {r.throughput_rps:>10.0f} "
            f"{r.latency_p50 * 1e3:>9.3f} {r.latency_p99 * 1e3:>9.3f} "
            f"{100 * r.shed_rate:>5.1f}% {r.coalesce_ratio:>5.2f}  {bar}")
    lines.append("")
    total = sum(r.n_requests for r in results)
    lines.append(f"{len(results)} operating points, "
                 f"{total} simulated requests total")
    return "\n".join(lines)


async def drive_gateway(gateway, arrivals: list[Arrival], *,
                        signal: np.ndarray,
                        time_scale: float = 1.0) -> LoadResult:
    """Fire an open-loop schedule at a live gateway (wall clock).

    Each arrival submits at its scheduled offset (compressed by
    *time_scale* < 1 to raise offered load) regardless of earlier
    completions.  Returns the same :class:`LoadResult` shape as the
    simulator, measured instead of modeled.
    """
    if not arrivals:
        raise ValueError("no arrivals to drive")
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    base = arrivals[0].t

    async def one(a: Arrival):
        delay = (a.t - base) * time_scale - (loop.time() - t0)
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            return await gateway.submit(
                signal, tenant=a.tenant,
                deadline_seconds=a.deadline_seconds,
                min_snr_db=a.min_snr_db)
        except (Overloaded, DeadlineExceeded) as exc:
            return exc

    outcomes = await asyncio.gather(*[one(a) for a in arrivals])
    await gateway.drain()
    wall = max(loop.time() - t0, 1e-12)
    res = LoadResult(offered_rps=len(arrivals) / max(
        (arrivals[-1].t - base) * time_scale, 1e-12),
        n_requests=len(arrivals))
    latencies = []
    for out in outcomes:
        if isinstance(out, Overloaded):
            res.shed += 1
        elif isinstance(out, DeadlineExceeded):
            res.deadline_exceeded += 1
        else:
            res.served += 1
            if out.outcome == "degraded":
                res.degraded += 1
            latencies.append(out.latency_seconds)
    res.batches = gateway.coalescer.batches
    res.coalesce_ratio = gateway.coalescer.ratio
    res.throughput_rps = res.served / wall
    res.makespan_s = wall
    res.tenants = gateway.qos.snapshot()
    if latencies:
        arr = np.array(latencies)
        res.latency_p50 = float(np.percentile(arr, 50))
        res.latency_p95 = float(np.percentile(arr, 95))
        res.latency_p99 = float(np.percentile(arr, 99))
        res.latency_mean = float(arr.mean())
    return res

"""Async serving gateway: coalescing, per-tenant QoS, load generation.

The paper's plan-once-transform-many economics meet real traffic here:
:class:`AsyncSoiGateway` accepts concurrent requests on an asyncio
event loop, admits them through per-tenant QoS
(:class:`QosClass`/:class:`QosPolicy`) and the cost-model admission
control, coalesces same-``(n, dtype, rung)`` requests into single
``SoiFFT.batch()`` executions (:class:`Coalescer`), and resolves each
request to exactly one of the four serving outcomes — including under
partial batch failure.  :mod:`repro.serve.loadgen` supplies open-loop
Poisson/trace arrival schedules, a deterministic virtual-time simulator
that pushes 10^5+ requests through the same policy objects, and the
latency-vs-offered-load exhibit.
"""

from repro.serve.coalesce import (
    CoalesceKey,
    Coalescer,
    PendingRequest,
    itemize_batch,
    split_rows,
    stack_requests,
)
from repro.serve.gateway import AsyncSoiGateway, serve_requests
from repro.serve.loadgen import (
    Arrival,
    LoadResult,
    ServiceModel,
    drive_gateway,
    poisson_arrivals,
    render_curves,
    simulate_serving,
    sweep_offered_load,
    trace_arrivals,
)
from repro.serve.qos import DEFAULT_CLASSES, QosClass, QosPolicy, TenantState

__all__ = [
    "Arrival",
    "AsyncSoiGateway",
    "CoalesceKey",
    "Coalescer",
    "DEFAULT_CLASSES",
    "LoadResult",
    "PendingRequest",
    "QosClass",
    "QosPolicy",
    "ServiceModel",
    "TenantState",
    "drive_gateway",
    "itemize_batch",
    "poisson_arrivals",
    "render_curves",
    "serve_requests",
    "simulate_serving",
    "split_rows",
    "stack_requests",
    "sweep_offered_load",
    "trace_arrivals",
]

"""Request coalescing: same-shape requests share one ``batch()`` call.

The paper's economics — plan once, transform many — only pay when many
transforms actually flow through one plan.  The serving layer so far ran
one request at a time; this module groups concurrent requests whose
transforms are *identical work* — same length, same precision, same
degradation-ladder rung, hence the same :class:`~repro.core.soi_single
.SoiFFT` plan — into a single ``plan.batch()`` execution.

A :class:`CoalesceKey` identifies a group; a :class:`Coalescer` holds
the open windows (one bounded buffer per key) and decides when a window
is ripe: either it reached ``max_batch`` rows, or ``window_seconds``
elapsed since its first member (the gateway owns the timers — this
structure is clock-free and usable from the virtual-time load
generator).  The split back to per-request results is trivial because
row *i* of the batched spectrum IS request *i*'s spectrum, bitwise: the
``"einsum"`` convolution kernel guarantees batched and single execution
agree exactly (asserted by the differential tests).

:func:`itemize_batch` spreads one batch execution's cost back into the
member requests' :class:`~repro.resilience.deadline.Budget`s: each
member is charged its equal ``"compute"`` share plus its own
``"coalesce wait"`` (enqueue -> execution start), so per-request
accounting still sums to what the system actually spent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, NamedTuple

import numpy as np

__all__ = ["CoalesceKey", "Coalescer", "PendingRequest", "itemize_batch",
           "split_rows", "stack_requests"]


class CoalesceKey(NamedTuple):
    """Requests coalesce iff they agree on all three coordinates."""

    n: int
    dtype: str
    rung_index: int


@dataclass(repr=False)
class PendingRequest:
    """One admitted request waiting in a coalescing window."""

    x: np.ndarray
    tenant: str
    deadline: Any  # duck-typed repro.resilience.Deadline
    min_snr_db: float
    arrival: float
    rung_index: int
    projected: float  # admission backlog token (released after the batch)
    enqueued_at: float = 0.0
    #: completion hook — an asyncio.Future for the gateway, anything
    #: with set_result/set_exception for other front ends.
    future: Any = None
    #: rows coalesced alongside this request (filled at execution).
    coalesced_with: int = 0
    meta: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        # compact on purpose: the default dataclass repr would print the
        # whole signal, and asyncio reprs pending objects in error paths
        shape = getattr(self.x, "shape", None)
        return (f"PendingRequest(tenant={self.tenant!r}, "
                f"rung={self.rung_index}, x.shape={shape}, "
                f"arrival={self.arrival:.6g})")


class Coalescer:
    """Bounded coalescing windows, one per :class:`CoalesceKey`.

    Thread-safe.  ``add`` returns the window disposition so the caller
    can arm or cancel its flush timer:

    ``"first"``
        the request opened a new window — arm a timer for
        ``window_seconds`` from now;
    ``"queued"``
        it joined an existing window — nothing to do;
    ``"full"``
        it filled the window to ``max_batch`` — flush immediately.
    """

    def __init__(self, max_batch: int = 32, window_seconds: float = 2e-3):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if window_seconds < 0:
            raise ValueError("window_seconds must be non-negative")
        self.max_batch = max_batch
        self.window_seconds = window_seconds
        self._windows: dict[CoalesceKey, list[PendingRequest]] = {}
        self._lock = threading.Lock()
        self.batches = 0
        self.coalesced_requests = 0

    def add(self, key: CoalesceKey, req: PendingRequest) -> str:
        with self._lock:
            window = self._windows.setdefault(key, [])
            window.append(req)
            if len(window) >= self.max_batch:
                return "full"
            return "first" if len(window) == 1 else "queued"

    def take(self, key: CoalesceKey) -> list[PendingRequest]:
        """Close and return a window (empty list if already flushed)."""
        with self._lock:
            members = self._windows.pop(key, [])
            if members:
                self.batches += 1
                self.coalesced_requests += len(members)
            return members

    def take_all(self) -> list[tuple[CoalesceKey, list[PendingRequest]]]:
        """Drain every open window (shutdown/flush-on-close)."""
        with self._lock:
            out = [(k, w) for k, w in self._windows.items() if w]
            self._windows.clear()
            for _, w in out:
                self.batches += 1
                self.coalesced_requests += len(w)
            return out

    @property
    def pending(self) -> int:
        with self._lock:
            return sum(len(w) for w in self._windows.values())

    @property
    def ratio(self) -> float:
        """Mean requests per executed batch (1.0 = no coalescing won)."""
        return self.coalesced_requests / self.batches if self.batches else 0.0


def stack_requests(members: list[PendingRequest], dtype) -> np.ndarray:
    """Stack member signals into the ``(rows, n)`` batch input."""
    return np.stack([np.asarray(m.x, dtype=dtype) for m in members])


def split_rows(y: np.ndarray,
               members: list[PendingRequest]) -> list[np.ndarray]:
    """Row *i* of the batched spectrum is member *i*'s result.

    Each row is copied out so a member's spectrum never aliases the
    batch buffer (or its window siblings' rows).
    """
    return [np.array(y[i], copy=True) for i in range(len(members))]


def itemize_batch(members: list[PendingRequest], started_at: float,
                  elapsed: float) -> None:
    """Charge each member its share of one batch execution.

    The compute share is equal-split (every row is the same transform);
    the coalesce wait is each member's own enqueue -> start interval.
    Charges land in the member's existing ``Deadline.budget``, under the
    purposes ``"compute"`` and ``"coalesce wait"``, so a request's
    budget reads the same whether it was coalesced or served alone
    (a window of one waits zero and pays the full batch).
    """
    share = elapsed / len(members)
    for m in members:
        m.coalesced_with = len(members) - 1
        m.deadline.charge("compute", share)
        m.deadline.charge("coalesce wait",
                          max(0.0, started_at - m.enqueued_at))

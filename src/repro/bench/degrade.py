"""The degradation-ladder exhibit: measured vs predicted SNR per rung.

The serving layer's accuracy contract rests on one claim: the predicted
SNR annotated on each :class:`~repro.resilience.Rung` (from the exact
alias model, :func:`repro.core.error_model.expected_snr_db`) is a
*conservative* bound on what the rung actually delivers.  This exhibit
measures it — every rung of the standard ladder transforms the same
random input, the output is compared against ``np.fft.fft`` with
:func:`repro.util.validate.spectral_snr`, and the delta must sit within
the acceptance band (measured >= predicted, and within ``TOLERANCE_DB``
of it).  Rendered by ``python -m repro degrade-sweep`` into
``benchmarks/results/degradation_ladder.txt``.
"""

from __future__ import annotations

import numpy as np

from repro.core.soi_single import SoiFFT
from repro.resilience.ladder import DegradationLadder
from repro.util.validate import spectral_snr

__all__ = ["DEFAULT_N", "TOLERANCE_DB", "degrade_sweep_rows",
           "render_degrade_sweep"]

#: Default problem size: 8 segments of M = 1344, giving M' in {1536,
#: 1680, 1792} across the candidate oversamplings — all (2,3,5,7)-smooth,
#: so the float32 rungs are legal too.
DEFAULT_N = 8 * 1344

#: Acceptance band (dB): measured SNR must not fall below the prediction,
#: nor exceed it by more than this (a wildly pessimistic model would
#: shed/degrade requests that were actually fine).
TOLERANCE_DB = 3.0


def degrade_sweep_rows(n: int = DEFAULT_N, seed: int = 0,
                       ladder: DegradationLadder | None = None
                       ) -> list[dict]:
    """One row per ladder rung: geometry, predicted and measured SNR."""
    if ladder is None:
        ladder = DegradationLadder.standard(n)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    reference = np.fft.fft(x)
    rows = []
    for i, rung in enumerate(ladder):
        plan = SoiFFT(rung.params, dtype=rung.dtype)
        y = plan(x.astype(rung.dtype))
        measured = spectral_snr(y.astype(np.complex128), reference)
        rows.append({
            "rung": i,
            "mu": rung.mu_str,
            "b": rung.params.b,
            "dtype": np.dtype(rung.dtype).name,
            "predicted_db": rung.predicted_snr_db,
            "measured_db": measured,
            "delta_db": measured - rung.predicted_snr_db,
        })
    return rows


def render_degrade_sweep(n: int = DEFAULT_N, seed: int = 0) -> str:
    """The ladder table with measured-vs-predicted verdicts."""
    rows = degrade_sweep_rows(n, seed)
    lines = [
        f"Degradation ladder at N = {n} (seed {seed})",
        "",
        "Predicted SNR: exact alias model (per-bin demod-normalized power"
        f" sum) minus {5.0:.0f} dB",
        "fine-grid resampling headroom; measured: spectral SNR vs"
        " np.fft.fft on flat random input.",
        f"Acceptance: 0 <= measured - predicted <= {TOLERANCE_DB:.0f} dB.",
        "",
        "rung  mu    B   dtype       predicted    measured      delta"
        "   verdict",
        "----  ----  --  ----------  -----------  -----------  ------"
        "   -------",
    ]
    worst = 0.0
    ok = True
    for r in rows:
        good = 0.0 <= r["delta_db"] <= TOLERANCE_DB
        ok &= good
        worst = max(worst, abs(r["delta_db"]))
        lines.append(
            f"{r['rung']:>4d}  {r['mu']:<4s}  {r['b']:>2d}  "
            f"{r['dtype']:<10s}  {r['predicted_db']:>8.1f} dB  "
            f"{r['measured_db']:>8.1f} dB  {r['delta_db']:>+5.1f}   "
            f"{'ok' if good else 'FAIL'}")
    lines.append("")
    lines.append(f"worst |delta| = {worst:.2f} dB "
                 f"({'all rungs within band' if ok else 'BAND VIOLATED'})")
    return "\n".join(lines)

"""Experiment drivers: one function per paper table/figure.

Each ``figN_*``/``tableN_*`` function computes the data behind the
corresponding exhibit of the paper and returns plain Python structures;
the scripts in ``benchmarks/`` render and assert on them, and
EXPERIMENTS.md records paper-vs-reproduced values.

Scale notes: numerics run at laptop-feasible sizes; the performance
figures run the paper-scale sizes through the calibrated §4 model, the
packet-aware network model, and the segment-pipeline scheduler — the same
components validated against executed SimCluster runs in the test suite.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.cluster.network import STAMPEDE_EFFECTIVE, NetworkSpec
from repro.core.convolution import ConvStrategy, conv_time_model
from repro.core.params import SoiParams
from repro.core.soi_single import SoiFFT
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10
from repro.perfmodel.localfft import LOCAL_FFT_VARIANTS, local_fft_gflops
from repro.perfmodel.model import FftModel
from repro.perfmodel.modes import ModeModel
from repro.perfmodel.overlap import segmented_breakdown

__all__ = [
    "PAPER_NODES",
    "accuracy_rows",
    "fig3_rows",
    "fig8_series",
    "fig9_rows",
    "fig10_rows",
    "fig11_rows",
    "fig12_rows",
    "headline_numbers",
    "paper_scale_model",
    "segments_for_nodes",
    "table2_rows",
]

#: Node counts on the x axes of Figs 8, 9, 11.
PAPER_NODES = (4, 8, 16, 32, 64, 128, 256, 512)

#: ~2^27 doubles per node with the factor of 7 that mu = 8/7 requires.
N_PER_NODE = 7 * 2 ** 24

#: §6.1: "8 segments per mpi process for <=128 nodes and 2 ... >= 512".
def segments_for_nodes(nodes: int) -> int:
    return 8 if nodes <= 128 else 2


#: Stampede-like network with a mild large-cluster contention roll-off,
#: calibrated so MPI time "slowly increases with more nodes" (Fig 9).
def _stampede_contention(nodes: int) -> float:
    return 1.0 / (1.0 + 0.08 * max(0.0, np.log2(nodes)))


STAMPEDE_SCALED = NetworkSpec(
    name="Stampede FDR IB (scaled)",
    bandwidth_gbps=3.0,
    latency_us=2.0,
    half_bandwidth_msg_bytes=64 * 1024,
    contention=_stampede_contention,
)


def paper_scale_model(nodes: int, *, algorithm_mu=(8, 7), b: int = 72,
                      packet_model: bool = True) -> FftModel:
    """The paper's weak-scaling configuration at a given node count."""
    return FftModel(
        n_total=N_PER_NODE * nodes,
        nodes=nodes,
        b=b,
        n_mu=algorithm_mu[0],
        d_mu=algorithm_mu[1],
        network=STAMPEDE_SCALED if packet_model else STAMPEDE_EFFECTIVE,
        segments_per_process=segments_for_nodes(nodes),
        use_packet_model=packet_model,
    )


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

def table2_rows() -> list[list]:
    """Machine comparison (paper Table 2), with derived bops."""
    rows = []
    for m in (XEON_E5_2680, XEON_PHI_SE10):
        rows.append([
            m.name,
            f"{m.sockets} x {m.cores_per_socket} x {m.smt} x {m.simd_lanes}",
            m.clock_ghz,
            f"{m.l1_kb}/{m.l2_kb}/{m.l3_kb if m.l3_kb else '-'}",
            m.peak_gflops,
            m.stream_gbps,
            round(m.bops, 2),
        ])
    return rows


# ---------------------------------------------------------------------------
# Fig 3 — model-projected normalized execution times
# ---------------------------------------------------------------------------

def fig3_rows() -> list[list]:
    """Normalized (to CT/Xeon) component times, §4 example parameters."""
    model = FftModel(n_total=(2 ** 27) * 32, nodes=32, b=72, n_mu=5, d_mu=4)
    ref = model.ct_breakdown(XEON_E5_2680).total
    rows = []
    for algo, machine, name in (
        ("ct", XEON_E5_2680, "Cooley-Tukey / Xeon"),
        ("ct", XEON_PHI_SE10, "Cooley-Tukey / Xeon Phi"),
        ("soi", XEON_E5_2680, "SOI / Xeon"),
        ("soi", XEON_PHI_SE10, "SOI / Xeon Phi"),
    ):
        br = (model.ct_breakdown if algo == "ct" else model.soi_breakdown)(machine)
        n = br.normalized_to(ref)
        rows.append([name, round(n.local_fft, 3), round(n.convolution, 3),
                     round(n.mpi, 3), round(n.total, 3)])
    return rows


# ---------------------------------------------------------------------------
# Fig 8 — weak-scaling TFLOPS + Phi/Xeon speedup lines
# ---------------------------------------------------------------------------

def fig8_series(nodes_list: tuple[int, ...] = PAPER_NODES) -> dict:
    """TFLOPS of the four configurations plus the two speedup lines."""
    out = {"nodes": list(nodes_list), "CT Xeon": [], "CT Xeon Phi (projected)": [],
           "SOI Xeon": [], "SOI Xeon Phi": [], "CT speedup": [], "SOI speedup": []}
    for nodes in nodes_list:
        m = paper_scale_model(nodes)
        times = {}
        for machine, tag in ((XEON_E5_2680, "Xeon"), (XEON_PHI_SE10, "Xeon Phi")):
            times[("ct", tag)] = m.ct_breakdown(machine).total
            # Xeon runs out-of-the-box MKL: demodulation is a separate,
            # unfused pass there (§6.1)
            times[("soi", tag)] = segmented_breakdown(
                m, machine, fuse_demodulation=(tag == "Xeon Phi")).total
        out["CT Xeon"].append(m.gflops(times[("ct", "Xeon")]) / 1e3)
        out["CT Xeon Phi (projected)"].append(
            m.gflops(times[("ct", "Xeon Phi")]) / 1e3)
        out["SOI Xeon"].append(m.gflops(times[("soi", "Xeon")]) / 1e3)
        out["SOI Xeon Phi"].append(m.gflops(times[("soi", "Xeon Phi")]) / 1e3)
        out["CT speedup"].append(times[("ct", "Xeon")] / times[("ct", "Xeon Phi")])
        out["SOI speedup"].append(times[("soi", "Xeon")] / times[("soi", "Xeon Phi")])
    return out


def headline_numbers() -> dict:
    """The paper's §1/§6.1 headline claims, reproduced from the model."""
    s = fig8_series()
    nodes = s["nodes"]
    tf512 = s["SOI Xeon Phi"][nodes.index(512)]
    tf64 = s["SOI Xeon Phi"][nodes.index(64)]
    # K computer: 206 TFLOPS on 81,408 nodes (2012 HPCC G-FFT)
    k_per_node = 206e3 / 81408  # GFLOPS/node
    ours_per_node = tf512 * 1e3 / 512
    return {
        "tflops_512_phi": tf512,
        "tflops_64_phi": tf64,
        "soi_phi_over_xeon_512": s["SOI speedup"][nodes.index(512)],
        "ct_phi_over_xeon_512": s["CT speedup"][nodes.index(512)],
        "per_node_vs_k_computer": ours_per_node / k_per_node,
    }


# ---------------------------------------------------------------------------
# Fig 9 — execution time breakdowns
# ---------------------------------------------------------------------------

def fig9_rows(nodes_list: tuple[int, ...] = PAPER_NODES) -> list[list]:
    """[machine, nodes, local FFT, convolution, exposed MPI, etc, total]."""
    rows = []
    for machine, tag in ((XEON_E5_2680, "Xeon"), (XEON_PHI_SE10, "Xeon Phi")):
        for nodes in nodes_list:
            m = paper_scale_model(nodes)
            # Xeon path uses out-of-the-box MKL: demodulation not fused (§6.1)
            run = segmented_breakdown(m, machine,
                                      fuse_demodulation=(tag == "Xeon Phi"))
            b = run.breakdown()
            rows.append([tag, nodes, round(b["local FFT"], 3),
                         round(b["convolution"], 3),
                         round(b["exposed MPI"], 3), round(b["etc"], 3),
                         round(run.total, 3)])
    return rows


# ---------------------------------------------------------------------------
# Fig 10 — local FFT optimization ablation
# ---------------------------------------------------------------------------

def fig10_rows(n: int = 16 * 2 ** 20) -> list[tuple[str, float]]:
    """(variant, GFLOPS) for the 16M-point local FFT on one Phi card."""
    return [(v.name, local_fft_gflops(n, v)) for v in LOCAL_FFT_VARIANTS]


# ---------------------------------------------------------------------------
# Fig 11 — convolution optimization ablation
# ---------------------------------------------------------------------------

def fig11_rows(nodes_list: tuple[int, ...] = (4, 8, 16, 32, 64)) -> list[list]:
    """Convolution time vs node count for the three strategies (Phi).

    Weak scaling at the evaluation's 8 segments/process (Table 3), so the
    total segment count S = 8P grows with the cluster and with it the
    baseline's n_mu*B*S working set (the Fig 11 blow-up) and the
    interchange strategy's stride-S conflict misses.
    """
    rows = []
    for nodes in nodes_list:
        params = SoiParams(n=N_PER_NODE * nodes, n_procs=nodes,
                           segments_per_process=8, n_mu=8, d_mu=7, b=72)
        row = [nodes]
        for strat in (ConvStrategy.BASELINE, ConvStrategy.INTERCHANGE,
                      ConvStrategy.BUFFERED):
            row.append(round(conv_time_model(params, XEON_PHI_SE10, strat), 4))
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig 12 — symmetric vs offload timing
# ---------------------------------------------------------------------------

def fig12_rows(nodes: int = 32) -> dict:
    """Timing-diagram lanes and totals for both coprocessor modes."""
    mm = ModeModel(paper_scale_model(nodes, packet_model=False))
    return {
        "symmetric": mm.timing_diagram("symmetric"),
        "offload": mm.timing_diagram("offload"),
        "symmetric_total": mm.breakdown("symmetric").total,
        "offload_total": mm.breakdown("offload").total,
        "offload_slowdown": mm.offload_slowdown(),
        "hybrid_speedup": mm.hybrid_speedup(),
    }


# ---------------------------------------------------------------------------
# Accuracy (implicit in the paper; SOI must match the FFT)
# ---------------------------------------------------------------------------

def accuracy_rows(seed: int = 0) -> list[list]:
    """[N, S, mu, B, rel l2 error vs numpy, design bound] at test scale."""
    rng = np.random.default_rng(seed)
    rows = []
    for (n, s, n_mu, d_mu, b) in (
        (8 * 448, 8, 8, 7, 48),
        (8 * 448, 8, 8, 7, 72),
        (16 * 448, 16, 8, 7, 72),
        (2 ** 13, 8, 5, 4, 72),
        (2 ** 14, 16, 5, 4, 72),
    ):
        params = SoiParams(n=n, n_procs=1, segments_per_process=s,
                           n_mu=n_mu, d_mu=d_mu, b=b)
        f = SoiFFT(params)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ref = np.fft.fft(x)
        err = float(np.linalg.norm(f(x) - ref) / np.linalg.norm(ref))
        rows.append([n, s, f"{n_mu}/{d_mu}", b, err, f.expected_stopband])
    return rows

"""Benchmark harness utilities: workloads, tables, experiment drivers."""

from repro.bench.runner import (
    PAPER_NODES,
    accuracy_rows,
    fig3_rows,
    fig8_series,
    fig9_rows,
    fig10_rows,
    fig11_rows,
    fig12_rows,
    headline_numbers,
    paper_scale_model,
    segments_for_nodes,
    table2_rows,
)
from repro.bench.apidoc import build_apidoc, write_apidoc
from repro.bench.chaosparallel import (
    measure_parallel_recovery,
    render_chaos_exhibit,
    run_chaos_exhibit,
)
from repro.bench.degrade import degrade_sweep_rows, render_degrade_sweep
from repro.bench.parallelbench import (
    available_cpus,
    measure_parallel_soi,
    parallel_soi_params,
    render_parallel_table,
)
from repro.bench.report import build_report, write_report
from repro.bench.servebench import (
    coalesce_speedup,
    contract_differential,
    serve_bench,
    simulated_curves,
)
from repro.bench.tables import fmt, render_bars, render_series, render_table
from repro.bench.workloads import chirp, constant, impulse, multi_tone, random_complex

__all__ = [
    "PAPER_NODES",
    "accuracy_rows",
    "available_cpus",
    "build_apidoc",
    "build_report",
    "write_apidoc",
    "chirp",
    "coalesce_speedup",
    "contract_differential",
    "write_report",
    "constant",
    "degrade_sweep_rows",
    "fig3_rows",
    "fig8_series",
    "fig9_rows",
    "fig10_rows",
    "fig11_rows",
    "fig12_rows",
    "fmt",
    "headline_numbers",
    "impulse",
    "measure_parallel_recovery",
    "measure_parallel_soi",
    "multi_tone",
    "paper_scale_model",
    "parallel_soi_params",
    "random_complex",
    "render_bars",
    "render_chaos_exhibit",
    "render_degrade_sweep",
    "render_parallel_table",
    "render_series",
    "render_table",
    "run_chaos_exhibit",
    "segments_for_nodes",
    "serve_bench",
    "simulated_curves",
    "table2_rows",
]

"""Fault sweeps: makespan inflation vs fault rate, SOI vs Cooley-Tukey.

The paper's low-communication argument has a resilience corollary: SOI
crosses the wire once (one all-to-all plus a thin ghost exchange) where
distributed Cooley-Tukey crosses it three times.  Under a faulty fabric
every crossing is a chance to pay retries, so CT's makespan inflates
faster with the fault rate — and a whole-rank loss during the exchange is
survivable for SOI (shrink-and-redistribute from the post-convolution
checkpoint) while CT has no recovery path at all.

:func:`fault_sweep_rows` quantifies the first effect on executed
SimCluster runs; :func:`rank_failure_demo` demonstrates the second.
Rendered by ``bench/fault_sweep.py`` and ``python -m repro fault-sweep``
into ``benchmarks/results/fault_sweep.txt``.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.ct_dist import DistributedCooleyTukeyFFT
from repro.cluster.faults import FaultPlan, RankFailed, RetryPolicy, chaos_cluster
from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT

__all__ = [
    "ABFT_AMPLITUDES",
    "DEFAULT_RATES",
    "DEFAULT_SEEDS",
    "abft_coverage_rows",
    "detection_coverage",
    "fault_sweep_rows",
    "rank_failure_demo",
    "render_abft_coverage",
    "render_fault_sweep",
    "sdc_ground_truth",
    "sweep_params",
    "verify_params",
]

#: Per-wire-message fault probabilities on the x axis.  A P=8 all-to-all
#: carries 56 wire messages and one fault re-flies the whole collective,
#: so per-message rates compound ~56x per attempt: 0.01 already means a
#: ~43% chance each attempt needs a retry.
DEFAULT_RATES = (0.0, 0.001, 0.002, 0.005, 0.01)

#: Seeds averaged per rate (fault schedules are Bernoulli draws).
DEFAULT_SEEDS = tuple(range(8))


def sweep_params(p: int = 8) -> SoiParams:
    """The executed-run configuration (P^2 must divide N for the CT
    baseline; 8 * 448 works for P = 8)."""
    return SoiParams(n=p * 448, n_procs=p, segments_per_process=1,
                     n_mu=8, d_mu=7, b=48)


def _run_soi(params: SoiParams, x: np.ndarray,
             plan: FaultPlan | None, policy: RetryPolicy) -> SimCluster:
    cl = SimCluster(params.n_procs)
    if plan is not None:
        chaos_cluster(cl, plan, policy)
    soi = DistributedSoiFFT(cl, params)
    soi(soi.scatter(x))
    return cl

def _run_ct(params: SoiParams, x: np.ndarray,
            plan: FaultPlan | None, policy: RetryPolicy) -> SimCluster:
    cl = SimCluster(params.n_procs)
    if plan is not None:
        chaos_cluster(cl, plan, policy)
    ct = DistributedCooleyTukeyFFT(cl, params.n)
    ct(ct.scatter(x))
    return cl


def _retry_stats(cl: SimCluster) -> tuple[int, float]:
    ev = [e for e in cl.trace.events if e.category == "retry"]
    return len(ev), sum(e.duration for e in ev)


def fault_sweep_rows(rates: tuple[float, ...] = DEFAULT_RATES,
                     seeds: tuple[int, ...] = DEFAULT_SEEDS,
                     p: int = 8, policy: RetryPolicy | None = None
                     ) -> list[list]:
    """[rate, SOI infl, SOI retry us, CT infl, CT retry us, CT/SOI cost].

    *Inflation* is the faulty-run makespan over the clean-run makespan of
    the same algorithm; *retry us* the mean simulated time charged under
    the ``"retry"`` trace category (re-flown transfers, detection stalls,
    backoff) — the absolute price of recovery.  All means over *seeds*.

    The last column is the recovery-cost ratio: CT exposes ~2.4x the wire
    messages per run (three all-to-alls against SOI's ghost ring + single
    all-to-all), so at a fixed per-message fault rate it buys
    proportionally more faults, retries, and stall time — the
    1-vs-3-all-to-all asymmetry in fault-tolerance terms.
    """
    # stalls scaled to the sub-millisecond simulated runs so inflation
    # stays interpretable (the default 1 ms detection stall would be ~5x
    # a whole clean SOI run at this miniature problem size)
    policy = policy or RetryPolicy(max_retries=16, timeout_seconds=1e-4,
                                   backoff_base=1e-5)
    params = sweep_params(p)
    rng = np.random.default_rng(1234)
    x = rng.standard_normal(params.n) + 1j * rng.standard_normal(params.n)

    base_soi = _run_soi(params, x, None, policy).elapsed
    base_ct = _run_ct(params, x, None, policy).elapsed

    rows = []
    for rate in rates:
        soi_inf, ct_inf, soi_rt, ct_rt = [], [], [], []
        for seed in seeds:
            kw = dict(corrupt_rate=rate / 2, timeout_rate=rate / 2)
            cl = _run_soi(params, x,
                          FaultPlan.random(seed, p, **kw), policy)
            soi_inf.append(cl.elapsed / base_soi)
            soi_rt.append(_retry_stats(cl)[1])
            cl = _run_ct(params, x,
                         FaultPlan.random(seed, p, **kw), policy)
            ct_inf.append(cl.elapsed / base_ct)
            ct_rt.append(_retry_stats(cl)[1])
        s_t, c_t = float(np.mean(soi_rt)), float(np.mean(ct_rt))
        rows.append([rate, round(float(np.mean(soi_inf)), 3),
                     round(s_t * 1e6, 1),
                     round(float(np.mean(ct_inf)), 3),
                     round(c_t * 1e6, 1),
                     round(c_t / s_t, 2) if s_t else "-"])
    return rows


def rank_failure_demo(p: int = 8, seed: int = 7) -> dict:
    """Kill one rank mid-exchange: SOI completes via shrink-and-
    redistribute; the CT baseline has no recovery path and aborts."""
    params = sweep_params(p)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(params.n) + 1j * rng.standard_normal(params.n)
    ref = np.fft.fft(x)
    policy = RetryPolicy(timeout_seconds=1e-4, backoff_base=1e-5)
    clean = _run_soi(params, x, None, policy).elapsed

    # transfer 2 is the all-to-all (the ghost ring exchange is transfer 1)
    plan = FaultPlan(rank_failures={3: 2}, seed=seed)
    cl = SimCluster(p)
    chaos_cluster(cl, plan, policy)
    soi = DistributedSoiFFT(cl, params)
    y = np.concatenate(soi(soi.scatter(x)))
    err = float(np.linalg.norm(y - ref) / np.linalg.norm(ref))

    ct_outcome = "completed (unexpected)"
    try:
        _run_ct(params, x, FaultPlan(rank_failures={3: 2}, seed=seed), policy)
    except RankFailed as exc:
        ct_outcome = f"aborted: RankFailed(rank={exc.rank})"

    rec = soi.last_recovery
    n_retry, t_retry = _retry_stats(cl)
    return {
        "dead_ranks": list(rec.dead_ranks) if rec else [],
        "soi_error": err,
        "error_bound": float(10 * soi.tables.expected_stopband + 1e-12),
        "soi_inflation": cl.elapsed / clean,
        "soi_retry_events": n_retry,
        "soi_retry_seconds": t_retry,
        "recomputed_rows": rec.recomputed_rows if rec else 0,
        "ct_outcome": ct_outcome,
    }


# ---------------------------------------------------------------------------
# ABFT detection coverage: silent data corruption vs the self-verifying
# pipeline (repro.verify).  Ground truth comes from the fault plan's SDC
# log; a run "detects" an injection when a tripped invariant names the
# same stage and rank, and "localizes" it when the named segment set
# contains the corrupted segment.
# ---------------------------------------------------------------------------

#: Injected perturbation amplitudes (units of the stage buffer's RMS).
#: The first sits far below the calibrated detectability floor (the run
#: must stay silently within the output error bound); the rest span
#: barely-visible to catastrophic.
ABFT_AMPLITUDES = (1e-13, 1e-8, 1e-4, 1.0)


def verify_params(p: int = 4) -> SoiParams:
    """The executed-run configuration for ABFT coverage (2 segment slots
    per rank so segment-level localization is non-trivial)."""
    return SoiParams(n=p * 2 * 448, n_procs=p, segments_per_process=2,
                     n_mu=8, d_mu=7, b=48)


def sdc_ground_truth(plan: FaultPlan,
                     params: SoiParams) -> list[tuple[str, int, int]]:
    """Map logged SDC events to ``(stage, rank, global_segment)`` truth.

    ``"conv"`` events strike the (rows, S) post-conv buffer, whose
    columns are the global segments; ``"segment-fft"`` events strike the
    (spp, M') spectra of the rank's owned slots.
    """
    s, spp = params.n_segments, params.segments_per_process
    mp = params.m_oversampled
    out = []
    for ev in plan.sdc_log:
        if ev.stage == "conv":
            seg = ev.element % s
        else:  # "segment-fft"
            seg = ev.rank * spp + ev.element // mp
        out.append((ev.stage, ev.rank, seg))
    return out


def detection_coverage(report, plan: FaultPlan,
                       params: SoiParams) -> dict:
    """Score a verification report against the plan's SDC ground truth."""
    truth = sdc_ground_truth(plan, params)
    detected = localized = 0
    for stage, rank, seg in truth:
        evs = [e for e in report.events
               if e.stage == stage and e.rank == rank]
        detected += bool(evs)
        localized += any(seg in e.segments for e in evs)
    return {"injected": len(truth), "detected": detected,
            "localized": localized, "detections": report.detections,
            "repairs": report.repairs, "escalations": report.escalations}


def _run_verified(params: SoiParams, x: np.ndarray, seed: int,
                  sdc_rate: float, amplitude: float):
    cl = SimCluster(params.n_procs)
    # one run consumes exactly 2P SDC slots (P conv stages + P
    # segment-FFT stages); matching the horizon makes sdc_rate the
    # per-stage corruption probability
    plan = FaultPlan.random(seed, params.n_procs, sdc_rate=sdc_rate,
                            sdc_amplitude=amplitude,
                            horizon_sdc=2 * params.n_procs)
    chaos_cluster(cl, plan)
    soi = DistributedSoiFFT(cl, params, verify=True)
    y = soi.assemble(soi(soi.scatter(x)))
    return cl, plan, soi, y


def abft_coverage_rows(amplitudes: tuple[float, ...] = ABFT_AMPLITUDES,
                       seeds: tuple[int, ...] = DEFAULT_SEEDS,
                       p: int = 4, sdc_rate: float = 0.25) -> dict:
    """Detection/localization coverage vs perturbation amplitude.

    Returns ``{"clean_detections": int, "bound": float, "rows": [...]}``
    where each row is ``[amplitude, injected, detected%, localized%,
    max rel err, repair us]``.  ``clean_detections`` counts invariant
    trips across sdc-free runs of every seed — the false-positive count,
    which must be zero (thresholds are calibrated, not tuned).
    """
    params = verify_params(p)
    rng = np.random.default_rng(99)
    x = rng.standard_normal(params.n) + 1j * rng.standard_normal(params.n)
    ref = np.fft.fft(x)
    nref = float(np.linalg.norm(ref))

    clean_det = 0
    bound = 0.0
    for seed in seeds:
        _, _, soi, _ = _run_verified(params, x, seed, 0.0, 1.0)
        clean_det += soi.last_verification.detections
        bound = soi.verifier.thresholds.output_rtol

    rows = []
    for amp in amplitudes:
        injected = detected = localized = 0
        max_err, repair_s = 0.0, 0.0
        for seed in seeds:
            cl, plan, soi, y = _run_verified(params, x, seed, sdc_rate, amp)
            cov = detection_coverage(soi.last_verification, plan, params)
            injected += cov["injected"]
            detected += cov["detected"]
            localized += cov["localized"]
            max_err = max(max_err,
                          float(np.linalg.norm(y - ref)) / nref)
            repair_s += sum(e.duration for e in cl.trace.events
                            if e.label == "abft repair")
        pct = (lambda k: round(100.0 * k / injected, 1) if injected
               else "-")
        rows.append([amp, injected, pct(detected), pct(localized),
                     f"{max_err:.1e}", round(repair_s * 1e6, 2)])
    return {"clean_detections": clean_det, "bound": bound, "rows": rows}


def render_abft_coverage(amplitudes: tuple[float, ...] = ABFT_AMPLITUDES,
                         seeds: tuple[int, ...] = DEFAULT_SEEDS,
                         p: int = 4, sdc_rate: float = 0.25) -> str:
    """Text exhibit: ABFT coverage table + clean false-positive line."""
    from repro.bench.tables import render_table

    data = abft_coverage_rows(amplitudes, seeds, p, sdc_rate)
    text = render_table(
        ["amplitude (rms)", "injected", "detected %", "localized %",
         "max rel err", "repair us"],
        data["rows"],
        title=f"ABFT detection coverage vs SDC amplitude (P={p}, "
              f"rate={sdc_rate}/stage, {len(seeds)} seeds)")
    text += (
        f"\n\nClean runs ({len(seeds)} seeds, no SDC): "
        f"{data['clean_detections']} invariant trips (false positives)."
        f"\nOutput error bound {data['bound']:.1e}; sub-threshold "
        "amplitudes may go undetected but stay inside the bound — "
        "corruption below the noise floor is harmless by construction.")
    return text


def render_fault_sweep(rates: tuple[float, ...] = DEFAULT_RATES,
                       seeds: tuple[int, ...] = DEFAULT_SEEDS,
                       p: int = 8) -> str:
    """The full text exhibit (sweep table + rank-failure demo)."""
    from repro.bench.tables import render_table

    rows = fault_sweep_rows(rates, seeds, p)
    text = render_table(
        ["fault rate", "SOI inflation", "SOI retry us",
         "CT inflation", "CT retry us", "CT/SOI retry cost"],
        rows,
        title=f"Makespan inflation vs per-message fault rate (P={p}, "
              f"executed runs, mean over {len(seeds)} seeds)")
    d = rank_failure_demo(p)
    text += (
        "\n\nRank-failure recovery (one rank dies during the exchange):\n"
        f"  SOI : completed on survivors, dead={d['dead_ranks']}, "
        f"err={d['soi_error']:.2e} (bound {d['error_bound']:.1e}),\n"
        f"        makespan {d['soi_inflation']:.2f}x clean, "
        f"{d['soi_retry_events']} retry events "
        f"({d['soi_retry_seconds'] * 1e3:.2f} ms), "
        f"{d['recomputed_rows']} conv rows recomputed\n"
        f"  CT  : {d['ct_outcome']}")
    return text

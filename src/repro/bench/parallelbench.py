"""Real-core SOI scaling bench: process backend vs single-process wall clock.

Measures what the simulator can only predict: actual wall-clock speedup
of the distributed SOI transform when its ranks run on real cores
(:class:`~repro.cluster.backends.ProcessBackend`) instead of
rank-serially inside one process.  For each worker count P the *same*
plan (same ``SoiParams``, same numerics, outputs asserted bitwise equal)
is timed both ways, and the Section 4 performance model's simulated
elapsed time is reported alongside, so measured scaling can be compared
against the paper's prediction.

Speedups on a machine with fewer cores than workers are physically
capped near 1.0 — results carry the visible CPU count so downstream
gates (``bench/regression.py``) can tell "backend is slow" from "host
has one core".
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.cluster.backends import ProcessBackend
from repro.cluster.simcluster import SimCluster
from repro.core.params import SoiParams
from repro.core.soi_dist import DistributedSoiFFT

__all__ = ["available_cpus", "measure_parallel_soi", "parallel_soi_params",
           "render_parallel_table"]


def available_cpus() -> int:
    """CPUs this process may actually schedule on (cgroup-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def parallel_soi_params(n: int, workers: int,
                        segments_per_process: int = 2) -> SoiParams:
    """A valid power-of-two-friendly parameter set for the scaling bench.

    ``mu = 5/4`` keeps every divisibility rule satisfied for any
    power-of-two *n* and power-of-two worker count (M' = 5·2^k stays
    (2,5)-smooth, so the per-segment FFT needs no Bluestein fallback).
    """
    return SoiParams(n=n, n_procs=workers,
                     segments_per_process=segments_per_process,
                     n_mu=5, d_mu=4, b=48)


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_parallel_soi(n: int = 2 ** 22, workers=(1, 2, 4, 8),
                         reps: int = 2, segments_per_process: int = 2,
                         start_method: str = "fork", seed: int = 2013) -> dict:
    """Time serial vs process-backend SOI for each worker count.

    Returns a dict with one row per worker count: measured single-process
    and parallel wall seconds, measured speedup, the perf model's
    simulated elapsed seconds, and a bitwise-equality flag between the
    two backends' outputs.
    """
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    rows = []
    for p in workers:
        params = parallel_soi_params(n, p, segments_per_process)
        soi = DistributedSoiFFT(SimCluster(p), params)
        parts = soi.scatter(x)
        ref = soi(parts)  # warm plans + pooled workspaces
        serial_s = _best_of(lambda: soi(parts), reps)

        model_cl = SimCluster(p)
        model_soi = DistributedSoiFFT(model_cl, params)
        t0 = model_cl.elapsed
        model_soi(parts)
        model_s = model_cl.elapsed - t0

        with ProcessBackend(p, start_method=start_method) as backend:
            par_soi = DistributedSoiFFT(SimCluster(p), params,
                                        backend=backend)
            out = par_soi(parts)  # spawns workers, warms their plan caches
            equal = all(np.array_equal(a, b) for a, b in zip(ref, out))
            parallel_s = _best_of(lambda: par_soi(parts), reps)

        rows.append({
            "workers": p,
            "serial_s": round(serial_s, 6),
            "parallel_s": round(parallel_s, 6),
            "speedup": round(serial_s / parallel_s, 3),
            "model_s": round(model_s, 6),
            "bitwise_equal": bool(equal),
        })
    base_model = rows[0]["model_s"] if rows else None
    for row in rows:
        # the §4 model's predicted scaling of the same plan vs the first
        # (reference) worker count — measured speedup's yardstick
        row["model_predicted_speedup"] = (
            round(base_model / row["model_s"], 3) if base_model else None)
    return {
        "n": n,
        "segments_per_process": segments_per_process,
        "start_method": start_method,
        "cpus": available_cpus(),
        "reps": reps,
        "rows": rows,
    }


def render_parallel_table(result: dict) -> str:
    """Fixed-width table of the scaling rows (CLI / artifact output)."""
    lines = [
        f"real-parallel SOI scaling — n=2^{int(np.log2(result['n']))} "
        f"({result['n']}), {result['cpus']} cpu(s) visible, "
        f"start method {result['start_method']}",
        f"{'workers':>8} {'serial':>12} {'parallel':>12} {'speedup':>9} "
        f"{'model':>12} {'model x':>9} {'bitwise':>8}",
    ]
    for r in result["rows"]:
        lines.append(
            f"{r['workers']:>8d} {r['serial_s'] * 1e3:>10.1f} ms "
            f"{r['parallel_s'] * 1e3:>10.1f} ms {r['speedup']:>8.2f}x "
            f"{r['model_s'] * 1e3:>10.3f} ms "
            f"{(r['model_predicted_speedup'] or 0):>8.2f}x "
            f"{'ok' if r['bitwise_equal'] else 'MISMATCH':>8}")
    if result["cpus"] < max(r["workers"] for r in result["rows"]):
        lines.append(f"note: only {result['cpus']} cpu(s) visible — "
                     f"wall-clock speedup is capped by the host, not the "
                     f"backend")
    return "\n".join(lines)

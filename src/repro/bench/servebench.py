"""Serving-gateway benchmarks: coalesce speedup, contract, load curves.

Three exhibits, consumed by ``bench/regression.py`` (the
``serving_gateway`` workload in ``BENCH_kernels.json``) and by the
``python -m repro serve-bench`` CLI verb:

* :func:`coalesce_speedup` — wall-clock: the same same-``(n, dtype)``
  request mix served one-at-a-time through :class:`~repro.resilience
  .server.SoiService` versus concurrently through the coalescing
  :class:`~repro.serve.gateway.AsyncSoiGateway`.  The acceptance floor
  (>= 1.5x, full mode) rides the measured batch amortization at small
  ``n``, where plan setup dominates per-row work (~2.6x ceiling at
  n=448), so the gateway must actually coalesce to clear it.  Bitwise
  equality against the solo plan is asserted on every row.
* :func:`contract_differential` — deterministic: a request served
  through a coalesced window must be indistinguishable from the same
  request served alone — same spectrum bits, same outcome, same budget
  itemization (under a non-advancing injected clock both charge
  identical purposes and seconds).
* :func:`simulated_curves` — the open-loop latency-vs-offered-load
  sweep on the virtual-time simulator with a pinned
  :class:`~repro.serve.loadgen.ServiceModel`, so every number is
  machine-independent and the gates (p99/shed/throughput at a stated
  offered load, QoS shed ordering, outcome conservation) bind in quick
  mode.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.resilience.ladder import DegradationLadder
from repro.resilience.server import SoiService
from repro.serve.gateway import AsyncSoiGateway, serve_requests
from repro.serve.loadgen import (
    LoadResult,
    ServiceModel,
    render_curves,
    sweep_offered_load,
)
from repro.serve.qos import QosPolicy
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["coalesce_speedup", "contract_differential", "serve_bench",
           "simulated_curves"]

#: The stated operating point of the simulated gates: at this offered
#: load the gateway must hold p99 under the bound with at most the shed
#: budget, while sustaining at least the throughput floor.
STATED_OFFERED_RPS = 3000.0
P99_BOUND_S = 0.010
#: Shed budget for the *premium* (gold) tenant at the stated load — the
#: rate-limited bronze tenant is SUPPOSED to shed under pressure; the
#: contract is that its noise never spills onto gold.
PREMIUM_SHED_BUDGET = 0.05
THROUGHPUT_FLOOR_RPS = 2000.0
COALESCE_SPEEDUP_FLOOR = 1.5


def _fresh_qos() -> QosPolicy:
    """Stock three-tier policy with one tenant pinned to each class."""
    qos = QosPolicy(metrics=MetricsRegistry())
    qos.assign("tenant-gold", "gold")
    qos.assign("tenant-silver", "silver")
    qos.assign("tenant-bronze", "bronze")
    return qos


def _pinned_model(ladder: DegradationLadder) -> ServiceModel:
    """The analytic model rescaled to a pinned magnitude.

    Relative rung costs and the setup/per-row split come from the
    Section 4 model; the absolute scale is pinned so rung 0 costs
    330 us per solo request on *any* machine — the simulated gates are
    then bit-reproducible everywhere.
    """
    base = ServiceModel.analytic(ladder)
    scale = 3.3e-4 / base.request_seconds(0)
    return ServiceModel(
        setup_s=tuple(s * scale for s in base.setup_s),
        per_row_s=tuple(p * scale for p in base.per_row_s))


def coalesce_speedup(*, n: int = 448, segments_per_process: int = 8,
                     n_requests: int = 96, max_batch: int = 32,
                     repeats: int = 2) -> dict:
    """Wall-clock: coalesced gateway vs one-at-a-time ``SoiService``.

    Same ladder, same signal mix (all requests share ``(n, dtype)``),
    gold tenants (full-quality rung), generous deadlines — the only
    difference is coalescing.  Every gateway row is compared bitwise
    against the solo plan's output.
    """
    ladder = DegradationLadder.standard(
        n, segments_per_process=segments_per_process)
    rng = np.random.default_rng(2013)
    xs = (rng.standard_normal((n_requests, n))
          + 1j * rng.standard_normal((n_requests, n))
          ).astype(ladder[0].dtype)
    reqs = [{"x": xs[i], "tenant": "tenant-gold",
             "deadline_seconds": 30.0} for i in range(n_requests)]

    # solo baseline: the pre-gateway serving path, one request at a time
    svc = SoiService(ladder, queue_limit=max(8, n_requests))
    svc.submit(xs[0], deadline_seconds=30.0)  # warm the plan
    solo_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        solo_results = [svc.submit(xs[i], deadline_seconds=30.0)
                        for i in range(n_requests)]
        solo_s = min(solo_s, time.perf_counter() - t0)

    # coalesced: same mix submitted concurrently through the gateway
    coalesced_s = float("inf")
    bitwise = True
    ratio = 0.0
    for _ in range(repeats):
        qos = _fresh_qos()
        gw = AsyncSoiGateway(ladder, qos=qos,
                             queue_limit=max(64, n_requests),
                             max_batch=max_batch, window_seconds=1e-3,
                             metrics=MetricsRegistry())
        gw.plan(0).batch(xs[:1])  # warm the plan outside the timing
        t0 = time.perf_counter()
        gw_results = serve_requests(gw, reqs)
        coalesced_s = min(coalesced_s, time.perf_counter() - t0)
        ratio = gw.coalescer.ratio
        for solo, via_gw in zip(solo_results, gw_results):
            if not (hasattr(via_gw, "y")
                    and np.array_equal(solo.y, via_gw.y)):
                bitwise = False
        asyncio.run(gw.close())
    return {
        "n": n, "n_requests": n_requests, "max_batch": max_batch,
        "solo_s": round(solo_s, 6),
        "coalesced_s": round(coalesced_s, 6),
        "speedup": round(solo_s / coalesced_s, 3) if coalesced_s else None,
        "coalesce_ratio": round(ratio, 3),
        "bitwise_equal": bool(bitwise),
        "floor": COALESCE_SPEEDUP_FLOOR,
    }


def contract_differential(*, n: int = 896, segments_per_process: int = 8,
                          n_requests: int = 8) -> dict:
    """Coalesced serving must be indistinguishable from solo serving.

    Both paths run under a non-advancing injected clock, so latencies
    and charges are exactly zero on both sides and the *entire*
    per-request observable — spectrum bits, outcome, degradation
    report, budget itemization — must compare equal, not just close.
    """
    ladder = DegradationLadder.standard(
        n, segments_per_process=segments_per_process)
    rng = np.random.default_rng(7)
    xs = (rng.standard_normal((n_requests, n))
          + 1j * rng.standard_normal((n_requests, n))
          ).astype(ladder[0].dtype)
    reqs = [{"x": xs[i], "tenant": "tenant-gold",
             "deadline_seconds": 30.0} for i in range(n_requests)]
    frozen = lambda: 1000.0  # noqa: E731 - non-advancing clock

    def run(max_batch: int):
        gw = AsyncSoiGateway(ladder, qos=_fresh_qos(), max_batch=max_batch,
                             window_seconds=1e-4, clock=frozen,
                             metrics=MetricsRegistry())
        results = serve_requests(gw, reqs)
        asyncio.run(gw.close())
        return results

    solo = run(1)  # every window holds exactly one request
    coal = run(n_requests)  # one window holds them all
    bitwise = all(np.array_equal(a.y, b.y) for a, b in zip(solo, coal))
    outcomes = all(a.outcome == b.outcome for a, b in zip(solo, coal))
    reports = all(a.report.rung_index == b.report.rung_index
                  and a.report.reason == b.report.reason
                  for a, b in zip(solo, coal))
    return {
        "n": n, "n_requests": n_requests,
        "bitwise_equal": bool(bitwise),
        "outcomes_equal": bool(outcomes),
        "reports_equal": bool(reports),
        "ok": bool(bitwise and outcomes and reports),
    }


def simulated_curves(quick: bool, *, n: int = 896,
                     segments_per_process: int = 8,
                     rates=(1000.0, 3000.0, 6000.0, 12000.0, 24000.0),
                     deadline_seconds: float = 0.05,
                     window_seconds: float = 2e-3,
                     max_batch: int = 32) -> dict:
    """The latency-vs-offered-load sweep plus its deterministic gates.

    Quick mode runs 2k requests per operating point; full mode 24k per
    point (>= 10^5 total), same seeds, same pinned model — quick is a
    strict subsample, not a different experiment.
    """
    ladder = DegradationLadder.standard(
        n, segments_per_process=segments_per_process)
    model = _pinned_model(ladder)
    n_requests = 2000 if quick else 24000
    tenants = {"tenant-gold": 1.0, "tenant-silver": 1.0,
               "tenant-bronze": 1.0}
    results = sweep_offered_load(
        ladder, rates, n_requests=n_requests, seed=2013, tenants=tenants,
        deadline_seconds=deadline_seconds, model=model,
        qos_factory=_fresh_qos, window_seconds=window_seconds,
        max_batch=max_batch)

    def shed_frac(r: LoadResult, tenant: str) -> float:
        t = r.tenants.get(tenant, {})
        sub = t.get("submitted", 0)
        return t.get("shed", 0) / sub if sub else 0.0

    stated = min(results,
                 key=lambda r: abs(r.offered_rps - STATED_OFFERED_RPS))
    hottest = max(results, key=lambda r: r.offered_rps)
    conserved = all(r.served + r.shed + r.deadline_exceeded == r.n_requests
                    for r in results)
    gates = {
        "stated_offered_rps": round(stated.offered_rps, 1),
        "stated_p99_s": round(stated.latency_p99, 6),
        "p99_bound_s": P99_BOUND_S,
        "stated_premium_shed_rate": round(
            shed_frac(stated, "tenant-gold"), 4),
        "premium_shed_budget": PREMIUM_SHED_BUDGET,
        "stated_total_shed_rate": round(stated.shed_rate, 4),
        "stated_throughput_rps": round(float(stated.throughput_rps), 1),
        "throughput_floor_rps": THROUGHPUT_FLOOR_RPS,
        "p99_ok": bool(stated.latency_p99 <= P99_BOUND_S),
        "shed_ok": bool(
            shed_frac(stated, "tenant-gold") <= PREMIUM_SHED_BUDGET),
        "throughput_ok": bool(
            stated.throughput_rps >= THROUGHPUT_FLOOR_RPS),
        "qos_ordering_ok": bool(
            shed_frac(hottest, "tenant-bronze")
            >= shed_frac(hottest, "tenant-gold")),
        "coalesce_effective_ok": bool(hottest.coalesce_ratio >= 1.5),
        "conserved_ok": bool(conserved),
    }
    return {
        "mode": "quick" if quick else "full",
        "n": n,
        "n_requests_per_point": n_requests,
        "total_requests": n_requests * len(rates),
        "deadline_seconds": deadline_seconds,
        "points": [r.to_dict() for r in results],
        "gates": gates,
        "exhibit": render_curves(
            results,
            title=f"SOI serving: open-loop latency vs offered load "
                  f"(n={n}, simulated, "
                  f"{n_requests * len(rates)} requests)"),
    }


def serve_bench(quick: bool) -> dict:
    """The full serving workload: wall-clock + differential + curves."""
    out = {
        "coalesce": coalesce_speedup(
            n_requests=48 if quick else 96, repeats=1 if quick else 2),
        "differential": contract_differential(),
        "curves": simulated_curves(quick),
    }
    g = out["curves"]["gates"]
    out["ok_quick"] = bool(
        out["differential"]["ok"] and out["coalesce"]["bitwise_equal"]
        and g["p99_ok"] and g["shed_ok"] and g["throughput_ok"]
        and g["qos_ordering_ok"] and g["coalesce_effective_ok"]
        and g["conserved_ok"])
    out["ok_full"] = bool(
        out["ok_quick"]
        and out["coalesce"]["speedup"] is not None
        and out["coalesce"]["speedup"] >= COALESCE_SPEEDUP_FLOOR)
    return out

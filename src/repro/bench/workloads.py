"""Input generators for tests, examples, and benchmarks.

All generators return complex128 arrays and are deterministic given a
seed, so benchmark runs are reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_complex", "multi_tone", "impulse", "chirp", "constant"]


def random_complex(n: int, seed: int = 0, scale: float = 1.0) -> np.ndarray:
    """IID complex Gaussian noise — the HPCC G-FFT style workload."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    return scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))


def multi_tone(n: int, freqs: list[int], amps: list[float] | None = None,
               phases: list[float] | None = None) -> np.ndarray:
    """Sum of pure complex exponentials at integer bin frequencies.

    The DFT of this signal is exactly ``n * amp`` at each listed bin —
    the sharpest possible accuracy probe for the SOI demodulation.
    """
    if amps is None:
        amps = [1.0] * len(freqs)
    if phases is None:
        phases = [0.0] * len(freqs)
    if not (len(freqs) == len(amps) == len(phases)):
        raise ValueError("freqs, amps, phases must have equal length")
    t = np.arange(n)
    x = np.zeros(n, dtype=np.complex128)
    for f, a, ph in zip(freqs, amps, phases):
        x += a * np.exp(2j * np.pi * (f * t / n) + 1j * ph)
    return x


def impulse(n: int, position: int = 0, amplitude: float = 1.0) -> np.ndarray:
    """Unit impulse — its DFT is a pure complex exponential."""
    if not 0 <= position < n:
        raise ValueError("position out of range")
    x = np.zeros(n, dtype=np.complex128)
    x[position] = amplitude
    return x


def chirp(n: int, f0: float = 0.0, f1: float | None = None) -> np.ndarray:
    """Linear chirp sweeping bins f0 -> f1 (default: half band)."""
    if f1 is None:
        f1 = n / 2.0
    t = np.arange(n) / max(n, 1)
    inst_phase = f0 * t + 0.5 * (f1 - f0) * t * t  # accumulated cycles
    return np.exp(2j * np.pi * inst_phase).astype(np.complex128)


def constant(n: int, value: complex = 1.0 + 0.0j) -> np.ndarray:
    """Constant signal — DFT concentrates everything in bin 0."""
    return np.full(n, value, dtype=np.complex128)

"""Scale-chaos exhibit: correlated failures on a 10^3-10^4-rank fabric.

Reproduces the shape of the paper's scaling figures (Fig 8/9) on the
simulated fabric, but with the failure modes a real machine of that size
exhibits: at 10^3+ ranks the interesting events are not independent bit
flips but *correlated* ones — a leaf switch takes its whole rank group
down at once, an uplink browns out, the fabric splits into islands.

Every scenario here runs on synthetic one-element-per-pair payloads
(views into one (P, P) matrix), so the exchanges carry real data whose
bit-identity can be checked, while the per-rank arithmetic stays tiny
enough to execute 1024- and 4096-rank fabrics on one host.  Four series
per fabric size:

* **flat vs hierarchical** — the two-level (intra-leaf, then
  inter-leaf) all-to-all against the flat pairwise exchange: simulated
  time, wire messages, bitwise equality;
* **degraded uplink** — one leaf's cross-domain links at a fraction of
  spec with packet loss: the exchange completes through retries, slower;
* **switch failure** — one whole fault domain dies mid-exchange; the
  survivors shrink and the shrunken exchange must be bit-identical to a
  fresh fault-free exchange at the surviving rank count; MTTR is the
  simulated time from detection to the shrunken exchange's completion;
* **partition** — a seeded split along domain boundaries; detection
  yields the component census, the majority side (strict quorum of live
  ranks) re-runs bit-identically at its own size, the minority aborts.

Full mode adds the 4096-rank fabric and an end-to-end distributed SOI
run at 1024 ranks with a dead leaf switch (domain-aware recovery with
per-domain MTTR).  ``python -m repro scale-chaos`` writes the whole
exhibit to ``benchmarks/results/scale_chaos.txt``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bench.tables import render_table
from repro.cluster.faults import (
    FaultPlan,
    LinkDegradation,
    PartitionDetected,
    PartitionEvent,
    RankFailed,
    RetryPolicy,
)
from repro.cluster.simcluster import SimCluster
from repro.cluster.topology import FatTree

__all__ = [
    "DEFAULT_SIZES",
    "FULL_SIZES",
    "degraded_uplink_rows",
    "exchange_rows",
    "fabric_for",
    "partition_rows",
    "render_scale_chaos",
    "soi_domain_recovery",
    "switch_failure_rows",
]

DEFAULT_SIZES = (64, 256, 1024)
FULL_SIZES = (64, 256, 1024, 4096)
DEFAULT_SEED = 2013


def fabric_for(n_ranks: int) -> FatTree:
    """The exhibit's fabric: a fat tree with sqrt(P) ranks per leaf.

    radix = 2*sqrt(P) puts sqrt(P) ranks behind each of sqrt(P) leaf
    switches — the square arrangement that makes the two-level exchange's
    message count (2*(sqrt(P)-1) per rank) minimal for a given P.
    """
    m = math.isqrt(n_ranks)
    if m * m != n_ranks:
        raise ValueError(f"exhibit sizes are perfect squares, got {n_ranks}")
    return FatTree(radix=2 * m)


def _payload_matrix(n_ranks: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((n_ranks, n_ranks))
            + 1j * rng.standard_normal((n_ranks, n_ranks)))


def _sendbufs(mat: np.ndarray, ranks) -> list[list[np.ndarray]]:
    """One complex element per (src, dst) pair, as views into *mat*."""
    return [[mat[s, d:d + 1] for d in ranks] for s in ranks]


def _as_matrix(recv) -> np.ndarray:
    """Stack a received [dst][src] table of 1-element payloads."""
    return np.stack([np.concatenate([np.ravel(p) for p in row])
                     for row in recv])


def _contiguous_groups(n_ranks: int, group_size: int) -> list[list[int]]:
    return [list(range(lo, lo + group_size))
            for lo in range(0, n_ranks, group_size)]


# ---------------------------------------------------------------------------
# Series 1: flat vs hierarchical all-to-all (the Fig 8 shape)
# ---------------------------------------------------------------------------

def exchange_rows(sizes=DEFAULT_SIZES, seed: int = DEFAULT_SEED) -> list[dict]:
    rows = []
    for q in sizes:
        top = fabric_for(q)
        mat = _payload_matrix(q, seed)
        bufs = _sendbufs(mat, range(q))

        cl_flat = SimCluster(q, topology=top)
        recv_flat = cl_flat.comm.alltoall(bufs, label="flat all-to-all")
        flat_sim = cl_flat.elapsed
        flat_msgs = cl_flat.comm.message_count

        cl_hier = SimCluster(q, topology=top)
        groups = [list(g) for g in cl_hier.domains.groups]
        recv_hier = cl_hier.comm.alltoall(bufs, groups=groups,
                                          label="two-level all-to-all")
        hier_sim = cl_hier.elapsed
        hier_msgs = cl_hier.comm.message_count

        rows.append({
            "ranks": q,
            "leaf_size": top.radix // 2,
            "groups": len(groups),
            "flat_msgs": flat_msgs,
            "hier_msgs": hier_msgs,
            "flat_sim_s": flat_sim,
            "hier_sim_s": hier_sim,
            "speedup": flat_sim / hier_sim if hier_sim else float("inf"),
            "bitwise_equal": bool(np.array_equal(_as_matrix(recv_flat),
                                                 _as_matrix(recv_hier))),
        })
    return rows


# ---------------------------------------------------------------------------
# Series 2: degraded uplink (brownout, not failure)
# ---------------------------------------------------------------------------

def degraded_uplink_rows(sizes=DEFAULT_SIZES, seed: int = DEFAULT_SEED,
                         bandwidth_factor: float = 0.25,
                         loss_rate: float | None = None) -> list[dict]:
    rows = []
    for q in sizes:
        top = fabric_for(q)
        mat = _payload_matrix(q, seed)
        bufs = _sendbufs(mat, range(q))

        cl = SimCluster(q, topology=top)
        dom = cl.domains
        groups = [list(g) for g in dom.groups]
        victim = dom.n_domains // 2
        inside = set(dom.members(victim))
        # a retry re-flies the whole collective, so the loss rate is
        # normalized to ~0.5 expected losses per boundary-crossing
        # collective (2*(m-1) degraded routes each) at every fabric size
        p_loss = loss_rate if loss_rate is not None \
            else 0.5 / (2 * (top.radix // 2))
        deg = LinkDegradation(bandwidth_factor=bandwidth_factor,
                              loss_rate=p_loss)
        links = {(s, d): deg
                 for s in range(q) for d in range(q)
                 if s != d and (s in inside) != (d in inside)}
        plan = FaultPlan(degraded_links=links, seed=seed)
        cl.comm.install_faults(plan, RetryPolicy(max_retries=8))
        recv = cl.comm.alltoall(bufs, groups=groups, label="degraded")
        degraded_sim = cl.elapsed

        cl0 = SimCluster(q, topology=top)
        cl0.comm.alltoall(bufs, groups=groups, label="clean")
        clean_sim = cl0.elapsed

        rows.append({
            "ranks": q,
            "degraded_links": len(links),
            "clean_sim_s": clean_sim,
            "degraded_sim_s": degraded_sim,
            "slowdown": degraded_sim / clean_sim if clean_sim else 1.0,
            "losses": plan.losses_injected,
            "retries": cl.comm.retry_count,
            "complete": bool(np.array_equal(
                _as_matrix(recv), mat.T)),
        })
    return rows


# ---------------------------------------------------------------------------
# Series 3: one leaf switch dies mid-exchange (correlated domain failure)
# ---------------------------------------------------------------------------

def switch_failure_rows(sizes=DEFAULT_SIZES,
                        seed: int = DEFAULT_SEED) -> list[dict]:
    rows = []
    for q in sizes:
        top = fabric_for(q)
        mat = _payload_matrix(q, seed)
        cl = SimCluster(q, topology=top)
        dom = cl.domains
        groups = [list(g) for g in dom.groups]
        victim = dom.n_domains // 2
        plan = FaultPlan.fail_domain(dom, victim, at_transfer=1, seed=seed)
        cl.comm.install_faults(plan, RetryPolicy(max_retries=1))

        first_dead = None
        try:
            cl.comm.alltoall(_sendbufs(mat, range(q)), groups=groups,
                             label="doomed all-to-all")
        except RankFailed as exc:
            first_dead = exc.rank
        if first_dead is None:
            raise AssertionError("domain failure was not detected")
        for r in dom.members(victim):  # the whole switch went, not one rank
            cl.fail_rank(r)
        detect_sim = cl.elapsed
        cl.comm.clear_faults()

        live = cl.live_ranks
        sub = _sendbufs(mat, live)
        recv = cl.comm.alltoall(sub, ranks=live,
                                groups=dom.equal_groups(live),
                                label="shrunken all-to-all")
        mttr = cl.elapsed - detect_sim

        # the contract: bit-identical to a fresh fault-free exchange at
        # the surviving rank count
        m = top.radix // 2
        cl_ref = SimCluster(len(live), topology=top)
        recv_ref = cl_ref.comm.alltoall(
            _sendbufs(mat[np.ix_(live, live)], range(len(live))),
            groups=_contiguous_groups(len(live), m), label="reference")

        rows.append({
            "ranks": q,
            "victim_domain": victim,
            "dead": len(dom.members(victim)),
            "first_detected": first_dead,
            "detect_sim_s": detect_sim,
            "mttr_sim_s": mttr,
            "survivors": len(live),
            "bitwise_equal": bool(np.array_equal(_as_matrix(recv),
                                                 _as_matrix(recv_ref))),
        })
    return rows


# ---------------------------------------------------------------------------
# Series 4: fabric partition (quorum shrink, minority abort)
# ---------------------------------------------------------------------------

def partition_rows(sizes=DEFAULT_SIZES, seed: int = DEFAULT_SEED,
                   cut_quarter: bool = True) -> list[dict]:
    rows = []
    for q in sizes:
        top = fabric_for(q)
        mat = _payload_matrix(q, seed)
        cl = SimCluster(q, topology=top)
        dom = cl.domains
        groups = [list(g) for g in dom.groups]
        n_cut = max(1, dom.n_domains // 4) if cut_quarter \
            else dom.n_domains // 2
        minority = tuple(r for g in groups[-n_cut:] for r in g)
        majority = tuple(r for g in groups[:-n_cut] for r in g)
        plan = FaultPlan(partition=PartitionEvent(
            at_transfer=1, components=(majority, minority)), seed=seed)
        cl.comm.install_faults(plan, RetryPolicy(max_retries=1))

        detected = None
        try:
            cl.comm.alltoall(_sendbufs(mat, range(q)), groups=groups,
                             label="cut all-to-all")
        except PartitionDetected as exc:
            detected = exc
        if detected is None:
            raise AssertionError("partition was not detected")
        detect_sim = cl.elapsed
        # the collective that tripped may have seen only a subset of the
        # fabric; the plan reconstructs the full component census
        components = plan.partition_components(range(q))
        sizes_by_comp = sorted((len(c) for c in components), reverse=True)
        quorum = 2 * len(majority) > q
        cl.comm.clear_faults()

        # majority side: shrink onto its own component and re-run
        for r in minority:
            cl.fail_rank(r)
        maj = list(majority)
        recv = cl.comm.alltoall(_sendbufs(mat, maj), ranks=maj,
                                groups=dom.equal_groups(maj),
                                label="majority all-to-all")

        m = top.radix // 2
        cl_ref = SimCluster(len(maj), topology=top)
        recv_ref = cl_ref.comm.alltoall(
            _sendbufs(mat[np.ix_(maj, maj)], range(len(maj))),
            groups=_contiguous_groups(len(maj), m), label="reference")

        rows.append({
            "ranks": q,
            "components": len(components),
            "census": "+".join(str(s) for s in sizes_by_comp),
            "quorum": quorum,
            "majority": len(majority),
            "aborted": len(minority),
            "detect_sim_s": detect_sim,
            "bitwise_equal": bool(np.array_equal(_as_matrix(recv),
                                                 _as_matrix(recv_ref))),
        })
    return rows


# ---------------------------------------------------------------------------
# End-to-end: distributed SOI with a dead leaf switch (domain recovery)
# ---------------------------------------------------------------------------

def soi_domain_recovery(n_ranks: int = 1024, seed: int = DEFAULT_SEED
                        ) -> dict:
    """Full SOI pipeline at *n_ranks* with one leaf switch failing
    mid-all-to-all: domain-aware recovery completes bit-identically to
    the fault-free run and reports per-domain MTTR."""
    from repro.core.params import SoiParams
    from repro.core.soi_dist import DistributedSoiFFT

    top = fabric_for(n_ranks)
    # 4 blocks per rank: the smallest chunk that clears the B=4 design's
    # 2-block ghost halo with headroom at every fabric size
    n = max(4 * n_ranks * n_ranks, 1 << 14)
    params = SoiParams(n=n, n_procs=n_ranks, n_mu=2, d_mu=1, b=4)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)

    cl0 = SimCluster(n_ranks, topology=top)
    soi0 = DistributedSoiFFT(cl0, params)
    y_clean = soi0.assemble(soi0(soi0.scatter(x)))

    cl = SimCluster(n_ranks, topology=top)
    soi = DistributedSoiFFT(cl, params)
    dom = cl.domains
    victim = dom.n_domains // 2
    # at_transfer=2: survive the ghost exchange, die in the all-to-all
    cl.comm.install_faults(
        FaultPlan.fail_domain(dom, victim, at_transfer=2, seed=seed),
        RetryPolicy(max_retries=1))
    y = soi.assemble(soi(soi.scatter(x)))
    rep = soi.last_recovery
    if rep is None:
        raise AssertionError("domain failure did not trigger recovery")

    ref = np.fft.fft(x)
    rel_err = float(np.linalg.norm(y - ref) / np.linalg.norm(ref))
    return {
        "ranks": n_ranks,
        "n": n,
        "victim_domain": victim,
        "dead": list(rep.dead_ranks),
        "domain_kind": rep.domain_kind,
        "mttr_by_domain": {int(k): float(v)
                           for k, v in rep.mttr_by_domain.items()},
        "survivors": len(cl.live_ranks),
        "bitwise_equal": bool(np.array_equal(y, y_clean)),
        "rel_err": rel_err,
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_scale_chaos(quick: bool = False,
                       seed: int = DEFAULT_SEED) -> str:
    sizes = DEFAULT_SIZES if quick else FULL_SIZES
    parts = [
        "scale-chaos: correlated failures, partitions, and the two-level "
        "exchange",
        f"fabric: two-level fat tree, radix 2*sqrt(P) (sqrt(P) ranks per "
        f"leaf switch); seed {seed}",
        "",
        render_table(
            ["ranks", "leaves", "flat msgs", "hier msgs", "flat sim s",
             "hier sim s", "speedup", "bitwise"],
            [[r["ranks"], r["groups"], r["flat_msgs"], r["hier_msgs"],
              r["flat_sim_s"], r["hier_sim_s"], r["speedup"],
              "ok" if r["bitwise_equal"] else "MISMATCH"]
             for r in exchange_rows(sizes, seed)],
            title="flat vs hierarchical all-to-all (one element per pair; "
                  "Fig 8 shape)"),
        "",
        render_table(
            ["ranks", "deg links", "clean sim s", "degraded sim s",
             "slowdown", "losses", "retries", "complete"],
            [[r["ranks"], r["degraded_links"], r["clean_sim_s"],
              r["degraded_sim_s"], r["slowdown"], r["losses"], r["retries"],
              "ok" if r["complete"] else "MISMATCH"]
             for r in degraded_uplink_rows(sizes, seed)],
            title="degraded uplink (one leaf at 25% bandwidth with packet "
                  "loss: retries ride it out)"),
        "",
        render_table(
            ["ranks", "victim", "dead", "detect sim s", "mttr sim s",
             "survivors", "bitwise-vs-fresh"],
            [[r["ranks"], r["victim_domain"], r["dead"], r["detect_sim_s"],
              r["mttr_sim_s"], r["survivors"],
              "ok" if r["bitwise_equal"] else "MISMATCH"]
             for r in switch_failure_rows(sizes, seed)],
            title="one switch down mid-exchange (correlated domain "
                  "failure; shrink to survivors)"),
        "",
        render_table(
            ["ranks", "census", "quorum", "majority", "aborted",
             "detect sim s", "bitwise-vs-fresh"],
            [[r["ranks"], r["census"],
              "yes" if r["quorum"] else "no", r["majority"], r["aborted"],
              r["detect_sim_s"],
              "ok" if r["bitwise_equal"] else "MISMATCH"]
             for r in partition_rows(sizes, seed)],
            title="fabric partition along domain boundaries (majority "
                  "shrinks, minority aborts)"),
    ]
    soi = soi_domain_recovery(64 if quick else 1024, seed)
    mttr = ", ".join(f"domain {d}: {t * 1e3:.3f} ms"
                     for d, t in sorted(soi["mttr_by_domain"].items()))
    parts += [
        "",
        f"distributed SOI at {soi['ranks']} ranks (N = {soi['n']}) with a "
        f"dead {soi['domain_kind']}:",
        f"  domain {soi['victim_domain']} lost ({len(soi['dead'])} ranks); "
        f"{soi['survivors']} survivors adopted its rows",
        f"  recovery MTTR per affected domain: {mttr}",
        f"  output vs fault-free run: "
        f"{'bit-identical' if soi['bitwise_equal'] else 'MISMATCH'}; "
        f"rel err vs numpy fft {soi['rel_err']:.3e} "
        f"(miniature mu=2, B=4 design: accuracy floor is the design's, "
        f"not recovery's)",
        "",
    ]
    return "\n".join(parts)

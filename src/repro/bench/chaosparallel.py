"""Process-level chaos exhibit: elastic recovery on real worker processes.

Runs a fixed campaign of chaos scenarios against the
:class:`~repro.cluster.backends.ProcessBackend` — SIGKILL mid-all-to-all,
SIGKILL at the halo ring, a double kill, a SIGSTOP hang caught by the
heartbeat watchdog, a transient stall that resumes, a starved job
delivery, a hedged straggler, and a tripped wall-clock deadline — and
verifies for each that the parallel SOI transform ends *bit-for-bit*
identical to the fault-free run (or raises exactly the declared
exception), that MTTR is recorded, and that not one shared-memory
segment leaks.

Two consumers:

* ``python -m repro chaos-parallel`` renders the scenario table and
  writes it to ``benchmarks/results/chaos_parallel.txt`` (the CI
  artifact), exiting non-zero unless every scenario passes;
* ``bench/regression.py``'s ``parallel_recovery`` workload calls
  :func:`measure_parallel_recovery` to gate MTTR and the post-recovery
  throughput ratio in ``BENCH_kernels.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.backends import ProcessBackend
from repro.cluster.faults import ProcessFault, ProcessFaultPlan
from repro.cluster.shm import list_segments
from repro.cluster.simcluster import SimCluster
from repro.core.soi_spmd import spmd_soi_fft
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.verify import HedgePolicy

from repro.bench.parallelbench import available_cpus, parallel_soi_params

__all__ = ["measure_parallel_recovery", "render_chaos_exhibit",
           "run_chaos_exhibit"]


def _signal(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


def _scenarios(workers: int) -> list[dict]:
    """The chaos campaign: name, injected plan, expected outcome."""
    mid = workers // 2
    rows = [
        {"name": "kill @ all-to-all",
         "plan": ProcessFaultPlan([ProcessFault("kill", rank=mid,
                                                collective=1)]),
         "expect": "recovered"},
        {"name": "kill @ halo ring",
         "plan": ProcessFaultPlan([ProcessFault("kill", rank=1 % workers,
                                                collective=0)]),
         "expect": "recovered"},
        {"name": "hang (SIGSTOP, watchdog)",
         "plan": ProcessFaultPlan([ProcessFault("stall", rank=workers - 1,
                                                collective=1)]),
         "expect": "recovered"},
        {"name": "stall + SIGCONT resume",
         "plan": ProcessFaultPlan([ProcessFault("stall", rank=workers - 1,
                                                collective=1,
                                                resume_s=0.3)]),
         "expect": "transparent"},
        {"name": "starved job delivery",
         "plan": ProcessFaultPlan([ProcessFault("delay", rank=mid,
                                                after_s=0.3)]),
         "expect": "transparent"},
        {"name": "hedged straggler",
         "plan": ProcessFaultPlan([ProcessFault("delay", rank=0,
                                                after_s=60.0)]),
         "expect": "hedged"},
        {"name": "deadline trip",
         "plan": None,
         "expect": "deadline"},
    ]
    if workers >= 4:
        rows.insert(2, {
            "name": "double kill",
            "plan": ProcessFaultPlan([
                ProcessFault("kill", rank=0, collective=1),
                ProcessFault("kill", rank=workers - 1, collective=1)]),
            "expect": "recovered"})
    return rows


def _run_scenario(scn: dict, params, x, want, workers: int,
                  hang_timeout: float) -> dict:
    be = ProcessBackend(workers, hang_timeout=hang_timeout)
    token = be._token
    row = {"name": scn["name"], "expect": scn["expect"], "mttr_s": None,
           "dead": (), "bitwise": False, "wall_s": None, "leaks": -1,
           "ok": False}
    try:
        cl = SimCluster(workers)
        t0 = time.perf_counter()
        if scn["expect"] == "deadline":
            try:
                spmd_soi_fft(cl, params, x, backend=be,
                             deadline=Deadline(1e-9))
            except DeadlineExceeded:
                # the budget tripped cleanly; the backend must still serve
                got = spmd_soi_fft(SimCluster(workers), params, x,
                                   backend=be)
                row["bitwise"] = bool(np.array_equal(want, got))
                row["ok"] = row["bitwise"]
        elif scn["expect"] == "hedged":
            spmd_soi_fft(cl, params, x, backend=be)  # teach it the label
            be.inject(scn["plan"])
            hedge = HedgePolicy(threshold=2.0, min_ranks=2)
            got = spmd_soi_fft(SimCluster(workers), params, x, backend=be,
                               hedge=hedge)
            row["bitwise"] = bool(np.array_equal(want, got))
            row["ok"] = row["bitwise"] and hedge.launched >= 1
        else:
            be.inject(scn["plan"])
            got = spmd_soi_fft(cl, params, x, backend=be)
            row["bitwise"] = bool(np.array_equal(want, got))
            recovered = be.last_recovery is not None
            row["mttr_s"] = be.last_mttr_s
            if recovered:
                row["dead"] = tuple(be.last_recovery.dead_ranks)
            row["ok"] = row["bitwise"] and (
                recovered if scn["expect"] == "recovered" else not recovered)
        row["wall_s"] = round(time.perf_counter() - t0, 4)
    finally:
        be.close()
    leaks = list_segments(token)
    row["leaks"] = len(leaks)
    row["ok"] = row["ok"] and not leaks
    return row


def run_chaos_exhibit(n: int = 2 ** 14, workers: int = 4, seed: int = 2013,
                      hang_timeout: float = 1.5) -> dict:
    """Run the whole chaos campaign; returns the scenario table."""
    params = parallel_soi_params(n, workers)
    x = _signal(n, seed)
    want = spmd_soi_fft(SimCluster(workers), params, x)
    rows = [_run_scenario(scn, params, x, want, workers, hang_timeout)
            for scn in _scenarios(workers)]
    return {
        "n": n,
        "workers": workers,
        "seed": seed,
        "hang_timeout_s": hang_timeout,
        "cpus": available_cpus(),
        "rows": rows,
        "passed": all(r["ok"] for r in rows),
    }


def render_chaos_exhibit(result: dict) -> str:
    """Fixed-width scenario table (CLI / CI artifact output)."""
    lines = [
        f"process-level chaos on the real-parallel backend — "
        f"n=2^{int(np.log2(result['n']))} ({result['n']}), "
        f"{result['workers']} workers, {result['cpus']} cpu(s) visible, "
        f"hang timeout {result['hang_timeout_s']:.1f}s",
        f"{'scenario':<26} {'expected':<12} {'dead':<8} {'mttr':>9} "
        f"{'wall':>9} {'bitwise':>8} {'leaks':>6} {'verdict':>8}",
    ]
    for r in result["rows"]:
        mttr = f"{r['mttr_s'] * 1e3:7.1f} ms" if r["mttr_s"] is not None \
            else "      —  "
        dead = ",".join(map(str, r["dead"])) if r["dead"] else "—"
        lines.append(
            f"{r['name']:<26} {r['expect']:<12} {dead:<8} {mttr:>9} "
            f"{r['wall_s']:>7.2f} s "
            f"{'ok' if r['bitwise'] else 'MISMATCH':>8} {r['leaks']:>6d} "
            f"{'PASS' if r['ok'] else 'FAIL':>8}")
    lines.append(f"exhibit: {'PASS' if result['passed'] else 'FAIL'} "
                 f"(every scenario bit-identical after chaos, zero leaked "
                 f"segments)" if result["passed"] else
                 "exhibit: FAIL — see the verdict column")
    return "\n".join(lines)


def measure_parallel_recovery(n: int = 2 ** 16, workers: int = 4,
                              reps: int = 2, seed: int = 2013) -> dict:
    """MTTR and post-recovery throughput for the regression gate.

    One backend lives through the whole measurement: clean runs are
    timed, a worker is SIGKILLed mid-all-to-all (shrink-and-redistribute
    completes the transform), then clean runs are timed again on the
    healed pool.  The throughput ratio (post-recovery / before) answers
    the elasticity question: does a crash leave permanent damage?
    """
    params = parallel_soi_params(n, workers)
    x = _signal(n, seed)
    want = spmd_soi_fft(SimCluster(workers), params, x)
    be = ProcessBackend(workers, hang_timeout=1.5)
    token = be._token
    try:
        def one_run():
            return spmd_soi_fft(SimCluster(workers), params, x, backend=be)

        got = one_run()  # spawn + warm plan caches
        bitwise = bool(np.array_equal(want, got))
        before = min(_timed(one_run)[0] for _ in range(max(1, reps)))

        be.inject(ProcessFaultPlan([ProcessFault(
            "kill", rank=workers // 2, collective=1)]))
        faulted_s, got = _timed(one_run)
        bitwise &= bool(np.array_equal(want, got))
        recovered = be.last_recovery is not None
        mttr_s = be.last_mttr_s

        be.inject(None)
        got = one_run()  # heal: respawn the dead slot, warm its caches
        bitwise &= bool(np.array_equal(want, got))
        after_runs = []
        for _ in range(max(1, reps)):
            dt, got = _timed(one_run)
            after_runs.append(dt)
            bitwise &= bool(np.array_equal(want, got))
        after = min(after_runs)
    finally:
        be.close()
    leaks = list_segments(token)
    return {
        "n": n,
        "workers": workers,
        "cpus": available_cpus(),
        "clean_s": round(before, 6),
        "faulted_s": round(faulted_s, 6),
        "post_recovery_s": round(after, 6),
        "throughput_ratio": round(before / after, 3) if after else None,
        "mttr_s": round(mttr_s, 6) if mttr_s is not None else None,
        "recovered": bool(recovered),
        "bitwise_equal": bool(bitwise),
        "leaked_segments": len(leaks),
    }


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out

"""ASCII rendering of the paper's tables and figure series.

The benchmark harness regenerates every table and figure of the paper as
text: numeric tables for the tables, labeled series/bars for the figures.
These helpers keep that output consistent across benches.
"""

from __future__ import annotations

__all__ = ["render_table", "render_bars", "render_series", "fmt"]


def fmt(value, digits: int = 3) -> str:
    """Compact numeric formatting (ints verbatim, floats to *digits*)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10 ** 6 or abs(value) < 10 ** -3:
            return f"{value:.{digits}e}"
        return f"{value:.{digits}g}"
    return str(value)


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width table with a header rule."""
    cells = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(items: list[tuple[str, float]], width: int = 40,
                title: str = "", unit: str = "") -> str:
    """Horizontal ASCII bar chart (for the paper's bar figures)."""
    if not items:
        return title
    peak = max(v for _, v in items)
    label_w = max(len(k) for k, _ in items)
    lines = [title] if title else []
    for k, v in items:
        n = 0 if peak <= 0 else int(round(width * v / peak))
        lines.append(f"{k.ljust(label_w)}  {'#' * n}{' ' * (width - n)} "
                     f"{fmt(v)}{unit}")
    return "\n".join(lines)


def render_series(x_label: str, x_values: list, series: dict[str, list],
                  title: str = "") -> str:
    """Multi-series table keyed by an x axis (for the paper's line plots)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [s[i] for s in series.values()])
    return render_table(headers, rows, title=title)

"""Machine descriptions (paper Table 2) and derived bandwidth/compute ratios.

A :class:`MachineSpec` carries exactly the parameters the paper's Section 4
performance model consumes: peak double-precision flops, STREAM bandwidth,
cache geometry, and the derived bytes-per-ops ("bops") ratio that drives
every roofline argument in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineSpec", "XEON_E5_2680", "XEON_PHI_SE10", "scaled_machine"]


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of one compute node (or one coprocessor card)."""

    name: str
    sockets: int
    cores_per_socket: int
    smt: int
    simd_lanes: int  # double-precision lanes per vector unit
    clock_ghz: float
    l1_kb: int  # per core, private
    l2_kb: int  # per core, private
    l3_kb: int | None  # shared LLC; None when the L2s are the (private) LLC
    peak_gflops: float
    stream_gbps: float

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.stream_gbps <= 0:
            raise ValueError("peak_gflops and stream_gbps must be positive")
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("need at least one socket and one core")

    @property
    def cores(self) -> int:
        """Total physical cores across sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def threads(self) -> int:
        """Total hardware threads (cores x SMT)."""
        return self.cores * self.smt

    @property
    def bops(self) -> float:
        """Machine bytes-per-ops ratio: STREAM bytes / peak flops (Table 2)."""
        return self.stream_gbps / self.peak_gflops

    @property
    def llc_private(self) -> bool:
        """True when the last-level cache is per-core private (Xeon Phi)."""
        return self.l3_kb is None

    @property
    def llc_bytes_per_core(self) -> int:
        """Capacity of the LLC slice one core can use without sharing."""
        if self.llc_private:
            return self.l2_kb * 1024
        return (self.l3_kb * 1024) // self.cores

    @property
    def llc_bytes_total(self) -> int:
        """Aggregate last-level cache capacity of the node."""
        if self.llc_private:
            return self.l2_kb * 1024 * self.cores
        return self.l3_kb * 1024

    def flop_time(self, flops: float, efficiency: float = 1.0) -> float:
        """Seconds to execute *flops* at ``efficiency * peak``."""
        if efficiency <= 0:
            raise ValueError("efficiency must be positive")
        return flops / (efficiency * self.peak_gflops * 1e9)

    def mem_time(self, nbytes: float, bw_efficiency: float = 1.0) -> float:
        """Seconds to stream *nbytes* at ``bw_efficiency * STREAM``."""
        if bw_efficiency <= 0:
            raise ValueError("bw_efficiency must be positive")
        return nbytes / (bw_efficiency * self.stream_gbps * 1e9)


#: Dual-socket Xeon E5-2680 (Table 2): 2 x 8 cores x 2 SMT x 4 DP lanes,
#: 2.7 GHz, 346 GF/s peak, 79 GB/s STREAM, 20 MB shared L3 -> bops 0.23.
XEON_E5_2680 = MachineSpec(
    name="Xeon E5-2680 (dual socket)",
    sockets=2,
    cores_per_socket=8,
    smt=2,
    simd_lanes=4,
    clock_ghz=2.7,
    l1_kb=32,
    l2_kb=256,
    l3_kb=20480,
    peak_gflops=346.0,
    stream_gbps=79.0,
)

#: Xeon Phi SE10 (Table 2): 61 cores x 4 SMT x 8 DP lanes, 1.1 GHz,
#: 1074 GF/s peak, 150 GB/s STREAM, private 512 KB L2 LLCs -> bops 0.14.
XEON_PHI_SE10 = MachineSpec(
    name="Xeon Phi SE10",
    sockets=1,
    cores_per_socket=61,
    smt=4,
    simd_lanes=8,
    clock_ghz=1.1,
    l1_kb=32,
    l2_kb=512,
    l3_kb=None,
    peak_gflops=1074.0,
    stream_gbps=150.0,
)


def scaled_machine(base: MachineSpec, name: str, flops_scale: float = 1.0,
                   bw_scale: float = 1.0) -> MachineSpec:
    """Derive a hypothetical machine by scaling peak flops / bandwidth.

    Handy for what-if studies (the paper's "interconnect speed will only
    deteriorate compared to compute speed" trajectory).
    """
    return replace(
        base,
        name=name,
        peak_gflops=base.peak_gflops * flops_scale,
        stream_gbps=base.stream_gbps * bw_scale,
    )

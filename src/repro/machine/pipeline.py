"""The SMT load/FFT/store pipeline of paper Fig 5 (§5.2.3), simulated.

"For each P-point or M-point fft, we copy inputs to a contiguous buffer,
compute the ffts, and copy the buffer back to memory.  These three stages
are executed in a pipelined manner with 4 simultaneous multiple threads
(smts) per core."

Each panel is LD -> FFT -> ST; the LD/ST stages contend for the core's
memory pipe (one outstanding stream at a time), the FFT stage runs on the
thread's slice of the compute units.  With one thread the memory pipe
idles during every FFT; with enough SMT threads the pipe saturates and
the panel loop becomes purely bandwidth-bound — the mechanism behind the
paper's latency-hiding bar in Fig 10.

Implemented on the generic :class:`~repro.cluster.schedule.Schedule`
engine (per-thread dependency chains + a shared memory resource), so the
simulated makespans are exact for the stated model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.schedule import Schedule

__all__ = ["PipelineStats", "simulate_smt_pipeline", "smt_sweep"]


@dataclass(frozen=True)
class PipelineStats:
    """Outcome of one pipelined panel loop."""

    n_panels: int
    n_threads: int
    makespan: float
    mem_busy: float
    compute_busy: float

    @property
    def mem_utilization(self) -> float:
        """Fraction of the makespan the memory pipe is busy (1.0 = fully
        bandwidth-bound, the §5.2 ideal)."""
        return self.mem_busy / self.makespan if self.makespan > 0 else 0.0

    @property
    def serial_time(self) -> float:
        """Unpipelined single-thread time (every stage sequential)."""
        return self.mem_busy + self.compute_busy

    @property
    def speedup_vs_serial(self) -> float:
        return self.serial_time / self.makespan if self.makespan > 0 else 1.0


def simulate_smt_pipeline(n_panels: int, t_load: float, t_fft: float,
                          t_store: float, n_threads: int = 4) -> PipelineStats:
    """Schedule *n_panels* LD/FFT/ST triples over *n_threads* SMT threads."""
    if n_panels < 1 or n_threads < 1:
        raise ValueError("need at least one panel and one thread")
    if min(t_load, t_fft, t_store) < 0:
        raise ValueError("stage times must be non-negative")
    sched = Schedule()
    mem = ("mem", 0)
    for i in range(n_panels):
        t = i % n_threads
        prev_st = f"st{i - n_threads}" if i >= n_threads else None
        sched.add(f"ld{i}", mem, t_load,
                  deps=[prev_st] if prev_st else (), category="mem")
        sched.add(f"fft{i}", ("alu", t), t_fft, deps=[f"ld{i}"],
                  category="compute")
        sched.add(f"st{i}", mem, t_store, deps=[f"fft{i}"], category="mem")
    sched.run()
    return PipelineStats(
        n_panels=n_panels,
        n_threads=n_threads,
        makespan=sched.makespan,
        mem_busy=sched.category_total("mem"),
        compute_busy=sched.category_total("compute"),
    )


def smt_sweep(n_panels: int, t_load: float, t_fft: float, t_store: float,
              thread_counts: tuple[int, ...] = (1, 2, 4, 8)
              ) -> list[PipelineStats]:
    """The Fig 5 study: same panel loop at several SMT widths."""
    return [simulate_smt_pipeline(n_panels, t_load, t_fft, t_store, t)
            for t in thread_counts]

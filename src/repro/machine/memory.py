"""Memory-sweep accounting — the currency of the paper's §5.2/§5.3 analysis.

One *memory sweep* is a load or store of an entire N-element working array
(paper footnote 3).  The bandwidth optimizations in the paper are argued
almost entirely in sweep counts (13 -> 4 for the 6-step FFT; saving two
sweeps by fusing demodulation; one extra sweep for the decomposed
convolution).  :class:`SweepLedger` makes those counts explicit, auditable
objects: kernels record each pass over memory, and the ledger converts the
total into bytes and into time on a :class:`~repro.machine.spec.MachineSpec`,
including the paper's observed TLB penalty for page-sized strides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.spec import MachineSpec

__all__ = ["SweepLedger", "SweepRecord", "tlb_bw_efficiency", "PAGE_BYTES"]

#: Small page size assumed by the TLB-degradation model.
PAGE_BYTES = 4096


def tlb_bw_efficiency(stride_bytes: int, page_bytes: int = PAGE_BYTES,
                      floor: float = 0.5) -> float:
    """Bandwidth efficiency of a strided sweep.

    §6.2: steps accessing data "in long strides that are comparable to the
    page size" see TLB misses that reduce bandwidth efficiency "as low as
    50%".  We model a linear roll-off from 1.0 (unit stride) down to
    *floor* once the stride reaches a page.
    """
    if stride_bytes <= 0:
        raise ValueError("stride_bytes must be positive")
    if stride_bytes <= 64:  # within one cache line: streaming
        return 1.0
    frac = min(1.0, stride_bytes / page_bytes)
    return 1.0 - (1.0 - floor) * frac


@dataclass(frozen=True)
class SweepRecord:
    """One recorded pass over memory."""

    label: str
    elements: int  # number of elements transferred
    kind: str  # "load" | "store" | "store_nt" (non-temporal)
    dtype_bytes: int = 16
    stride_bytes: int = 16  # access stride; drives the TLB model

    def __post_init__(self) -> None:
        if self.kind not in ("load", "store", "store_nt"):
            raise ValueError(f"unknown sweep kind {self.kind!r}")
        if self.elements < 0:
            raise ValueError("elements must be non-negative")

    @property
    def nbytes(self) -> int:
        """Bytes moved on the memory bus.

        A normal store costs 2x (write-allocate: the line is read, modified,
        written back); a non-temporal store writes once — the §5.2.3
        optimization.
        """
        base = self.elements * self.dtype_bytes
        return 2 * base if self.kind == "store" else base


class SweepLedger:
    """Accumulates sweep records for one kernel execution."""

    def __init__(self) -> None:
        self.records: list[SweepRecord] = []

    def load(self, label: str, elements: int, *, dtype_bytes: int = 16,
             stride_bytes: int = 16) -> None:
        """Record a load sweep of *elements* elements."""
        self.records.append(SweepRecord(label, elements, "load", dtype_bytes, stride_bytes))

    def store(self, label: str, elements: int, *, dtype_bytes: int = 16,
              stride_bytes: int = 16, non_temporal: bool = False) -> None:
        """Record a store sweep (non-temporal stores skip write-allocate)."""
        kind = "store_nt" if non_temporal else "store"
        self.records.append(SweepRecord(label, elements, kind, dtype_bytes, stride_bytes))

    # -- aggregate views -------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Total bus bytes across all records."""
        return sum(r.nbytes for r in self.records)

    def sweep_count(self, base_elements: int) -> float:
        """Number of equivalent full sweeps over a *base_elements* array.

        This is the unit of paper Fig 4 ("13 memory sweeps", "4 memory
        sweeps"): element-transfers / base size, counting a write-allocate
        store as one sweep (the paper's convention counts logical
        loads/stores, not bus transactions).
        """
        if base_elements <= 0:
            raise ValueError("base_elements must be positive")
        return sum(r.elements for r in self.records) / base_elements

    def time_on(self, machine: MachineSpec, *, tlb_model: bool = True) -> float:
        """Memory time of all recorded sweeps on *machine* (seconds)."""
        t = 0.0
        for r in self.records:
            eff = tlb_bw_efficiency(r.stride_bytes) if tlb_model else 1.0
            t += machine.mem_time(r.nbytes, eff)
        return t

    def merge(self, other: "SweepLedger") -> None:
        """Append all records from *other*."""
        self.records.extend(other.records)

    def by_label(self) -> dict[str, int]:
        """Bytes per label — useful for breakdown tables."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.label] = out.get(r.label, 0) + r.nbytes
        return out

"""Roofline-style kernel timing: the quantitative core of paper Sections 4-5.

A kernel is summarized by (flops, bytes).  Its execution time on a machine
is ``max(compute time, memory time)`` when compute overlaps memory (the
paper's idealization in §5.2.1) or the sum when it does not.  The module
also exposes the paper's headline derivation: the *attainable* compute
efficiency of a bandwidth-bound kernel equals ``machine bops / algorithmic
bops`` — e.g. 0.14 / 0.7 = 20% for an in-cache 512-point FFT on Xeon Phi.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.spec import MachineSpec

__all__ = ["KernelCost", "attainable_efficiency", "kernel_time", "algorithmic_bops_fft"]


@dataclass(frozen=True)
class KernelCost:
    """Flop and byte footprint of one kernel invocation."""

    flops: float
    nbytes: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.flops < 0 or self.nbytes < 0:
            raise ValueError("flops and nbytes must be non-negative")

    @property
    def bops(self) -> float:
        """Algorithmic bytes-per-ops ratio of this kernel."""
        if self.flops == 0:
            return float("inf") if self.nbytes > 0 else 0.0
        return self.nbytes / self.flops

    def __add__(self, other: "KernelCost") -> "KernelCost":
        return KernelCost(self.flops + other.flops, self.nbytes + other.nbytes,
                          label=self.label or other.label)


def algorithmic_bops_fft(n: int, sweeps: float, dtype_bytes: int = 16) -> float:
    """Bytes-per-op of an n-point FFT touching memory ``sweeps`` times.

    Paper §5.2.1/§6.2: an in-cache 512-point FFT has 2 sweeps ->
    bops = 2*512*16 / (5*512*log2 512) = 0.71; the tuned 16M local FFT
    with 5 sweeps has bops 0.67.
    """
    import numpy as np

    if n < 2:
        raise ValueError("n must be >= 2")
    flops = 5.0 * n * np.log2(n)
    return sweeps * n * dtype_bytes / flops


def attainable_efficiency(machine: MachineSpec, algorithmic_bops: float) -> float:
    """Max compute efficiency of a kernel with the given bops on *machine*.

    Assumes perfect compute/memory overlap; capped at 1.0 for
    compute-bound kernels.
    """
    if algorithmic_bops <= 0:
        return 1.0
    return min(1.0, machine.bops / algorithmic_bops)


def kernel_time(cost: KernelCost, machine: MachineSpec, *,
                compute_efficiency: float = 1.0,
                bw_efficiency: float = 1.0,
                overlap: bool = True) -> float:
    """Seconds to run *cost* on *machine* under a roofline model."""
    t_comp = machine.flop_time(cost.flops, compute_efficiency)
    t_mem = machine.mem_time(cost.nbytes, bw_efficiency)
    return max(t_comp, t_mem) if overlap else t_comp + t_mem

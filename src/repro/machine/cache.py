"""Set-associative cache and TLB simulators.

The paper's node-local optimizations are justified by cache behaviour that
plain Python cannot exhibit (private 512 KB L2 LLCs, conflict misses from
power-of-two strides, TLB misses from page-sized strides).  This module
provides small trace-driven simulators so those claims can be *checked*
rather than asserted: the convolution working-set argument of §5.3 and the
conflict-miss argument for circular-buffer staging are validated on these
models at reduced scale (see tests and the Fig 11 ablation bench).
"""

from __future__ import annotations

import numpy as np

__all__ = ["CacheSim", "TlbSim", "CacheStats"]


class CacheStats:
    """Hit/miss counters for one simulator."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheStats(hits={self.hits}, misses={self.misses})"


class CacheSim:
    """Set-associative LRU cache over byte addresses.

    Default geometry matches one Xeon Phi L2 slice: 512 KB, 64-byte lines,
    8-way associative.  Accesses are processed in order; an access to a
    resident line is a hit, otherwise a miss that evicts the set's LRU way.
    """

    def __init__(self, size_bytes: int = 512 * 1024, line_bytes: int = 64,
                 assoc: int = 8):
        if size_bytes % (line_bytes * assoc) != 0:
            raise ValueError("size must be a multiple of line_bytes * assoc")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = size_bytes // (line_bytes * assoc)
        self.size_bytes = size_bytes
        # tags[set][way]; lru[set][way] = last-use timestamp
        self._tags = np.full((self.n_sets, assoc), -1, dtype=np.int64)
        self._lru = np.zeros((self.n_sets, assoc), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> None:
        """Invalidate all lines (keeps stats)."""
        self._tags.fill(-1)
        self._lru.fill(0)

    def access(self, byte_addresses) -> CacheStats:
        """Run a sequence of byte addresses through the cache; return stats."""
        addrs = np.asarray(byte_addresses, dtype=np.int64).ravel()
        lines = addrs // self.line_bytes
        sets = lines % self.n_sets
        tags = lines // self.n_sets
        hits = 0
        misses = 0
        tag_arr = self._tags
        lru_arr = self._lru
        clock = self._clock
        for s, t in zip(sets.tolist(), tags.tolist()):
            clock += 1
            row = tag_arr[s]
            hit_ways = np.nonzero(row == t)[0]
            if hit_ways.size:
                lru_arr[s, hit_ways[0]] = clock
                hits += 1
            else:
                victim = int(np.argmin(lru_arr[s]))
                tag_arr[s, victim] = t
                lru_arr[s, victim] = clock
                misses += 1
        self._clock = clock
        self.stats.hits += hits
        self.stats.misses += misses
        return self.stats

    def resident_lines(self) -> int:
        """Number of valid lines currently cached."""
        return int(np.count_nonzero(self._tags >= 0))


class TlbSim:
    """Fully-associative LRU TLB over byte addresses (default 64 x 4 KB)."""

    def __init__(self, entries: int = 64, page_bytes: int = 4096):
        if entries < 1:
            raise ValueError("need at least one TLB entry")
        self.entries = entries
        self.page_bytes = page_bytes
        self._pages: dict[int, int] = {}
        self._clock = 0
        self.stats = CacheStats()

    def access(self, byte_addresses) -> CacheStats:
        """Run addresses through the TLB; return cumulative stats."""
        addrs = np.asarray(byte_addresses, dtype=np.int64).ravel()
        pages = addrs // self.page_bytes
        table = self._pages
        clock = self._clock
        hits = 0
        misses = 0
        for p in pages.tolist():
            clock += 1
            if p in table:
                hits += 1
            else:
                misses += 1
                if len(table) >= self.entries:
                    victim = min(table, key=table.get)
                    del table[victim]
            table[p] = clock
        self._clock = clock
        self.stats.hits += hits
        self.stats.misses += misses
        return self.stats

"""Machine-model substrate: node specs, roofline timing, sweeps, caches."""

from repro.machine.cache import CacheSim, CacheStats, TlbSim
from repro.machine.energy import EnergyModel, EnergyReport
from repro.machine.memory import PAGE_BYTES, SweepLedger, SweepRecord, tlb_bw_efficiency
from repro.machine.pipeline import PipelineStats, simulate_smt_pipeline, smt_sweep
from repro.machine.roofline import (
    KernelCost,
    algorithmic_bops_fft,
    attainable_efficiency,
    kernel_time,
)
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10, MachineSpec, scaled_machine

__all__ = [
    "CacheSim",
    "CacheStats",
    "EnergyModel",
    "EnergyReport",
    "KernelCost",
    "MachineSpec",
    "PAGE_BYTES",
    "PipelineStats",
    "SweepLedger",
    "SweepRecord",
    "TlbSim",
    "XEON_E5_2680",
    "XEON_PHI_SE10",
    "algorithmic_bops_fft",
    "attainable_efficiency",
    "kernel_time",
    "scaled_machine",
    "simulate_smt_pipeline",
    "smt_sweep",
    "tlb_bw_efficiency",
]

"""Energy model: the paper's other leading constraint, quantified.

§1 opens with "Power consumption and memory bandwidth have now become the
leading constraints" and cites the exascale study [17], whose central
numbers are energy *per operation* vs energy *per byte moved* — with data
movement dollars-to-donuts more expensive, and interconnect bytes the most
expensive of all.  :class:`EnergyModel` prices a run from exactly those
unit costs plus static (leakage/idle) power, so SOI's communication
savings can be expressed in joules, not just seconds.

Default unit costs are exascale-study-era CMOS ballparks (double
precision ~20 pJ/flop achieved-at-efficiency, DRAM ~100 pJ/byte, network
~500 pJ/byte, ~100 W static per node) — see Kogge et al. 2008.  They are
parameters, not claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import MachineSpec
from repro.perfmodel.model import FftModel, ModelBreakdown

__all__ = ["EnergyModel", "EnergyReport"]


@dataclass(frozen=True)
class EnergyReport:
    """Joules by component for one run."""

    compute_j: float
    memory_j: float
    network_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.memory_j + self.network_j + self.static_j

    @property
    def movement_fraction(self) -> float:
        """Share of energy spent moving data (memory + network + idle-while-
        waiting is excluded: static is reported separately)."""
        active = self.compute_j + self.memory_j + self.network_j
        if active <= 0:
            return 0.0
        return (self.memory_j + self.network_j) / active


@dataclass(frozen=True)
class EnergyModel:
    """Unit energy costs for a cluster of nodes."""

    pj_per_flop: float = 20.0
    pj_per_dram_byte: float = 100.0
    pj_per_network_byte: float = 500.0
    static_watts_per_node: float = 100.0

    def __post_init__(self) -> None:
        if min(self.pj_per_flop, self.pj_per_dram_byte,
               self.pj_per_network_byte, self.static_watts_per_node) < 0:
            raise ValueError("energy costs must be non-negative")

    def soi_report(self, model: FftModel, machine: MachineSpec,
                   memory_sweeps: float = 5.0) -> EnergyReport:
        """Energy of one SOI transform (paper-style accounting).

        flops: FFT (5 muN log2 muN) + convolution (8 B mu N); DRAM bytes:
        ``memory_sweeps`` passes over the oversampled volume; network
        bytes: the single all-to-all of 16 muN.
        """
        import numpy as np

        n = model.n_total
        mu = model.mu
        flops = 5.0 * mu * n * float(np.log2(mu * n)) + 8.0 * model.b * mu * n
        dram = memory_sweeps * 16.0 * mu * n
        net = 16.0 * mu * n
        seconds = model.soi_breakdown(machine).total
        return self._report(flops, dram, net, seconds, model.nodes)

    def ct_report(self, model: FftModel, machine: MachineSpec,
                  memory_sweeps: float = 5.0) -> EnergyReport:
        """Energy of one Cooley-Tukey transform: 3 all-to-alls, no mu."""
        import numpy as np

        n = model.n_total
        flops = 5.0 * n * float(np.log2(n))
        dram = memory_sweeps * 16.0 * n
        net = 3.0 * 16.0 * n
        seconds = model.ct_breakdown(machine).total
        return self._report(flops, dram, net, seconds, model.nodes)

    def _report(self, flops: float, dram_bytes: float, net_bytes: float,
                seconds: float, nodes: int) -> EnergyReport:
        return EnergyReport(
            compute_j=flops * self.pj_per_flop * 1e-12,
            memory_j=dram_bytes * self.pj_per_dram_byte * 1e-12,
            network_j=net_bytes * self.pj_per_network_byte * 1e-12,
            static_j=self.static_watts_per_node * nodes * seconds,
        )

    def soi_vs_ct_energy_ratio(self, model: FftModel, machine: MachineSpec
                               ) -> float:
        """CT joules / SOI joules (> 1 when SOI saves energy)."""
        return self.ct_report(model, machine).total_j / \
            self.soi_report(model, machine).total_j

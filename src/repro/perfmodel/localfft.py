"""Fig 10 model: node-local large-FFT performance vs optimization level.

The paper's §6.2 ablation measures a 16M-point local FFT on one Xeon Phi
card at four optimization levels.  Each level changes *mechanisms* that
our substrate exposes as explicit parameters:

``naive``           Fig 4(a): 13 memory sweeps, long-stride transposes
                    (TLB-degraded bandwidth), no prefetch, no SMT
                    pipelining (compute exposed).
``opt``             Fig 4(b): 4 sweeps (fused loops, split twiddles,
                    non-temporal stores); still no latency hiding.
``latency-hiding``  + software prefetch & 4-SMT load/FFT/store pipelining
                    (§5.2.3 / Fig 5): bandwidth utilization rises and
                    compute partially overlaps memory.
``fine-grain``      + multiple cores cooperating per FFT so the working
                    set stays inside the private LLCs (one core-to-core
                    read instead of LLC spill traffic).

Calibration constants below are chosen once against the paper's §6.2
facts — 120 GFLOPS final (12% efficiency), ~36% of time in non-memory
steps, strided-step bandwidth efficiency "as low as 50%" — and then the
whole four-bar shape of Fig 10 is *predicted*, not fit bar-by-bar.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fft.stockham import fft_flops
from repro.machine.spec import XEON_PHI_SE10, MachineSpec

__all__ = ["LocalFftVariant", "LOCAL_FFT_VARIANTS", "local_fft_time", "local_fft_gflops"]

#: Fraction of runtime in cache-resident compute that cannot hide behind
#: memory without SMT pipelining (§6.2 measures 36% with it; without it the
#: un-overlapped fraction is the full compute share).
_EXPOSED_COMPUTE_FRACTION = 0.36
#: Bandwidth utilization without / with software prefetch + SMT pipelining.
_BW_UTILIZATION_NO_PREFETCH = 0.55
_BW_UTILIZATION_PREFETCH = 0.95
#: TLB-limited bandwidth efficiency: full-matrix transposes walk pages at
#: every element (§6.2: "as low as 50%"); the fused 8-wide panel write-back
#: amortizes each page over a panel (~75%).
_TLB_EFFICIENCY_TRANSPOSE = 0.50
_TLB_EFFICIENCY_PANEL = 0.75
#: Extra traffic multiplier when the fused panel working sets of all SMT
#: threads spill the private LLCs (removed by fine-grain cooperative
#: parallelization, §5.2.3).  The naive variant streams each pass and is
#: not LLC-pressure bound.
_LLC_SPILL_FACTOR = 1.6


@dataclass(frozen=True)
class LocalFftVariant:
    """One bar of Fig 10."""

    name: str
    sweeps_unit_stride: float  # sweeps at streaming-friendly stride
    sweeps_long_stride: float  # sweeps at strided access (TLB-limited)
    tlb_efficiency: float  # bandwidth efficiency of the strided sweeps
    prefetch: bool  # software prefetch + SMT pipelining
    fine_grain: bool  # cooperative multi-core FFTs (no LLC spill)
    fused: bool  # panel-fused loops (subject to LLC spill pressure)


LOCAL_FFT_VARIANTS: tuple[LocalFftVariant, ...] = (
    # Fig 4(a): 3 transposes (6 strided sweeps) + FFT/twiddle passes (7)
    LocalFftVariant("6-step-naive", 7.0, 6.0, _TLB_EFFICIENCY_TRANSPOSE,
                    prefetch=False, fine_grain=False, fused=False),
    # Fig 4(b): 2 fused passes; the permuted write-backs remain strided
    LocalFftVariant("6-step-opt", 2.0, 2.0, _TLB_EFFICIENCY_PANEL,
                    prefetch=False, fine_grain=False, fused=True),
    LocalFftVariant("latency-hiding", 2.0, 2.0, _TLB_EFFICIENCY_PANEL,
                    prefetch=True, fine_grain=False, fused=True),
    LocalFftVariant("fine-grain", 2.0, 2.0, _TLB_EFFICIENCY_PANEL,
                    prefetch=True, fine_grain=True, fused=True),
)


def local_fft_time(n: int, variant: LocalFftVariant,
                   machine: MachineSpec = XEON_PHI_SE10) -> float:
    """Modeled seconds for an n-point local FFT at this optimization level."""
    if n < 2:
        raise ValueError("n must be >= 2")
    bytes_per_sweep = 16.0 * n
    util = _BW_UTILIZATION_PREFETCH if variant.prefetch \
        else _BW_UTILIZATION_NO_PREFETCH
    spill = _LLC_SPILL_FACTOR if (variant.fused and not variant.fine_grain) else 1.0
    traffic = bytes_per_sweep * (
        variant.sweeps_unit_stride
        + variant.sweeps_long_stride / variant.tlb_efficiency
    ) * spill
    if variant.fine_grain:
        # the one core-to-core global read per FFT (§5.2.3)
        traffic += bytes_per_sweep * 1.0
    t_mem = traffic / (machine.stream_gbps * 1e9 * util)
    # compute that cannot hide behind memory
    exposed = _EXPOSED_COMPUTE_FRACTION if variant.prefetch else 0.5
    return t_mem / (1.0 - exposed)


def local_fft_gflops(n: int, variant: LocalFftVariant,
                     machine: MachineSpec = XEON_PHI_SE10) -> float:
    """GFLOP/s of the modeled variant (5 n log2 n convention)."""
    return fft_flops(n) / local_fft_time(n, variant, machine) / 1e9

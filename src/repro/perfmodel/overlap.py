"""Segment-pipelined execution model: overlap of all-to-all with compute.

§6.1: "Using multiple segments allows all-to-all communications to be
overlapped with M'-point FFTs and demodulation.  After all-to-all for the
first segment in each process, we can overlap the second all-to-all with
M'-point FFTs and demodulation step of the first segment."

This module builds the per-segment task DAG on a representative rank
(convolution -> per-segment all-to-all -> per-segment FFT+demod, with the
NIC and the CPU as separate resources) and runs it through
:class:`repro.cluster.schedule.Schedule`.  The outcome is the Fig 9
breakdown — local FFT / convolution / *exposed* MPI / etc — including the
trade-off that more segments overlap better but shrink packets (handled by
the model's packet-dependent ``t_mpi``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.schedule import Schedule
from repro.machine.spec import MachineSpec
from repro.perfmodel.model import FftModel

__all__ = ["SegmentedRun", "soi_segment_schedule", "segmented_breakdown"]


@dataclass(frozen=True)
class SegmentedRun:
    """Result of scheduling one segmented SOI run on one rank."""

    schedule: Schedule
    local_fft: float
    convolution: float
    mpi_total: float
    exposed_mpi: float
    other: float

    @property
    def total(self) -> float:
        return self.schedule.makespan

    def breakdown(self) -> dict[str, float]:
        """Fig 9-style components: exposed (not total) MPI is reported."""
        return {
            "local FFT": self.local_fft,
            "convolution": self.convolution,
            "exposed MPI": self.exposed_mpi,
            "etc": self.other,
        }


def soi_segment_schedule(model: FftModel, machine: MachineSpec,
                         *, fuse_demodulation: bool = True) -> Schedule:
    """Build the segment-pipelined task DAG for one representative rank."""
    spp = model.segments_per_process
    if spp < 1:
        raise ValueError("need at least one segment per process")
    cpu, net = ("cpu", 0), ("net", 0)
    sched = Schedule()

    t_conv = model.t_conv(machine)
    t_fft_total = model.t_fft(machine, model.mu * model.n_total)
    t_mpi_total = model.mu * model.t_mpi()
    # unfused demodulation is a separate bandwidth pass (Xeon/MKL path):
    # ~3 sweeps of the mu*N working set at STREAM rate
    t_demod_total = 0.0 if fuse_demodulation else \
        3.0 * 16.0 * model.mu * model.n_total / (machine.stream_gbps * 1e9 * model.nodes)

    sched.add("conv", cpu, t_conv, category="convolution")
    prev_fft = "conv"
    for seg in range(spp):
        a2a = f"a2a{seg}"
        deps = ["conv"] if seg == 0 else ["conv", f"a2a{seg - 1}"]
        sched.add(a2a, net, t_mpi_total / spp, deps=deps, category="mpi")
        fft = f"fft{seg}"
        sched.add(fft, cpu, (t_fft_total + t_demod_total) / spp,
                  deps=[a2a, prev_fft], category="local_fft")
        prev_fft = fft
    return sched


def segmented_breakdown(model: FftModel, machine: MachineSpec,
                        *, fuse_demodulation: bool = True) -> SegmentedRun:
    """Schedule the segmented run and report Fig 9's components."""
    sched = soi_segment_schedule(model, machine,
                                 fuse_demodulation=fuse_demodulation)
    sched.run()
    cpu, net = ("cpu", 0), ("net", 0)
    mpi_total = sched.busy_time(net)
    exposed = sched.exposed_time(net, cpu)
    conv = model.t_conv(machine)
    fft = model.t_fft(machine, model.mu * model.n_total)
    other = sched.busy_time(cpu) - conv - fft  # demod etc.
    return SegmentedRun(
        schedule=sched,
        local_fft=fft,
        convolution=conv,
        mpi_total=mpi_total,
        exposed_mpi=exposed,
        other=max(0.0, other),
    )

"""Coprocessor usage modes: symmetric vs offload vs hybrid (paper §7).

In **symmetric** mode the Phi runs its own MPI rank; PCIe traffic exists
only inside the MPI proxy and is hidden behind InfiniBand (Fig 12a), so

``T_soi^sym ~ T_fft^phi(mu N) + T_conv^phi(N) + mu T_mpi(N)``.

In **offload** mode inputs live in host memory: they must cross PCIe in,
and results cross back out.  The local FFT and convolution are faster than
each PCIe transfer on Phi, so compute hides *behind* the transfers and

``T_soi^off ~ 2 T_pci(N) + mu T_mpi(N)``   (Fig 12b),

about 25% slower at the paper's 6 GB/s PCIe and §4 parameters.  The
**hybrid** mode adds the host Xeon's flops to the symmetric Phi run; the
paper expects <10% because the run is bandwidth/communication limited.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.pcie import PCIE_GEN2_X16, PcieSpec
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10, MachineSpec
from repro.perfmodel.model import FftModel, ModelBreakdown

__all__ = ["ModeModel", "MODES"]

MODES = ("symmetric", "offload", "hybrid")


@dataclass(frozen=True)
class ModeModel:
    """Section 7 extension of the Section 4 model."""

    base: FftModel
    pcie: PcieSpec = PCIE_GEN2_X16
    phi: MachineSpec = XEON_PHI_SE10
    host: MachineSpec = XEON_E5_2680

    def t_pci(self, n: float | None = None) -> float:
        """PCIe transfer time of n complex elements per node, aggregated."""
        n = self.base.n_total if n is None else n
        return 16.0 * n / (self.base.nodes * self.pcie.bandwidth_gbps * 1e9)

    def breakdown(self, mode: str = "symmetric") -> ModelBreakdown:
        """Component times of SOI on Phi in the given mode."""
        b = self.base
        if mode == "symmetric":
            return b.soi_breakdown(self.phi)
        if mode == "offload":
            # compute hides behind PCIe: expose 2 T_pci + mu T_mpi
            return ModelBreakdown(
                local_fft=0.0,
                convolution=0.0,
                mpi=b.mu * b.t_mpi(),
                other=2.0 * self.t_pci(),
            )
        if mode == "hybrid":
            # host flops join in; gain bounded by the bandwidth-limited
            # fraction: scale compute terms by phi/(phi + host) peak.
            sym = b.soi_breakdown(self.phi)
            share = self.phi.peak_gflops / (self.phi.peak_gflops
                                            + self.host.peak_gflops)
            return ModelBreakdown(
                local_fft=sym.local_fft * share,
                convolution=sym.convolution * share,
                mpi=sym.mpi,
            )
        raise ValueError(f"mode must be one of {MODES}")

    def offload_slowdown(self) -> float:
        """T_offload / T_symmetric (paper: ~1.25 at §4 parameters)."""
        return self.breakdown("offload").total / self.breakdown("symmetric").total

    def hybrid_speedup(self) -> float:
        """T_symmetric / T_hybrid (paper: expected < 1.10)."""
        return self.breakdown("symmetric").total / self.breakdown("hybrid").total

    def timing_diagram(self, mode: str = "symmetric") -> list[tuple[str, float]]:
        """(stage label, seconds) rows in pipeline order — Fig 12's lanes."""
        b = self.base
        if mode == "symmetric":
            return [
                ("Xeon Phi: T_conv(N)", b.t_conv(self.phi)),
                ("Xeon Phi: T_fft(mu N)", b.t_fft(self.phi, b.mu * b.n_total)),
                ("PCIe: hidden under MPI", 0.0),
                ("MPI: mu T_mpi(N)", b.mu * b.t_mpi()),
            ]
        if mode == "offload":
            return [
                ("PCIe: T_pci(N) in", self.t_pci()),
                ("Xeon Phi: compute (hidden)", 0.0),
                ("MPI: mu T_mpi(N)", b.mu * b.t_mpi()),
                ("PCIe: T_pci(N) out", self.t_pci()),
            ]
        raise ValueError("timing_diagram supports 'symmetric' and 'offload'")

"""Multiple coprocessor cards per node (paper §3).

"Each compute node is composed of a small number of host Xeon processors
and Xeon Phi coprocessors connected by pcie interface."  The paper runs
one card per node; this model answers the natural deployment question it
leaves open: what do 2-4 cards per node buy when they share the node's
PCIe complex and its single InfiniBand NIC?

Compute scales with the card count; the all-to-all volume per *node* is
unchanged (same total problem) but the per-node NIC now serves the
traffic of `cards` ranks, and in offload mode the host must feed every
card across the shared PCIe complex.  Compute-bound configurations gain
nearly linearly; communication-bound ones saturate — the same
communication wall the paper's low-communication algorithm attacks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.pcie import PCIE_GEN2_X16, PcieSpec
from repro.machine.spec import XEON_PHI_SE10, MachineSpec
from repro.perfmodel.model import FftModel, ModelBreakdown

__all__ = ["MultiCardModel"]


@dataclass(frozen=True)
class MultiCardModel:
    """SOI on `nodes` hosts, each carrying `cards` coprocessors."""

    base: FftModel  # nodes = number of HOST nodes; n_total global
    cards: int = 1
    card: MachineSpec = XEON_PHI_SE10
    pcie: PcieSpec = PCIE_GEN2_X16
    pcie_shared: bool = True  # cards share the node's PCIe complex

    def __post_init__(self) -> None:
        if self.cards < 1:
            raise ValueError("need at least one card per node")

    # -- component times ---------------------------------------------------

    def compute_breakdown(self) -> ModelBreakdown:
        """SOI compute terms with `cards`x the per-node flops."""
        b = self.base
        # aggregate peak grows with the card count, so compute terms shrink
        fft = b.t_fft(self.card, b.mu * b.n_total) / self.cards
        conv = b.t_conv(self.card) / self.cards
        # the NIC is per node: per-node volume unchanged, so t_mpi is the
        # single-card value regardless of cards
        mpi = b.mu * b.t_mpi()
        return ModelBreakdown(local_fft=fft, convolution=conv, mpi=mpi)

    def symmetric_total(self) -> float:
        return self.compute_breakdown().total

    def offload_total(self) -> float:
        """Offload mode: host feeds all cards over the PCIe complex."""
        b = self.base
        per_node_bytes = 16.0 * b.n_total / b.nodes
        lanes = 1 if self.pcie_shared else self.cards
        t_pci = per_node_bytes / (lanes * self.pcie.bandwidth_gbps * 1e9)
        return 2.0 * t_pci + b.mu * b.t_mpi()

    def speedup_vs_single_card(self) -> float:
        one = MultiCardModel(self.base, 1, self.card, self.pcie,
                             self.pcie_shared)
        return one.symmetric_total() / self.symmetric_total()

    def parallel_efficiency(self) -> float:
        """speedup / cards: 1.0 = perfectly compute-bound scaling."""
        return self.speedup_vs_single_card() / self.cards

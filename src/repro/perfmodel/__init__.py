"""Analytic performance model (paper §4, §7) and calibration helpers."""

from repro.perfmodel.calibration import (
    fit_efficiencies,
    implied_efficiency,
    implied_fft_efficiency,
)
from repro.perfmodel.localfft import (
    LOCAL_FFT_VARIANTS,
    LocalFftVariant,
    local_fft_gflops,
    local_fft_time,
)
from repro.perfmodel.model import (
    PAPER_SECTION4_EXAMPLE,
    FftModel,
    ModelBreakdown,
    soi_request_breakdown,
    soi_request_seconds,
)
from repro.perfmodel.qerror import (
    CostCalibration,
    fit_calibration,
    q_error,
    stage_q_errors,
)
from repro.perfmodel.modes import MODES, ModeModel
from repro.perfmodel.multicard import MultiCardModel
from repro.perfmodel.sensitivity import SensitivityRow, tornado
from repro.perfmodel.overlap import SegmentedRun, segmented_breakdown, soi_segment_schedule

__all__ = [
    "FftModel",
    "LOCAL_FFT_VARIANTS",
    "LocalFftVariant",
    "local_fft_gflops",
    "local_fft_time",
    "MODES",
    "ModeModel",
    "ModelBreakdown",
    "MultiCardModel",
    "PAPER_SECTION4_EXAMPLE",
    "SegmentedRun",
    "SensitivityRow",
    "fit_efficiencies",
    "tornado",
    "CostCalibration",
    "fit_calibration",
    "implied_efficiency",
    "implied_fft_efficiency",
    "q_error",
    "segmented_breakdown",
    "soi_request_breakdown",
    "soi_request_seconds",
    "soi_segment_schedule",
    "stage_q_errors",
]

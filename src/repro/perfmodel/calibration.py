"""Calibration: recover model efficiencies from (simulated) measurements.

The paper closes its methodology loop by checking that the efficiencies
assumed in §4 (12% FFT, 40% convolution) match the measured kernels in §6.
These helpers perform the inverse computation — given a measured component
time, back out the implied compute efficiency — and fit the whole model to
a measured breakdown.
"""

from __future__ import annotations

import numpy as np

from repro.machine.spec import MachineSpec

__all__ = ["implied_efficiency", "implied_fft_efficiency", "fit_efficiencies"]


def implied_efficiency(seconds: float, flops: float, machine: MachineSpec,
                       nodes: int = 1) -> float:
    """Compute efficiency implied by running *flops* in *seconds*."""
    if seconds <= 0 or flops <= 0:
        raise ValueError("seconds and flops must be positive")
    return flops / (seconds * machine.peak_gflops * 1e9 * nodes)


def implied_fft_efficiency(seconds: float, n: int, machine: MachineSpec,
                           nodes: int = 1) -> float:
    """Efficiency of an n-point FFT done in *seconds* (5 n log2 n flops)."""
    return implied_efficiency(seconds, 5.0 * n * float(np.log2(n)), machine, nodes)


def fit_efficiencies(breakdown: dict[str, float], *, n: int, b: int, mu: float,
                     machine: MachineSpec, nodes: int = 1) -> dict[str, float]:
    """Back out (fft, conv) efficiencies from a measured SOI breakdown.

    *breakdown* maps component labels (as produced by
    :meth:`repro.cluster.simcluster.SimCluster.breakdown`) to seconds; the
    keys ``"local FFT"`` and ``"convolution"`` are consumed.
    """
    out: dict[str, float] = {}
    if "local FFT" in breakdown:
        n_over = n * mu
        out["fft"] = implied_efficiency(
            breakdown["local FFT"], 5.0 * n_over * float(np.log2(n_over)),
            machine, nodes)
    if "convolution" in breakdown:
        out["conv"] = implied_efficiency(
            breakdown["convolution"], 8.0 * b * mu * n, machine, nodes)
    return out

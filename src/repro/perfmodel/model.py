"""The paper's Section 4 performance model, as executable equations.

With aggregate peak flops and per-node MPI bandwidth:

=====================  ====================================================
``T_fft(N)``           ``5 N log2 N / (Eff_fft * Flops_peak)``
``T_conv(N)``          ``8 B mu N / (Eff_conv * Flops_peak)``
``T_mpi(N)``           ``16 N / bw_mpi``  (bw_mpi = aggregate all-to-all BW)
``T_soi(N)``           ``T_fft(mu N) + T_conv(N) + mu T_mpi(N)``
``T_ct(N)``            ``T_fft(N) + 3 T_mpi(N)``
``T_soi^offload``      see :mod:`repro.perfmodel.modes`
=====================  ====================================================

The model instantiates the paper's §4 example exactly (32 nodes,
N = 2^27 * 32, 12%/40% efficiencies, 3 GB/s per-node MPI) and also accepts
a :class:`~repro.cluster.network.NetworkSpec` so weak-scaling sweeps pick
up the packet-length-dependent bandwidth of large clusters (Fig 8/9).

Reported FLOP/s use the HPCC G-FFT convention ``5 N log2 N / time`` —
SOI's extra convolution arithmetic counts as time, not as flops, exactly
as in the paper's TFLOPS plots.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.network import STAMPEDE_EFFECTIVE, NetworkSpec
from repro.machine.spec import XEON_E5_2680, XEON_PHI_SE10, MachineSpec

__all__ = ["FftModel", "ModelBreakdown", "PAPER_SECTION4_EXAMPLE",
           "soi_request_seconds"]


@dataclass(frozen=True)
class ModelBreakdown:
    """Component times (seconds) of one modeled run."""

    local_fft: float
    convolution: float
    mpi: float
    other: float = 0.0

    @property
    def total(self) -> float:
        return self.local_fft + self.convolution + self.mpi + self.other

    def normalized_to(self, reference: float) -> "ModelBreakdown":
        """Scale all components by 1/reference (Fig 3's normalization)."""
        if reference <= 0:
            raise ValueError("reference must be positive")
        return ModelBreakdown(self.local_fft / reference,
                              self.convolution / reference,
                              self.mpi / reference,
                              self.other / reference)


@dataclass(frozen=True)
class FftModel:
    """One (problem, cluster) instance of the Section 4 model."""

    n_total: int  # N across the whole machine
    nodes: int
    b: int = 72
    n_mu: int = 8
    d_mu: int = 7
    efficiency_fft: float = 0.12
    efficiency_conv: float = 0.40
    network: NetworkSpec = STAMPEDE_EFFECTIVE
    segments_per_process: int = 1
    use_packet_model: bool = False  # True: bandwidth depends on packet size

    def __post_init__(self) -> None:
        if self.n_total < 2 or self.nodes < 1:
            raise ValueError("need n_total >= 2 and nodes >= 1")
        if not (0 < self.efficiency_fft <= 1 and 0 < self.efficiency_conv <= 1):
            raise ValueError("efficiencies must be in (0, 1]")
        if self.n_mu <= self.d_mu:
            raise ValueError("mu must exceed 1")

    @property
    def mu(self) -> float:
        return self.n_mu / self.d_mu

    # -- primitive terms ----------------------------------------------------

    def t_fft(self, machine: MachineSpec, n: float | None = None) -> float:
        """T_fft: node-local FFT time at Eff_fft of aggregate peak."""
        n = self.n_total if n is None else n
        peak = machine.peak_gflops * 1e9 * self.nodes
        return 5.0 * n * np.log2(n) / (self.efficiency_fft * peak)

    def t_conv(self, machine: MachineSpec) -> float:
        """T_conv: convolution-and-oversampling at Eff_conv."""
        peak = machine.peak_gflops * 1e9 * self.nodes
        return 8.0 * self.b * self.mu * self.n_total / (self.efficiency_conv * peak)

    def t_mpi(self, n: float | None = None) -> float:
        """T_mpi: one all-to-all of n elements (16 bytes each).

        With ``use_packet_model`` the effective bandwidth reflects the
        per-pair message length (which shrinks like 1/nodes^2 in weak
        scaling, and further with the segment count since each segment is
        exchanged in its own round); otherwise the flat §4 form
        ``16*N / (nodes * per-node-bandwidth)`` is used.
        """
        n = self.n_total if n is None else n
        nbytes = 16.0 * n
        if not self.use_packet_model or self.nodes == 1:
            return nbytes / (self.nodes * self.network.bandwidth_gbps * 1e9)
        spp = self.segments_per_process
        per_pair = nbytes / (self.nodes ** 2) / spp
        return spp * self.network.alltoall_time(self.nodes, per_pair)

    # -- algorithm totals -----------------------------------------------------

    def soi_breakdown(self, machine: MachineSpec) -> ModelBreakdown:
        """T_soi ~ T_fft(mu N) + T_conv(N) + mu T_mpi(N)."""
        return ModelBreakdown(
            local_fft=self.t_fft(machine, self.mu * self.n_total),
            convolution=self.t_conv(machine),
            mpi=self.mu * self.t_mpi(self.n_total),
        )

    def ct_breakdown(self, machine: MachineSpec) -> ModelBreakdown:
        """T_ct ~ T_fft(N) + 3 T_mpi(N)."""
        return ModelBreakdown(
            local_fft=self.t_fft(machine, self.n_total),
            convolution=0.0,
            mpi=3.0 * self.t_mpi(self.n_total),
        )

    # -- derived metrics --------------------------------------------------------

    def gflops(self, seconds: float) -> float:
        """HPCC G-FFT rate: 5 N log2 N / time, in GFLOP/s."""
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        return 5.0 * self.n_total * float(np.log2(self.n_total)) / seconds / 1e9

    def speedup(self, algorithm: str = "soi",
                fast: MachineSpec = XEON_PHI_SE10,
                slow: MachineSpec = XEON_E5_2680) -> float:
        """Projected Phi-over-Xeon speedup for "soi" or "ct" (§4's 1.7/1.14)."""
        pick = self.soi_breakdown if algorithm == "soi" else self.ct_breakdown
        if algorithm not in ("soi", "ct"):
            raise ValueError("algorithm must be 'soi' or 'ct'")
        return pick(slow).total / pick(fast).total

    def with_nodes(self, nodes: int, weak_scaling: bool = True) -> "FftModel":
        """Re-instantiate at a different node count (weak: N scales with P)."""
        if weak_scaling:
            per_node = self.n_total // self.nodes
            return replace(self, nodes=nodes, n_total=per_node * nodes)
        return replace(self, nodes=nodes)


def soi_request_seconds(params, machine: MachineSpec = XEON_PHI_SE10, *,
                        nodes: int = 1, itemsize: int = 16,
                        efficiency_fft: float = 0.12,
                        efficiency_conv: float = 0.40,
                        network: NetworkSpec = STAMPEDE_EFFECTIVE,
                        batch: int = 1) -> float:
    """Modeled seconds for one SOI request of the given geometry.

    This is the admission-control cost estimate the serving layer
    (:mod:`repro.resilience`) uses to project a request's completion
    time before running it: the Section 4 breakdown for the request's
    own ``mu = n_mu/d_mu`` and ``B``, with the MPI term dropped for
    node-local execution.  ``itemsize`` scales the arithmetic terms for
    reduced precision (8 bytes/element for complex64 lanes), ``batch``
    for batched transforms.  Absolute values are model units — serving
    calibrates them against observed latency with an EWMA scale, so only
    the *relative* cost of ladder rungs matters here.
    """
    return sum(soi_request_breakdown(
        params, machine, nodes=nodes, itemsize=itemsize,
        efficiency_fft=efficiency_fft, efficiency_conv=efficiency_conv,
        network=network, batch=batch).values())


def soi_request_breakdown(params, machine: MachineSpec = XEON_PHI_SE10, *,
                          nodes: int = 1, itemsize: int = 16,
                          efficiency_fft: float = 0.12,
                          efficiency_conv: float = 0.40,
                          network: NetworkSpec = STAMPEDE_EFFECTIVE,
                          batch: int = 1) -> dict[str, float]:
    """Per-stage modeled seconds for one SOI request.

    Same model as :func:`soi_request_seconds` but keyed by stage, using
    the stage labels the telemetry layer emits ("local FFT",
    "convolution", "all-to-all") so fitted
    :class:`~repro.perfmodel.qerror.CostCalibration` factors from
    :func:`~repro.telemetry.profile.stage_profile` observations apply
    directly.  The all-to-all term appears only for multi-node requests.
    """
    model = FftModel(n_total=params.n, nodes=max(1, nodes), b=params.b,
                     n_mu=params.n_mu, d_mu=params.d_mu,
                     efficiency_fft=efficiency_fft,
                     efficiency_conv=efficiency_conv, network=network,
                     segments_per_process=params.segments_per_process)
    br = model.soi_breakdown(machine)
    scale = batch * (itemsize / 16.0)
    out = {"local FFT": br.local_fft * scale,
           "convolution": br.convolution * scale}
    if nodes > 1:
        out["all-to-all"] = br.mpi * scale
    return out


#: The §4 worked example: 32 nodes, N = 2^27 * 32, mu = 5/4, 3 GB/s/node.
#: (T_fft ~ 0.50 s, T_conv ~ 0.64-0.70 s, T_mpi ~ 0.67-0.72 s.)
PAPER_SECTION4_EXAMPLE = FftModel(
    n_total=(2 ** 27) * 32,
    nodes=32,
    b=72,
    n_mu=5,
    d_mu=4,
)

"""Q-error scoring and per-stage calibration of the cost models.

The serving layer sheds load based on *predicted* request cost
(:func:`~repro.perfmodel.model.soi_request_seconds`), so the model must
be trustworthy, not merely monotone.  The metric of record is the
q-error from the query-optimization literature::

    q(pred, actual) = max(pred / actual, actual / pred)  >= 1

Unlike relative error it is symmetric under over-/under-prediction and
multiplicative, which matches how the cost model is wrong in practice:
the §4 analytic model mispredicts each *stage* by a roughly constant
machine-dependent factor (the efficiency gap).  That makes per-stage
multiplicative calibration the right fix: for each stage we regress a
single factor from ``(predicted, measured)`` telemetry observations —
the geometric mean of ``actual/pred`` ratios, which minimizes the
squared log-error and therefore the typical q-error — and apply it to
future predictions.  :class:`CostCalibration` carries the fitted
factors; ``SoiService(calibration=...)`` plugs them into admission
control, and ``bench/regression.py`` gates on a pinned post-calibration
q-error ceiling per stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CostCalibration", "fit_calibration", "q_error",
           "stage_q_errors"]


def q_error(predicted: float, actual: float) -> float:
    """``max(pred/actual, actual/pred)``; >= 1, 1.0 iff exact.

    Non-positive values on either side mean the pair carries no usable
    signal (a stage that never ran, a degenerate prediction) and score
    as ``inf`` rather than raising — callers filter on a ceiling anyway.
    """
    if predicted <= 0.0 or actual <= 0.0:
        return math.inf
    return max(predicted / actual, actual / predicted)


def stage_q_errors(observations) -> dict[str, float]:
    """Worst-case q-error per stage over ``(stage, pred, actual)`` triples.

    The max (not mean) per stage is what admission control cares about:
    one badly mispredicted stage is enough to shed the wrong request.
    """
    out: dict[str, float] = {}
    for stage, predicted, actual in observations:
        q = q_error(predicted, actual)
        if stage not in out or q > out[stage]:
            out[stage] = q
    return out


@dataclass(frozen=True)
class CostCalibration:
    """Per-stage multiplicative correction factors for a cost model.

    ``factors[stage]`` multiplies that stage's raw prediction; unknown
    stages pass through unchanged (factor 1.0), so a calibration fitted
    on a subset of stages is safe to apply everywhere.
    """

    factors: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for stage, f in self.factors.items():
            if not (f > 0.0 and math.isfinite(f)):
                raise ValueError(f"calibration factor for {stage!r} must "
                                 f"be finite and positive, got {f!r}")

    def factor(self, stage: str) -> float:
        return self.factors.get(stage, 1.0)

    def apply(self, stage: str, predicted: float) -> float:
        """Calibrated prediction for one stage."""
        return predicted * self.factor(stage)

    def apply_breakdown(self, breakdown: dict[str, float]) -> dict[str, float]:
        """Calibrate a ``{stage: seconds}`` breakdown, keys preserved."""
        return {stage: self.apply(stage, seconds)
                for stage, seconds in breakdown.items()}

    def total(self, breakdown: dict[str, float]) -> float:
        """Calibrated sum of a breakdown — the admission-control scalar."""
        return sum(self.apply_breakdown(breakdown).values())


def fit_calibration(observations) -> CostCalibration:
    """Fit per-stage factors from ``(stage, predicted, actual)`` triples.

    Each stage's factor is the geometric mean of its ``actual/pred``
    ratios — the closed-form minimizer of the squared log-error, hence
    of the typical (log-)q-error.  Pairs with a non-positive side are
    skipped; stages with no usable pairs get no factor (pass-through).
    """
    logs: dict[str, list[float]] = {}
    for stage, predicted, actual in observations:
        if predicted > 0.0 and actual > 0.0:
            logs.setdefault(stage, []).append(math.log(actual / predicted))
    return CostCalibration(factors={
        stage: math.exp(sum(vals) / len(vals))
        for stage, vals in logs.items()
    })

"""Tornado-style sensitivity analysis of the §4 model.

Which inputs is the paper's bottom line actually sensitive to?  Perturb
each model parameter by a fixed factor in both directions and record the
swing in total SOI time — the standard tornado analysis.  The result
quantifies the §4 narrative: communication bandwidth dominates, compute
efficiency matters second, the convolution width is a distant third.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.network import NetworkSpec
from repro.machine.spec import MachineSpec, scaled_machine
from repro.perfmodel.model import FftModel

__all__ = ["SensitivityRow", "tornado"]


@dataclass(frozen=True)
class SensitivityRow:
    """Swing of total time when one parameter moves by +-factor."""

    parameter: str
    low_total: float  # parameter scaled down (or made worse)
    high_total: float  # parameter scaled up (or made better)
    base_total: float

    @property
    def swing(self) -> float:
        return abs(self.high_total - self.low_total)

    @property
    def relative_swing(self) -> float:
        return self.swing / self.base_total


def _with_network_scale(model: FftModel, scale: float) -> FftModel:
    net = model.network
    return replace(model, network=NetworkSpec(
        name=net.name, bandwidth_gbps=net.bandwidth_gbps * scale,
        latency_us=net.latency_us,
        half_bandwidth_msg_bytes=net.half_bandwidth_msg_bytes,
        contention=net.contention))


def tornado(model: FftModel, machine: MachineSpec, factor: float = 1.5
            ) -> list[SensitivityRow]:
    """Sensitivity of SOI total time to each model input (sorted by swing).

    Parameters perturbed: network bandwidth, machine peak flops, machine
    memory bandwidth (via the machine's efficiency proxy), FFT efficiency,
    convolution efficiency, and convolution width B.
    """
    if factor <= 1.0:
        raise ValueError("factor must exceed 1")
    base = model.soi_breakdown(machine).total
    rows: list[SensitivityRow] = []

    def total(m: FftModel, mach: MachineSpec) -> float:
        return m.soi_breakdown(mach).total

    rows.append(SensitivityRow(
        "network bandwidth",
        total(_with_network_scale(model, 1 / factor), machine),
        total(_with_network_scale(model, factor), machine),
        base))
    rows.append(SensitivityRow(
        "peak flops",
        total(model, scaled_machine(machine, "low", flops_scale=1 / factor)),
        total(model, scaled_machine(machine, "high", flops_scale=factor)),
        base))
    rows.append(SensitivityRow(
        "FFT efficiency",
        total(replace(model, efficiency_fft=model.efficiency_fft / factor),
              machine),
        total(replace(model,
                      efficiency_fft=min(1.0, model.efficiency_fft * factor)),
              machine),
        base))
    rows.append(SensitivityRow(
        "convolution efficiency",
        total(replace(model, efficiency_conv=model.efficiency_conv / factor),
              machine),
        total(replace(model, efficiency_conv=min(
            1.0, model.efficiency_conv * factor)), machine),
        base))
    rows.append(SensitivityRow(
        "convolution width B",
        total(replace(model, b=max(4, int(model.b / factor))), machine),
        total(replace(model, b=int(model.b * factor)), machine),
        base))
    rows.sort(key=lambda r: r.swing, reverse=True)
    return rows

"""repro — reproduction of the SC'13 paper "Tera-Scale 1D FFT with
Low-Communication Algorithm and Intel Xeon Phi Coprocessors".

Layering (bottom up):

``repro.fft``        from-scratch FFT kernels (Stockham, Bluestein, 6-step)
``repro.machine``    machine models: specs, roofline, sweeps, cache sim
``repro.cluster``    simulated cluster: transports, communicator, schedules
``repro.core``       the SOI FFT (single-process and distributed)
``repro.baseline``   distributed Cooley-Tukey (3 all-to-alls)
``repro.perfmodel``  the paper's §4/§7 analytic model and ablation models
``repro.resilience`` deadline-aware serving: admission, breakers, degradation
``repro.bench``      workloads + experiment drivers for every table/figure

Quick start::

    import numpy as np
    from repro import soi_fft

    x = np.random.default_rng(0).standard_normal(8 * 448) + 0j
    y = soi_fft(x, n_segments=8)          # == np.fft.fft(x) to ~1e-8
"""

from repro.baseline import DistributedCooleyTukeyFFT
from repro.cluster import SimCluster
from repro.core import (
    DistributedSoiFFT,
    HeterogeneousSoiFFT,
    OffloadSoiFFT,
    SoiFFT,
    SoiParams,
    segments_for_machines,
    soi_fft,
    soi_ifft,
    spmd_soi_fft,
)
from repro.fft import fft, ifft, irfft, rfft
from repro.machine import XEON_E5_2680, XEON_PHI_SE10, MachineSpec
from repro.perfmodel import FftModel, ModeModel
from repro.resilience import (
    ClusterSoiService,
    Deadline,
    DeadlineExceeded,
    DegradationLadder,
    Overloaded,
    SoiService,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterSoiService",
    "Deadline",
    "DeadlineExceeded",
    "DegradationLadder",
    "DistributedCooleyTukeyFFT",
    "DistributedSoiFFT",
    "FftModel",
    "HeterogeneousSoiFFT",
    "MachineSpec",
    "ModeModel",
    "OffloadSoiFFT",
    "Overloaded",
    "SimCluster",
    "SoiFFT",
    "SoiParams",
    "SoiService",
    "XEON_E5_2680",
    "XEON_PHI_SE10",
    "fft",
    "ifft",
    "irfft",
    "rfft",
    "segments_for_machines",
    "soi_fft",
    "soi_ifft",
    "spmd_soi_fft",
    "__version__",
]

"""repro.telemetry — spans, metrics, and profile export for every layer.

The observability subsystem the rest of the stack reports through:

``repro.telemetry.spans``
    Hierarchical, causally-linked spans (trace_id / span_id /
    parent_id, per-rank) with a context-manager API.  The cluster's
    flat :class:`~repro.cluster.trace.Trace` is a projection of a
    :class:`SpanRecorder`.
``repro.telemetry.metrics``
    Counters, gauges, and fixed-bucket histograms (p50/p95/p99 without
    storing samples) in an injectable :class:`MetricsRegistry`.
    Instruments follow the ``repro_<layer>_<name>_<unit>`` convention.
``repro.telemetry.export``
    Chrome trace-event JSON (loads in ``chrome://tracing`` / Perfetto),
    Prometheus text exposition, and a versioned JSON snapshot.
``repro.telemetry.profile``
    Joins an executed trace with the Section 4/5 performance model into
    a predicted-vs-measured table per pipeline stage (the Fig 9
    exhibit, generated from telemetry).

Instrumentation is zero-cost when disabled: pipelines take
``telemetry=None`` and guard every instrumented site on it, and
:data:`NULL_RECORDER` / :data:`NULL_REGISTRY` are shared no-op
implementations for code that wants an object either way.  Under the
simulated cluster every span timestamp comes from the simulated per-rank
clocks, so recordings are deterministic and seed-reproducible.
"""

from __future__ import annotations

import time

from repro.telemetry.export import (
    SNAPSHOT_SCHEMA,
    chrome_category_totals,
    chrome_trace_events,
    chrome_trace_json,
    prometheus_text,
    telemetry_snapshot,
)
from repro.telemetry.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.telemetry.profile import (StageProfile, render_stage_profile,
                                     stage_observations, stage_profile)
from repro.telemetry.spans import NULL_RECORDER, NullRecorder, Span, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_REGISTRY",
    "NullRecorder",
    "SNAPSHOT_SCHEMA",
    "Span",
    "SpanRecorder",
    "StageProfile",
    "Telemetry",
    "chrome_category_totals",
    "chrome_trace_events",
    "chrome_trace_json",
    "get_registry",
    "prometheus_text",
    "render_stage_profile",
    "set_registry",
    "stage_observations",
    "stage_profile",
    "telemetry_snapshot",
]


class Telemetry:
    """One instrument bundle for node-local (wall-clock) pipelines.

    Wraps a :class:`SpanRecorder`, a :class:`MetricsRegistry`, and a
    clock so an instrumented pipeline (e.g.
    :class:`~repro.core.soi_single.SoiFFT`) needs a single optional
    dependency.  ``machine`` (a
    :class:`~repro.machine.spec.MachineSpec`) enables the achieved-GB/s
    gauges against the machine's roofline bandwidth ceiling; ``rank``
    labels the spans (0 for node-local work).
    """

    def __init__(self, recorder: SpanRecorder | None = None,
                 metrics: MetricsRegistry | None = None, clock=None,
                 machine=None, rank: int = 0):
        self.recorder = SpanRecorder() if recorder is None else recorder
        self.metrics = get_registry() if metrics is None else metrics
        self.clock = time.perf_counter if clock is None else clock
        self.machine = machine
        self.rank = rank

    def stage(self, name: str, t_start: float, t_end: float,
              nbytes: int = 0) -> None:
        """Record one executed pipeline stage: a charge span plus a
        per-stage latency histogram, and (with a machine attached) the
        achieved GB/s gauge next to the roofline ceiling."""
        self.recorder.record(self.rank, f"soi {name}", "compute",
                             t_start, t_end, int(nbytes))
        key = name.replace("-", "_")
        m = self.metrics
        seconds = t_end - t_start
        m.histogram(f"repro_core_stage_{key}_seconds",
                    f"wall seconds per {name} stage execution"
                    ).observe(seconds)
        if nbytes and seconds > 0.0 and self.machine is not None:
            m.gauge(f"repro_core_stage_{key}_gbps",
                    f"achieved {name} memory bandwidth").set(
                        nbytes / seconds / 1e9)
            m.gauge("repro_core_roofline_ceiling_gbps",
                    "machine STREAM bandwidth ceiling").set(
                        self.machine.stream_gbps)

    def transform_done(self, batch: int, flops: float) -> None:
        """Count one completed (possibly batched) transform."""
        m = self.metrics
        m.counter("repro_core_transforms_total",
                  "transforms executed through instrumented plans"
                  ).inc(batch)
        m.counter("repro_core_flops_total",
                  "algorithmic flops executed by instrumented plans"
                  ).inc(flops)

"""Hierarchical, causally-linked spans (the trace substrate).

A :class:`Span` is one timed activity with identity: it belongs to a
trace (``trace_id``), has its own ``span_id``, and points at the span it
ran *inside* (``parent_id``).  Spans come in two kinds:

``"charge"``
    A leaf that carries accounted time — exactly what the old flat
    :class:`~repro.cluster.trace.Event` was.  Aggregations (category
    totals, breakdowns, exposed time) sum charge spans only, so the
    flat projection of a recorder equals its span-tree totals by
    construction.
``"scope"``
    A structural interval (a request, a pipeline phase, an SPMD step)
    that *contains* charges but carries no time of its own.  Scopes give
    the Chrome-trace export its nesting and let a consumer answer "which
    request paid for this retry".

A :class:`SpanRecorder` hands out deterministic ids (a counter, no
wall-clock or randomness) and maintains one open-scope stack per rank, so
charges recorded while a scope is open are parented under it without the
call sites knowing.  :data:`NULL_RECORDER` is the disabled instrument:
every method is a no-op, so instrumented code guards with a single
``is not None`` / identity check and pays nothing when telemetry is off.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["NULL_RECORDER", "NullRecorder", "Span", "SpanRecorder"]


class Span:
    """One timed activity with trace identity and optional attributes."""

    __slots__ = ("trace_id", "span_id", "parent_id", "rank", "name",
                 "category", "t_start", "t_end", "nbytes", "kind",
                 "attributes")

    def __init__(self, trace_id: str, span_id: int, parent_id: int | None,
                 rank: int, name: str, category: str, t_start: float,
                 t_end: float | None, nbytes: int = 0, kind: str = "charge",
                 attributes: dict | None = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.rank = rank
        self.name = name
        self.category = category
        self.t_start = t_start
        self.t_end = t_end
        self.nbytes = nbytes
        self.kind = kind
        self.attributes = attributes

    @property
    def duration(self) -> float:
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    @property
    def closed(self) -> bool:
        return self.t_end is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.kind} #{self.span_id} parent={self.parent_id} "
                f"rank={self.rank} {self.name!r}/{self.category} "
                f"[{self.t_start}, {self.t_end}])")


class SpanRecorder:
    """Collects spans with deterministic ids and per-rank scope stacks.

    The recorder never reads a clock itself: callers pass explicit
    times (simulated-cluster instrumentation) or a ``clock`` callable
    (:meth:`span`, for wall-clock instrumentation), so recordings under
    the simulated clock are bit-reproducible.
    """

    def __init__(self, trace_id: str = "repro") -> None:
        self.trace_id = trace_id
        #: every span, in creation order (scopes appear at open time).
        self.spans: list[Span] = []
        #: charge spans only, in creation order — the flat projection.
        self.charges: list[Span] = []
        self._next_id = 1
        self._stacks: dict[int, list[Span]] = {}

    def __len__(self) -> int:
        return len(self.spans)

    # -- recording ---------------------------------------------------------

    def _parent_id(self, rank: int) -> int | None:
        stack = self._stacks.get(rank)
        return stack[-1].span_id if stack else None

    def record(self, rank: int, name: str, category: str, t_start: float,
               t_end: float, nbytes: int = 0,
               attributes: dict | None = None,
               kind: str = "charge") -> Span:
        """Record one closed charge span (leaf accounted time).

        *kind* defaults to ``"charge"``; the serving gateway records its
        batched executions as ``"coalesce"`` spans — accounted like
        charges (they appear in ``charges`` and the category totals) but
        distinguishable in exports, with the member count in
        ``attributes``.
        """
        if kind == "scope":
            raise ValueError("scope spans are opened with begin()")
        span = Span(self.trace_id, self._next_id, self._parent_id(rank),
                    rank, name, category, t_start, t_end, nbytes,
                    kind, attributes)
        self._next_id += 1
        self.spans.append(span)
        self.charges.append(span)
        return span

    def begin(self, rank: int, name: str, category: str = "other",
              t_start: float = 0.0,
              attributes: dict | None = None) -> Span:
        """Open a scope span on *rank*; subsequent records nest under it."""
        span = Span(self.trace_id, self._next_id, self._parent_id(rank),
                    rank, name, category, t_start, None, 0, "scope",
                    attributes)
        self._next_id += 1
        self.spans.append(span)
        self._stacks.setdefault(rank, []).append(span)
        return span

    def end(self, span: Span, t_end: float) -> Span:
        """Close a scope opened by :meth:`begin` (LIFO per rank; closing
        an inner-nested scope out of order closes the scopes above it)."""
        if span.kind != "scope":
            raise ValueError("only scope spans are closed with end()")
        if span.closed:
            raise ValueError(f"span #{span.span_id} already closed")
        if t_end < span.t_start:
            raise ValueError("scope ends before it starts")
        stack = self._stacks.get(span.rank, [])
        while stack:
            top = stack.pop()
            top.t_end = max(t_end, top.t_start)
            if top is span:
                break
        span.t_end = t_end
        return span

    @contextmanager
    def span(self, rank: int, name: str, category: str = "other",
             clock=None, attributes: dict | None = None):
        """Context-manager scope; *clock* is any ``() -> float`` callable
        (e.g. ``time.perf_counter`` or ``lambda: cluster.clocks[r]``)."""
        if clock is None:
            raise ValueError("span() needs a clock callable; use "
                             "begin()/end() for explicit times")
        s = self.begin(rank, name, category, float(clock()),
                       attributes=attributes)
        try:
            yield s
        finally:
            self.end(s, float(clock()))

    # -- structure queries --------------------------------------------------

    def open_spans(self, rank: int | None = None) -> list[Span]:
        """Scopes not yet closed (all ranks, or one)."""
        if rank is not None:
            return list(self._stacks.get(rank, []))
        out: list[Span] = []
        for r in sorted(self._stacks):
            out.extend(self._stacks[r])
        return out

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    # -- aggregation ---------------------------------------------------------

    def category_totals(self) -> dict[str, float]:
        """category -> summed charge duration (scope spans carry none)."""
        out: dict[str, float] = {}
        for s in self.charges:
            out[s.category] = out.get(s.category, 0.0) + s.duration
        return out

    def subtree_total(self, span: Span, category: str | None = None) -> float:
        """Summed charge duration under one span (inclusive)."""
        ids = {span.span_id}
        # spans are created parent-before-child, so one forward pass closes
        # the descendant set
        for s in self.spans:
            if s.parent_id in ids:
                ids.add(s.span_id)
        return sum(s.duration for s in self.charges
                   if s.span_id in ids
                   and (category is None or s.category == category))


class NullRecorder:
    """The disabled instrument: accepts everything, stores nothing."""

    trace_id = "null"
    spans: list = []
    charges: list = []

    def __len__(self) -> int:
        return 0

    def record(self, *a, **k) -> None:
        return None

    def begin(self, *a, **k) -> None:
        return None

    def end(self, *a, **k) -> None:
        return None

    @contextmanager
    def span(self, *a, **k):
        yield None

    def open_spans(self, rank=None) -> list:
        return []

    def category_totals(self) -> dict:
        return {}


#: Shared no-op recorder — identity-comparable (`rec is NULL_RECORDER`).
NULL_RECORDER = NullRecorder()

"""Stage profiler: predicted vs measured time per SOI pipeline stage.

Joins the spans of an executed :class:`~repro.core.soi_dist
.DistributedSoiFFT` run with the Section 4/5 performance model to emit
the paper's Fig 9 exhibit — local FFT / convolution / exposed MPI
decomposition — from telemetry instead of ad-hoc bench code.  For every
stage the profile carries the model's prediction (the same expressions
the simulator charged), the measured per-rank mean from the trace, and
the retry/fault inflation that explains any gap — the "why was this
slow" view the serving layer needs.

The model imports are deferred to call time so this low-level package
stays import-light (``repro.cluster.trace`` depends on
``repro.telemetry.spans``; the arrow must not point back at import
time).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StageProfile", "render_stage_profile", "stage_observations",
           "stage_profile"]


@dataclass(frozen=True)
class StageProfile:
    """Predicted vs measured accounting for one pipeline stage."""

    stage: str
    predicted_s: float  # per-rank model prediction
    measured_s: float  # per-rank mean of matching trace events
    retry_s: float = 0.0  # share of measured_s charged as fault retries

    @property
    def ratio(self) -> float | None:
        """measured / predicted (None when the model predicts zero)."""
        if self.predicted_s <= 0.0:
            return None
        return self.measured_s / self.predicted_s


def _label_totals(trace, label: str, n_ranks: int) -> tuple[float, float]:
    """(per-rank mean total, per-rank mean retry share) for one label."""
    total = retry = 0.0
    for e in trace.events:
        if e.label != label:
            continue
        total += e.duration
        if e.category == "retry":
            retry += e.duration
    return total / n_ranks, retry / n_ranks


def stage_profile(soi, trace=None) -> list[StageProfile]:
    """Profile an executed :class:`DistributedSoiFFT` run.

    *soi* supplies the geometry, efficiencies, and machine/transport
    models; *trace* defaults to the cluster's trace (profile right after
    a run, before ``reset()``).  Backoff waits appear as a dedicated
    ``fault backoff`` row (the model predicts zero for it) rather than
    inflating the stage they interrupted.
    """
    from repro.core.convolution import conv_time_model

    p = soi.params
    cl = soi.cluster
    trace = cl.trace if trace is None else trace
    machine, transport = cl.machine, cl.transport
    n_procs = p.n_procs
    s, spp, rows = p.n_segments, p.segments_per_process, p.rows_per_process
    item = 16  # the distributed pipeline runs complex128

    left_g, right_g = p.ghost_blocks
    ghost_pred = transport.ring_exchange_time(
        max(left_g, right_g) * s * item, n_procs) if n_procs > 1 else 0.0
    conv_pred = conv_time_model(p, machine, soi.conv_strategy,
                                soi.conv_efficiency) + machine.flop_time(
        p.lane_fft_flops / n_procs, soi.fft_efficiency)
    ckpt_pred = machine.mem_time(rows * s * item)
    a2a_pred = transport.alltoall_time(n_procs, rows * spp * item) \
        if n_procs > 1 else 0.0
    fft_pred = machine.flop_time(p.local_fft_flops / n_procs,
                                 soi.fft_efficiency)
    if soi.fuse_demodulation:
        demod_pred = machine.mem_time(p.m * spp * item)
    else:
        demod_pred = machine.mem_time(
            (2 * p.m_oversampled + 2 * p.m + p.m) * spp * item)

    stages = [
        ("ghost exchange", ghost_pred),
        ("convolution", conv_pred),
        ("checkpoint", ckpt_pred),
        ("all-to-all", a2a_pred),
        ("local FFT", fft_pred),
        ("demodulation", demod_pred),
    ]
    out = []
    for label, pred in stages:
        measured, retry = _label_totals(trace, label, n_procs)
        out.append(StageProfile(label, pred, measured, retry))

    # time the model never predicted: backoff waits and everything the
    # fault/resilience layers charged outside the six pipeline stages
    known = {label for label, _ in stages}
    backoff = sum(e.duration for e in trace.events
                  if e.category == "retry" and e.label not in known)
    if backoff > 0.0:
        out.append(StageProfile("fault backoff", 0.0, backoff / n_procs,
                                backoff / n_procs))
    return out


def stage_observations(profiles: list[StageProfile],
                       *, drop_retry: bool = True):
    """``(stage, predicted, actual)`` triples for q-error calibration.

    This is the join between the profiler and
    :func:`repro.perfmodel.qerror.fit_calibration`: measured time minus
    the retry share (fault inflation is noise, not model error) against
    the model's prediction.  Stages where either side is non-positive
    (never ran, or the model predicts zero — e.g. single-rank
    all-to-all) carry no calibration signal and are dropped.
    """
    out = []
    for pr in profiles:
        actual = pr.measured_s - (pr.retry_s if drop_retry else 0.0)
        if pr.predicted_s > 0.0 and actual > 0.0:
            out.append((pr.stage, pr.predicted_s, actual))
    return out


def render_stage_profile(profiles: list[StageProfile],
                         title: str = "stage profile "
                                      "(per-rank seconds)") -> str:
    """Fixed-width text table of a stage profile."""
    header = f"{'stage':16s} {'predicted':>12s} {'measured':>12s} " \
             f"{'retry':>10s} {'meas/pred':>10s}"
    lines = [title, header, "-" * len(header)]
    for pr in profiles:
        ratio = f"{pr.ratio:8.2f}x" if pr.ratio is not None else "      --"
        lines.append(
            f"{pr.stage:16s} {pr.predicted_s:12.3e} {pr.measured_s:12.3e} "
            f"{pr.retry_s:10.2e} {ratio:>10s}")
    total_p = sum(pr.predicted_s for pr in profiles)
    total_m = sum(pr.measured_s for pr in profiles)
    total_r = sum(pr.retry_s for pr in profiles)
    lines.append("-" * len(header))
    ratio = total_m / total_p if total_p > 0 else float("nan")
    lines.append(f"{'total':16s} {total_p:12.3e} {total_m:12.3e} "
                 f"{total_r:10.2e} {ratio:8.2f}x")
    return "\n".join(lines)

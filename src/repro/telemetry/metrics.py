"""Counters, gauges, and fixed-bucket histograms behind one registry.

Naming convention: ``repro_<layer>_<name>_<unit>`` — e.g.
``repro_cluster_wire_bytes_total``, ``repro_serve_latency_seconds``.
Counter names end in ``_total``; histogram and gauge names end in their
unit (``_seconds``, ``_gbps``, ``_depth``).

Histograms store only fixed bucket counts plus a running sum — p50/p95/
p99 come from log-linear interpolation inside the owning bucket, so
recording a sample is O(log buckets) and memory is O(buckets) no matter
how many observations arrive (the property that makes it safe to observe
every request of a heavy-traffic service).

There is one process-wide default registry (:func:`get_registry`), but
every instrumented constructor accepts an injected registry so tests and
benches can isolate their counts.  A disabled registry
(:data:`NULL_REGISTRY`, or any ``MetricsRegistry(enabled=False)``) hands
out shared no-op instruments: call sites keep a plain attribute call and
pay no accounting when telemetry is off.
"""

from __future__ import annotations

import bisect
import re

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NULL_REGISTRY",
    "DEFAULT_SECONDS_BUCKETS", "get_registry", "set_registry",
]

_NAME_RE = re.compile(r"^repro_[a-z0-9]+(_[a-z0-9]+)+$")

#: Log-spaced latency buckets: 1 us .. ~100 s in half-decade steps.
DEFAULT_SECONDS_BUCKETS = tuple(
    b * 10.0 ** e for e in range(-6, 3) for b in (1.0, 3.0))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, achieved GB/s)."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram with interpolated quantiles.

    ``bounds`` are the inclusive upper bounds of the finite buckets; an
    implicit +inf bucket catches the rest.  No samples are stored.
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "sum",
                 "_min", "_max")
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be a sorted non-empty "
                             "sequence")
        self.name = name
        self.help = help
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect.bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.sum += v
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile (0 < q < 1); 0.0 when empty.

        Linear interpolation inside the owning bucket, clamped by the
        observed min/max so tiny sample counts do not report a bucket
        edge orders of magnitude away from any real observation.
        """
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0.0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self._max
                frac = (target - seen) / c
                est = lo + (hi - lo) * frac
                return min(max(est, self._min), self._max)
            seen += c
        return self._max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class _NullInstrument:
    """No-op counter/gauge/histogram handed out by a disabled registry."""

    __slots__ = ("name", "help")
    kind = "null"
    value = 0.0
    count = 0
    sum = 0.0
    p50 = p95 = p99 = mean = 0.0

    def __init__(self, name: str = "", help: str = ""):
        self.name = name
        self.help = help

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, get-or-create, one namespace.

    ``counter``/``gauge``/``histogram`` are idempotent: the first call
    creates the instrument, later calls return the same object (and
    reject a kind mismatch).  Names must follow the
    ``repro_<layer>_<name>_<unit>`` convention.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, kind: str, factory):
        if not self.enabled:
            return _NULL_INSTRUMENT
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} must match repro_<layer>_<name>_"
                f"<unit> (lowercase, underscore-separated)")
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
        elif inst.kind != kind:
            raise ValueError(f"{name!r} already registered as {inst.kind}")
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help))

    def histogram(self, name: str, help: str = "",
                  bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS
                  ) -> Histogram:
        return self._get(name, "histogram",
                         lambda: Histogram(name, help, bounds))

    def get(self, name: str):
        """Look up an existing instrument (None if never registered)."""
        return self._instruments.get(name)

    def collect(self) -> list:
        """All instruments, name-sorted (the export order)."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def snapshot(self) -> dict:
        """name -> {kind, help, ...instrument state} (JSON-ready)."""
        return {
            inst.name: {"kind": inst.kind, "help": inst.help,
                        **inst.snapshot()}
            for inst in self.collect()
        }

    def reset(self) -> None:
        """Drop every instrument (tests; a fresh scrape namespace)."""
        self._instruments.clear()


#: Shared disabled registry: hands out no-op instruments.
NULL_REGISTRY = MetricsRegistry(enabled=False)

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (injectable via set_registry)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default; returns the previous one."""
    global _default_registry
    prev = _default_registry
    _default_registry = registry
    return prev

"""Exporters: Chrome trace-event JSON, Prometheus text, JSON snapshots.

``chrome_trace_events`` turns a :class:`~repro.telemetry.spans
.SpanRecorder` (or anything carrying one, e.g. a
:class:`~repro.cluster.trace.Trace`) into the Chrome trace-event format
(the JSON ``chrome://tracing`` and Perfetto load): one row per rank
(``tid``), complete ``"X"`` events with microsecond timestamps,
categories preserved in ``cat``, span identity in ``args``.  Scope spans
ride along as enclosing ``X`` events flagged ``args.kind == "scope"`` so
per-category time accounting over the export counts each charged second
exactly once (see :func:`chrome_category_totals`).

``prometheus_text`` renders a :class:`~repro.telemetry.metrics
.MetricsRegistry` in the Prometheus exposition format;
``telemetry_snapshot`` bundles metrics and span summaries into one
versioned JSON document (``schema`` = :data:`SNAPSHOT_SCHEMA`).
"""

from __future__ import annotations

import json

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanRecorder

__all__ = [
    "SNAPSHOT_SCHEMA", "chrome_category_totals", "chrome_trace_events",
    "chrome_trace_json", "prometheus_text", "telemetry_snapshot",
]

#: Version of the snapshot document layout.  Bump on breaking changes;
#: consumers must check it before interpreting the payload.
SNAPSHOT_SCHEMA = 1

#: Simulated seconds are exported as microseconds (the unit Chrome's
#: trace viewer assumes for ``ts``/``dur``).
_US = 1e6


def _recorder_of(source) -> SpanRecorder:
    if isinstance(source, SpanRecorder):
        return source
    rec = getattr(source, "recorder", None)
    if rec is None:
        raise TypeError(f"cannot extract a SpanRecorder from {source!r}")
    return rec


def chrome_trace_events(source, process_name: str = "repro") -> list[dict]:
    """Chrome trace-event list: metadata rows + one ``X`` event per span.

    *source* is a :class:`SpanRecorder` or an object with a
    ``.recorder`` (a :class:`~repro.cluster.trace.Trace`, a
    :class:`~repro.cluster.simcluster.SimCluster`'s trace).  Events are
    ordered by (row, ts), so ``ts`` is monotonically non-decreasing per
    ``tid``.  Open scopes are exported closed at their start time
    (zero duration) rather than dropped.
    """
    rec = _recorder_of(source)
    ranks = sorted({s.rank for s in rec.spans})
    events: list[dict] = [{
        "ph": "M", "pid": 0, "tid": 0, "ts": 0,
        "name": "process_name", "args": {"name": process_name},
    }]
    for r in ranks:
        events.append({
            "ph": "M", "pid": 0, "tid": r, "ts": 0,
            "name": "thread_name", "args": {"name": f"rank {r}"},
        })
    body: list[dict] = []
    for s in rec.spans:
        t_end = s.t_end if s.t_end is not None else s.t_start
        args = {
            "trace_id": s.trace_id,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "kind": s.kind,
        }
        if s.nbytes:
            args["nbytes"] = s.nbytes
        if s.attributes:
            args.update(s.attributes)
        body.append({
            "ph": "X",
            "pid": 0,
            "tid": s.rank,
            "ts": s.t_start * _US,
            "dur": (t_end - s.t_start) * _US,
            "name": s.name,
            "cat": s.category,
            "args": args,
        })
    body.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"]))
    return events + body


def chrome_trace_json(source, process_name: str = "repro",
                      indent: int | None = None) -> str:
    """The full Chrome trace JSON document (loadable as-is)."""
    return json.dumps({
        "traceEvents": chrome_trace_events(source, process_name),
        "displayTimeUnit": "ms",
    }, indent=indent)


def chrome_category_totals(events: list[dict]) -> dict[str, float]:
    """category -> summed charged seconds of an exported event list.

    Counts complete (``"X"``) events whose ``args.kind`` is a charge-like
    leaf (``"charge"``, or the gateway's ``"coalesce"`` batch spans) —
    the exact flat projection — so the result matches
    ``Trace.total(category)`` for the trace that produced the export.
    """
    out: dict[str, float] = {}
    for e in events:
        if e.get("ph") != "X":
            continue
        if e.get("args", {}).get("kind") not in ("charge", "coalesce"):
            continue
        cat = e.get("cat", "other")
        out[cat] = out.get(cat, 0.0) + e["dur"] / _US
    return out


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition (version 0.0.4) of a registry."""
    lines: list[str] = []
    for inst in registry.collect():
        if inst.help:
            lines.append(f"# HELP {inst.name} {inst.help}")
        lines.append(f"# TYPE {inst.name} {inst.kind}")
        if inst.kind == "histogram":
            acc = 0
            for bound, c in zip(inst.bounds, inst.counts):
                acc += c
                lines.append(f'{inst.name}_bucket{{le="{bound:g}"}} {acc}')
            lines.append(f'{inst.name}_bucket{{le="+Inf"}} {inst.count}')
            lines.append(f"{inst.name}_sum {inst.sum:g}")
            lines.append(f"{inst.name}_count {inst.count}")
        else:
            lines.append(f"{inst.name} {inst.value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def telemetry_snapshot(registry: MetricsRegistry | None = None,
                       recorder: SpanRecorder | None = None,
                       meta: dict | None = None) -> dict:
    """One versioned JSON document bundling metrics and span summaries."""
    doc: dict = {"schema": SNAPSHOT_SCHEMA}
    if meta:
        doc["meta"] = dict(meta)
    if registry is not None:
        doc["metrics"] = registry.snapshot()
    if recorder is not None:
        doc["spans"] = {
            "trace_id": recorder.trace_id,
            "count": len(recorder.spans),
            "open": len(recorder.open_spans()),
            "category_totals": recorder.category_totals(),
        }
    return doc
